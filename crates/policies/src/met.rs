//! MET — minimum execution time / "best only" (Braun et al.).
//!
//! §2.5.3: "a kernel is chosen ... from I and is then assigned to the
//! processor with the lowest execution time for that kernel. If the best
//! suited processor for the kernel is not currently available, the policy
//! decides to wait for the best processor to become available ... By virtue
//! of this rule, a processor sits idle if there are no kernels in I that are
//! suitable for it."
//!
//! MET is the policy APT generalizes: APT with a threshold that never admits
//! an alternative processor (α → 1 on a strongly heterogeneous table)
//! degenerates to MET, which Tables 8/9 show as identical columns.
//!
//! The paper picks kernels "in a random order"; for reproducibility this
//! implementation uses ascending node id, which is one fixed arbitrary
//! order.
//!
//! MET's rule reads only static lookup costs and the idle set, and every
//! assignment strictly *shrinks* the idle set — a kernel skipped because its
//! best processor was busy can never become assignable later in the same
//! instant. The whole per-instant fixpoint is therefore emitted in one
//! `decide` pass over the ready list, tracking the claimed processors in a
//! local copy of the idle mask; the engine's re-invocation then finds
//! nothing left and advances time. This produces exactly the same
//! assignment sequence as the one-per-call form (pinned by the Figure-5
//! test below) at a fraction of the rescans.

use apt_base::ProcId;
use apt_hetsim::{Assignment, AssignmentBuf, Policy, PolicyKind, SimView};

/// The MET policy. Stateless; construct per run for uniformity.
#[derive(Debug, Default, Clone, Copy)]
pub struct Met;

impl Met {
    /// Create a MET scheduler.
    pub const fn new() -> Self {
        Met
    }
}

impl Policy for Met {
    fn name(&self) -> String {
        "MET".into()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Dynamic
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
        let mut idle = view.idle_mask;
        for node in view.ready.iter() {
            if idle == 0 {
                break; // every processor claimed: nothing left this instant
            }
            // Lowest-id idle instance among the minimal-execution-time set
            // (`best_instance` semantics, fused with the batch's own claims).
            let available = view.cost.min_mask(node) & idle;
            if available != 0 {
                let proc = ProcId::new(available.trailing_zeros() as usize);
                idle &= !(1 << proc.index());
                out.push(Assignment::new(node, proc));
            }
            // Best processor busy: wait for it (the defining MET rule).
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_base::{ProcId, SimDuration};
    use apt_dfg::generator::build_type1;
    use apt_dfg::{Kernel, KernelKind, LookupTable, NodeId};
    use apt_hetsim::{simulate, SystemConfig};

    fn nw() -> Kernel {
        Kernel::canonical(KernelKind::NeedlemanWunsch)
    }
    fn bfs() -> Kernel {
        Kernel::canonical(KernelKind::Bfs)
    }
    fn cd() -> Kernel {
        Kernel::new(KernelKind::Cholesky, 250_000)
    }

    /// The MET half of the paper's Figure-5 example: kernels
    /// {nw, bfs, bfs, bfs, cd} as DFG Type-1, transfers disabled.
    /// The paper's schedule ends at **318.093 ms** with the three bfs
    /// executions serialized on the FPGA.
    #[test]
    fn figure5_met_schedule_is_exact() {
        let dfg = build_type1(&[nw(), bfs(), bfs(), bfs(), cd()]);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            LookupTable::paper(),
            &mut Met::new(),
        )
        .unwrap();
        assert_eq!(res.makespan(), SimDuration::from_us(318_093));
        // nw on CPU at t=0; bfs serialized on FPGA at 0 / 106 / 212.
        let r = |i: usize| res.trace.record(NodeId::new(i)).unwrap();
        assert_eq!(r(0).proc, ProcId::new(0));
        assert_eq!(r(1).proc, ProcId::new(2));
        assert_eq!(r(2).proc, ProcId::new(2));
        assert_eq!(r(3).proc, ProcId::new(2));
        assert_eq!(r(4).proc, ProcId::new(2));
        assert_eq!(r(2).start.as_ns(), 106_000_000);
        assert_eq!(r(3).start.as_ns(), 212_000_000);
        assert_eq!(r(4).start.as_ns(), 318_000_000);
        // GPU never used: MET waits for the best processor.
        assert_eq!(res.trace.proc_stats[1].kernels, 0);
        res.trace.validate(&dfg).unwrap();
    }

    #[test]
    fn met_always_places_each_kernel_on_its_best_category() {
        let kernels = vec![nw(), bfs(), cd(), bfs(), nw(), cd()];
        let dfg = build_type1(&kernels);
        let lookup = LookupTable::paper();
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            lookup,
            &mut Met::new(),
        )
        .unwrap();
        for rec in &res.trace.records {
            let best = lookup.best_category(&rec.kernel).unwrap().0;
            assert_eq!(
                SystemConfig::paper_no_transfers().kind_of(rec.proc),
                best,
                "kernel {} not on its best category",
                rec.kernel
            );
            assert!(!rec.alt);
        }
    }

    #[test]
    fn met_uses_an_idle_twin_when_categories_are_duplicated() {
        let config = SystemConfig::empty(apt_hetsim::LinkRate::gbps(4))
            .with_proc(apt_base::ProcKind::Cpu)
            .with_proc(apt_base::ProcKind::Fpga)
            .with_proc(apt_base::ProcKind::Fpga)
            .with_bytes_per_element(0);
        let dfg = build_type1(&[bfs(), bfs(), bfs()]);
        let res = simulate(&dfg, &config, LookupTable::paper(), &mut Met::new()).unwrap();
        // Two level-1 bfs run in parallel on the two FPGAs → the sink starts
        // at 106 and everything ends at 212.
        assert_eq!(res.makespan(), SimDuration::from_ms(212));
    }
}
