//! Machine-readable exports of simulation results.
//!
//! The harness prints paper-style tables; downstream analysis (spreadsheets,
//! plotting) wants flat records instead. Two formats are provided without
//! extra dependencies:
//!
//! * [`trace_to_csv`] — one row per kernel execution (the full schedule log),
//! * [`summaries_to_csv`] — one row per run (the §3.2 statistics),
//! * [`snapshots_to_csv`] — long-format open-stream snapshots: one row per
//!   `(labelled run, window)`, so a whole sweep's saturation knee or
//!   miss-rate frontier plots straight from one file,
//! * JSON via `serde` is already derived on every result type
//!   (`serde::Serialize` on [`Trace`], [`RunSummary`], …); any JSON
//!   serializer accepted by serde works.

use crate::online::StreamSnapshot;
use crate::summary::RunSummary;
use apt_hetsim::{SystemConfig, Trace};
use std::fmt::Write as _;

/// CSV header of [`trace_to_csv`].
pub const TRACE_CSV_HEADER: &str =
    "node,kernel,data_size,proc,proc_kind,ready_ms,start_ms,exec_start_ms,finish_ms,lambda_ms,alt";

/// Render a trace as CSV (header + one row per kernel, record order).
pub fn trace_to_csv(trace: &Trace, config: &SystemConfig) -> String {
    let mut out = String::with_capacity(64 * (trace.records.len() + 1));
    out.push_str(TRACE_CSV_HEADER);
    out.push('\n');
    for r in &trace.records {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{}",
            r.node.index(),
            r.kernel.kind.tag(),
            r.kernel.data_size,
            r.proc.index(),
            config.kind_of(r.proc).label(),
            r.ready.as_ms_f64(),
            r.start.as_ms_f64(),
            r.exec_start.as_ms_f64(),
            r.finish.as_ms_f64(),
            r.lambda().as_ms_f64(),
            r.alt,
        );
    }
    out
}

/// CSV header of [`summaries_to_csv`].
pub const SUMMARY_CSV_HEADER: &str =
    "policy,makespan_ms,lambda_total_ms,lambda_avg_ms,lambda_stddev_ms,lambda_count,alt_assignments";

/// Render run summaries as CSV (header + one row per run).
pub fn summaries_to_csv(summaries: &[RunSummary]) -> String {
    let mut out = String::new();
    out.push_str(SUMMARY_CSV_HEADER);
    out.push('\n');
    for s in summaries {
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{:.6},{:.6},{},{}",
            csv_quote(&s.policy),
            s.makespan.as_ms_f64(),
            s.lambda_total.as_ms_f64(),
            s.lambda_avg.as_ms_f64(),
            s.lambda_stddev_ms,
            s.lambda_count,
            s.alt_assignments,
        );
    }
    out
}

/// CSV header of [`snapshots_to_csv`].
pub const SNAPSHOT_CSV_HEADER: &str = "label,end_ms,interval_ms,window_jobs,total_jobs,\
     throughput_jps,latency_p50_ms,latency_p90_ms,latency_p99_ms,mean_depth,depth_now,\
     window_missed,total_missed,total_deadline_jobs,miss_rate,tardiness_p99_ms,util_mean,\
     window_failed,total_failed,window_kernel_failures,window_retries,availability,\
     window_admitted,window_shed,total_shed,window_deadline_jobs,window_miss_rate";

/// Render labelled snapshot series as long-format CSV: one row per
/// `(label, window)`, windows in emission order. The label identifies the
/// run (policy, rate, α, …) so a whole sweep exports into a single flat
/// file ready for pivoting/plotting. `util_mean` averages the per-processor
/// window utilizations.
pub fn snapshots_to_csv<'a>(
    rows: impl IntoIterator<Item = (&'a str, &'a [StreamSnapshot])>,
) -> String {
    let mut out = String::new();
    out.push_str(SNAPSHOT_CSV_HEADER);
    out.push('\n');
    for (label, snapshots) in rows {
        let label = csv_quote(label);
        for s in snapshots {
            let util_mean = if s.utilization.is_empty() {
                0.0
            } else {
                s.utilization.iter().sum::<f64>() / s.utilization.len() as f64
            };
            let _ = writeln!(
                out,
                "{},{:.6},{:.6},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{},{},{:.6},{:.6},{:.6},{},{},{},{},{:.6},{},{},{},{},{:.6}",
                label,
                s.end.as_ms_f64(),
                s.interval.as_ms_f64(),
                s.window_jobs,
                s.total_jobs,
                s.throughput_jps,
                s.latency_p50_ms,
                s.latency_p90_ms,
                s.latency_p99_ms,
                s.mean_depth,
                s.depth_now,
                s.window_missed,
                s.total_missed,
                s.total_deadline_jobs,
                s.miss_rate(),
                s.tardiness_p99_ms,
                util_mean,
                s.window_failed,
                s.total_failed,
                s.window_kernel_failures,
                s.window_retries,
                s.availability,
                s.window_admitted,
                s.window_shed,
                s.total_shed,
                s.window_deadline_jobs,
                s.window_miss_rate(),
            );
        }
    }
    out
}

/// Quote a CSV field if it contains separators or quotes.
fn csv_quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_dfg::generator::build_type1;
    use apt_dfg::{Kernel, KernelKind, LookupTable};
    use apt_hetsim::simulate;
    use apt_policies::Met;

    fn sample() -> (Trace, SystemConfig) {
        let kernels = vec![
            Kernel::canonical(KernelKind::NeedlemanWunsch),
            Kernel::canonical(KernelKind::Bfs),
            Kernel::new(KernelKind::Cholesky, 250_000),
        ];
        let dfg = build_type1(&kernels);
        let config = SystemConfig::paper_no_transfers();
        let res = simulate(&dfg, &config, LookupTable::paper(), &mut Met::new()).unwrap();
        (res.trace, config)
    }

    #[test]
    fn trace_csv_has_one_row_per_kernel_and_parses() {
        let (trace, config) = sample();
        let csv = trace_to_csv(&trace, &config);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], TRACE_CSV_HEADER);
        assert_eq!(lines.len(), 1 + trace.records.len());
        let cols = TRACE_CSV_HEADER.split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), cols, "bad row: {line}");
        }
        // The nw row carries its CPU timing.
        let nw_row = lines.iter().find(|l| l.contains(",nw,")).unwrap();
        assert!(nw_row.contains("CPU"), "{nw_row}");
        assert!(nw_row.ends_with("false"));
    }

    #[test]
    fn summary_csv_round_trips_the_numbers() {
        let (trace, _) = sample();
        let summary = RunSummary {
            policy: "MET".into(),
            makespan: trace.makespan(),
            busy_per_proc: vec![],
            transfer_per_proc: vec![],
            idle_per_proc: vec![],
            lambda_total: trace.lambda_total(),
            lambda_avg: trace.lambda_avg(),
            lambda_stddev_ms: trace.lambda_stddev_ms(),
            lambda_count: trace.lambda_count(),
            alt_assignments: 0,
            alt_by_kind: Default::default(),
        };
        let csv = summaries_to_csv(std::slice::from_ref(&summary));
        let row = csv.lines().nth(1).unwrap();
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields[0], "MET");
        let makespan: f64 = fields[1].parse().unwrap();
        assert!((makespan - summary.makespan.as_ms_f64()).abs() < 1e-6);
    }

    #[test]
    fn snapshot_csv_is_long_format_with_one_row_per_window() {
        use apt_base::{SimDuration, SimTime};
        let snap = |end_ms: u64, jobs: u64, missed: u64| StreamSnapshot {
            end: SimTime::from_ms(end_ms),
            interval: SimDuration::from_ms(100),
            window_jobs: jobs,
            total_jobs: jobs,
            throughput_jps: jobs as f64 * 10.0,
            latency_p50_ms: 5.0,
            latency_p90_ms: 9.0,
            latency_p99_ms: 11.0,
            mean_depth: 1.5,
            depth_now: 1,
            window_missed: missed,
            total_missed: missed,
            total_deadline_jobs: jobs,
            tardiness_p99_ms: 2.0,
            utilization: vec![0.5, 0.25],
            window_failed: 0,
            total_failed: 0,
            window_kernel_failures: 0,
            window_retries: 0,
            window_down_ns: 0,
            window_wasted_ns: 0,
            availability: 1.0,
            window_admitted: jobs,
            window_shed: 0,
            total_shed: 0,
            window_deadline_jobs: jobs,
        };
        let a = vec![snap(100, 4, 1), snap(200, 2, 0)];
        let b = vec![snap(100, 3, 3)];
        let csv = snapshots_to_csv([("APT,α=4/λ=0.2", a.as_slice()), ("MET", b.as_slice())]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], SNAPSHOT_CSV_HEADER);
        assert_eq!(lines.len(), 1 + 3, "one row per (label, window)");
        // The comma-carrying label is quoted, so column counts line up.
        let cols = SNAPSHOT_CSV_HEADER.split(',').count();
        assert!(lines[1].starts_with("\"APT,α=4/λ=0.2\","));
        assert_eq!(lines[3].split(',').count(), cols, "bad row: {}", lines[3]);
        // Miss-rate column: window 1 of run A had 1/4 missed.
        assert!(lines[1].contains(",0.250000,"), "{}", lines[1]);
        // util_mean averages the per-proc window utilizations; the fault
        // columns of a fault-free snapshot are zeros with availability 1.
        assert!(lines[1].contains(",0.375000,"), "{}", lines[1]);
        // Fault columns are zeros with availability 1; the admission tail
        // carries the window's admitted/shed counts and windowed miss rate.
        assert!(
            lines[1].ends_with(",0,0,0,0,1.000000,4,0,0,4,0.250000"),
            "{}",
            lines[1]
        );
    }

    #[test]
    fn csv_quoting_escapes_policies_with_commas() {
        let quoted = csv_quote("APT, tuned \"auto\"");
        assert_eq!(quoted, "\"APT, tuned \"\"auto\"\"\"");
        assert_eq!(csv_quote("MET"), "MET");
    }
}
