//! The seven kernels of the paper's workload (Table 5) and their instances.
//!
//! An *application* in the paper decomposes into *kernels*; each kernel has a
//! computational objective captured by its dwarf (Figure 2, §2.4). A kernel
//! instance in an input stream carries a concrete data size (element count),
//! which keys into the lookup table of measured execution times.

use crate::dwarf::Dwarf;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The seven kernel types used in the paper's input streams (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// Matrix-matrix multiplication (Skalicky et al.) — dense linear algebra.
    MatMul,
    /// Matrix inversion (Skalicky et al.) — dense linear algebra.
    MatInv,
    /// Cholesky decomposition (Skalicky et al.) — dense/sparse linear algebra.
    Cholesky,
    /// Needleman-Wunsch sequence alignment (Krommydas et al.) — dynamic programming.
    NeedlemanWunsch,
    /// Breadth-first search (Krommydas et al.) — graph traversal.
    Bfs,
    /// Speckle-reducing anisotropic diffusion (Krommydas et al.) — structured grids.
    Srad,
    /// Gaussian electrostatic model (Krommydas et al.) — N-body methods.
    Gem,
}

impl KernelKind {
    /// All seven kernel kinds, in Table-5 / Appendix-A order.
    pub const ALL: [KernelKind; 7] = [
        KernelKind::MatMul,
        KernelKind::MatInv,
        KernelKind::Cholesky,
        KernelKind::NeedlemanWunsch,
        KernelKind::Bfs,
        KernelKind::Srad,
        KernelKind::Gem,
    ];

    /// Dense index of this kind inside [`KernelKind::ALL`], used by the
    /// lookup table's per-kind row index and the cost matrices.
    pub const fn index(self) -> usize {
        match self {
            KernelKind::MatMul => 0,
            KernelKind::MatInv => 1,
            KernelKind::Cholesky => 2,
            KernelKind::NeedlemanWunsch => 3,
            KernelKind::Bfs => 4,
            KernelKind::Srad => 5,
            KernelKind::Gem => 6,
        }
    }

    /// The short lowercase tag used by the paper's Appendix-B analyses
    /// ("nw", "bfs", "srad", "mi", "gem", "mm", "cd").
    pub const fn tag(self) -> &'static str {
        match self {
            KernelKind::MatMul => "mm",
            KernelKind::MatInv => "mi",
            KernelKind::Cholesky => "cd",
            KernelKind::NeedlemanWunsch => "nw",
            KernelKind::Bfs => "bfs",
            KernelKind::Srad => "srad",
            KernelKind::Gem => "gem",
        }
    }

    /// Full human-readable name as used in Table 14.
    pub const fn full_name(self) -> &'static str {
        match self {
            KernelKind::MatMul => "Matrix Multiplication",
            KernelKind::MatInv => "Matrix Inverse",
            KernelKind::Cholesky => "Cholesky Decomposition",
            KernelKind::NeedlemanWunsch => "Needleman Wunsch",
            KernelKind::Bfs => "BFS",
            KernelKind::Srad => "SRAD",
            KernelKind::Gem => "GEM",
        }
    }

    /// Parse a short tag back into a kind (inverse of [`KernelKind::tag`]).
    pub fn from_tag(tag: &str) -> Option<KernelKind> {
        KernelKind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// The dwarf(s) this kernel belongs to (Table 5). The linear-algebra
    /// kernels are listed by the paper under "Dense and Sparse Linear
    /// Algebra", so they carry both memberships.
    pub const fn dwarfs(self) -> &'static [Dwarf] {
        match self {
            KernelKind::MatMul | KernelKind::MatInv | KernelKind::Cholesky => {
                &[Dwarf::DenseLinearAlgebra, Dwarf::SparseLinearAlgebra]
            }
            KernelKind::NeedlemanWunsch => &[Dwarf::DynamicProgramming],
            KernelKind::Bfs => &[Dwarf::GraphTraversal],
            KernelKind::Srad => &[Dwarf::StructuredGrids],
            KernelKind::Gem => &[Dwarf::NBody],
        }
    }

    /// Whether the lookup table provides multiple data sizes for this kernel.
    /// The linear-algebra kernels were measured at seven sizes; the OpenDwarfs
    /// kernels (NW, BFS, SRAD, GEM) at a single canonical size each.
    pub const fn has_size_sweep(self) -> bool {
        matches!(
            self,
            KernelKind::MatMul | KernelKind::MatInv | KernelKind::Cholesky
        )
    }

    /// The single measured data size for kernels without a size sweep
    /// (Table 14); `None` for the swept linear-algebra kernels.
    pub const fn canonical_size(self) -> Option<u64> {
        match self {
            KernelKind::NeedlemanWunsch => Some(16_777_216),
            KernelKind::Bfs => Some(2_034_736),
            KernelKind::Srad => Some(134_217_728),
            KernelKind::Gem => Some(2_070_376),
            _ => None,
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A kernel *instance* inside an input stream: a kernel type plus the concrete
/// data size it operates on (an element count, e.g. `836 × 836 = 698896` for a
/// matrix kernel — §3.1's lookup-table example).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Kernel {
    /// Which of the seven kernel types this is.
    pub kind: KernelKind,
    /// Number of data elements processed (lookup-table key).
    pub data_size: u64,
}

impl Kernel {
    /// Construct a kernel instance.
    pub const fn new(kind: KernelKind, data_size: u64) -> Self {
        Kernel { kind, data_size }
    }

    /// Construct a kernel at its canonical (single-measurement) size.
    /// Panics for swept kernels, which require an explicit size.
    pub fn canonical(kind: KernelKind) -> Self {
        let size = kind
            .canonical_size()
            .expect("kernel has a size sweep; pass an explicit data size");
        Kernel::new(kind, size)
    }

    /// Bytes moved when this kernel's input/output crosses a PCIe link.
    ///
    /// The paper reports element counts and GB/s link rates but never states
    /// bytes per element; we use 4 (single-precision floats, consistent with
    /// the GPU linear-algebra implementations the measurements come from).
    /// The factor is a parameter of the simulated system, so this helper takes
    /// it explicitly.
    pub const fn bytes(&self, bytes_per_element: u64) -> u64 {
        self.data_size * bytes_per_element
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.kind.tag(), self.data_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for k in KernelKind::ALL {
            assert_eq!(KernelKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(KernelKind::from_tag("nope"), None);
    }

    #[test]
    fn canonical_sizes_match_table14() {
        assert_eq!(
            KernelKind::NeedlemanWunsch.canonical_size(),
            Some(16_777_216)
        );
        assert_eq!(KernelKind::Bfs.canonical_size(), Some(2_034_736));
        assert_eq!(KernelKind::Srad.canonical_size(), Some(134_217_728));
        assert_eq!(KernelKind::Gem.canonical_size(), Some(2_070_376));
        assert_eq!(KernelKind::MatMul.canonical_size(), None);
    }

    #[test]
    fn swept_kernels_are_the_linear_algebra_ones() {
        let swept: Vec<_> = KernelKind::ALL
            .into_iter()
            .filter(|k| k.has_size_sweep())
            .collect();
        assert_eq!(
            swept,
            vec![KernelKind::MatMul, KernelKind::MatInv, KernelKind::Cholesky]
        );
    }

    #[test]
    fn dwarf_membership_matches_table5() {
        assert_eq!(
            KernelKind::NeedlemanWunsch.dwarfs(),
            &[Dwarf::DynamicProgramming]
        );
        assert_eq!(KernelKind::Bfs.dwarfs(), &[Dwarf::GraphTraversal]);
        assert_eq!(KernelKind::Srad.dwarfs(), &[Dwarf::StructuredGrids]);
        assert_eq!(KernelKind::Gem.dwarfs(), &[Dwarf::NBody]);
        assert!(KernelKind::MatMul
            .dwarfs()
            .contains(&Dwarf::DenseLinearAlgebra));
    }

    #[test]
    fn kernel_bytes_uses_element_factor() {
        let k = Kernel::canonical(KernelKind::Bfs);
        assert_eq!(k.bytes(4), 2_034_736 * 4);
        assert_eq!(k.bytes(8), 2_034_736 * 8);
    }

    #[test]
    #[should_panic(expected = "size sweep")]
    fn canonical_of_swept_kernel_panics() {
        let _ = Kernel::canonical(KernelKind::Cholesky);
    }

    #[test]
    fn display_matches_appendix_b_style() {
        let k = Kernel::new(KernelKind::MatInv, 698_896);
        assert_eq!(k.to_string(), "mi(698896)");
    }
}
