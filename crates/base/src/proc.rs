//! Processor categories and instance ids.
//!
//! The paper generalizes measured kernel times to the processor *category*
//! (§3.2): a time measured on an Intel i7 stands in for "CPU", a Tesla K20
//! for "GPU", a Virtex-7 for "FPGA", irrespective of the concrete device.
//! The simulated system is a set of processor *instances*, each of one
//! category, connected by uniform PCIe links (Figure 1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A processor category. Lookup-table execution times are keyed by category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProcKind {
    /// General-purpose CPU (deep pipelines, speculation; best at control-heavy code).
    Cpu,
    /// GPU (SIMD, massive parallelism; best at dense data-parallel kernels).
    Gpu,
    /// FPGA (reconfigurable custom datapaths; best at streaming/bit-level kernels).
    Fpga,
    /// ASIC — present in the paper's Figure-1 system diagram but not in the
    /// evaluation (no measured times). Supported so that extension systems can
    /// be described; the stock lookup table reports `None` for it.
    Asic,
}

impl ProcKind {
    /// The three categories evaluated in the paper, in lookup-table column order.
    pub const EVALUATED: [ProcKind; 3] = [ProcKind::Cpu, ProcKind::Gpu, ProcKind::Fpga];

    /// All categories, including the unevaluated ASIC.
    pub const ALL: [ProcKind; 4] = [ProcKind::Cpu, ProcKind::Gpu, ProcKind::Fpga, ProcKind::Asic];

    /// Short uppercase label as used in the paper's tables.
    pub const fn label(self) -> &'static str {
        match self {
            ProcKind::Cpu => "CPU",
            ProcKind::Gpu => "GPU",
            ProcKind::Fpga => "FPGA",
            ProcKind::Asic => "ASIC",
        }
    }

    /// Column index inside the paper's lookup table (CPU=0, GPU=1, FPGA=2).
    /// `None` for categories without measured data.
    pub const fn table_column(self) -> Option<usize> {
        match self {
            ProcKind::Cpu => Some(0),
            ProcKind::Gpu => Some(1),
            ProcKind::Fpga => Some(2),
            ProcKind::Asic => None,
        }
    }
}

impl fmt::Display for ProcKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Index of a processor instance within a simulated system.
///
/// Stored as `u16`: real heterogeneous nodes (Quadro-Plex, Axel, Chimera —
/// §2.2) have a handful of devices; 65 535 is far beyond any configuration
/// the simulator is asked to model, and the small id keeps hot scheduling
/// structures compact (see the type-size guidance in the performance guide).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProcId(pub u16);

impl ProcId {
    /// Construct from a raw index.
    #[inline]
    pub const fn new(idx: usize) -> Self {
        ProcId(idx as u16)
    }

    /// The raw index, widened for slice indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(ProcKind::Cpu.label(), "CPU");
        assert_eq!(ProcKind::Gpu.label(), "GPU");
        assert_eq!(ProcKind::Fpga.label(), "FPGA");
    }

    #[test]
    fn table_columns_follow_appendix_a_order() {
        assert_eq!(ProcKind::Cpu.table_column(), Some(0));
        assert_eq!(ProcKind::Gpu.table_column(), Some(1));
        assert_eq!(ProcKind::Fpga.table_column(), Some(2));
        assert_eq!(ProcKind::Asic.table_column(), None);
    }

    #[test]
    fn evaluated_is_a_prefix_of_all() {
        assert_eq!(&ProcKind::ALL[..3], &ProcKind::EVALUATED[..]);
    }

    #[test]
    fn proc_id_roundtrip() {
        let p = ProcId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.to_string(), "p7");
    }
}
