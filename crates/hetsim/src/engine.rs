//! The discrete-event simulation loop.
//!
//! Execution model (one kernel occupies one processor for transfer + exec):
//!
//! 1. At `t = 0` all dependency-free kernels enter the ready set `I`.
//! 2. The policy is consulted to a fixpoint: it may emit any number of
//!    assignments; each removes a kernel from `I` and either *starts* it (if
//!    the processor is idle) or *enqueues* it (per-processor FIFO — AG's
//!    queues). Policies that prefer to wait simply withhold assignments.
//! 3. The earliest pending completion event fires; all completions at that
//!    instant are processed (outputs become resident on their processor,
//!    successors may become ready, queued work starts), then back to 2.
//! 4. The run ends when the event queue is empty. If kernels never ran, the
//!    policy starved them and an error is returned.
//!
//! Starting a kernel on processor `p` at time `t` costs
//! `transfer_in(node, p)` (inputs resident on other processors cross the
//! link, serialized) followed by the lookup-table execution time. λ delay is
//! measured from ready-time to start (§2.5.1). Under a non-uniform
//! [`crate::Topology`] each predecessor's link time is pair-resolved
//! (`location → p`), and with [`LinkContention::PerLink`] the input
//! transfers instead run concurrently across distinct directed links —
//! same-link transfers serialize behind a per-link busy-until clock, and
//! execution starts once the last input lands.
//!
//! ## Hot-path structure
//!
//! Decision edges dominate the simulator's cost, so the loop avoids
//! per-edge rebuild work entirely:
//!
//! * all execution/transfer costs come from the per-run [`CostModel`]
//!   (dense arrays, no map lookups, no allocation),
//! * the [`ProcView`] snapshots live in one `Vec` updated **incrementally**
//!   as kernels start/finish/queue (the seed rebuilt the `Vec` — including
//!   re-averaging each processor's execution history — on every fixpoint
//!   iteration),
//! * the ready set is a bitset ([`ReadySet`]) with O(1) insert/remove and
//!   ascending-id iteration (the seed paid an O(n) `Vec` memmove per
//!   assignment),
//! * a running idle-processor bitset makes `SimView::any_idle` O(1),
//! * the event queue is a [`CalendarQueue`]: completions at one instant are
//!   popped as a single batch into a reusable buffer (no per-event heap
//!   sift, no peek/pop loop, no tuple churn),
//! * policies emit assignments into a per-run [`AssignmentBuf`] arena
//!   instead of returning a fresh `Vec` — together with the batch buffer
//!   this makes the fixpoint loop allocation-free end-to-end once the two
//!   buffers reach steady-state capacity.

use crate::calendar::CalendarQueue;
use crate::cost::CostModel;
use crate::policy::{Assignment, AssignmentBuf, Policy, PrepareCtx};
use crate::ready::ReadySet;
use crate::system::SystemConfig;
use crate::topology::LinkContention;
use crate::trace::{ProcStats, SimResult, TaskRecord, Trace};
use crate::view::{ProcView, SimView};
use apt_base::{BaseError, ProcId, SimDuration, SimTime};
use apt_dfg::{KernelDag, LookupTable, NodeId};
use apt_faults::{FaultPlan, FaultState, FaultTotals, LinkDegradeSpec, RetryPolicy};
use apt_trace::{DecisionRecord, TraceEvent, TraceSink};
use std::collections::VecDeque;

/// Window size for the per-processor execution-time history backing AG's
/// `τ_k` estimate (Eq. 2's "last k kernel calls"). Wu et al. leave k as a
/// parameter; 10 is used here and exposed as a named constant so ablations
/// can reference it.
pub const EXEC_HISTORY_WINDOW: usize = 10;

/// Live engine-private state of one processor (the policy-visible fields
/// live in the incrementally maintained [`ProcView`]).
pub(crate) struct ProcCore {
    queue: VecDeque<Assignment>,
    history: VecDeque<SimDuration>,
    /// Running sum of `history`, so the windowed average is O(1) to refresh.
    history_sum: u64,
    stats: ProcStats,
    /// Monotone run token, bumped on every kernel start *and* every fault
    /// kill. `Finish`/`Fail` events carry the token of the start they
    /// belong to; a mismatch marks the event stale (the kernel was killed
    /// by a fault before the event fired) and it is ignored.
    run_token: u32,
    /// Start instant of the in-flight kernel (valid while `running`).
    inflight_start: SimTime,
    /// Its input-transfer duration (valid while `running`).
    inflight_transfer: SimDuration,
    /// Its execution duration (valid while `running`).
    inflight_exec: SimDuration,
}

impl ProcCore {
    fn new() -> Self {
        ProcCore {
            // Lazily allocated: policies that never queue (MET, APT, the
            // static planners on an uncongested machine) pay nothing for it.
            queue: VecDeque::new(),
            history: VecDeque::with_capacity(EXEC_HISTORY_WINDOW),
            history_sum: 0,
            stats: ProcStats::default(),
            run_token: 0,
            inflight_start: SimTime::ZERO,
            inflight_transfer: SimDuration::ZERO,
            inflight_exec: SimDuration::ZERO,
        }
    }

    /// Push one execution into the window and return the refreshed average,
    /// rounded to the **nearest** nanosecond. (The seed truncated, silently
    /// dropping up to `window − 1` sub-ns remainders per query; the rounding
    /// is pinned by `recent_avg_rounds_to_nearest` below.)
    fn push_history(&mut self, exec: SimDuration) -> SimDuration {
        if self.history.len() == EXEC_HISTORY_WINDOW {
            // apt-lint: allow(hot-path-panic, the len == window check one line up guarantees a
            // front element)
            let evicted = self.history.pop_front().expect("window nonempty");
            self.history_sum -= evicted.as_ns();
        }
        self.history.push_back(exec);
        self.history_sum += exec.as_ns();
        let len = self.history.len() as u64;
        SimDuration::from_ns((self.history_sum + len / 2) / len)
    }
}

/// A scheduled simulation event: a kernel completing on a processor, or a
/// kernel arriving in the input stream (streaming mode). Ordering across
/// events is carried entirely by the calendar queue's `(time, push-order)`
/// total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// The kernel running on this processor completes. Carries the start's
    /// run token; stale tokens (the kernel was killed by a fault first) are
    /// ignored.
    Finish(ProcId, u32),
    /// This kernel is submitted to the system (its arrival instant).
    Arrive(NodeId),
    /// The kernel running on this processor fails transiently partway
    /// through execution (fault injection). Token-validated like `Finish`.
    Fail(ProcId, u32),
    /// The processor crashes: its in-flight kernel is killed, its queue
    /// drains back to the ready set, and it leaves the availability mask.
    Crash(ProcId),
    /// The processor returns from repair and rejoins the availability mask.
    Repair(ProcId),
    /// A kernel's retry backoff expires and it re-enters the ready set.
    /// Carries the retry token; stale tokens (the job was cancelled or the
    /// slot recycled meanwhile) are ignored.
    Redispatch(NodeId, u32),
    /// A link-degradation episode begins (transfers started during it are
    /// stretched by the plan's slowdown factor).
    DegradeStart,
    /// The current link-degradation episode ends.
    DegradeEnd,
}

/// The read-only inputs of one simulation, threaded through the core so the
/// closed-world engine (which borrows a caller's graph and cost model) and
/// the open-stream engine (which owns a growing slot arena of both) share
/// every line of the event loop.
#[derive(Clone, Copy)]
pub(crate) struct EngineCtx<'r> {
    pub(crate) dfg: &'r KernelDag,
    pub(crate) config: &'r SystemConfig,
    pub(crate) lookup: &'r LookupTable,
    pub(crate) cost: &'r CostModel,
}

/// Live fault-injection state, allocated only when a non-empty
/// [`FaultPlan`] is armed. `None` (the default, and the `FaultPlan::none()`
/// case) leaves the engine byte-identical to a fault-free build: no extra
/// events, no RNG draws, no bookkeeping.
pub(crate) struct FaultRuntime {
    state: FaultState,
    retry: RetryPolicy,
    totals: FaultTotals,
    /// Crash instant of each currently-down processor.
    down_since: Vec<Option<SimTime>>,
    /// Failed execution attempts per node (reset when a slot is recycled).
    attempts: Vec<u32>,
    /// Monotone per-node retry token validating `Redispatch` events. Never
    /// reset on slot recycling, so a stale redispatch can never resurrect
    /// a recycled slot's new occupant.
    retry_token: Vec<u32>,
    /// Node is waiting out a retry backoff (neither ready nor running).
    pending_retry: Vec<bool>,
    /// A link-degradation episode is currently active.
    degraded: bool,
}

impl FaultRuntime {
    fn grow(&mut self, n: usize) {
        if self.attempts.len() < n {
            self.attempts.resize(n, 0);
            self.retry_token.resize(n, 0);
            self.pending_retry.resize(n, false);
        }
    }
}

/// The mutable simulation state: clock, ready set, per-node bookkeeping,
/// per-processor cores and policy-visible snapshots, and the event queue.
/// All node-indexed vectors are dense over the context graph's ids; the
/// open-stream engine grows and recycles them as arena slots.
pub(crate) struct EngineCore {
    pub(crate) now: SimTime,
    pub(crate) ready: ReadySet,
    pub(crate) ready_time: Vec<SimTime>,
    pub(crate) remaining_preds: Vec<usize>,
    pub(crate) arrived: Vec<bool>,
    pub(crate) locations: Vec<Option<ProcId>>,
    /// Per-node absolute deadline ([`SimTime::MAX`] = none). Closed-world
    /// workloads carry no deadlines; the open engine stamps each slot with
    /// its job's deadline on admission so policies can read it through
    /// [`SimView::deadline`].
    pub(crate) deadlines: Vec<SimTime>,
    pub(crate) records: Vec<Option<TaskRecord>>,
    pub(crate) procs: Vec<ProcCore>,
    /// Policy-visible snapshots, updated in place on every state change.
    pub(crate) views: Vec<ProcView>,
    /// Running bitset of idle processors (bit i ⇔ `views[i].is_idle()`).
    pub(crate) idle_mask: u64,
    /// Running bitset of *up* processors (bit i ⇔ `!views[i].down`). All
    /// ones unless fault injection crashes a processor.
    pub(crate) up_mask: u64,
    /// Fault-injection state; `None` on fault-free runs (the default).
    pub(crate) faults: Option<Box<FaultRuntime>>,
    /// Armed trace sink; `None` (the default) leaves every emission site a
    /// single never-taken branch, so untraced runs are byte-identical to a
    /// build without tracing (pinned by both equivalence suites).
    pub(crate) tracer: Option<Box<dyn TraceSink>>,
    /// Armed phase profiler (wall-clock accounting per loop segment);
    /// `None` (the default) leaves each instrumented segment a single
    /// never-taken branch, mirroring the trace-sink contract. Only
    /// compiled under the `self-profile` feature.
    #[cfg(feature = "self-profile")]
    pub(crate) profiler: Option<Box<apt_telemetry::PhaseProfiler>>,
    /// Nodes whose jobs must be cancelled (retry budget exhausted), drained
    /// by the open engine after each advance. Only used in open mode.
    pub(crate) failed_nodes: Vec<NodeId>,
    /// Nodes that scheduled a retry since the last drain (for per-job
    /// retry-budget accounting). Only recorded in open mode.
    pub(crate) retried_nodes: Vec<NodeId>,
    pub(crate) events: CalendarQueue<Event>,
    pub(crate) finished: usize,
    /// Nodes completed since the last [`EngineCore::take_finished`] drain —
    /// how the open-stream engine learns which jobs may retire. Only
    /// recorded when `track_finished` is set (the closed engine skips the
    /// per-completion push entirely).
    pub(crate) finished_nodes: Vec<NodeId>,
    /// Record completions into `finished_nodes` (open-stream mode).
    pub(crate) track_finished: bool,
    /// Per-directed-link busy-until clocks (`src × nprocs + dst`), allocated
    /// only when the machine's topology enables
    /// [`LinkContention::PerLink`]. Empty ⇔ the seed's serialized-transfer
    /// semantics are in force.
    pub(crate) link_busy: Vec<SimTime>,
}

impl EngineCore {
    /// A core with the machine set up and no nodes: the open-stream starting
    /// point. `open` selects the FCFS admission-sequence ready set (required
    /// once arena slots recycle ids) and per-completion retirement tracking.
    pub(crate) fn for_machine(config: &SystemConfig, open: bool) -> EngineCore {
        let views: Vec<ProcView> = config
            .proc_ids()
            .map(|id| ProcView {
                id,
                kind: config.kind_of(id),
                running: None,
                busy_until: SimTime::ZERO,
                queue_len: 0,
                recent_avg_exec: SimDuration::ZERO,
                down: false,
            })
            .collect();
        EngineCore {
            now: SimTime::ZERO,
            ready: if open {
                ReadySet::new_ordered(0)
            } else {
                ReadySet::new(0)
            },
            ready_time: Vec::new(),
            remaining_preds: Vec::new(),
            arrived: Vec::new(),
            locations: Vec::new(),
            deadlines: Vec::new(),
            records: Vec::new(),
            procs: (0..config.len()).map(|_| ProcCore::new()).collect(),
            idle_mask: if views.is_empty() {
                0
            } else {
                u64::MAX >> (64 - views.len())
            },
            up_mask: if views.is_empty() {
                0
            } else {
                u64::MAX >> (64 - views.len())
            },
            faults: None,
            tracer: None,
            #[cfg(feature = "self-profile")]
            profiler: None,
            failed_nodes: Vec::new(),
            retried_nodes: Vec::new(),
            views,
            events: CalendarQueue::new(),
            finished: 0,
            finished_nodes: Vec::new(),
            track_finished: open,
            link_busy: match config.contention() {
                LinkContention::Off => Vec::new(),
                LinkContention::PerLink => vec![SimTime::ZERO; config.len() * config.len()],
            },
        }
    }

    /// A core loaded with the complete closed-world workload: every node of
    /// the context graph exists up front, submitted at its arrival instant.
    fn for_closed_workload(ctx: EngineCtx<'_>, arrivals: &[SimTime]) -> EngineCore {
        let n = ctx.dfg.len();
        debug_assert_eq!(arrivals.len(), n);
        let mut core = EngineCore::for_machine(ctx.config, false);
        core.ready.grow(n);
        core.ready_time = vec![SimTime::ZERO; n];
        core.remaining_preds = ctx.dfg.node_ids().map(|id| ctx.dfg.in_degree(id)).collect();
        core.arrived = arrivals.iter().map(|&t| t == SimTime::ZERO).collect();
        core.locations = vec![None; n];
        core.deadlines = vec![SimTime::MAX; n];
        core.records = vec![None; n];
        for s in ctx.dfg.sources() {
            if core.arrived[s.index()] {
                core.ready.insert(s);
            }
        }
        for (i, &t) in arrivals.iter().enumerate() {
            if t > SimTime::ZERO {
                core.ready_time[i] = t; // provisional; finalized on readiness
                core.events.push(t, Event::Arrive(NodeId::new(i)));
            }
        }
        core
    }

    /// Emit one trace event if a sink is armed. The `is_some` branch is the
    /// entire untraced cost; callers constructing multi-field events guard
    /// with [`tracing`](EngineCore::tracing) first so argument evaluation
    /// is skipped too.
    #[inline]
    pub(crate) fn trace(&mut self, ev: TraceEvent) {
        if let Some(t) = self.tracer.as_mut() {
            t.record(ev);
        }
    }

    /// True when a trace sink is armed.
    #[inline]
    pub(crate) fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Arm a trace sink: every subsequent engine event is recorded into it.
    pub(crate) fn arm_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer = Some(sink);
    }

    /// The armed sink, for driver-level emission.
    pub(crate) fn tracer_mut(&mut self) -> Option<&mut (dyn TraceSink + 'static)> {
        self.tracer.as_deref_mut()
    }

    /// Disarm and hand back the sink (end of a traced run).
    pub(crate) fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.tracer.take()
    }

    /// Arm a phase profiler: the engine loop charges wall-clock to
    /// [`apt_telemetry::Phase`] segments until the profiler is taken.
    #[cfg(feature = "self-profile")]
    pub(crate) fn arm_profiler(&mut self, p: Box<apt_telemetry::PhaseProfiler>) {
        self.profiler = Some(p);
    }

    /// Disarm and hand back the profiler (end of a profiled run), its
    /// open transition span closed.
    #[cfg(feature = "self-profile")]
    pub(crate) fn take_profiler(&mut self) -> Option<Box<apt_telemetry::PhaseProfiler>> {
        let mut p = self.profiler.take();
        if let Some(p) = p.as_mut() {
            p.close();
        }
        p
    }

    /// Transition the armed profiler into `phase` (the span since the
    /// previous transition is charged to the phase being left, so
    /// instrumented spans are contiguous). Unarmed cost: one branch.
    #[cfg(feature = "self-profile")]
    #[inline]
    pub(crate) fn prof_enter(&mut self, phase: apt_telemetry::Phase) {
        if let Some(p) = self.profiler.as_mut() {
            p.enter(phase);
        }
    }

    /// Mutate one processor's view, keeping the running idle bitset exact.
    #[inline]
    fn update_view(&mut self, proc: ProcId, f: impl FnOnce(&mut ProcView)) {
        let view = &mut self.views[proc.index()];
        let was_idle = view.is_idle();
        f(view);
        match (was_idle, view.is_idle()) {
            (true, false) => self.idle_mask &= !(1 << proc.index()),
            (false, true) => self.idle_mask |= 1 << proc.index(),
            _ => {}
        }
    }

    /// Arm a fault plan: derive its RNG stream and schedule the first
    /// crash/degradation events from the current instant. A
    /// [`FaultPlan::none()`] plan is a no-op, leaving the engine on the
    /// fault-free code path (byte-identical traces).
    pub(crate) fn arm_faults(&mut self, plan: FaultPlan, retry: RetryPolicy) {
        if plan.is_none() {
            return;
        }
        let mut state = FaultState::new(plan);
        let nprocs = self.views.len();
        let mut runtime = Box::new(FaultRuntime {
            // Degenerate retry knobs (`backoff_factor: 0`, `max_attempts: 0`)
            // are clamped to their documented effective values up front.
            retry: retry.normalized(),
            totals: FaultTotals::default(),
            down_since: vec![None; nprocs],
            attempts: Vec::new(),
            retry_token: Vec::new(),
            pending_retry: Vec::new(),
            degraded: false,
            state: FaultState::new(plan),
        });
        runtime.grow(self.records.len());
        // First crash per processor, in ascending id order (deterministic
        // draw order); first degradation episode after that.
        for p in 0..nprocs {
            if let Some(gap) = state.next_crash_gap() {
                self.events
                    .push(self.now + gap, Event::Crash(ProcId::new(p)));
            }
        }
        if let Some(gap) = state.next_degrade_gap() {
            self.events.push(self.now + gap, Event::DegradeStart);
        }
        runtime.state = state;
        self.faults = Some(runtime);
    }

    /// Reset the per-slot fault bookkeeping when the open engine binds a
    /// (new or recycled) arena slot. The retry token is deliberately *not*
    /// reset — see [`FaultRuntime::retry_token`].
    pub(crate) fn fault_reset_slot(&mut self, slot: NodeId, len: usize) {
        if let Some(f) = self.faults.as_mut() {
            f.grow(len);
            f.attempts[slot.index()] = 0;
            f.pending_retry[slot.index()] = false;
        }
    }

    /// Clear a pending retry (job cancellation): the node's queued
    /// `Redispatch` event becomes stale and will be ignored.
    pub(crate) fn fault_cancel_pending(&mut self, slot: NodeId) {
        if let Some(f) = self.faults.as_mut() {
            f.pending_retry[slot.index()] = false;
        }
    }

    /// Count one job shed after exhausting its retry budget.
    pub(crate) fn note_job_failed(&mut self) {
        if let Some(f) = self.faults.as_mut() {
            f.totals.jobs_failed += 1;
        }
    }

    /// Fault totals as of the current instant, including the partial
    /// downtime of processors still under repair. All zeros on fault-free
    /// runs.
    pub(crate) fn fault_totals(&self) -> FaultTotals {
        match &self.faults {
            None => FaultTotals::default(),
            Some(f) => {
                let mut t = f.totals;
                for since in self.views.iter().zip(&f.down_since).filter_map(|(v, s)| {
                    debug_assert_eq!(v.down, s.is_some());
                    *s
                }) {
                    t.down_ns += self.now.saturating_since(since).as_ns();
                }
                t
            }
        }
    }

    /// Kill the kernel in flight on `proc`, if any: invalidate its pending
    /// `Finish`/`Fail` event, clear its record, and rewind the processor's
    /// optimistically pre-credited stats to the occupancy actually elapsed
    /// (transfer first, then execution). The elapsed occupancy is counted
    /// as wasted work. Returns the killed node.
    fn kill_running(&mut self, proc: ProcId) -> Option<NodeId> {
        let node = self.views[proc.index()].running?;
        let core = &mut self.procs[proc.index()];
        core.run_token = core.run_token.wrapping_add(1);
        let elapsed = self.now.saturating_since(core.inflight_start);
        let transfer_done = elapsed.min(core.inflight_transfer);
        let exec_done = elapsed - transfer_done;
        debug_assert!(exec_done <= core.inflight_exec);
        core.stats.busy = core.stats.busy - core.inflight_exec + exec_done;
        core.stats.transfer = core.stats.transfer - core.inflight_transfer + transfer_done;
        core.stats.kernels -= 1;
        if let Some(f) = self.faults.as_mut() {
            f.totals.wasted_ns += elapsed.as_ns();
        }
        self.records[node.index()] = None;
        self.update_view(proc, |v| v.running = None);
        if self.tracing() {
            let at = self.now;
            self.trace(TraceEvent::KernelKilled {
                node: node.index() as u32,
                proc,
                at,
            });
        }
        Some(node)
    }

    /// Handle a (token-valid) transient failure on `proc`: kill the
    /// attempt, then either schedule a retry (through backoff and the
    /// normal ready path) or — when the attempt budget is spent — fail the
    /// run (closed mode) or mark the node for job cancellation (open mode).
    fn fail_on(&mut self, ctx: EngineCtx<'_>, proc: ProcId, token: u32) -> Result<(), BaseError> {
        if self.procs[proc.index()].run_token != token {
            return Ok(()); // stale: the kernel was crashed away first
        }
        let node = self
            .kill_running(proc)
            // apt-lint: allow(hot-path-panic, the run_token matched, so the processor is
            // provably busy with this kernel)
            .expect("token-valid failure on an idle processor");
        let (attempts, retry) = {
            let f = self
                .faults
                .as_mut()
                // apt-lint: allow(hot-path-panic, transient-failure events exist only when the
                // fault runtime is armed)
                .expect("transient failure without faults armed");
            f.totals.kernel_failures += 1;
            f.attempts[node.index()] += 1;
            (f.attempts[node.index()], f.retry)
        };
        if attempts >= retry.max_attempts {
            if self.track_finished {
                self.failed_nodes.push(node);
            } else {
                return Err(BaseError::RetriesExhausted {
                    node: node.index(),
                    attempts,
                });
            }
        } else {
            let (backoff, tok) = {
                // apt-lint: allow(hot-path-panic, faults proven armed a few lines up in this
                // same handler)
                let f = self.faults.as_mut().expect("checked above");
                f.totals.retries += 1;
                let backoff = f.state.backoff(&retry, attempts + 1);
                let tok = if backoff.is_zero() {
                    0
                } else {
                    f.retry_token[node.index()] += 1;
                    f.pending_retry[node.index()] = true;
                    f.retry_token[node.index()]
                };
                (backoff, tok)
            };
            if self.tracing() {
                let at = self.now;
                self.trace(TraceEvent::RetryAttempt {
                    node: node.index() as u32,
                    at,
                    attempt: attempts,
                    backoff,
                });
            }
            if backoff.is_zero() {
                self.make_ready(node);
            } else {
                let at = self.now + backoff;
                self.events.push(at, Event::Redispatch(node, tok));
            }
            if self.track_finished {
                self.retried_nodes.push(node);
            }
        }
        // The processor itself is fine — start its queued work, if any.
        self.start_queued(ctx, proc)
    }

    /// Handle a processor crash: orphan the in-flight kernel and every
    /// queued assignment back into the ready set (the policy re-places them
    /// — APT's alternative-within-threshold is the failover), mask the
    /// processor out of availability, and schedule its repair.
    fn crash(&mut self, proc: ProcId) {
        if let Some(node) = self.kill_running(proc) {
            // A processor death is not the kernel's fault: re-dispatch
            // without charging a retry attempt.
            self.make_ready(node);
            if let Some(f) = self.faults.as_mut() {
                f.totals.orphaned += 1;
            }
        }
        while let Some(a) = self.procs[proc.index()].queue.pop_front() {
            self.update_view(proc, |v| v.queue_len -= 1);
            self.make_ready(a.node);
        }
        self.update_view(proc, |v| v.down = true);
        self.up_mask &= !(1 << proc.index());
        if self.tracing() {
            let at = self.now;
            self.trace(TraceEvent::ProcCrash { proc, at });
        }
        let now = self.now;
        let repair = {
            // apt-lint: allow(hot-path-panic, Crash events are only scheduled by the armed
            // fault runtime)
            let f = self.faults.as_mut().expect("crash without faults armed");
            debug_assert!(f.down_since[proc.index()].is_none(), "crash of a down proc");
            f.totals.crashes += 1;
            f.down_since[proc.index()] = Some(now);
            f.state.repair_time()
        };
        self.events.push(now + repair, Event::Repair(proc));
    }

    /// Handle a repair: the processor rejoins the availability (and idle)
    /// masks, its downtime is accounted, and its next crash is scheduled.
    fn repair(&mut self, proc: ProcId) {
        self.update_view(proc, |v| v.down = false);
        self.up_mask |= 1 << proc.index();
        if self.tracing() {
            let at = self.now;
            self.trace(TraceEvent::ProcRepair { proc, at });
        }
        let now = self.now;
        let gap = {
            // apt-lint: allow(hot-path-panic, Repair events are only scheduled by crash(),
            // which requires armed faults)
            let f = self.faults.as_mut().expect("repair without faults armed");
            f.totals.repairs += 1;
            let since = f.down_since[proc.index()]
                .take()
                // apt-lint: allow(hot-path-panic, crash() recorded down_since before scheduling
                // this Repair)
                .expect("repair of a processor that never crashed");
            f.totals.down_ns += now.saturating_since(since).as_ns();
            f.state
                .next_crash_gap()
                // apt-lint: allow(hot-path-panic, a Repair event implies a crash spec exists to
                // draw the next gap from)
                .expect("repair without a crash spec")
        };
        self.events.push(now + gap, Event::Crash(proc));
    }

    /// A retry backoff expired: if the token is current and the retry is
    /// still pending (the job was not cancelled meanwhile), the node
    /// re-enters the ready set.
    fn redispatch(&mut self, node: NodeId, token: u32) {
        {
            let Some(f) = self.faults.as_mut() else {
                return;
            };
            if f.retry_token[node.index()] != token || !f.pending_retry[node.index()] {
                return; // stale: job cancelled or slot recycled
            }
            f.pending_retry[node.index()] = false;
        }
        self.make_ready(node);
    }

    fn degrade_start(&mut self) {
        if self.tracing() {
            let at = self.now;
            self.trace(TraceEvent::LinkDegrade { at, active: true });
        }
        let now = self.now;
        let duration = {
            // apt-lint: allow(hot-path-panic, DegradeStart events are only scheduled by the
            // armed fault runtime)
            let f = self.faults.as_mut().expect("degrade without faults armed");
            f.degraded = true;
            f.state
                .plan()
                .degrade
                // apt-lint: allow(hot-path-panic, a DegradeStart event implies the degrade spec
                // exists)
                .expect("degrade without a spec")
                .duration
        };
        self.events.push(now + duration, Event::DegradeEnd);
    }

    fn degrade_end(&mut self) {
        if self.tracing() {
            let at = self.now;
            self.trace(TraceEvent::LinkDegrade { at, active: false });
        }
        let now = self.now;
        let gap = {
            // apt-lint: allow(hot-path-panic, DegradeEnd events are only scheduled by
            // degrade_start(), faults armed)
            let f = self.faults.as_mut().expect("degrade without faults armed");
            f.degraded = false;
            f.state
                .next_degrade_gap()
                // apt-lint: allow(hot-path-panic, a DegradeEnd event implies the degrade spec
                // exists)
                .expect("degrade end without a spec")
        };
        self.events.push(now + gap, Event::DegradeStart);
    }

    /// The active link-degradation spec, if an episode is in progress.
    #[inline]
    fn active_degrade(&self) -> Option<LinkDegradeSpec> {
        match &self.faults {
            Some(f) if f.degraded => f.state.plan().degrade,
            _ => None,
        }
    }

    /// Stretch one link transfer by the active degradation episode, if the
    /// directed pair is affected.
    #[inline]
    fn degrade_transfer(
        dur: SimDuration,
        spec: &LinkDegradeSpec,
        src: ProcId,
        dst: ProcId,
    ) -> SimDuration {
        if spec.pair.is_none_or(|p| p == (src, dst)) {
            SimDuration::from_ns(dur.as_ns().saturating_mul(spec.slowdown as u64))
        } else {
            dur
        }
    }

    /// Serialized input-transfer duration under an active link-degradation
    /// episode (the fault-path counterpart of [`EngineCore::transfer_in`]).
    fn degraded_transfer_in(
        &self,
        ctx: EngineCtx<'_>,
        node: NodeId,
        proc: ProcId,
        spec: &LinkDegradeSpec,
    ) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for &pred in ctx.dfg.preds(node) {
            let loc = self.locations[pred.index()]
                // apt-lint: allow(hot-path-panic, DAG edges force every predecessor to finish
                // before a kernel starts)
                .expect("started a kernel whose predecessor never finished");
            if loc == proc {
                continue;
            }
            let dur = ctx.cost.pair_transfer_time(pred, loc, proc);
            total += Self::degrade_transfer(dur, spec, loc, proc);
        }
        total
    }

    /// Withdraw one arena slot from the engine wherever it currently is —
    /// ready set, a processor queue, in flight, or awaiting a retry — used
    /// by open-engine job cancellation after a kernel exhausts its retry
    /// budget. A kernel killed mid-run frees its processor for queued work.
    pub(crate) fn cancel_slot(
        &mut self,
        ctx: EngineCtx<'_>,
        slot: NodeId,
    ) -> Result<(), BaseError> {
        self.ready.remove(slot);
        self.fault_cancel_pending(slot);
        let running_on = (0..self.views.len()).find(|&p| self.views[p].running == Some(slot));
        if let Some(p) = running_on {
            let proc = ProcId::new(p);
            let killed = self.kill_running(proc);
            debug_assert_eq!(killed, Some(slot));
            self.start_queued(ctx, proc)?;
        } else {
            for p in 0..self.procs.len() {
                if let Some(pos) = self.procs[p].queue.iter().position(|a| a.node == slot) {
                    self.procs[p].queue.remove(pos);
                    self.update_view(ProcId::new(p), |v| v.queue_len -= 1);
                    break;
                }
            }
        }
        self.records[slot.index()] = None;
        self.locations[slot.index()] = None;
        Ok(())
    }

    /// Pop and start the queued head on a (still-up) processor that just
    /// went idle outside the normal finish path.
    pub(crate) fn start_queued(
        &mut self,
        ctx: EngineCtx<'_>,
        proc: ProcId,
    ) -> Result<(), BaseError> {
        if let Some(next) = self.procs[proc.index()].queue.pop_front() {
            self.update_view(proc, |v| v.queue_len -= 1);
            self.start_node(ctx, next, proc)?;
        }
        Ok(())
    }

    /// Input-transfer duration for starting `node` on `proc` now. One shared
    /// implementation with `SimView::transfer_in_time`, so the engine's
    /// recorded transfers can never diverge from the costs policies decided
    /// on.
    #[inline]
    fn transfer_in(&self, ctx: EngineCtx<'_>, node: NodeId, proc: ProcId) -> SimDuration {
        debug_assert!(
            ctx.dfg
                .preds(node)
                .iter()
                .all(|p| self.locations[p.index()].is_some()),
            "started a kernel whose predecessor never finished"
        );
        ctx.cost
            .transfer_in_time(ctx.dfg, &self.locations, node, proc)
    }

    /// Contended transfer phase ([`LinkContention::PerLink`]): input
    /// transfers run concurrently across distinct directed links; transfers
    /// on the same link serialize behind its busy-until clock. Returns the
    /// instant every input has landed (execution may start). Predecessor
    /// order is the graph's deterministic edge order, so link claims — and
    /// with them the schedule — are reproducible.
    fn contended_transfer_end(
        &mut self,
        ctx: EngineCtx<'_>,
        node: NodeId,
        proc: ProcId,
        start: SimTime,
        degrade: Option<LinkDegradeSpec>,
    ) -> SimTime {
        let np = self.views.len();
        let mut landed = start;
        for &pred in ctx.dfg.preds(node) {
            let loc = self.locations[pred.index()]
                // apt-lint: allow(hot-path-panic, DAG edges force every predecessor to finish
                // before a kernel starts)
                .expect("started a kernel whose predecessor never finished");
            if loc == proc {
                continue;
            }
            let mut dur = ctx.cost.pair_transfer_time(pred, loc, proc);
            if let Some(spec) = &degrade {
                dur = Self::degrade_transfer(dur, spec, loc, proc);
            }
            if dur.is_zero() {
                continue; // zero-byte moves never occupy a link
            }
            let link = loc.index() * np + proc.index();
            let begin = self.link_busy[link].max(start);
            let end = begin + dur;
            self.link_busy[link] = end;
            landed = landed.max(end);
        }
        landed
    }

    #[inline]
    fn start_node(
        &mut self,
        ctx: EngineCtx<'_>,
        a: Assignment,
        proc: ProcId,
    ) -> Result<(), BaseError> {
        let node = a.node;
        let exec = ctx
            .cost
            .exec_time(node, proc)
            .ok_or_else(|| BaseError::InvalidAssignment {
                reason: format!(
                    "kernel {} cannot run on {} ({})",
                    ctx.dfg.node(node),
                    proc,
                    ctx.config.kind_of(proc)
                ),
            })?;
        let start = self.now;
        let degrade = self.active_degrade();
        let exec_start = if self.link_busy.is_empty() {
            start
                + match &degrade {
                    None => self.transfer_in(ctx, node, proc),
                    Some(spec) => self.degraded_transfer_in(ctx, node, proc, spec),
                }
        } else {
            self.contended_transfer_end(ctx, node, proc, start, degrade)
        };
        let transfer = exec_start.saturating_since(start);
        let finish = exec_start + exec;
        self.records[node.index()] = Some(TaskRecord {
            node,
            kernel: *ctx.dfg.node(node),
            proc,
            ready: self.ready_time[node.index()],
            start,
            exec_start,
            finish,
            alt: a.alt,
        });
        if self.tracing() {
            let node32 = node.index() as u32;
            self.trace(TraceEvent::KernelDispatch {
                node: node32,
                kernel: *ctx.dfg.node(node),
                proc,
                at: start,
                alt: a.alt,
            });
            if !transfer.is_zero() {
                self.trace(TraceEvent::TransferStart {
                    node: node32,
                    proc,
                    at: start,
                    until: exec_start,
                });
            }
            self.trace(TraceEvent::ExecStart {
                node: node32,
                proc,
                at: exec_start,
            });
        }
        let core = &mut self.procs[proc.index()];
        core.stats.busy += exec;
        core.stats.transfer += transfer;
        core.stats.kernels += 1;
        core.run_token = core.run_token.wrapping_add(1);
        core.inflight_start = start;
        core.inflight_transfer = transfer;
        core.inflight_exec = exec;
        let token = core.run_token;
        let avg = core.push_history(exec);
        self.update_view(proc, |v| {
            debug_assert!(v.running.is_none());
            v.running = Some(node);
            v.busy_until = finish;
            v.recent_avg_exec = avg;
        });
        // Transient-failure draw (one coin flip per execution when armed;
        // nothing on fault-free runs): a failing kernel fires `Fail` at the
        // sampled fraction of its execution instead of `Finish`.
        let fail_frac = self
            .faults
            .as_mut()
            .and_then(|f| f.state.transient_failure());
        match fail_frac {
            Some(frac) if !exec.is_zero() => {
                let part = ((exec.as_ns() as f64 * frac) as u64).clamp(1, exec.as_ns());
                let fail_at = exec_start + SimDuration::from_ns(part);
                self.events.push(fail_at, Event::Fail(proc, token));
            }
            _ => self.events.push(finish, Event::Finish(proc, token)),
        }
        Ok(())
    }

    #[inline]
    fn apply(&mut self, ctx: EngineCtx<'_>, a: Assignment) -> Result<(), BaseError> {
        if !self.ready.contains(a.node) {
            return Err(BaseError::InvalidAssignment {
                reason: format!("node {} is not in the ready set", a.node),
            });
        }
        if a.proc.index() >= self.procs.len() {
            return Err(BaseError::InvalidAssignment {
                reason: format!("processor {} does not exist", a.proc),
            });
        }
        if self.up_mask & (1 << a.proc.index()) == 0 {
            return Err(BaseError::ProcUnavailable {
                proc: a.proc.index(),
            });
        }
        // Reject unrunnable targets eagerly (even when queueing).
        if !ctx.cost.runnable(a.node, a.proc) {
            return Err(BaseError::InvalidAssignment {
                reason: format!(
                    "kernel {} cannot run on {} ({})",
                    ctx.dfg.node(a.node),
                    a.proc,
                    ctx.config.kind_of(a.proc)
                ),
            });
        }
        self.ready.remove(a.node);
        if self.views[a.proc.index()].running.is_none() {
            debug_assert!(self.procs[a.proc.index()].queue.is_empty());
            self.start_node(ctx, a, a.proc)?;
        } else {
            self.procs[a.proc.index()].queue.push_back(a);
            self.update_view(a.proc, |v| v.queue_len += 1);
        }
        Ok(())
    }

    #[inline]
    fn finish_on(&mut self, ctx: EngineCtx<'_>, proc: ProcId) -> Result<(), BaseError> {
        let node = self.views[proc.index()]
            .running
            // apt-lint: allow(hot-path-panic, a completion event is queued only when a kernel
            // starts on the processor)
            .expect("completion event for an idle processor");
        self.update_view(proc, |v| v.running = None);
        self.locations[node.index()] = Some(proc);
        self.finished += 1;
        if self.tracing() {
            let at = self.now;
            self.trace(TraceEvent::KernelComplete {
                node: node.index() as u32,
                proc,
                at,
            });
        }
        if self.track_finished {
            self.finished_nodes.push(node);
        }
        // Release successors (only those already submitted to the system).
        for &succ in ctx.dfg.succs(node) {
            let r = &mut self.remaining_preds[succ.index()];
            *r -= 1;
            if *r == 0 && self.arrived[succ.index()] {
                self.make_ready(succ);
            }
        }
        // Start queued work.
        if let Some(next) = self.procs[proc.index()].queue.pop_front() {
            self.update_view(proc, |v| v.queue_len -= 1);
            self.start_node(ctx, next, proc)?;
        }
        Ok(())
    }

    /// A node whose dependencies and arrival are both satisfied enters the
    /// ready set now.
    #[inline]
    fn make_ready(&mut self, node: NodeId) {
        self.ready_time[node.index()] = self.now.max(self.ready_time[node.index()]);
        let inserted = self.ready.insert(node);
        debug_assert!(inserted, "node became ready twice");
        if self.tracing() {
            let at = self.ready_time[node.index()];
            self.trace(TraceEvent::KernelReady {
                node: node.index() as u32,
                at,
            });
        }
    }

    pub(crate) fn arrive(&mut self, node: NodeId) {
        debug_assert!(!self.arrived[node.index()]);
        self.arrived[node.index()] = true;
        if self.remaining_preds[node.index()] == 0 {
            self.make_ready(node);
        }
    }

    #[inline]
    fn handle(&mut self, ctx: EngineCtx<'_>, event: Event) -> Result<(), BaseError> {
        match event {
            Event::Finish(proc, token) => {
                if self.procs[proc.index()].run_token != token {
                    return Ok(()); // stale: the kernel was killed by a fault
                }
                self.finish_on(ctx, proc)
            }
            Event::Arrive(node) => {
                self.arrive(node);
                Ok(())
            }
            Event::Fail(proc, token) => self.fail_on(ctx, proc, token),
            Event::Crash(proc) => {
                self.crash(proc);
                Ok(())
            }
            Event::Repair(proc) => {
                self.repair(proc);
                Ok(())
            }
            Event::Redispatch(node, token) => {
                self.redispatch(node, token);
                Ok(())
            }
            Event::DegradeStart => {
                self.degrade_start();
                Ok(())
            }
            Event::DegradeEnd => {
                self.degrade_end();
                Ok(())
            }
        }
    }

    /// Advance the clock, clamping idle processors' `busy_until` to the new
    /// instant (the "equals the current time when idle" contract of
    /// [`ProcView::busy_until`]).
    #[inline]
    fn advance_to(&mut self, t: SimTime) {
        self.now = t;
        for view in &mut self.views {
            if view.busy_until < t {
                view.busy_until = t;
            }
        }
    }

    /// Run the policy to a fixpoint at the current instant. The view borrows
    /// the incrementally maintained snapshots — nothing is rebuilt here.
    pub(crate) fn fixpoint(
        &mut self,
        ctx: EngineCtx<'_>,
        policy: &mut dyn Policy,
        out: &mut AssignmentBuf,
    ) -> Result<(), BaseError> {
        loop {
            out.clear();
            #[cfg(feature = "self-profile")]
            self.prof_enter(apt_telemetry::Phase::Decide);
            {
                let view = SimView {
                    now: self.now,
                    ready: &self.ready,
                    procs: &self.views,
                    dfg: ctx.dfg,
                    lookup: ctx.lookup,
                    config: ctx.config,
                    cost: ctx.cost,
                    locations: &self.locations,
                    deadlines: &self.deadlines,
                    idle_mask: self.idle_mask,
                    up_mask: self.up_mask,
                };
                policy.decide(&view, out);
            }
            #[cfg(feature = "self-profile")]
            if let Some(p) = self.profiler.as_mut() {
                let alts = out.as_slice().iter().filter(|a| a.alt).count();
                p.note_decide(out.len(), alts);
            }
            if out.is_empty() {
                return Ok(());
            }
            #[cfg(feature = "self-profile")]
            self.prof_enter(apt_telemetry::Phase::Apply);
            for (i, &a) in out.as_slice().iter().enumerate() {
                self.apply(ctx, a)?;
                // Decision provenance: policies that explained an
                // alternative placement get it stamped into the trace at
                // the instant the assignment was applied.
                if self.tracing() {
                    if let Some(meta) = out.meta_for(i) {
                        let at = self.now;
                        self.trace(TraceEvent::Decision(DecisionRecord {
                            at,
                            node: a.node.index() as u32,
                            chosen: a.proc,
                            meta,
                        }));
                    }
                }
            }
        }
    }

    /// Pop the next same-instant event batch, advance the clock to it and
    /// handle every event. Returns the batch instant, or `None` when the
    /// queue is empty (time cannot advance).
    pub(crate) fn advance(
        &mut self,
        ctx: EngineCtx<'_>,
        batch: &mut Vec<Event>,
    ) -> Result<Option<SimTime>, BaseError> {
        #[cfg(feature = "self-profile")]
        self.prof_enter(apt_telemetry::Phase::Calendar);
        let popped = self.events.pop_batch(batch);
        match popped {
            None => Ok(None),
            Some(t) => {
                #[cfg(feature = "self-profile")]
                self.prof_enter(apt_telemetry::Phase::Handle);
                self.advance_to(t);
                for &event in batch.iter() {
                    self.handle(ctx, event)?;
                }
                Ok(Some(t))
            }
        }
    }

    /// Drain the nodes completed since the previous drain.
    pub(crate) fn take_finished(&mut self, out: &mut Vec<NodeId>) {
        out.clear();
        out.append(&mut self.finished_nodes);
    }

    /// Cumulative per-processor aggregates (indexed by [`ProcId`]).
    pub(crate) fn proc_stats(&self) -> Vec<ProcStats> {
        self.procs.iter().map(|p| p.stats).collect()
    }
}

struct Engine<'a> {
    ctx: EngineCtx<'a>,
    core: EngineCore,
}

impl<'a> Engine<'a> {
    fn new(ctx: EngineCtx<'a>, arrivals: &[SimTime]) -> Self {
        Engine {
            ctx,
            core: EngineCore::for_closed_workload(ctx, arrivals),
        }
    }

    fn run(&mut self, policy: &mut dyn Policy) -> Result<(), BaseError> {
        // The two per-run arenas of the decision loop: the assignment buffer
        // every `Policy::decide` writes into, and the same-instant event
        // batch. Both are reused across every edge, so once their capacity
        // settles the loop allocates nothing.
        let mut out = AssignmentBuf::with_capacity(self.core.views.len().max(4));
        let mut batch: Vec<Event> = Vec::with_capacity(self.core.views.len() + 2);
        loop {
            // Policy fixpoint at the current instant, then advance to the
            // next event instant; the calendar queue hands over everything
            // that fires there in one batch, already in schedule order.
            self.core.fixpoint(self.ctx, policy, &mut out)?;
            if self.core.finished == self.ctx.dfg.len() {
                // All work done. With faults armed the calendar still holds
                // the perpetual crash/repair cycle, so "queue empty" would
                // never come — the completion count is the stop condition.
                break;
            }
            if self.core.advance(self.ctx, &mut batch)?.is_none() {
                break;
            }
        }
        if self.core.finished != self.ctx.dfg.len() {
            return Err(BaseError::Starvation {
                unscheduled: self.ctx.dfg.len() - self.core.finished,
            });
        }
        Ok(())
    }

    fn into_trace(self) -> Trace {
        let mut records: Vec<TaskRecord> = self
            .core
            .records
            .into_iter()
            // apt-lint: allow(hot-path-panic, run() returns an error before into_trace() if any
            // record is missing)
            .map(|r| r.expect("run() verified completion"))
            .collect();
        records.sort_unstable_by_key(|r| (r.start, r.node));
        Trace {
            records,
            proc_stats: self.core.procs.into_iter().map(|p| p.stats).collect(),
        }
    }
}

/// Run one policy over one dataflow graph on one system.
///
/// Validates the inputs, calls [`Policy::prepare`], executes the event loop,
/// and returns the full schedule trace. Deterministic: identical inputs give
/// identical traces.
///
/// # Example
///
/// ```
/// use apt_hetsim::{
///     simulate, Assignment, AssignmentBuf, Policy, PolicyKind, SimView, SystemConfig,
/// };
/// use apt_dfg::generator::{generate, DfgType, StreamConfig};
/// use apt_dfg::LookupTable;
///
/// /// Place each ready kernel on the first idle processor able to run it.
/// struct FirstFit;
///
/// impl Policy for FirstFit {
///     fn name(&self) -> String { "FirstFit".into() }
///     fn kind(&self) -> PolicyKind { PolicyKind::Dynamic }
///     /// `out` arrives cleared; push any number of assignments into it.
///     /// Leaving it empty tells the engine to wait for the next event.
///     fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
///         for node in view.ready.iter() {
///             for p in view.idle_procs() {
///                 if view.exec_time(node, p.id).is_some() {
///                     out.push(Assignment::new(node, p.id));
///                     return;
///                 }
///             }
///         }
///     }
/// }
///
/// let lookup = LookupTable::paper();
/// let dfg = generate(DfgType::Type1, &StreamConfig::new(8, 42), lookup);
/// let result = simulate(&dfg, &SystemConfig::paper_4gbps(), lookup, &mut FirstFit).unwrap();
/// assert_eq!(result.trace.records.len(), 8);
/// result.trace.validate(&dfg).unwrap();
/// ```
pub fn simulate(
    dfg: &KernelDag,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
) -> Result<SimResult, BaseError> {
    let arrivals = vec![SimTime::ZERO; dfg.len()];
    simulate_stream(dfg, config, lookup, policy, &arrivals)
}

/// Run one policy over a *streamed* workload: each kernel is submitted to
/// the system at its arrival instant (`arrivals[node]`), modelling the
/// paper's "incoming stream of applications" (§3.2) and Algorithm 1's
/// "collect DFGs of all incoming jobs". A kernel becomes ready at
/// `max(arrival, all predecessors finished)`; λ delay is measured from that
/// instant, so queueing behind late arrivals is not charged to the policy.
///
/// `simulate` is the special case with all arrivals at `t = 0`.
pub fn simulate_stream(
    dfg: &KernelDag,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
    arrivals: &[SimTime],
) -> Result<SimResult, BaseError> {
    config.validate()?;
    dfg.validate()?;
    if arrivals.len() != dfg.len() {
        return Err(BaseError::InvalidAssignment {
            reason: format!(
                "arrival vector has {} entries for {} kernels",
                arrivals.len(),
                dfg.len()
            ),
        });
    }
    // Precompute the whole cost model once; every decision edge reads it.
    let cost = CostModel::new(dfg, lookup, config);
    policy.prepare(PrepareCtx {
        dfg,
        lookup,
        config,
        cost: &cost,
    })?;
    let mut engine = Engine::new(
        EngineCtx {
            dfg,
            config,
            lookup,
            cost: &cost,
        },
        arrivals,
    );
    engine.run(policy)?;
    let trace = engine.into_trace();
    debug_assert!(trace.validate(dfg).is_ok());
    Ok(SimResult {
        policy: policy.name(),
        trace,
    })
}

/// [`simulate_stream`] with a [`FaultPlan`] armed: transient kernel
/// failures, processor crash/repair cycles, and link-degradation episodes
/// are injected from the plan's own seeded RNG stream, and failed kernels
/// are retried under `retry`. Returns the fault-side counters next to the
/// usual result.
///
/// With `FaultPlan::none()` this is byte-identical to [`simulate_stream`]:
/// no fault events are scheduled, no extra random draws happen, and the
/// returned [`FaultTotals`] is all zeros.
///
/// In this closed (whole-DAG) mode a kernel that exhausts its retry budget
/// aborts the run with [`BaseError::RetriesExhausted`] — there is no job
/// boundary to shed. Use the open engine / stream driver for
/// shed-and-continue semantics.
pub fn simulate_stream_faulty(
    dfg: &KernelDag,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
    arrivals: &[SimTime],
    plan: FaultPlan,
    retry: RetryPolicy,
) -> Result<(SimResult, FaultTotals), BaseError> {
    config.validate()?;
    dfg.validate()?;
    if arrivals.len() != dfg.len() {
        return Err(BaseError::InvalidAssignment {
            reason: format!(
                "arrival vector has {} entries for {} kernels",
                arrivals.len(),
                dfg.len()
            ),
        });
    }
    let cost = CostModel::new(dfg, lookup, config);
    policy.prepare(PrepareCtx {
        dfg,
        lookup,
        config,
        cost: &cost,
    })?;
    let mut engine = Engine::new(
        EngineCtx {
            dfg,
            config,
            lookup,
            cost: &cost,
        },
        arrivals,
    );
    engine.core.arm_faults(plan, retry);
    engine.run(policy)?;
    let totals = engine.core.fault_totals();
    let trace = engine.into_trace();
    debug_assert!(trace.validate(dfg).is_ok());
    Ok((
        SimResult {
            policy: policy.name(),
            trace,
        },
        totals,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use apt_dfg::generator::{build_type1, generate_kernels, StreamConfig};
    use apt_dfg::{Kernel, KernelKind};

    /// Assign each ready kernel to its execution-time-best processor when
    /// that processor is idle; otherwise wait (a minimal MET-like policy for
    /// engine tests).
    struct GreedyBest;

    impl Policy for GreedyBest {
        fn name(&self) -> String {
            "GreedyBest".into()
        }
        fn kind(&self) -> PolicyKind {
            PolicyKind::Dynamic
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
            let mut taken: u64 = !view.idle_mask;
            for node in view.ready.iter() {
                if let Some((proc, _)) = view.best_proc(node) {
                    if taken & (1 << proc.index()) == 0 {
                        taken |= 1 << proc.index();
                        out.push(Assignment::new(node, proc));
                    }
                }
            }
        }
    }

    /// Queue everything onto processor 0 immediately (exercises FIFO queues).
    struct AllOnZero;

    impl Policy for AllOnZero {
        fn name(&self) -> String {
            "AllOnZero".into()
        }
        fn kind(&self) -> PolicyKind {
            PolicyKind::Dynamic
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
            for n in view.ready.iter() {
                out.push(Assignment::new(n, ProcId::new(0)));
            }
        }
    }

    /// Never assigns anything (starvation probe).
    struct Lazy;

    impl Policy for Lazy {
        fn name(&self) -> String {
            "Lazy".into()
        }
        fn kind(&self) -> PolicyKind {
            PolicyKind::Dynamic
        }
        fn decide(&mut self, _view: &SimView<'_>, _out: &mut AssignmentBuf) {}
    }

    fn nw() -> Kernel {
        Kernel::canonical(KernelKind::NeedlemanWunsch)
    }
    fn bfs() -> Kernel {
        Kernel::canonical(KernelKind::Bfs)
    }
    fn cd() -> Kernel {
        Kernel::new(KernelKind::Cholesky, 250_000)
    }

    #[test]
    fn empty_graph_finishes_instantly() {
        let dfg = build_type1(&[]);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_4gbps(),
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
        )
        .unwrap();
        assert_eq!(res.makespan(), SimDuration::ZERO);
        assert!(res.trace.records.is_empty());
    }

    #[test]
    fn single_kernel_runs_on_best_proc() {
        let dfg = build_type1(&[bfs()]);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
        )
        .unwrap();
        assert_eq!(res.makespan(), SimDuration::from_ms(106)); // FPGA
        let r = &res.trace.records[0];
        assert_eq!(r.proc, ProcId::new(2));
        assert_eq!(r.lambda(), SimDuration::ZERO);
    }

    #[test]
    fn type1_respects_the_fan_in_dependency() {
        // nw, bfs independent; cd depends on both (transfers disabled).
        let dfg = build_type1(&[nw(), bfs(), cd()]);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
        )
        .unwrap();
        res.trace.validate(&dfg).unwrap();
        // Level 1 finishes at max(112 on CPU, 106 on FPGA) = 112; cd then
        // runs 0.093 on the FPGA.
        assert_eq!(res.makespan(), SimDuration::from_us(112_093));
        let cd_rec = res.trace.record(NodeId::new(2)).unwrap();
        assert_eq!(cd_rec.ready, SimTime::from_ms(112));
        assert_eq!(cd_rec.lambda(), SimDuration::ZERO);
    }

    #[test]
    fn transfers_occupy_the_consumer() {
        // One producer (bfs on FPGA) then a dependent cd; cd's input must
        // cross the link if it runs elsewhere, but GreedyBest runs cd on the
        // FPGA too, so the transfer is zero.
        let dfg = build_type1(&[bfs(), cd()]);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_4gbps(),
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
        )
        .unwrap();
        let r = res.trace.record(NodeId::new(1)).unwrap();
        assert_eq!(r.proc, ProcId::new(2));
        assert_eq!(r.transfer_time(), SimDuration::ZERO);
        assert_eq!(res.makespan(), SimDuration::from_us(106_093));
    }

    #[test]
    fn queued_work_runs_fifo_and_counts_lambda() {
        let dfg = build_type1(&[bfs(), bfs(), bfs()]);
        // All three queue on processor 0 (CPU, 332 ms each); the third is the
        // fan-in sink and only becomes ready at t = 664.
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            apt_dfg::LookupTable::paper(),
            &mut AllOnZero,
        )
        .unwrap();
        res.trace.validate(&dfg).unwrap();
        assert_eq!(res.makespan(), SimDuration::from_ms(996));
        let r1 = res.trace.record(NodeId::new(1)).unwrap();
        // Node 1 was ready at 0 but started at 332 → λ = 332 ms.
        assert_eq!(r1.lambda(), SimDuration::from_ms(332));
        let r2 = res.trace.record(NodeId::new(2)).unwrap();
        assert_eq!(r2.ready, SimTime::from_ms(664));
        assert_eq!(r2.lambda(), SimDuration::ZERO);
        assert_eq!(res.trace.lambda_total(), SimDuration::from_ms(332));
        // All work accounted to processor 0.
        assert_eq!(res.trace.proc_stats[0].kernels, 3);
        assert_eq!(res.trace.proc_stats[0].busy, SimDuration::from_ms(996));
        assert_eq!(res.trace.proc_stats[1].kernels, 0);
    }

    #[test]
    fn starvation_is_reported() {
        let dfg = build_type1(&[bfs()]);
        let err = simulate(
            &dfg,
            &SystemConfig::paper_4gbps(),
            apt_dfg::LookupTable::paper(),
            &mut Lazy,
        )
        .unwrap_err();
        assert_eq!(err, BaseError::Starvation { unscheduled: 1 });
    }

    #[test]
    fn invalid_assignment_is_rejected() {
        struct BadNode;
        impl Policy for BadNode {
            fn name(&self) -> String {
                "BadNode".into()
            }
            fn kind(&self) -> PolicyKind {
                PolicyKind::Dynamic
            }
            fn decide(&mut self, _v: &SimView<'_>, out: &mut AssignmentBuf) {
                out.push(Assignment::new(NodeId::new(99), ProcId::new(0)));
            }
        }
        let dfg = build_type1(&[bfs()]);
        let err = simulate(
            &dfg,
            &SystemConfig::paper_4gbps(),
            apt_dfg::LookupTable::paper(),
            &mut BadNode,
        )
        .unwrap_err();
        assert!(matches!(err, BaseError::InvalidAssignment { .. }));
    }

    #[test]
    fn assignment_to_unrunnable_category_is_rejected() {
        struct ToAsic;
        impl Policy for ToAsic {
            fn name(&self) -> String {
                "ToAsic".into()
            }
            fn kind(&self) -> PolicyKind {
                PolicyKind::Dynamic
            }
            fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
                for n in view.ready.iter() {
                    out.push(Assignment::new(n, ProcId::new(0)));
                }
            }
        }
        let config = SystemConfig::empty(crate::LinkRate::gbps(4))
            .with_proc(apt_base::ProcKind::Asic)
            .with_proc(apt_base::ProcKind::Cpu);
        let dfg = build_type1(&[bfs()]);
        let err = simulate(&dfg, &config, apt_dfg::LookupTable::paper(), &mut ToAsic).unwrap_err();
        assert!(matches!(err, BaseError::InvalidAssignment { .. }));
    }

    #[test]
    fn streaming_arrivals_delay_submission() {
        // Two independent bfs (plus fan-in cd sink). The second bfs arrives
        // at t = 50 ms: even though the GPU-best policy below would start it
        // at 0, it cannot run before its arrival.
        struct Greedy;
        impl Policy for Greedy {
            fn name(&self) -> String {
                "Greedy".into()
            }
            fn kind(&self) -> PolicyKind {
                PolicyKind::Dynamic
            }
            fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
                for node in view.ready.iter() {
                    for p in view.idle_procs() {
                        if view.exec_time(node, p.id).is_some() {
                            out.push(Assignment::new(node, p.id));
                            return;
                        }
                    }
                }
            }
        }
        let dfg = build_type1(&[bfs(), bfs(), cd()]);
        let arrivals = vec![
            SimTime::ZERO,
            SimTime::from_ms(50),
            SimTime::ZERO, // sink arrives immediately but waits on preds
        ];
        let res = simulate_stream(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            apt_dfg::LookupTable::paper(),
            &mut Greedy,
            &arrivals,
        )
        .unwrap();
        res.trace.validate(&dfg).unwrap();
        let r1 = res.trace.record(NodeId::new(1)).unwrap();
        assert_eq!(r1.ready, SimTime::from_ms(50));
        assert!(r1.start >= SimTime::from_ms(50));
        // λ is measured from arrival-adjusted readiness, so the forced wait
        // before 50 ms is not charged.
        assert_eq!(r1.lambda(), SimDuration::ZERO);
    }

    #[test]
    fn zero_arrivals_match_plain_simulate() {
        let kernels = generate_kernels(&StreamConfig::new(30, 4), apt_dfg::LookupTable::paper());
        let dfg = build_type1(&kernels);
        let cfg = SystemConfig::paper_4gbps();
        let a = simulate(&dfg, &cfg, apt_dfg::LookupTable::paper(), &mut GreedyBest).unwrap();
        let arrivals = vec![SimTime::ZERO; dfg.len()];
        let b = simulate_stream(
            &dfg,
            &cfg,
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
            &arrivals,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn arrival_vector_length_is_checked() {
        let dfg = build_type1(&[bfs()]);
        let err = simulate_stream(
            &dfg,
            &SystemConfig::paper_4gbps(),
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, BaseError::InvalidAssignment { .. }));
    }

    #[test]
    fn simulation_is_deterministic() {
        let kernels = generate_kernels(&StreamConfig::new(60, 77), apt_dfg::LookupTable::paper());
        let dfg = build_type1(&kernels);
        let cfg = SystemConfig::paper_4gbps();
        let a = simulate(&dfg, &cfg, apt_dfg::LookupTable::paper(), &mut GreedyBest).unwrap();
        let b = simulate(&dfg, &cfg, apt_dfg::LookupTable::paper(), &mut GreedyBest).unwrap();
        assert_eq!(a, b);
        a.trace.validate(&dfg).unwrap();
    }

    #[test]
    fn makespan_bounded_by_critical_path_and_serial_time() {
        let kernels = generate_kernels(&StreamConfig::new(40, 5), apt_dfg::LookupTable::paper());
        let dfg = build_type1(&kernels);
        let lookup = apt_dfg::LookupTable::paper();
        let cfg = SystemConfig::paper_no_transfers();
        let res = simulate(&dfg, &cfg, lookup, &mut GreedyBest).unwrap();
        // Lower bound: critical path using each kernel's *minimum* time.
        let lower = dfg
            .critical_path(|n| lookup.best_category(dfg.node(n)).unwrap().1.as_ns())
            .unwrap();
        // Upper bound: serial execution of every kernel at its *maximum* time.
        let upper: u64 = dfg
            .iter()
            .map(|(_, k)| lookup.row(k).unwrap().times.iter().max().unwrap().as_ns())
            .sum();
        let got = res.makespan().as_ns();
        assert!(got >= lower, "makespan {got} below critical path {lower}");
        assert!(got <= upper, "makespan {got} above serial bound {upper}");
    }

    #[test]
    fn recent_avg_rounds_to_nearest() {
        // Pin the ProcCore::push_history rounding: the windowed τ_k average
        // rounds to the nearest nanosecond instead of truncating.
        let mut core = ProcCore::new();
        // {1, 2} ns → average 1.5 → rounds to 2 (the seed truncated to 1).
        assert_eq!(
            core.push_history(SimDuration::from_ns(1)),
            SimDuration::from_ns(1)
        );
        assert_eq!(
            core.push_history(SimDuration::from_ns(2)),
            SimDuration::from_ns(2)
        );
        // {1, 2, 3} ns → exactly 2.
        assert_eq!(
            core.push_history(SimDuration::from_ns(3)),
            SimDuration::from_ns(2)
        );
        // {1, 2, 3, 5} → 2.75 → 3.
        assert_eq!(
            core.push_history(SimDuration::from_ns(5)),
            SimDuration::from_ns(3)
        );
        // Window eviction keeps the running sum exact.
        let mut core = ProcCore::new();
        for _ in 0..EXEC_HISTORY_WINDOW {
            core.push_history(SimDuration::from_ns(10));
        }
        // Evicts one 10, window = {10×9, 21} → sum 111 / 10 = 11.1 → 11.
        assert_eq!(
            core.push_history(SimDuration::from_ns(21)),
            SimDuration::from_ns(11)
        );
        assert_eq!(core.history.len(), EXEC_HISTORY_WINDOW);
        assert_eq!(core.history_sum, 111);
    }

    /// Pin one node per processor (node i → map[i]), emitting every ready
    /// node immediately (queueing if busy).
    struct Pin(Vec<usize>);
    impl Policy for Pin {
        fn name(&self) -> String {
            "Pin".into()
        }
        fn kind(&self) -> PolicyKind {
            PolicyKind::Dynamic
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
            for n in view.ready.iter() {
                out.push(Assignment::new(n, ProcId::new(self.0[n.index()])));
            }
        }
    }

    #[test]
    fn per_link_contention_parallelizes_distinct_links() {
        use crate::topology::{LinkContention, Topology};
        // nw (p0) and bfs (p2) feed cd, forced onto p1: its two inputs
        // arrive over distinct directed links (p0→p1, p2→p1).
        let dfg = build_type1(&[nw(), bfs(), cd()]);
        let lookup = apt_dfg::LookupTable::paper();
        let serial = SystemConfig::paper_4gbps();
        let contended = SystemConfig::paper_4gbps().with_topology(
            Topology::uniform(3, crate::LinkRate::PCIE2_X8)
                .with_contention(LinkContention::PerLink),
        );
        let run = |cfg: &SystemConfig| {
            simulate(&dfg, cfg, lookup, &mut Pin(vec![0, 2, 1]))
                .unwrap()
                .trace
        };
        let a = run(&serial);
        let b = run(&contended);
        let nw_ns = 16_777_216u64 * 4 / 4; // 64 MB at 4 B/ns
        let bfs_ns = 2_034_736u64 * 4 / 4;
        let ra = a.record(NodeId::new(2)).unwrap();
        let rb = b.record(NodeId::new(2)).unwrap();
        // Serialized: the consumer pulls both inputs back to back.
        assert_eq!(ra.transfer_time(), SimDuration::from_ns(nw_ns + bfs_ns));
        // Per-link: both links run concurrently; the slower one gates.
        assert_eq!(rb.transfer_time(), SimDuration::from_ns(nw_ns.max(bfs_ns)));
        assert_eq!(ra.start, rb.start, "contention changes transfers only");
        assert!(rb.finish < ra.finish);
    }

    #[test]
    fn per_link_contention_serializes_same_link_transfers() {
        use crate::topology::{LinkContention, Topology};
        // Both of cd's inputs live on p0: they share the p0→p1 link, so
        // per-link contention must reproduce the serialized schedule
        // byte for byte.
        let dfg = build_type1(&[nw(), bfs(), cd()]);
        let lookup = apt_dfg::LookupTable::paper();
        let serial = SystemConfig::paper_4gbps();
        let contended = SystemConfig::paper_4gbps().with_topology(
            Topology::uniform(3, crate::LinkRate::PCIE2_X8)
                .with_contention(LinkContention::PerLink),
        );
        let run = |cfg: &SystemConfig| {
            simulate(&dfg, cfg, lookup, &mut Pin(vec![0, 0, 1]))
                .unwrap()
                .trace
        };
        assert_eq!(run(&serial), run(&contended));
    }

    #[test]
    fn idle_count_tracks_every_transition() {
        // Drive a run and assert the engine's running idle count stays equal
        // to a fresh scan at every decision edge.
        struct Auditor;
        impl Policy for Auditor {
            fn name(&self) -> String {
                "Auditor".into()
            }
            fn kind(&self) -> PolicyKind {
                PolicyKind::Dynamic
            }
            fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
                let scanned = view.procs.iter().filter(|p| p.is_idle()).count();
                assert_eq!(view.idle_count(), scanned, "idle count drifted");
                let scanned_mask = view
                    .procs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.is_idle())
                    .fold(0u64, |m, (i, _)| m | 1 << i);
                assert_eq!(view.idle_mask, scanned_mask, "idle mask drifted");
                assert_eq!(view.any_idle(), scanned > 0);
                // Queue aggressively (AG-style) to exercise queue transitions.
                for n in view.ready.iter() {
                    out.push(Assignment::new(n, ProcId::new(n.index() % 3)));
                }
            }
        }
        let kernels = generate_kernels(&StreamConfig::new(25, 9), apt_dfg::LookupTable::paper());
        let dfg = build_type1(&kernels);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_4gbps(),
            apt_dfg::LookupTable::paper(),
            &mut Auditor,
        );
        // Some kernels may be unrunnable on their round-robin target; only
        // fully runnable streams complete, but the audit above ran either way.
        if let Ok(res) = res {
            res.trace.validate(&dfg).unwrap();
        }
    }

    #[test]
    fn none_plan_is_byte_identical_and_counts_nothing() {
        let kernels = generate_kernels(&StreamConfig::new(40, 13), apt_dfg::LookupTable::paper());
        let dfg = build_type1(&kernels);
        let cfg = SystemConfig::paper_4gbps();
        let arrivals = vec![SimTime::ZERO; dfg.len()];
        let plain = simulate_stream(
            &dfg,
            &cfg,
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
            &arrivals,
        )
        .unwrap();
        let (faulty, totals) = simulate_stream_faulty(
            &dfg,
            &cfg,
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
            &arrivals,
            FaultPlan::none(),
            RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(plain, faulty, "FaultPlan::none() perturbed the schedule");
        assert_eq!(totals, FaultTotals::default());
    }

    #[test]
    fn transient_failures_retry_and_still_complete() {
        let kernels = generate_kernels(&StreamConfig::new(30, 21), apt_dfg::LookupTable::paper());
        let dfg = build_type1(&kernels);
        let cfg = SystemConfig::paper_4gbps();
        let lookup = apt_dfg::LookupTable::paper();
        let arrivals = vec![SimTime::ZERO; dfg.len()];
        let clean = simulate_stream(&dfg, &cfg, lookup, &mut GreedyBest, &arrivals).unwrap();
        let plan = FaultPlan::seeded(5).with_transient(0.3);
        let retry = RetryPolicy {
            max_attempts: 20,
            ..RetryPolicy::default()
        };
        let (res, totals) =
            simulate_stream_faulty(&dfg, &cfg, lookup, &mut GreedyBest, &arrivals, plan, retry)
                .unwrap();
        res.trace.validate(&dfg).unwrap();
        assert_eq!(res.trace.records.len(), dfg.len(), "every kernel finished");
        assert!(
            totals.kernel_failures > 0,
            "p=0.3 over 30 kernels was silent"
        );
        assert_eq!(totals.retries, totals.kernel_failures);
        assert!(totals.wasted_ns > 0, "failed attempts must waste work");
        assert_eq!(totals.crashes, 0);
        assert!(
            res.trace.makespan() > clean.trace.makespan(),
            "re-execution must cost wall-clock time"
        );
    }

    #[test]
    fn retries_exhausted_aborts_the_closed_run() {
        let dfg = build_type1(&[bfs()]);
        let plan = FaultPlan::seeded(1).with_transient(1.0);
        let err = simulate_stream_faulty(
            &dfg,
            &SystemConfig::paper_4gbps(),
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
            &[SimTime::ZERO],
            plan,
            RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
        )
        .unwrap_err();
        match err {
            BaseError::RetriesExhausted { node, attempts } => {
                assert_eq!(node, 0);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn crashes_orphan_and_redispatch_without_losing_kernels() {
        let kernels = generate_kernels(&StreamConfig::new(40, 8), apt_dfg::LookupTable::paper());
        let dfg = build_type1(&kernels);
        let cfg = SystemConfig::paper_4gbps();
        let lookup = apt_dfg::LookupTable::paper();
        let arrivals = vec![SimTime::ZERO; dfg.len()];
        // MTTF well inside the fault-free makespan so crashes actually land
        // mid-run; quick repairs keep capacity recoverable.
        let plan =
            FaultPlan::seeded(17).with_crashes(SimDuration::from_ms(400), SimDuration::from_ms(50));
        let (res, totals) = simulate_stream_faulty(
            &dfg,
            &cfg,
            lookup,
            &mut GreedyBest,
            &arrivals,
            plan,
            RetryPolicy::default(),
        )
        .unwrap();
        res.trace.validate(&dfg).unwrap();
        assert_eq!(res.trace.records.len(), dfg.len(), "a kernel was lost");
        assert!(totals.crashes > 0, "MTTF 400ms never crashed this run");
        assert!(totals.down_ns > 0);
        assert!(
            totals.repairs >= totals.crashes.saturating_sub(3),
            "repairs must chase crashes (≤ nprocs may be pending at the end)"
        );
        // Crash orphans are re-dispatched without charging retry attempts,
        // so a default budget of 3 attempts never aborts the run.
        assert_eq!(totals.kernel_failures, 0);
    }

    #[test]
    fn link_degradation_stretches_cross_proc_transfers() {
        // nw on p0 feeds cd pinned to p1: 64 MB crosses the link. A
        // permanently-degraded fabric (episode far longer than the run)
        // must stretch exactly that transfer.
        let dfg = build_type1(&[nw(), cd()]);
        let lookup = apt_dfg::LookupTable::paper();
        let cfg = SystemConfig::paper_4gbps();
        let clean = simulate(&dfg, &cfg, lookup, &mut Pin(vec![0, 1])).unwrap();
        let plan = FaultPlan::seeded(2).with_link_degrade(LinkDegradeSpec {
            pair: None,
            slowdown: 4,
            mtbf: SimDuration::from_ns(1),
            duration: SimDuration::from_ms(3_600_000),
        });
        let (res, totals) = simulate_stream_faulty(
            &dfg,
            &cfg,
            lookup,
            &mut Pin(vec![0, 1]),
            &vec![SimTime::ZERO; dfg.len()],
            plan,
            RetryPolicy::default(),
        )
        .unwrap();
        res.trace.validate(&dfg).unwrap();
        let rc = clean.trace.record(NodeId::new(1)).unwrap();
        let rf = res.trace.record(NodeId::new(1)).unwrap();
        assert_eq!(
            rf.transfer_time(),
            SimDuration::from_ns(rc.transfer_time().as_ns() * 4),
            "slowdown 4 must scale the degraded transfer"
        );
        assert_eq!(totals.crashes, 0);
        assert_eq!(totals.kernel_failures, 0);
    }

    #[test]
    fn faulty_runs_replay_identically_under_one_seed() {
        let kernels = generate_kernels(&StreamConfig::new(35, 31), apt_dfg::LookupTable::paper());
        let dfg = build_type1(&kernels);
        let cfg = SystemConfig::paper_4gbps();
        let lookup = apt_dfg::LookupTable::paper();
        let arrivals = vec![SimTime::ZERO; dfg.len()];
        let plan = FaultPlan::seeded(9)
            .with_transient(0.2)
            .with_crashes(SimDuration::from_ms(600), SimDuration::from_ms(40));
        let retry = RetryPolicy {
            max_attempts: 25,
            ..RetryPolicy::default()
        };
        let run = || {
            simulate_stream_faulty(&dfg, &cfg, lookup, &mut GreedyBest, &arrivals, plan, retry)
                .unwrap()
        };
        let (ra, ta) = run();
        let (rb, tb) = run();
        assert_eq!(ra, rb, "same fault seed must replay byte-identically");
        assert_eq!(ta, tb);
        // A different fault seed changes the outcome (same workload).
        let other = FaultPlan { seed: 10, ..plan };
        let (rc, _) =
            simulate_stream_faulty(&dfg, &cfg, lookup, &mut GreedyBest, &arrivals, other, retry)
                .unwrap();
        assert_ne!(ra, rc, "distinct fault seeds must diverge");
    }
}
