//! `trace-summary`: the §2.5.1 λ-delay decomposition over a recorded
//! event stream.
//!
//! The paper defines λ as the delay a kernel accumulates between
//! submission and execution. From the event stream each completed kernel
//! instance decomposes into:
//!
//! * **dependency-wait** — job admission → all predecessors done
//!   (`ready - bound`): time spent waiting on the DFG, not the scheduler;
//! * **scheduler-wait** — ready → dispatch (`start - ready`): the λ the
//!   closed-trace [`lambda`](https://docs.rs) column reports — the policy
//!   withholding the kernel (MET/APT waiting on a busy best processor);
//! * **processor-wait** — dispatch → execution start: input transfer and
//!   interconnect contention before the kernel actually runs.
//!
//! [`render_summary`] ranks instances by total wait and prints the top-N
//! table the `--trace` CLI path appends to its report.

use crate::TraceEvent;
use apt_base::{ProcId, SimDuration, SimTime};
use apt_dfg::Kernel;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One completed kernel instance's reconstructed wait decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelWait {
    /// Engine node slot (recycled across jobs; `job` disambiguates).
    pub node: u32,
    /// Owning job, when the stream recorded the binding.
    pub job: Option<u64>,
    /// Kernel identity.
    pub kernel: Kernel,
    /// Processor that ran it.
    pub proc: ProcId,
    /// Whether it ran on an APT alternative processor.
    pub alt: bool,
    /// Job admission → ready (waiting on predecessors).
    pub dependency_wait: SimDuration,
    /// Ready → dispatch (the scheduler's λ).
    pub scheduler_wait: SimDuration,
    /// Dispatch → execution start (transfer/contention).
    pub processor_wait: SimDuration,
    /// Execution start → completion.
    pub exec: SimDuration,
}

impl KernelWait {
    /// Everything before execution began.
    pub fn total_wait(&self) -> SimDuration {
        self.dependency_wait + self.scheduler_wait + self.processor_wait
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SlotState {
    job: Option<u64>,
    bound_at: Option<SimTime>,
    ready: Option<SimTime>,
    dispatch: Option<(SimTime, bool)>,
    kernel: Option<Kernel>,
    proc: Option<ProcId>,
    exec_start: Option<SimTime>,
}

/// Reconstruct per-kernel wait decompositions from an event stream.
/// Instances whose dispatch or readiness fell outside the recorded window
/// (ring truncation) are skipped rather than guessed.
pub fn kernel_waits(events: &[TraceEvent]) -> Vec<KernelWait> {
    let mut slots: BTreeMap<u32, SlotState> = BTreeMap::new();
    let mut out = Vec::new();
    for e in events {
        match *e {
            TraceEvent::KernelBound { node, job, at } => {
                let s = slots.entry(node).or_default();
                *s = SlotState {
                    job: Some(job),
                    bound_at: Some(at),
                    ..SlotState::default()
                };
            }
            TraceEvent::KernelReady { node, at } => {
                let s = slots.entry(node).or_default();
                s.ready = Some(at);
                // A fresh readiness invalidates any earlier dispatch state
                // (retry / re-dispatch path).
                s.dispatch = None;
                s.exec_start = None;
            }
            TraceEvent::KernelDispatch {
                node,
                kernel,
                proc,
                at,
                alt,
            } => {
                let s = slots.entry(node).or_default();
                s.dispatch = Some((at, alt));
                s.kernel = Some(kernel);
                s.proc = Some(proc);
                s.exec_start = None;
            }
            TraceEvent::ExecStart { node, at, .. } => {
                if let Some(s) = slots.get_mut(&node) {
                    s.exec_start = Some(at);
                }
            }
            TraceEvent::KernelComplete { node, proc, at } => {
                if let Some(s) = slots.get_mut(&node) {
                    if let (Some(ready), Some((start, alt)), Some(kernel)) =
                        (s.ready, s.dispatch, s.kernel)
                    {
                        let exec_start = s.exec_start.unwrap_or(start);
                        out.push(KernelWait {
                            node,
                            job: s.job,
                            kernel,
                            proc: s.proc.unwrap_or(proc),
                            alt,
                            dependency_wait: ready.saturating_since(s.bound_at.unwrap_or(ready)),
                            scheduler_wait: start.saturating_since(ready),
                            processor_wait: exec_start.saturating_since(start),
                            exec: at.saturating_since(exec_start),
                        });
                    }
                    s.ready = None;
                    s.dispatch = None;
                    s.exec_start = None;
                }
            }
            TraceEvent::KernelKilled { node, .. } => {
                if let Some(s) = slots.get_mut(&node) {
                    s.dispatch = None;
                    s.exec_start = None;
                }
            }
            _ => {}
        }
    }
    out
}

fn ms(d: SimDuration) -> String {
    format!("{:.3}", d.as_ms_f64())
}

/// Render the top-`top_n` kernels by total wait as an aligned text table
/// (§2.5.1 decomposition), plus a one-line aggregate footer.
pub fn render_summary(events: &[TraceEvent], top_n: usize) -> String {
    let mut waits = kernel_waits(events);
    let completed = waits.len();
    if completed == 0 {
        return "trace-summary: no completed kernel instances in the recorded window\n".to_string();
    }
    waits.sort_by(|a, b| {
        b.total_wait()
            .cmp(&a.total_wait())
            .then(a.node.cmp(&b.node))
    });
    let total: SimDuration = waits.iter().map(|w| w.total_wait()).sum();
    let sched: SimDuration = waits.iter().map(|w| w.scheduler_wait).sum();
    let dep: SimDuration = waits.iter().map(|w| w.dependency_wait).sum();
    let proc: SimDuration = waits.iter().map(|w| w.processor_wait).sum();

    let mut rows: Vec<[String; 8]> = Vec::new();
    for w in waits.iter().take(top_n) {
        rows.push([
            w.kernel.kind.tag().to_string(),
            w.job.map(|j| j.to_string()).unwrap_or_else(|| "-".into()),
            format!("{}{}", w.proc, if w.alt { "*" } else { "" }),
            ms(w.dependency_wait),
            ms(w.scheduler_wait),
            ms(w.processor_wait),
            ms(w.exec),
            ms(w.total_wait()),
        ]);
    }
    let header = [
        "kernel",
        "job",
        "proc",
        "dep-wait",
        "sched-wait",
        "proc-wait",
        "exec",
        "total-wait",
    ];
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = format!(
        "trace-summary — top {} of {} completed kernel instances by total wait (ms); \
         `*` marks APT alternative placements\n",
        rows.len(),
        completed
    );
    for (i, h) in header.iter().enumerate() {
        let _ = write!(out, "{:<w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "aggregate wait: {} ms total = {} dependency + {} scheduler (λ) + {} processor/transfer",
        ms(total),
        ms(dep),
        ms(sched),
        ms(proc)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_dfg::KernelKind;

    fn events_one_kernel() -> Vec<TraceEvent> {
        let p = ProcId::new(1);
        vec![
            TraceEvent::KernelBound {
                node: 5,
                job: 9,
                at: SimTime::from_ms(10),
            },
            TraceEvent::KernelReady {
                node: 5,
                at: SimTime::from_ms(14),
            },
            TraceEvent::KernelDispatch {
                node: 5,
                kernel: Kernel::new(KernelKind::Bfs, 1_000_000),
                proc: p,
                at: SimTime::from_ms(20),
                alt: true,
            },
            TraceEvent::ExecStart {
                node: 5,
                proc: p,
                at: SimTime::from_ms(23),
            },
            TraceEvent::KernelComplete {
                node: 5,
                proc: p,
                at: SimTime::from_ms(130),
            },
        ]
    }

    #[test]
    fn decomposes_the_three_wait_components() {
        let waits = kernel_waits(&events_one_kernel());
        assert_eq!(waits.len(), 1);
        let w = waits[0];
        assert_eq!(w.job, Some(9));
        assert_eq!(w.dependency_wait, SimDuration::from_ms(4));
        assert_eq!(w.scheduler_wait, SimDuration::from_ms(6));
        assert_eq!(w.processor_wait, SimDuration::from_ms(3));
        assert_eq!(w.exec, SimDuration::from_ms(107));
        assert_eq!(w.total_wait(), SimDuration::from_ms(13));
        assert!(w.alt);
    }

    #[test]
    fn slot_recycling_pairs_instances_in_sequence() {
        let mut events = events_one_kernel();
        // The slot is re-bound to a new job and runs again.
        let p = ProcId::new(0);
        events.extend([
            TraceEvent::KernelBound {
                node: 5,
                job: 10,
                at: SimTime::from_ms(200),
            },
            TraceEvent::KernelReady {
                node: 5,
                at: SimTime::from_ms(200),
            },
            TraceEvent::KernelDispatch {
                node: 5,
                kernel: Kernel::new(KernelKind::Srad, 2048),
                proc: p,
                at: SimTime::from_ms(201),
                alt: false,
            },
            TraceEvent::KernelComplete {
                node: 5,
                proc: p,
                at: SimTime::from_ms(210),
            },
        ]);
        let waits = kernel_waits(&events);
        assert_eq!(waits.len(), 2);
        assert_eq!(waits[1].job, Some(10));
        assert_eq!(waits[1].scheduler_wait, SimDuration::from_ms(1));
        // No ExecStart recorded: processor-wait collapses to zero.
        assert_eq!(waits[1].processor_wait, SimDuration::ZERO);
        assert_eq!(waits[1].exec, SimDuration::from_ms(9));
    }

    #[test]
    fn killed_instances_do_not_produce_rows() {
        let p = ProcId::new(1);
        let events = vec![
            TraceEvent::KernelReady {
                node: 1,
                at: SimTime::ZERO,
            },
            TraceEvent::KernelDispatch {
                node: 1,
                kernel: Kernel::new(KernelKind::Bfs, 1_000_000),
                proc: p,
                at: SimTime::from_ms(1),
                alt: false,
            },
            TraceEvent::KernelKilled {
                node: 1,
                proc: p,
                at: SimTime::from_ms(2),
            },
        ];
        assert!(kernel_waits(&events).is_empty());
    }

    #[test]
    fn render_handles_empty_and_populated_streams() {
        assert!(render_summary(&[], 10).contains("no completed kernel instances"));
        let text = render_summary(&events_one_kernel(), 10);
        assert!(text.contains("top 1 of 1"));
        assert!(text.contains("bfs"));
        assert!(text.contains("p1*"), "alt placements are starred");
        assert!(text.contains("aggregate wait: 13.000 ms"));
    }
}
