//! ASCII rendering of kernel dataflow graphs (Figures 3 and 4 style).
//!
//! Purely cosmetic: used by the examples and the experiment harness to show
//! what the generated workloads look like, in the spirit of the paper's
//! figures. The renderer prints the precedence levels of the DAG, one row per
//! level, each node as `id:tag`.

use crate::graph::Dag;
use crate::kernel::Kernel;
use std::fmt::Write as _;

/// Render a kernel DAG as one line per precedence level.
///
/// ```text
/// level 0 | n0:nw n1:bfs n2:bfs n3:bfs
/// level 1 | n4:cd   (preds: n0 n1 n2 n3)
/// ```
pub fn render_levels(g: &Dag<Kernel>) -> String {
    let mut out = String::new();
    let levels = match g.levels() {
        Ok(l) => l,
        Err(e) => return format!("<invalid graph: {e}>"),
    };
    for (i, level) in levels.iter().enumerate() {
        let _ = write!(out, "level {i} |");
        for &n in level {
            let _ = write!(out, " {n}:{}", g.node(n).kind.tag());
        }
        out.push('\n');
    }
    let _ = write!(
        out,
        "({} kernels, {} edges, {} levels)",
        g.len(),
        g.edge_count(),
        levels.len()
    );
    out
}

/// Render the edge list grouped by source (compact adjacency dump).
pub fn render_edges(g: &Dag<Kernel>) -> String {
    let mut out = String::new();
    for n in g.node_ids() {
        if g.out_degree(n) == 0 {
            continue;
        }
        let _ = write!(out, "{n}:{} ->", g.node(n).kind.tag());
        for &s in g.succs(n) {
            let _ = write!(out, " {s}");
        }
        out.push('\n');
    }
    if out.is_empty() {
        out.push_str("(no edges)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{build_type1, generate_kernels, StreamConfig};
    use crate::lookup::LookupTable;

    #[test]
    fn renders_type1_levels() {
        let kernels = generate_kernels(&StreamConfig::new(5, 1), LookupTable::paper());
        let g = build_type1(&kernels);
        let s = render_levels(&g);
        assert!(s.contains("level 0 |"));
        assert!(s.contains("level 1 |"));
        assert!(s.contains("5 kernels, 4 edges, 2 levels"));
    }

    #[test]
    fn renders_edges_and_handles_edgeless() {
        let kernels = generate_kernels(&StreamConfig::new(3, 1), LookupTable::paper());
        let g = build_type1(&kernels);
        assert!(render_edges(&g).contains("-> n2"));
        let lone = build_type1(&kernels[..1]);
        assert_eq!(render_edges(&lone), "(no edges)\n");
    }
}
