//! Differential test: the optimized engine hot path must be *semantically
//! invisible*.
//!
//! The production engine (`apt_hetsim::simulate`) maintains its state
//! incrementally: a bitset ready set, in-place `ProcView` updates with a
//! running windowed-average sum, a running idle count, and dense cost-model
//! reads. This file carries a straight port of the seed engine's naive
//! bookkeeping — sorted-`Vec` ready set with O(n) insert/remove, processor
//! snapshots rebuilt from scratch on every fixpoint iteration, execution
//! times re-resolved through the raw lookup table, transfer times re-derived
//! from `bytes / rate` per query — and replays **all twenty canonical
//! workloads (both DFG families × ten experiments) under every policy**
//! through both engines, asserting byte-identical [`Trace`]s.
//!
//! Any hot-path change that alters a schedule (iteration order, idle
//! accounting, cost rounding, queue handling) fails here with the first
//! diverging workload/policy pair named.
//!
//! The one deliberate semantic change of the optimization PR — the windowed
//! τ_k average rounding to nearest instead of truncating — is applied to the
//! reference too (and pinned separately by the engine's
//! `recent_avg_rounds_to_nearest` unit test).

use apt_experiments::workloads::{experiment_graphs, figure5_graph};
use apt_suite::prelude::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

const EXEC_HISTORY_WINDOW: usize = 10;

/// Seed-engine processor state (snapshot fields included, rebuilt per edge).
struct RefProcCore {
    busy_until: SimTime,
    running: Option<NodeId>,
    queue: VecDeque<Assignment>,
    history: VecDeque<SimDuration>,
    stats: ProcStats,
}

impl RefProcCore {
    fn new() -> Self {
        RefProcCore {
            busy_until: SimTime::ZERO,
            running: None,
            queue: VecDeque::new(),
            history: VecDeque::new(),
            stats: ProcStats::default(),
        }
    }

    fn recent_avg_exec(&self) -> SimDuration {
        if self.history.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = self.history.iter().map(|d| d.as_ns()).sum();
        let len = self.history.len() as u64;
        SimDuration::from_ns((total + len / 2) / len)
    }

    fn push_history(&mut self, exec: SimDuration) {
        if self.history.len() == EXEC_HISTORY_WINDOW {
            self.history.pop_front();
        }
        self.history.push_back(exec);
    }
}

/// The reference path replays non-streamed workloads only, so completion is
/// the single event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    Finish(ProcId),
}

/// A faithful port of the seed engine: naive lookups, naive snapshots,
/// sorted-`Vec` ready set.
struct RefEngine<'a> {
    dfg: &'a KernelDag,
    config: &'a SystemConfig,
    lookup: &'a LookupTable,
    cost: &'a CostModel,
    now: SimTime,
    ready: Vec<NodeId>,
    ready_time: Vec<SimTime>,
    remaining_preds: Vec<usize>,
    locations: Vec<Option<ProcId>>,
    records: Vec<Option<TaskRecord>>,
    procs: Vec<RefProcCore>,
    events: BinaryHeap<Reverse<(SimTime, u64, Event)>>,
    seq: u64,
    finished: usize,
}

impl<'a> RefEngine<'a> {
    fn new(
        dfg: &'a KernelDag,
        config: &'a SystemConfig,
        lookup: &'a LookupTable,
        cost: &'a CostModel,
    ) -> Self {
        let n = dfg.len();
        RefEngine {
            dfg,
            config,
            lookup,
            cost,
            now: SimTime::ZERO,
            ready: dfg.sources(),
            ready_time: vec![SimTime::ZERO; n],
            remaining_preds: dfg.node_ids().map(|id| dfg.in_degree(id)).collect(),
            locations: vec![None; n],
            records: vec![None; n],
            procs: (0..config.len()).map(|_| RefProcCore::new()).collect(),
            events: BinaryHeap::new(),
            seq: 0,
            finished: 0,
        }
    }

    /// Rebuild every processor snapshot from scratch — the seed did this on
    /// every single fixpoint iteration.
    fn proc_views(&self) -> Vec<ProcView> {
        self.procs
            .iter()
            .enumerate()
            .map(|(i, p)| ProcView {
                id: ProcId::new(i),
                kind: self.config.kind_of(ProcId::new(i)),
                running: p.running,
                busy_until: p.busy_until.max(self.now),
                queue_len: p.queue.len(),
                recent_avg_exec: p.recent_avg_exec(),
                down: false,
            })
            .collect()
    }

    /// Naive transfer recomputation: bytes × link rate per predecessor.
    fn transfer_in(&self, node: NodeId, proc: ProcId) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for &pred in self.dfg.preds(node) {
            match self.locations[pred.index()] {
                Some(loc) if loc != proc => {
                    let bytes = self.dfg.node(pred).bytes(self.config.bytes_per_element);
                    total += self.config.link.transfer_time(bytes);
                }
                Some(_) => {}
                None => unreachable!("started a kernel whose predecessor never finished"),
            }
        }
        total
    }

    fn start_node(&mut self, a: Assignment, proc: ProcId) {
        let node = a.node;
        let kernel = *self.dfg.node(node);
        let exec = self
            .lookup
            .exec_time(&kernel, self.config.kind_of(proc))
            .expect("reference run only applies runnable assignments");
        let transfer = self.transfer_in(node, proc);
        let start = self.now;
        let exec_start = start + transfer;
        let finish = exec_start + exec;
        self.records[node.index()] = Some(TaskRecord {
            node,
            kernel,
            proc,
            ready: self.ready_time[node.index()],
            start,
            exec_start,
            finish,
            alt: a.alt,
        });
        let core = &mut self.procs[proc.index()];
        assert!(core.running.is_none());
        core.running = Some(node);
        core.busy_until = finish;
        core.stats.busy += exec;
        core.stats.transfer += transfer;
        core.stats.kernels += 1;
        core.push_history(exec);
        self.events
            .push(Reverse((finish, self.seq, Event::Finish(proc))));
        self.seq += 1;
    }

    fn apply(&mut self, a: Assignment) {
        let pos = self
            .ready
            .binary_search(&a.node)
            .expect("policy assigned a non-ready node");
        self.ready.remove(pos);
        if self.procs[a.proc.index()].running.is_none() {
            assert!(self.procs[a.proc.index()].queue.is_empty());
            self.start_node(a, a.proc);
        } else {
            self.procs[a.proc.index()].queue.push_back(a);
        }
    }

    fn make_ready(&mut self, node: NodeId) {
        self.ready_time[node.index()] = self.now.max(self.ready_time[node.index()]);
        match self.ready.binary_search(&node) {
            Ok(_) => unreachable!("node became ready twice"),
            Err(pos) => self.ready.insert(pos, node),
        }
    }

    fn finish_on(&mut self, proc: ProcId) {
        let core = &mut self.procs[proc.index()];
        let node = core.running.take().expect("completion on idle proc");
        self.locations[node.index()] = Some(proc);
        self.finished += 1;
        for &succ in self.dfg.succs(node) {
            let r = &mut self.remaining_preds[succ.index()];
            *r -= 1;
            if *r == 0 {
                self.make_ready(succ);
            }
        }
        if let Some(next) = self.procs[proc.index()].queue.pop_front() {
            self.start_node(next, proc);
        }
    }

    fn run(&mut self, policy: &mut dyn Policy) {
        // Closed-world workloads carry no deadlines (MAX = none).
        let deadlines = vec![SimTime::MAX; self.dfg.len()];
        loop {
            loop {
                let views = self.proc_views();
                // The SimView type requires the bitset + cost model; both
                // are rebuilt/derived fresh here — as is the decide buffer —
                // so the *engine under test* remains the only incremental
                // implementation.
                let mut ready_set = ReadySet::new(self.dfg.len());
                for &n in &self.ready {
                    ready_set.insert(n);
                }
                let mut assignments = AssignmentBuf::new();
                {
                    let view = SimView {
                        now: self.now,
                        ready: &ready_set,
                        procs: &views,
                        dfg: self.dfg,
                        lookup: self.lookup,
                        config: self.config,
                        cost: self.cost,
                        locations: &self.locations,
                        deadlines: &deadlines,
                        idle_mask: views
                            .iter()
                            .enumerate()
                            .filter(|(_, p)| p.is_idle())
                            .fold(0u64, |m, (i, _)| m | 1 << i),
                        up_mask: (1u64 << views.len()) - 1,
                    };
                    policy.decide(&view, &mut assignments);
                }
                if assignments.is_empty() {
                    break;
                }
                for &a in assignments.as_slice() {
                    self.apply(a);
                }
            }
            match self.events.pop() {
                None => break,
                Some(Reverse((t, _, event))) => {
                    self.now = t;
                    self.handle(event);
                    while let Some(Reverse((t2, _, _))) = self.events.peek() {
                        if *t2 != t {
                            break;
                        }
                        let Reverse((_, _, e2)) = self.events.pop().expect("peeked");
                        self.handle(e2);
                    }
                }
            }
        }
        assert_eq!(self.finished, self.dfg.len(), "reference run starved");
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Finish(proc) => self.finish_on(proc),
        }
    }

    fn into_trace(self) -> Trace {
        let mut records: Vec<TaskRecord> = self
            .records
            .into_iter()
            .map(|r| r.expect("run() verified completion"))
            .collect();
        records.sort_unstable_by_key(|r| (r.start, r.node));
        Trace {
            records,
            proc_stats: self.procs.into_iter().map(|p| p.stats).collect(),
        }
    }
}

/// Run a policy through the seed-semantics reference engine.
fn ref_simulate(
    dfg: &KernelDag,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
) -> Trace {
    config.validate().unwrap();
    dfg.validate().unwrap();
    let cost = CostModel::new(dfg, lookup, config);
    policy
        .prepare(PrepareCtx {
            dfg,
            lookup,
            config,
            cost: &cost,
        })
        .unwrap();
    let mut engine = RefEngine::new(dfg, config, lookup, &cost);
    engine.run(policy);
    engine.into_trace()
}

/// A named constructor for one roster entry.
type RosterEntry = (&'static str, Box<dyn Fn() -> Box<dyn Policy>>);

/// Every policy under test, freshly constructed per run. Covers the seven
/// policies of the paper's comparison plus the extras (APT-R, AR, OLB) and a
/// second α so both APT branches (wait vs alternative) are exercised.
fn policy_roster() -> Vec<RosterEntry> {
    vec![
        (
            "APT(4)",
            Box::new(|| Box::new(Apt::new(4.0)) as Box<dyn Policy>),
        ),
        (
            "APT(1.5)",
            Box::new(|| Box::new(Apt::new(1.5)) as Box<dyn Policy>),
        ),
        (
            "APT-R(4)",
            Box::new(|| Box::new(AptR::new(4.0)) as Box<dyn Policy>),
        ),
        ("MET", Box::new(|| Box::new(Met::new()) as Box<dyn Policy>)),
        ("SPN", Box::new(|| Box::new(Spn::new()) as Box<dyn Policy>)),
        (
            "SS",
            Box::new(|| Box::new(SerialScheduling::new()) as Box<dyn Policy>),
        ),
        (
            "AG",
            Box::new(|| Box::new(AdaptiveGreedy::new()) as Box<dyn Policy>),
        ),
        (
            "AR(7)",
            Box::new(|| Box::new(AdaptiveRandom::new(7)) as Box<dyn Policy>),
        ),
        ("OLB", Box::new(|| Box::new(Olb::new()) as Box<dyn Policy>)),
        (
            "HEFT",
            Box::new(|| Box::new(Heft::new()) as Box<dyn Policy>),
        ),
        (
            "PEFT",
            Box::new(|| Box::new(Peft::new()) as Box<dyn Policy>),
        ),
    ]
}

fn assert_equivalent(tag: &str, dfg: &KernelDag, system: &SystemConfig) {
    let lookup = LookupTable::paper();
    for (name, make) in policy_roster() {
        let mut fast_policy = make();
        let fast = simulate(dfg, system, lookup, fast_policy.as_mut())
            .unwrap_or_else(|e| panic!("{tag}/{name}: optimized run failed: {e}"));
        let mut ref_policy = make();
        let reference = ref_simulate(dfg, system, lookup, ref_policy.as_mut());
        assert_eq!(
            fast.trace, reference,
            "{tag}/{name}: optimized engine diverged from seed semantics"
        );
        fast.trace.validate(dfg).unwrap();
    }
}

/// All twenty canonical workloads × every policy, byte-identical traces.
#[test]
fn optimized_engine_matches_seed_semantics_on_all_canonical_workloads() {
    let system = SystemConfig::paper_4gbps();
    for ty in DfgType::ALL {
        for (i, dfg) in experiment_graphs(ty).iter().enumerate() {
            assert_equivalent(&format!("{ty:?}/exp{}", i + 1), dfg, &system);
        }
    }
}

/// The Figure-5 walk-through (transfers disabled) — the paper's only fully
/// published schedule — through both engines.
#[test]
fn figure5_walkthrough_is_equivalent() {
    let dfg = figure5_graph();
    assert_equivalent("fig5", &dfg, &SystemConfig::paper_no_transfers());
    assert_equivalent("fig5@4gbps", &dfg, &SystemConfig::paper_4gbps());
}

/// The uniform-`Topology` differential: a system whose per-pair topology is
/// the uniform preset (same rate as the scalar `link`) must reproduce
/// **byte-identical** traces against the seed `LinkRate` path — across all
/// twenty canonical workloads and the full policy roster (dynamic *and*
/// static, whose plan-time transfer estimates are pair-resolved now).
#[test]
fn uniform_topology_is_byte_identical_to_the_link_rate_path() {
    let lookup = LookupTable::paper();
    let plain = SystemConfig::paper_4gbps();
    let topo = SystemConfig::paper_4gbps().with_topology(Topology::uniform(3, LinkRate::PCIE2_X8));
    for ty in DfgType::ALL {
        for (i, dfg) in experiment_graphs(ty).iter().enumerate() {
            for (name, make) in policy_roster() {
                let tag = format!("{ty:?}/exp{}/{name}", i + 1);
                let a = simulate(dfg, &plain, lookup, make().as_mut())
                    .unwrap_or_else(|e| panic!("{tag}: scalar-link run failed: {e}"));
                let b = simulate(dfg, &topo, lookup, make().as_mut())
                    .unwrap_or_else(|e| panic!("{tag}: uniform-topology run failed: {e}"));
                assert_eq!(
                    a.trace, b.trace,
                    "{tag}: uniform topology diverged from the scalar link path"
                );
            }
        }
    }
}

/// An all-equal-rate *matrix* (built via `from_fn`, so it takes the dense
/// per-pair tables, not the uniform preset's scalar fast path) must also be
/// byte-identical to the scalar link — the "contention-off equals the
/// matrix model when all rates are equal" pin at trace level. One workload
/// per family keeps this differential cheap; the dense-table arithmetic it
/// exercises is node-shape independent.
#[test]
fn equal_rate_matrix_is_byte_identical_to_the_link_rate_path() {
    let lookup = LookupTable::paper();
    let plain = SystemConfig::paper_4gbps();
    let matrix =
        SystemConfig::paper_4gbps().with_topology(Topology::from_fn(3, |_, _| LinkRate::PCIE2_X8));
    assert!(matrix.uniform_rate().is_none(), "must take the matrix path");
    for ty in DfgType::ALL {
        let dfg = experiment_graphs(ty).remove(4); // 93 kernels — mid-size
        for (name, make) in policy_roster() {
            let a = simulate(&dfg, &plain, lookup, make().as_mut()).unwrap();
            let b = simulate(&dfg, &matrix, lookup, make().as_mut()).unwrap();
            assert_eq!(
                a.trace, b.trace,
                "{ty:?}/{name}: equal-rate matrix diverged from the scalar link"
            );
        }
    }
}

/// The fault-machinery differential: arming [`FaultPlan::none()`] must be
/// *byte-identical* to the plain engine across the full policy roster —
/// the failure model's availability masks, run tokens, and fault calendar
/// hooks may not perturb a fault-free schedule in any way, and the
/// returned totals must be all zeros.
#[test]
fn none_fault_plan_is_byte_identical_across_the_roster() {
    let lookup = LookupTable::paper();
    let system = SystemConfig::paper_4gbps();
    for ty in DfgType::ALL {
        // One mid-size workload per family: the fault hooks sit on
        // node-start/finish edges, which every workload shape exercises.
        let dfg = experiment_graphs(ty).remove(4);
        let arrivals = vec![SimTime::ZERO; dfg.len()];
        for (name, make) in policy_roster() {
            let tag = format!("{ty:?}/{name}");
            let plain = simulate(&dfg, &system, lookup, make().as_mut())
                .unwrap_or_else(|e| panic!("{tag}: plain run failed: {e}"));
            let (faulty, totals) = simulate_stream_faulty(
                &dfg,
                &system,
                lookup,
                make().as_mut(),
                &arrivals,
                FaultPlan::none(),
                RetryPolicy::default(),
            )
            .unwrap_or_else(|e| panic!("{tag}: none-plan run failed: {e}"));
            assert_eq!(
                plain.trace, faulty.trace,
                "{tag}: FaultPlan::none() perturbed the schedule"
            );
            assert_eq!(
                totals,
                FaultTotals::default(),
                "{tag}: phantom fault counts"
            );
        }
    }
}

/// Duplicated-category machines exercise the idle-twin selection paths.
#[test]
fn duplicated_categories_are_equivalent() {
    let dfg = experiment_graphs(DfgType::Type1).remove(0);
    let system = SystemConfig::empty(LinkRate::PCIE2_X8)
        .with_proc(ProcKind::Cpu)
        .with_proc(ProcKind::Cpu)
        .with_proc(ProcKind::Gpu)
        .with_proc(ProcKind::Fpga)
        .with_proc(ProcKind::Fpga);
    assert_equivalent("dup-categories", &dfg, &system);
}
