//! Property-based tests of the DAG container and the workload generators.

use apt_dfg::generator::{
    build_type1, build_type2, generate_kernels, type2_layout, StreamConfig, Type2Config,
};
use apt_dfg::{Dag, KernelKind, LookupTable, NodeId, SplitMix64};
use proptest::prelude::*;

/// A random DAG over `n` nodes: edges only from lower to higher ids, each
/// present with probability ~`density`/100 (decided by a seeded generator so
/// shrinking stays meaningful).
fn random_dag(n: usize, density: u64, seed: u64) -> Dag<u32> {
    let mut g = Dag::new();
    for i in 0..n {
        g.add_node(i as u32);
    }
    let mut rng = SplitMix64::new(seed);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_range(100) < density {
                g.add_edge(NodeId::new(i), NodeId::new(j)).unwrap();
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kahn's order is a certificate: every edge points forward.
    #[test]
    fn topo_order_is_consistent(n in 0usize..60, density in 0u64..60, seed in any::<u64>()) {
        let g = random_dag(n, density, seed);
        let order = g.topo_order().expect("forward-edge DAGs are acyclic");
        prop_assert_eq!(order.len(), n);
        let mut pos = vec![0usize; n];
        for (i, node) in order.iter().enumerate() {
            pos[node.index()] = i;
        }
        for (u, v) in g.edges() {
            prop_assert!(pos[u.index()] < pos[v.index()]);
        }
    }

    /// Levels partition the nodes and respect precedence strictly.
    #[test]
    fn levels_partition_and_stratify(n in 1usize..60, density in 0u64..60, seed in any::<u64>()) {
        let g = random_dag(n, density, seed);
        let levels = g.levels().unwrap();
        let total: usize = levels.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
        let mut level_of = vec![0usize; n];
        for (l, nodes) in levels.iter().enumerate() {
            for node in nodes {
                level_of[node.index()] = l;
            }
        }
        for (u, v) in g.edges() {
            prop_assert!(level_of[u.index()] < level_of[v.index()]);
        }
    }

    /// The critical path is monotone in node weights and bounded by the
    /// total weight.
    #[test]
    fn critical_path_bounds(n in 1usize..50, density in 0u64..60, seed in any::<u64>()) {
        let g = random_dag(n, density, seed);
        let unit = g.critical_path(|_| 1).unwrap();
        let heavy = g.critical_path(|_| 7).unwrap();
        prop_assert_eq!(heavy, unit * 7);
        prop_assert!(unit <= n as u64);
        // Adding weight to one node can only increase the path length.
        let bumped = g
            .critical_path(|node| if node.index() == 0 { 3 } else { 1 })
            .unwrap();
        prop_assert!(bumped >= unit);
    }

    /// Inserting a back edge into any nonempty forward DAG with at least one
    /// edge creates a cycle that validation catches.
    #[test]
    fn back_edge_creates_detectable_cycle(n in 2usize..40, seed in any::<u64>()) {
        let mut g = random_dag(n, 50, seed);
        let first_edge = g.edges().next();
        if let Some((u, v)) = first_edge {
            g.add_edge(v, u).unwrap();
            prop_assert!(g.validate().is_err());
        }
    }

    /// Type-2 layouts cover exactly the requested kernel count for any
    /// configuration that admits the block structure.
    #[test]
    fn type2_layout_is_exact(
        n in 0usize..300,
        seed in any::<u64>(),
        chain_len in 2usize..6,
        chain_percent in 0u8..=100,
    ) {
        let cfg = Type2Config {
            diamond_blocks: 3,
            chain_len,
            chain_percent,
        };
        let layout = type2_layout(n, seed, &cfg);
        prop_assert_eq!(layout.total(&cfg), n);
        let g = build_type2(
            &generate_kernels(&StreamConfig::new(n, seed), LookupTable::paper()),
            seed,
            &cfg,
        );
        prop_assert_eq!(g.len(), n);
        g.validate().unwrap();
    }

    /// Every generated kernel instance exists in the lookup table, and
    /// Type-1's structure is exactly Figure 3's for any n ≥ 2.
    #[test]
    fn type1_structure_invariant(n in 2usize..200, seed in any::<u64>()) {
        let kernels = generate_kernels(&StreamConfig::new(n, seed), LookupTable::paper());
        let g = build_type1(&kernels);
        prop_assert_eq!(g.edge_count(), n - 1);
        let sink = NodeId::new(n - 1);
        prop_assert_eq!(g.in_degree(sink), n - 1);
        prop_assert_eq!(g.sinks(), vec![sink]);
        for k in &kernels {
            prop_assert!(LookupTable::paper().row(k).is_ok());
        }
    }

    /// Stream generation is stationary in distribution: every kernel kind
    /// appears in a long enough uniform stream.
    #[test]
    fn uniform_streams_cover_all_kinds(seed in any::<u64>()) {
        let kernels =
            generate_kernels(&StreamConfig::uniform(700, seed), LookupTable::paper());
        for kind in KernelKind::ALL {
            prop_assert!(kernels.iter().any(|k| k.kind == kind), "{kind} missing");
        }
    }
}
