//! Golden test: the paper's Figure-5 walk-through, reproduced exactly.
//!
//! The thesis fully specifies this example — Table-7 execution times, α = 8,
//! data transfers ignored — including every intermediate schedule state and
//! the final makespans: **318.093 ms for MET** and **212.093 ms for APT**.
//! This is the one place where the reproduction must match the paper to the
//! microsecond, and it does.

use apt_experiments::workloads::figure5_graph;
use apt_metrics::gantt::state_log;
use apt_suite::prelude::*;

fn run(policy: &mut dyn Policy) -> (SimResult, SystemConfig) {
    let config = SystemConfig::paper_no_transfers();
    let res =
        simulate(&figure5_graph(), &config, LookupTable::paper(), policy).expect("figure-5 run");
    (res, config)
}

#[test]
fn met_end_time_is_318_093_ms() {
    let (res, _) = run(&mut Met::new());
    assert_eq!(res.makespan(), SimDuration::from_us(318_093));
}

#[test]
fn apt_end_time_is_212_093_ms() {
    let (res, _) = run(&mut Apt::new(8.0));
    assert_eq!(res.makespan(), SimDuration::from_us(212_093));
}

#[test]
fn met_state_log_matches_every_paper_row() {
    let (res, config) = run(&mut Met::new());
    let log = state_log(&res.trace, &config);
    // Paper (Figure 5, MET):            CPU        GPU     FPGA     t
    let expected = [
        ("0-nw", "idle", "1-bfs", "0.0"),
        ("0-nw", "idle", "2-bfs", "106.0"),
        ("idle", "idle", "2-bfs", "112.0"),
        ("idle", "idle", "3-bfs", "212.0"),
        ("idle", "idle", "4-cd", "318.0"),
    ];
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), expected.len() + 1, "log:\n{log}");
    for (line, (cpu, gpu, fpga, t)) in lines.iter().zip(&expected) {
        assert!(line.contains(&format!("CPU0:{cpu}")), "{line} vs CPU {cpu}");
        assert!(line.contains(&format!("GPU0:{gpu}")), "{line} vs GPU {gpu}");
        assert!(
            line.contains(&format!("FPGA0:{fpga}")),
            "{line} vs FPGA {fpga}"
        );
        assert!(line.trim_end().ends_with(t), "{line} vs t={t}");
    }
    assert_eq!(lines.last().unwrap().trim_end(), "End time: 318.093");
}

#[test]
fn apt_state_log_matches_every_paper_row() {
    let (res, config) = run(&mut Apt::new(8.0));
    let log = state_log(&res.trace, &config);
    // Paper (Figure 5, APT α = 8):      CPU        GPU     FPGA     t
    let expected = [
        ("0-nw", "2-bfs", "1-bfs", "0.0"),
        ("0-nw", "2-bfs", "3-bfs", "106.0"),
        ("idle", "2-bfs", "3-bfs", "112.0"),
        ("idle", "idle", "3-bfs", "173.0"),
        ("idle", "idle", "4-cd", "212.0"),
    ];
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), expected.len() + 1, "log:\n{log}");
    for (line, (cpu, gpu, fpga, t)) in lines.iter().zip(&expected) {
        assert!(line.contains(&format!("CPU0:{cpu}")), "{line} vs CPU {cpu}");
        assert!(line.contains(&format!("GPU0:{gpu}")), "{line} vs GPU {gpu}");
        assert!(
            line.contains(&format!("FPGA0:{fpga}")),
            "{line} vs FPGA {fpga}"
        );
        assert!(line.trim_end().ends_with(t), "{line} vs t={t}");
    }
    assert_eq!(lines.last().unwrap().trim_end(), "End time: 212.093");
}

#[test]
fn the_papers_threshold_check_gates_the_gpu_bfs() {
    // "GPU satisfies the condition of threshold": exec(bfs, GPU) = 173 must
    // pass at α = 8 (threshold 848) and fail at α = 1.5 (threshold 159),
    // flipping the GPU assignment off.
    let config = SystemConfig::paper_no_transfers();
    let res = simulate(
        &figure5_graph(),
        &config,
        LookupTable::paper(),
        &mut Apt::new(1.5),
    )
    .unwrap();
    // Without the alternative, APT degenerates to the MET schedule.
    assert_eq!(res.makespan(), SimDuration::from_us(318_093));
    assert_eq!(res.trace.alt_total(), 0);
}
