//! α tuning: sweep the APT flexibility factor over a workload and locate
//! `threshold_brk` — the valley bottom of §4.2 ("if we increase the α value,
//! the makespan also decreases to a point, after which the makespan keeps
//! increasing").
//!
//! ```bash
//! cargo run --release --example alpha_tuning [kernels] [seed]
//! ```

use apt_suite::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(93);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let lookup = LookupTable::paper();
    let dfg = generate(DfgType::Type1, &StreamConfig::new(n, seed), lookup);
    let system = SystemConfig::paper_4gbps();

    println!(
        "α sweep on {} kernels (DFG Type-1, seed {seed})\n",
        dfg.len()
    );
    println!(
        "{:>6}  {:>14}  {:>14}  {:>6}",
        "α", "makespan (ms)", "λ total (ms)", "alt"
    );

    let alphas = [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0];
    let mut best = (f64::NAN, u64::MAX);
    let mut series = Vec::new();
    for alpha in alphas {
        let res = simulate(&dfg, &system, lookup, &mut Apt::new(alpha)).expect("APT run");
        let ms = res.makespan();
        let lam = res.trace.lambda_total();
        let alt = res.trace.alt_total();
        println!(
            "{alpha:>6}  {:>14.1}  {:>14.1}  {alt:>6}",
            ms.as_ms_f64(),
            lam.as_ms_f64()
        );
        if ms.as_ns() < best.1 {
            best = (alpha, ms.as_ns());
        }
        series.push(ms.as_ms_f64());
    }

    println!(
        "\nthreshold_brk ≈ α = {} (makespan {})",
        best.0,
        SimDuration::from_ns(best.1)
    );

    // A crude bar rendering of the valley.
    let max = series.iter().cloned().fold(f64::MIN, f64::max);
    println!("\nvalley:");
    for (alpha, v) in alphas.iter().zip(&series) {
        let bar = "#".repeat(((v / max) * 60.0).round() as usize);
        println!("{alpha:>6} | {bar}");
    }
}
