//! A faulty, controlled diurnal stream with the tracer armed: the full
//! observability surface in one run, exported as a Chrome trace you can
//! open in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! The load swings across the machine's ~0.3 j/s service capacity while a
//! seeded fault plan injects transient kernel failures and crash/repair
//! episodes, and the `apt-control` stack re-tunes (α, ρ) at every window
//! close. A [`VecSink`] records every event the run emits; the timeline
//! then shows one span track per processor (kernels with `xfer`/`exec`
//! sub-slices, APT alternative placements colored and annotated with
//! their Eq.-8 provenance), a driver track of admissions / sheds /
//! retirements / control actions, crash and repair instants, and counter
//! tracks for in-flight jobs, live α/ρ, and per-window miss rate. The
//! same events feed the §2.5.1 λ-delay summary printed at the end.
//!
//! ```bash
//! cargo run --release -p apt-suite --example traced_stream [out.json] [jobs] [peak_jps]
//! ```

use apt_stream::{DeadlineSpec, DiurnalSource, DriverOpts, JobFamily};
use apt_suite::control::{
    AimdAdmission, AimdConfig, AlphaConfig, AlphaController, ControllerStack,
};
use apt_suite::prelude::*;
use apt_suite::slo::UtilizationBound;
use apt_suite::trace::chrome::{chrome_trace, validate, ChromeConfig};
use apt_suite::trace::summary::render_summary;
use apt_suite::trace::VecSink;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| "trace.json".to_string());
    let jobs: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let peak: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.8);

    let lookup = LookupTable::paper();
    let system = SystemConfig::paper_4gbps();
    let window = SimDuration::from_ms(20_000);

    // 0.1 j/s troughs to `peak` j/s peaks over a 10-minute day, deadlines
    // 6× each job's critical path.
    let mut source = DiurnalSource::new(
        lookup,
        0.1,
        peak - 0.1,
        SimDuration::from_ms(600_000),
        jobs,
        JobFamily::Diamond { width: 2 },
        0x7ACE,
    )
    .with_deadlines(DeadlineSpec::ProportionalCp { factor: 6.0 });

    // A machine that breaks: 5% transient kernel failures plus
    // crash/repair cycles (MTTF 60 s, MTTR 10 s per processor).
    let opts = DriverOpts {
        snapshot_interval: Some(window),
        faults: FaultPlan::seeded(0xFA17)
            .with_transient(0.05)
            .with_crashes(SimDuration::from_ms(60_000), SimDuration::from_ms(10_000)),
        retry: RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        },
        ..DriverOpts::default()
    };

    let mut policy = EdfApt::new(PAPER_BEST_ALPHA);
    let mut gate = UtilizationBound::new(lookup, &system, 1.0);
    let mut stack = ControllerStack::new(vec![
        Box::new(AimdAdmission::new(1.0, AimdConfig::default())),
        Box::new(AlphaController::new(
            PAPER_BEST_ALPHA,
            AlphaConfig::default(),
        )),
    ]);

    println!(
        "Traced stream: {jobs} diamond jobs, diurnal 0.1…{peak} j/s, faults armed,\n\
         EDF-APT(α = {PAPER_BEST_ALPHA}) behind UtilizationBound(ρ = 1) under the\n\
         AIMD + α-hill-climb stack, {}s windows — recording everything\n",
        window.as_ms_f64() / 1_000.0,
    );

    let (outcome, sink) = apt_stream::simulate_source_traced(
        &mut source,
        &system,
        lookup,
        &mut policy,
        &opts,
        &mut gate,
        Some(&mut stack),
        Box::new(VecSink::new()),
        |_| {},
    )
    .expect("traced run");
    let events = sink.snapshot();

    let names = system.procs().iter().map(|p| p.name.clone()).collect();
    let json = chrome_trace(&events, &ChromeConfig::with_proc_names(names));
    let stats = validate(&json).expect("export obeys the Chrome field contract");
    std::fs::write(&path, &json).expect("write trace file");

    println!(
        "jobs: {} admitted, {} completed, {} shed | faults: {} transient failures, \
         {} retries, {} crashes | {} control actions",
        outcome.jobs_admitted,
        outcome.jobs_completed,
        outcome.jobs_shed,
        outcome.faults.kernel_failures,
        outcome.faults.retries,
        outcome.faults.crashes,
        outcome.control_log.len(),
    );
    println!(
        "wrote {path}: {} events ({} kernel spans, {} alt, {} alt-decisions, \
         {} counter tracks) — open it in chrome://tracing or ui.perfetto.dev\n",
        stats.events,
        stats.spans,
        stats.alt_spans,
        stats.alt_decisions,
        stats.counter_tracks.len(),
    );
    print!("{}", render_summary(&events, 10));
}
