//! Arrival sources: lazy, seeded generators of `(arrival, job)` streams.
//!
//! The paper evaluates closed workloads (everything present at `t = 0`);
//! the ROADMAP's production north-star needs *open-system* evaluation under
//! sustained load. A [`Source`] yields arrivals one at a time, in
//! non-decreasing time order, so the streaming driver can admit each job
//! just-in-time and keep memory bounded by the jobs in flight — a million
//! arrivals are never materialized as a vector.
//!
//! Implementations:
//!
//! * [`PoissonSource`] — homogeneous Poisson arrivals (exponential
//!   inter-arrival gaps) at a fixed rate: the steady-traffic baseline.
//! * [`OnOffSource`] — a two-state Markov-modulated (on/off MMPP) process:
//!   bursts of Poisson arrivals separated by silent periods, the classic
//!   bursty-traffic model.
//! * [`DiurnalSource`] — an inhomogeneous Poisson process whose rate swings
//!   sinusoidally between a base and a peak over a configurable period
//!   (thinning construction), modelling day/night load cycles.
//! * [`TraceSource`] — replays an explicit `(arrival, job)` list, for tests
//!   and for captured traces.
//!
//! Every stochastic source draws its kernels from the [`LookupTable`] you
//! hand it — the same table the driver schedules against, so generated
//! data sizes always exist in the cost model.
//!
//! All randomness comes from the workspace's own [`SplitMix64`], so a
//! `(seed, parameters)` pair reproduces the identical stream forever. The
//! exponential/thinning draws go through `f64::ln`, which is deterministic
//! per platform (and pinned by the determinism tests on any one machine).

use crate::deadline::DeadlineSpec;
use crate::job::{JobFamily, JobTemplate};
use apt_base::{SimDuration, SimTime};
use apt_dfg::{LookupTable, SplitMix64};

/// Salt separating a source's deadline-draw RNG stream from its
/// arrival/kernel stream, so tagging deadlines onto an existing source
/// never shifts the jobs it yields.
const DEADLINE_STREAM_SALT: u64 = 0x0510_DEAD_1155;

/// A lazy stream of jobs with non-decreasing arrival instants.
pub trait Source {
    /// The next arrival, or `None` when the source is exhausted. Arrival
    /// instants must be non-decreasing call to call (the driver asserts
    /// this).
    fn next_job(&mut self) -> Option<(SimTime, JobTemplate)>;

    /// Remaining jobs, if the source knows (used only for progress
    /// reporting).
    fn remaining_hint(&self) -> Option<u64> {
        None
    }
}

/// Uniform f64 in `[0, 1)` from the top 53 bits of one draw.
fn unit(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Exponential gap with the given mean, in whole nanoseconds (≥ 1, so time
/// strictly advances even at extreme rates).
fn exp_gap_ns(rng: &mut SplitMix64, mean_ns: f64) -> u64 {
    let u = unit(rng);
    let gap = -mean_ns * (1.0 - u).ln();
    (gap.round() as u64).max(1)
}

/// Homogeneous Poisson arrivals of one job family.
#[derive(Debug, Clone)]
pub struct PoissonSource<'a> {
    lookup: &'a LookupTable,
    family: JobFamily,
    rng: SplitMix64,
    mean_gap_ns: f64,
    t_ns: u64,
    remaining: u64,
    deadlines: DeadlineSpec,
    deadline_rng: SplitMix64,
}

impl<'a> PoissonSource<'a> {
    /// `jobs` arrivals at `rate` jobs per simulated second, drawn from
    /// `seed`, instantiating kernels from `lookup` (pass the same table the
    /// driver schedules against — [`LookupTable::paper`] for the paper
    /// machine). Panics on a non-positive rate.
    pub fn new(
        lookup: &'a LookupTable,
        rate_per_sec: f64,
        jobs: u64,
        family: JobFamily,
        seed: u64,
    ) -> PoissonSource<'a> {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive, got {rate_per_sec}"
        );
        PoissonSource {
            lookup,
            family,
            rng: SplitMix64::new(seed),
            mean_gap_ns: 1e9 / rate_per_sec,
            t_ns: 0,
            remaining: jobs,
            deadlines: DeadlineSpec::None,
            deadline_rng: SplitMix64::new(seed ^ DEADLINE_STREAM_SALT),
        }
    }

    /// Tag every yielded job with a relative deadline per `spec`. Deadline
    /// draws use a dedicated RNG stream, so arrivals and kernels are
    /// unchanged from the untagged source.
    pub fn with_deadlines(mut self, spec: DeadlineSpec) -> PoissonSource<'a> {
        self.deadlines = spec;
        self
    }
}

impl Source for PoissonSource<'_> {
    fn next_job(&mut self) -> Option<(SimTime, JobTemplate)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.t_ns += exp_gap_ns(&mut self.rng, self.mean_gap_ns);
        let job = self.family.instantiate(&mut self.rng, self.lookup);
        let job = self.deadlines.tag(&mut self.deadline_rng, job, self.lookup);
        Some((SimTime::from_ns(self.t_ns), job))
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

/// Bursty on/off (two-state MMPP) arrivals: exponential ON periods emitting
/// Poisson arrivals at `burst_rate`, separated by exponential OFF silences.
#[derive(Debug, Clone)]
pub struct OnOffSource<'a> {
    lookup: &'a LookupTable,
    family: JobFamily,
    rng: SplitMix64,
    burst_gap_ns: f64,
    mean_on_ns: f64,
    mean_off_ns: f64,
    t_ns: u64,
    on_end_ns: u64,
    remaining: u64,
    deadlines: DeadlineSpec,
    deadline_rng: SplitMix64,
}

impl<'a> OnOffSource<'a> {
    /// `jobs` arrivals in bursts: Poisson at `burst_rate` jobs/s while ON,
    /// with exponential ON/OFF period durations of the given means.
    /// Kernels are instantiated from `lookup`.
    pub fn new(
        lookup: &'a LookupTable,
        burst_rate_per_sec: f64,
        mean_on: SimDuration,
        mean_off: SimDuration,
        jobs: u64,
        family: JobFamily,
        seed: u64,
    ) -> OnOffSource<'a> {
        assert!(
            burst_rate_per_sec > 0.0 && burst_rate_per_sec.is_finite(),
            "burst rate must be positive, got {burst_rate_per_sec}"
        );
        assert!(!mean_on.is_zero(), "mean ON period must be positive");
        assert!(!mean_off.is_zero(), "mean OFF period must be positive");
        let mut rng = SplitMix64::new(seed);
        let mean_on_ns = mean_on.as_ns() as f64;
        let on_end_ns = exp_gap_ns(&mut rng, mean_on_ns);
        OnOffSource {
            lookup,
            family,
            rng,
            burst_gap_ns: 1e9 / burst_rate_per_sec,
            mean_on_ns,
            mean_off_ns: mean_off.as_ns() as f64,
            t_ns: 0,
            on_end_ns,
            remaining: jobs,
            deadlines: DeadlineSpec::None,
            deadline_rng: SplitMix64::new(seed ^ DEADLINE_STREAM_SALT),
        }
    }

    /// Tag every yielded job with a relative deadline per `spec` (dedicated
    /// RNG stream; arrivals and kernels unchanged).
    pub fn with_deadlines(mut self, spec: DeadlineSpec) -> OnOffSource<'a> {
        self.deadlines = spec;
        self
    }
}

impl Source for OnOffSource<'_> {
    fn next_job(&mut self) -> Option<(SimTime, JobTemplate)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        loop {
            let gap = exp_gap_ns(&mut self.rng, self.burst_gap_ns);
            if self.t_ns + gap <= self.on_end_ns {
                self.t_ns += gap;
                break;
            }
            // The burst ended before this arrival: skip the OFF silence and
            // start the next ON period. (The rejected gap is simply
            // redrawn — the exponential's memorylessness keeps the process
            // well-defined.)
            let off = exp_gap_ns(&mut self.rng, self.mean_off_ns);
            let on = exp_gap_ns(&mut self.rng, self.mean_on_ns);
            self.t_ns = self.on_end_ns + off;
            self.on_end_ns = self.t_ns + on;
        }
        let job = self.family.instantiate(&mut self.rng, self.lookup);
        let job = self.deadlines.tag(&mut self.deadline_rng, job, self.lookup);
        Some((SimTime::from_ns(self.t_ns), job))
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

/// Diurnal (inhomogeneous Poisson) arrivals: the rate swings sinusoidally
/// between `base_rate` and `base_rate + swing_rate` with the given period,
/// realized by thinning a homogeneous process at the peak rate.
#[derive(Debug, Clone)]
pub struct DiurnalSource<'a> {
    lookup: &'a LookupTable,
    family: JobFamily,
    rng: SplitMix64,
    base_rate: f64,
    swing_rate: f64,
    period_ns: f64,
    peak_gap_ns: f64,
    t_ns: u64,
    remaining: u64,
    deadlines: DeadlineSpec,
    deadline_rng: SplitMix64,
}

impl<'a> DiurnalSource<'a> {
    /// `jobs` arrivals with instantaneous rate
    /// `base + swing · sin²(π t / period)` jobs per second. Kernels are
    /// instantiated from `lookup`.
    pub fn new(
        lookup: &'a LookupTable,
        base_rate_per_sec: f64,
        swing_rate_per_sec: f64,
        period: SimDuration,
        jobs: u64,
        family: JobFamily,
        seed: u64,
    ) -> DiurnalSource<'a> {
        assert!(
            base_rate_per_sec > 0.0 && swing_rate_per_sec >= 0.0,
            "diurnal rates must be positive / non-negative"
        );
        assert!(!period.is_zero(), "diurnal period must be positive");
        DiurnalSource {
            lookup,
            family,
            rng: SplitMix64::new(seed),
            base_rate: base_rate_per_sec,
            swing_rate: swing_rate_per_sec,
            period_ns: period.as_ns() as f64,
            peak_gap_ns: 1e9 / (base_rate_per_sec + swing_rate_per_sec),
            t_ns: 0,
            remaining: jobs,
            deadlines: DeadlineSpec::None,
            deadline_rng: SplitMix64::new(seed ^ DEADLINE_STREAM_SALT),
        }
    }

    /// Tag every yielded job with a relative deadline per `spec` (dedicated
    /// RNG stream; arrivals and kernels unchanged).
    pub fn with_deadlines(mut self, spec: DeadlineSpec) -> DiurnalSource<'a> {
        self.deadlines = spec;
        self
    }

    /// Instantaneous rate at `t_ns`, jobs per second.
    fn rate_at(&self, t_ns: u64) -> f64 {
        let phase = std::f64::consts::PI * (t_ns as f64 / self.period_ns);
        self.base_rate + self.swing_rate * phase.sin().powi(2)
    }
}

impl Source for DiurnalSource<'_> {
    fn next_job(&mut self) -> Option<(SimTime, JobTemplate)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Thinning (Lewis & Shedler): candidates at the peak rate, accepted
        // with probability rate(t) / peak_rate.
        let peak = self.base_rate + self.swing_rate;
        loop {
            self.t_ns += exp_gap_ns(&mut self.rng, self.peak_gap_ns);
            let accept = self.rate_at(self.t_ns) / peak;
            if unit(&mut self.rng) < accept {
                break;
            }
        }
        let job = self.family.instantiate(&mut self.rng, self.lookup);
        let job = self.deadlines.tag(&mut self.deadline_rng, job, self.lookup);
        Some((SimTime::from_ns(self.t_ns), job))
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

/// Replays an explicit arrival list (tests, captured traces).
#[derive(Debug, Clone)]
pub struct TraceSource {
    jobs: std::vec::IntoIter<(SimTime, JobTemplate)>,
}

impl TraceSource {
    /// A source over an explicit list. Disorder in the list is *not*
    /// checked here — the driver reports a typed
    /// [`BaseError::DisorderedArrival`](apt_base::BaseError::DisorderedArrival)
    /// the moment an out-of-order arrival is pulled, so a bad captured
    /// trace fails the run gracefully instead of panicking at
    /// construction. Use [`TraceSource::try_new`] to validate up front.
    pub fn new(jobs: Vec<(SimTime, JobTemplate)>) -> TraceSource {
        TraceSource {
            jobs: jobs.into_iter(),
        }
    }

    /// A source over an explicit list, validated eagerly: returns
    /// [`BaseError::DisorderedArrival`](apt_base::BaseError::DisorderedArrival)
    /// naming the first offending pair if the arrivals ever decrease.
    pub fn try_new(jobs: Vec<(SimTime, JobTemplate)>) -> Result<TraceSource, apt_base::BaseError> {
        if let Some(w) = jobs.windows(2).find(|w| w[1].0 < w[0].0) {
            return Err(apt_base::BaseError::DisorderedArrival {
                at_ns: w[1].0.as_ns(),
                prev_ns: w[0].0.as_ns(),
            });
        }
        Ok(TraceSource {
            jobs: jobs.into_iter(),
        })
    }
}

impl Source for TraceSource {
    fn next_job(&mut self) -> Option<(SimTime, JobTemplate)> {
        self.jobs.next()
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.jobs.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(source: &mut dyn Source) -> Vec<(SimTime, JobTemplate)> {
        std::iter::from_fn(|| source.next_job()).collect()
    }

    #[test]
    fn poisson_is_seed_deterministic_and_monotone() {
        let mut a = PoissonSource::new(
            LookupTable::paper(),
            25.0,
            200,
            JobFamily::Diamond { width: 2 },
            9,
        );
        let mut b = PoissonSource::new(
            LookupTable::paper(),
            25.0,
            200,
            JobFamily::Diamond { width: 2 },
            9,
        );
        let ja = drain(&mut a);
        let jb = drain(&mut b);
        assert_eq!(ja, jb);
        assert_eq!(ja.len(), 200);
        assert!(ja.windows(2).all(|w| w[0].0 <= w[1].0));
        // Mean gap should be near 40 ms for rate 25/s over 200 draws.
        let span = ja.last().unwrap().0.as_ns() as f64 / 200.0;
        assert!((20e6..80e6).contains(&span), "mean gap {span} ns off");
        // A different seed shifts the arrivals.
        let jc = drain(&mut PoissonSource::new(
            LookupTable::paper(),
            25.0,
            200,
            JobFamily::Diamond { width: 2 },
            10,
        ));
        assert_ne!(ja, jc);
    }

    #[test]
    fn deadline_tagging_never_shifts_the_stream() {
        use crate::deadline::DeadlineSpec;
        // The same seed with and without deadlines: identical arrivals and
        // kernels, only the deadline tag differs (dedicated RNG stream).
        let plain = drain(&mut PoissonSource::new(
            LookupTable::paper(),
            10.0,
            100,
            JobFamily::Chain { len: 2 },
            21,
        ));
        let tagged = drain(
            &mut PoissonSource::new(
                LookupTable::paper(),
                10.0,
                100,
                JobFamily::Chain { len: 2 },
                21,
            )
            .with_deadlines(DeadlineSpec::Uniform {
                lo: SimDuration::from_ms(100),
                hi: SimDuration::from_ms(900),
            }),
        );
        assert_eq!(plain.len(), tagged.len());
        for ((ta, ja), (tb, jb)) in plain.iter().zip(&tagged) {
            assert_eq!(ta, tb, "deadline tagging moved an arrival");
            assert_eq!(ja.kernels(), jb.kernels());
            assert_eq!(ja.edges(), jb.edges());
            assert_eq!(ja.deadline(), None);
            assert!(jb.deadline().is_some());
        }
        // And tagged replay is seed-deterministic.
        let again = drain(
            &mut PoissonSource::new(
                LookupTable::paper(),
                10.0,
                100,
                JobFamily::Chain { len: 2 },
                21,
            )
            .with_deadlines(DeadlineSpec::Uniform {
                lo: SimDuration::from_ms(100),
                hi: SimDuration::from_ms(900),
            }),
        );
        assert_eq!(tagged, again);
        // Proportional deadlines scale each job's own critical path.
        let prop = drain(
            &mut OnOffSource::new(
                LookupTable::paper(),
                50.0,
                SimDuration::from_ms(100),
                SimDuration::from_ms(400),
                20,
                JobFamily::Diamond { width: 2 },
                3,
            )
            .with_deadlines(DeadlineSpec::ProportionalCp { factor: 3.0 }),
        );
        for (_, job) in &prop {
            assert_eq!(
                job.deadline(),
                Some(job.critical_path_min(LookupTable::paper()).scale_alpha(3.0))
            );
        }
        // Diurnal sources tag too.
        let diurnal = drain(
            &mut DiurnalSource::new(
                LookupTable::paper(),
                5.0,
                10.0,
                SimDuration::from_ms(5_000),
                10,
                JobFamily::Single,
                8,
            )
            .with_deadlines(DeadlineSpec::Fixed(SimDuration::from_ms(777))),
        );
        assert!(diurnal
            .iter()
            .all(|(_, j)| j.deadline() == Some(SimDuration::from_ms(777))));
    }

    #[test]
    fn on_off_bursts_cluster_arrivals() {
        let mut s = OnOffSource::new(
            LookupTable::paper(),
            200.0,
            SimDuration::from_ms(50),
            SimDuration::from_ms(1_000),
            300,
            JobFamily::Single,
            3,
        );
        let jobs = drain(&mut s);
        assert_eq!(jobs.len(), 300);
        assert!(jobs.windows(2).all(|w| w[0].0 <= w[1].0));
        // Burstiness: many tiny gaps (intra-burst) and some huge ones
        // (inter-burst silences).
        let gaps: Vec<u64> = jobs.windows(2).map(|w| (w[1].0 - w[0].0).as_ns()).collect();
        let tiny = gaps.iter().filter(|&&g| g < 20_000_000).count();
        let huge = gaps.iter().filter(|&&g| g > 300_000_000).count();
        assert!(tiny > gaps.len() / 2, "no intra-burst clustering");
        assert!(huge > 0, "no inter-burst silences");
    }

    #[test]
    fn diurnal_rate_swings_between_base_and_peak() {
        let period = SimDuration::from_ms(10_000);
        let mut s = DiurnalSource::new(
            LookupTable::paper(),
            2.0,
            40.0,
            period,
            2_000,
            JobFamily::Single,
            11,
        );
        let jobs = drain(&mut s);
        assert!(jobs.windows(2).all(|w| w[0].0 <= w[1].0));
        // Count arrivals landing in rate-trough vs rate-crest halves of the
        // cycle: crest phases (sin² > ½) must dominate.
        let mut crest = 0usize;
        let mut trough = 0usize;
        for (t, _) in &jobs {
            let phase = std::f64::consts::PI * (t.as_ns() as f64 / period.as_ns() as f64);
            if phase.sin().powi(2) > 0.5 {
                crest += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            crest > trough * 2,
            "diurnal swing invisible: {crest} crest vs {trough} trough"
        );
    }

    #[test]
    fn trace_source_replays_and_rejects_disorder() {
        let lookup = LookupTable::paper();
        let mut rng = SplitMix64::new(1);
        let t0 = JobFamily::Single.instantiate(&mut rng, lookup);
        let t1 = JobFamily::Single.instantiate(&mut rng, lookup);
        let mut s = TraceSource::new(vec![
            (SimTime::from_ms(5), t0.clone()),
            (SimTime::from_ms(9), t1.clone()),
        ]);
        assert_eq!(s.remaining_hint(), Some(2));
        assert_eq!(s.next_job(), Some((SimTime::from_ms(5), t0.clone())));
        assert_eq!(s.next_job(), Some((SimTime::from_ms(9), t1.clone())));
        assert_eq!(s.next_job(), None);
        assert_eq!(s.next_job(), None, "end of trace stays a clean None");
        assert_eq!(s.remaining_hint(), Some(0));
        // Eager validation names the first offending pair with a typed
        // error instead of a panic.
        let result = TraceSource::try_new(vec![
            (SimTime::from_ms(9), t0.clone()),
            (SimTime::from_ms(5), t1.clone()),
        ]);
        match result {
            Err(apt_base::BaseError::DisorderedArrival { at_ns, prev_ns }) => {
                assert_eq!(at_ns, SimTime::from_ms(5).as_ns());
                assert_eq!(prev_ns, SimTime::from_ms(9).as_ns());
            }
            other => panic!("expected DisorderedArrival, got {other:?}"),
        }
        // The unchecked constructor never panics; the driver rejects the
        // stream at run time instead (see driver::tests).
        let mut lazy = TraceSource::new(vec![(SimTime::from_ms(9), t0), (SimTime::from_ms(5), t1)]);
        assert!(lazy.next_job().is_some());
        assert!(lazy.next_job().is_some());
        assert!(
            TraceSource::try_new(vec![]).is_ok(),
            "empty trace is a valid (instantly dry) source"
        );
    }
}
