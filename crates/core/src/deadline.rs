//! Deadline-aware APT variants: **EDF-APT** and **LL-APT**.
//!
//! The paper's APT iterates the ready list first-come-first-serve and
//! admits an alternative processor whenever its cost sits within `α·x`
//! (Eq. 8) — timeliness never enters the decision. Once jobs carry
//! deadlines (the `apt-stream`/`apt-slo` open-system axis), two classic
//! real-time orderings graft naturally onto Algorithm 1:
//!
//! * [`EdfApt`] — *earliest absolute deadline first*: the ready list is
//!   processed in ascending `(deadline, FCFS)` order, deadline-free
//!   kernels last; the per-kernel processor choice is exactly APT's.
//!   Running plain [`crate::Apt`] on an open engine in
//!   `ReadyOrder::EarliestDeadline` mode produces the identical schedule
//!   (pinned by a differential test in `apt-slo`) — this policy carries
//!   the ordering itself so it works under any engine.
//! * [`LlApt`] — *least laxity first* with a laxity-dependent threshold:
//!   kernels are ordered by `laxity = slack − x` (slack = time to
//!   deadline, `x` = best execution time), and the alternative-processor
//!   threshold **shrinks as slack evaporates**:
//!
//!   ```text
//!   threshold = clamp(slack, x, α·x)
//!   ```
//!
//!   A kernel with hours of slack behaves like plain APT (threshold
//!   `α·x`); one whose deadline is approaching only accepts alternatives
//!   that can still finish inside the remaining slack; one already past
//!   hope degenerates to MET (threshold `x`, wait for `p_min`) rather
//!   than burning a slow processor on a job that will be tardy anyway.
//!   Deadline-free kernels keep the full `α·x` and sort last.
//!
//! Both emit their whole per-instant fixpoint in one `decide` pass like
//! APT (local idle-mask claims); on deadline-free workloads both reduce
//! byte-identically to APT, which is what lets the streaming equivalence
//! suite replay them against `simulate_stream`.

use crate::apt::find_alternative_in;
use apt_base::SimDuration;
use apt_dfg::NodeId;
use apt_hetsim::{Assignment, AssignmentBuf, DecisionMeta, Policy, PolicyKind, SimView};
use apt_policies::common::best_instance_in;

/// Sort the ready set into `buf` by an explicit per-node key, FCFS within
/// equal keys (the ready set already iterates FCFS, and the sort is
/// stable by construction: position is the tiebreak).
fn order_ready(
    view: &SimView<'_>,
    buf: &mut Vec<(u64, u32, NodeId)>,
    mut key: impl FnMut(&SimView<'_>, NodeId) -> u64,
) {
    buf.clear();
    for (pos, node) in view.ready.iter().enumerate() {
        buf.push((key(view, node), pos as u32, node));
    }
    buf.sort_unstable();
}

/// One APT processor-selection step for `node` against the batch's
/// remaining idle set, with an explicit admission threshold. Returns the
/// claimed assignment, with decision provenance on the alternative path
/// (best-processor placements need no explanation), or `None` to keep
/// waiting for `p_min`.
fn apt_step(
    view: &SimView<'_>,
    node: NodeId,
    threshold_of: impl FnOnce(SimDuration) -> SimDuration,
    idle: u64,
) -> Option<(Assignment, Option<DecisionMeta>)> {
    let best = best_instance_in(view, node, idle)?;
    if best.idle {
        return Some((Assignment::new(node, best.proc), None));
    }
    let threshold = threshold_of(best.exec);
    find_alternative_in(view, node, best.proc, threshold, idle).map(|(p_alt, cost)| {
        (
            Assignment::alternative(node, p_alt),
            Some(DecisionMeta {
                best_proc: best.proc,
                best_exec: best.exec,
                best_busy_until: view.proc(best.proc).busy_until,
                threshold,
                alt_cost: cost,
            }),
        )
    })
}

/// Apply one [`apt_step`] result: route explained (alternative) decisions
/// through [`AssignmentBuf::push_explained`], plain ones through `push`.
#[inline]
fn push_step(out: &mut AssignmentBuf, a: Assignment, why: Option<DecisionMeta>) {
    match why {
        Some(m) => out.push_explained(a, m),
        None => out.push(a),
    }
}

/// APT with the ready list in earliest-absolute-deadline order.
#[derive(Debug, Clone)]
pub struct EdfApt {
    alpha: f64,
    /// Reusable `(deadline_ns, fcfs_pos, node)` ordering buffer.
    order: Vec<(u64, u32, NodeId)>,
}

impl EdfApt {
    /// An EDF-ordered APT scheduler with flexibility factor `α ≥ 1`
    /// (Eq. 8). Panics if `α < 1`, like [`crate::Apt`].
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha >= 1.0 && alpha.is_finite(),
            "EDF-APT requires a finite α ≥ 1 (Eq. 8), got {alpha}"
        );
        EdfApt {
            alpha,
            order: Vec::new(),
        }
    }

    /// The configured flexibility factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Set the flexibility factor at runtime, clamped like
    /// [`crate::Apt::set_alpha`] (finite, ≥ 1; non-finite ignored).
    pub fn set_alpha(&mut self, alpha: f64) {
        if alpha.is_finite() {
            self.alpha = alpha.max(1.0);
        }
    }
}

impl Policy for EdfApt {
    fn name(&self) -> String {
        format!("EDF-APT(α={})", self.alpha)
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Dynamic
    }

    fn alpha(&self) -> Option<f64> {
        Some(self.alpha)
    }

    fn set_alpha(&mut self, alpha: f64) -> bool {
        EdfApt::set_alpha(self, alpha);
        true
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
        let mut order = std::mem::take(&mut self.order);
        // Deadline-free kernels report `MAX`, sorting after every real
        // deadline while keeping FCFS among themselves.
        order_ready(view, &mut order, |view, node| {
            view.deadline(node).map_or(u64::MAX, |d| d.as_ns())
        });
        let mut idle = view.idle_mask;
        for &(_, _, node) in &order {
            if idle == 0 {
                break;
            }
            let alpha = self.alpha;
            if let Some((a, why)) = apt_step(view, node, |x| x.scale_alpha(alpha), idle) {
                idle &= !(1 << a.proc.index());
                push_step(out, a, why);
            }
        }
        self.order = order;
    }
}

/// APT in least-laxity order with a slack-clamped admission threshold.
#[derive(Debug, Clone)]
pub struct LlApt {
    alpha: f64,
    /// Reusable `(laxity_ns, fcfs_pos, node)` ordering buffer.
    order: Vec<(u64, u32, NodeId)>,
}

impl LlApt {
    /// A least-laxity APT scheduler with flexibility factor `α ≥ 1`.
    /// Panics if `α < 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha >= 1.0 && alpha.is_finite(),
            "LL-APT requires a finite α ≥ 1, got {alpha}"
        );
        LlApt {
            alpha,
            order: Vec::new(),
        }
    }

    /// The configured flexibility factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Set the flexibility factor at runtime, clamped like
    /// [`crate::Apt::set_alpha`] (finite, ≥ 1; non-finite ignored).
    pub fn set_alpha(&mut self, alpha: f64) {
        if alpha.is_finite() {
            self.alpha = alpha.max(1.0);
        }
    }
}

impl Policy for LlApt {
    fn name(&self) -> String {
        format!("LL-APT(α={})", self.alpha)
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Dynamic
    }

    fn alpha(&self) -> Option<f64> {
        Some(self.alpha)
    }

    fn set_alpha(&mut self, alpha: f64) -> bool {
        LlApt::set_alpha(self, alpha);
        true
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
        let mut order = std::mem::take(&mut self.order);
        // Laxity = slack − best execution time, saturating at zero (an
        // already-hopeless kernel is maximally urgent). Deadline-free
        // kernels sort last via MAX.
        order_ready(view, &mut order, |view, node| {
            match (view.slack(node), view.cost.min_exec(node)) {
                (Some(slack), Some(x)) => slack.as_ns().saturating_sub(x.as_ns()),
                (Some(slack), None) => slack.as_ns(),
                (None, _) => u64::MAX,
            }
        });
        let mut idle = view.idle_mask;
        for &(_, _, node) in &order {
            if idle == 0 {
                break;
            }
            let alpha = self.alpha;
            let slack = view.slack(node);
            let threshold_of = move |x: SimDuration| {
                let full = x.scale_alpha(alpha);
                match slack {
                    // Plenty of slack → plain APT; evaporating slack →
                    // only alternatives that still fit inside it; none
                    // left → MET-like insistence on p_min.
                    Some(s) => s.max(x).min(full),
                    None => full,
                }
            };
            if let Some((a, why)) = apt_step(view, node, threshold_of, idle) {
                idle &= !(1 << a.proc.index());
                push_step(out, a, why);
            }
        }
        self.order = order;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Apt;
    use apt_base::{ProcKind, SimTime};
    use apt_dfg::generator::{build_type1, generate_kernels, StreamConfig};
    use apt_dfg::LookupTable;
    use apt_hetsim::{simulate, SystemConfig};

    #[test]
    #[should_panic(expected = "α ≥ 1")]
    fn edf_alpha_below_one_is_rejected() {
        let _ = EdfApt::new(0.9);
    }

    #[test]
    #[should_panic(expected = "α ≥ 1")]
    fn ll_alpha_below_one_is_rejected() {
        let _ = LlApt::new(0.5);
    }

    #[test]
    fn names_include_alpha() {
        assert_eq!(EdfApt::new(4.0).name(), "EDF-APT(α=4)");
        assert_eq!(LlApt::new(1.5).name(), "LL-APT(α=1.5)");
        assert_eq!(EdfApt::new(2.0).alpha(), 2.0);
        assert_eq!(LlApt::new(2.0).alpha(), 2.0);
    }

    /// Both deadline variants expose the same clamped runtime α knob as
    /// plain APT, through the inherent setter and the `Policy` hook alike.
    #[test]
    fn deadline_variants_clamp_runtime_alpha() {
        let mut edf = EdfApt::new(4.0);
        let mut ll = LlApt::new(4.0);
        assert_eq!(Policy::alpha(&edf), Some(4.0));
        assert_eq!(Policy::alpha(&ll), Some(4.0));
        assert!(Policy::set_alpha(&mut edf, 0.5));
        assert!(Policy::set_alpha(&mut ll, f64::NAN));
        assert_eq!(edf.alpha(), 1.0, "below-1 clamps to the Eq. 8 floor");
        assert_eq!(ll.alpha(), 4.0, "non-finite requests are ignored");
        edf.set_alpha(8.0);
        ll.set_alpha(2.0);
        assert_eq!(edf.alpha(), 8.0);
        assert_eq!(ll.alpha(), 2.0);
        assert!(
            !Policy::switch_to(&mut edf, 1),
            "leaf policies have no roster"
        );
    }

    /// On deadline-free (closed-world) workloads both variants reduce to
    /// plain APT byte for byte: every deadline key is MAX, so the order
    /// collapses to FCFS, and every threshold is the full α·x.
    #[test]
    fn deadline_free_runs_equal_plain_apt() {
        for seed in [3u64, 17, 44] {
            for alpha in [1.5, 4.0, 8.0] {
                let kernels = generate_kernels(&StreamConfig::new(50, seed), LookupTable::paper());
                let dfg = build_type1(&kernels);
                let cfg = SystemConfig::paper_4gbps();
                let apt = simulate(&dfg, &cfg, LookupTable::paper(), &mut Apt::new(alpha)).unwrap();
                let edf =
                    simulate(&dfg, &cfg, LookupTable::paper(), &mut EdfApt::new(alpha)).unwrap();
                let ll =
                    simulate(&dfg, &cfg, LookupTable::paper(), &mut LlApt::new(alpha)).unwrap();
                assert_eq!(apt.trace.records, edf.trace.records, "EDF seed {seed}");
                assert_eq!(apt.trace.records, ll.trace.records, "LL seed {seed}");
            }
        }
    }

    /// EDF ordering: with one idle FPGA and two FPGA-best kernels ready,
    /// the one whose job deadline is earlier gets it — even though FCFS
    /// would hand it to the earlier admission.
    #[test]
    fn edf_prefers_the_tighter_deadline() {
        use apt_dfg::{Kernel, KernelKind};
        use apt_hetsim::{OpenEngine, ReadyOrder};
        let bfs = Kernel::canonical(KernelKind::Bfs);
        let config = SystemConfig::paper_no_transfers();
        let lookup = LookupTable::paper();
        // FCFS engine, self-ordering EDF-APT policy.
        let mut engine = OpenEngine::with_order(&config, lookup, ReadyOrder::Admission).unwrap();
        let mut policy = EdfApt::new(1.0); // α = 1: best processor only
        engine
            .admit_with_deadline(&[bfs], &[], SimTime::ZERO, Some(SimTime::from_ms(9_000)))
            .unwrap();
        engine
            .admit_with_deadline(&[bfs], &[], SimTime::ZERO, Some(SimTime::from_ms(300)))
            .unwrap();
        while engine.step(&mut policy).unwrap().is_some() {}
        let mut done = Vec::new();
        engine.drain_completed(&mut done);
        assert_eq!(done.len(), 2);
        let tight = done
            .iter()
            .find(|j| j.deadline == Some(SimTime::from_ms(300)))
            .unwrap();
        let loose = done
            .iter()
            .find(|j| j.deadline == Some(SimTime::from_ms(9_000)))
            .unwrap();
        // The tight job ran first on the shared best processor (FPGA).
        assert_eq!(config.kind_of(tight.records[0].proc), ProcKind::Fpga);
        assert!(tight.records[0].start < loose.records[0].start);
        assert!(!tight.missed_deadline(), "106 ms run against 300 ms");
    }

    /// The laxity clamp: a kernel whose slack no longer covers the
    /// alternative's cost waits for p_min where plain APT would jump.
    #[test]
    fn ll_apt_rejects_alternatives_that_no_longer_fit_the_slack() {
        use apt_dfg::{Kernel, KernelKind};
        use apt_hetsim::{OpenEngine, ReadyOrder};
        let bfs = Kernel::canonical(KernelKind::Bfs); // FPGA 106, GPU 173
        let config = SystemConfig::paper_no_transfers();
        let lookup = LookupTable::paper();
        let arrive = SimTime::from_ms(1);
        let run = |deadline: Option<SimTime>| {
            let mut engine =
                OpenEngine::with_order(&config, lookup, ReadyOrder::Admission).unwrap();
            let mut policy = LlApt::new(8.0);
            // Job 0 grabs the idle FPGA at t = 0; the deadline job then
            // arrives at t = 1 ms to find it busy until 106 ms, facing the
            // jump-or-wait choice with its slack already ticking.
            engine.admit(&[bfs], &[], SimTime::ZERO).unwrap();
            engine
                .admit_with_deadline(&[bfs], &[], arrive, deadline)
                .unwrap();
            while engine.step(&mut policy).unwrap().is_some() {}
            let mut done = Vec::new();
            engine.drain_completed(&mut done);
            done.into_iter().find(|j| j.job.0 == 1).unwrap()
        };
        // Slack 150 ms < GPU cost 173 ms → the clamp rejects the jump:
        // wait for the FPGA (tardy, but tardier still on the GPU).
        let tight = run(Some(arrive + SimDuration::from_ms(150)));
        assert_eq!(config.kind_of(tight.records[0].proc), ProcKind::Fpga);
        assert!(!tight.records[0].alt);
        assert_eq!(tight.records[0].start, SimTime::from_ms(106));
        // Slack 400 ms ≥ 173 → the alternative fits and is taken on
        // arrival.
        let roomy = run(Some(arrive + SimDuration::from_ms(400)));
        assert_eq!(config.kind_of(roomy.records[0].proc), ProcKind::Gpu);
        assert!(roomy.records[0].alt);
        assert_eq!(roomy.records[0].start, arrive);
        assert!(!roomy.missed_deadline());
        // No deadline → plain APT behaviour (alternative taken).
        let free = run(None);
        assert_eq!(config.kind_of(free.records[0].proc), ProcKind::Gpu);
    }
}
