//! Diagnostic probe: print per-policy average makespans and λ totals for
//! the canonical experiment matrices — the raw numbers behind Tables 8–13
//! in one compact dump, useful when investigating a shape regression.
//!
//! ```bash
//! cargo run --release -p apt-experiments --example lambda_probe
//! ```

use apt_core::prelude::DfgType;
use apt_experiments::runner::{avg_lambda_ms, avg_makespans_ms, policy_matrix, Rate, POLICY_ORDER};

fn main() {
    for ty in [DfgType::Type1, DfgType::Type2] {
        for alpha in [1.5, 4.0] {
            let m = policy_matrix(ty, alpha, Rate::Gbps4);
            let lam = avg_lambda_ms(&m);
            let exec = avg_makespans_ms(&m);
            println!("{ty:?} alpha={alpha}");
            for (i, p) in POLICY_ORDER.iter().enumerate() {
                println!(
                    "  {p:5} exec {:>12.1} ms   lambda {:>12.1} ms",
                    exec[i], lam[i]
                );
            }
        }
    }
}
