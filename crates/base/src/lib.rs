//! # apt-base
//!
//! Foundation types shared by every crate in the APT reproduction workspace:
//!
//! * [`SimTime`] / [`SimDuration`] — fixed-point (integer nanosecond) simulation
//!   time. The paper's lookup table stores milliseconds with microsecond
//!   precision; integer nanoseconds represent every entry exactly, keep the
//!   event queue totally ordered without floating-point hazards, and make the
//!   Figure-5 golden schedule reproducible bit-for-bit.
//! * [`ProcKind`] — the processor *categories* of the paper (§3.2 generalizes
//!   measured times to the CPU / GPU / FPGA category rather than the specific
//!   device; ASIC is included for the Figure-1 system diagram and extensions).
//! * [`ProcId`] — index of a processor instance inside a simulated system.
//! * [`BaseError`] — the shared error type.
//! * [`stats`] — small numeric helpers (mean / stddev per Eq. 11–12).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod proc;
pub mod stats;
pub mod time;

pub use error::BaseError;
pub use proc::{ProcId, ProcKind};
pub use time::{SimDuration, SimTime};
