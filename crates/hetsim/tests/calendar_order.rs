//! Differential property test: [`CalendarQueue`] must dequeue in exactly
//! the `(time, seq)` order the engine's old `BinaryHeap<Reverse<(SimTime,
//! u64, E)>>` produced, on arbitrary interleavings of pushes and batch pops
//! — including the monotone-push constraint the engine guarantees (events
//! are only ever scheduled at or after the current instant).
//!
//! The batch semantics under test: one `pop_batch` returns *every* event at
//! the earliest pending instant, FIFO within the instant, and nothing else.

use apt_base::SimTime;
use apt_hetsim::CalendarQueue;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reference model: the old heap, drained batch-wise by peeking.
struct HeapModel {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    seq: u64,
}

impl HeapModel {
    fn new() -> Self {
        HeapModel {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    fn push(&mut self, t: SimTime, event: u32) {
        self.heap.push(Reverse((t, self.seq, event)));
        self.seq += 1;
    }

    /// The seed engine's pop + peek-drain loop, as one batch.
    fn pop_batch(&mut self) -> Option<(SimTime, Vec<u32>)> {
        let Reverse((t, _, first)) = self.heap.pop()?;
        let mut batch = vec![first];
        while let Some(Reverse((t2, _, _))) = self.heap.peek() {
            if *t2 != t {
                break;
            }
            let Reverse((_, _, e)) = self.heap.pop().expect("peeked");
            batch.push(e);
        }
        Some((t, batch))
    }
}

/// An operation script: positive offsets schedule an event that far past
/// the current instant (0 ⇒ at the current instant), `None` pops a batch.
fn run_script(offsets_ns: &[Option<u64>]) {
    let mut queue: CalendarQueue<u32> = CalendarQueue::new();
    let mut model = HeapModel::new();
    let mut now = SimTime::ZERO;
    let mut next_event = 0u32;
    let mut batch = Vec::new();
    for op in offsets_ns {
        match op {
            Some(offset) => {
                let t = SimTime::from_ns(now.as_ns() + offset);
                queue.push(t, next_event);
                model.push(t, next_event);
                next_event += 1;
            }
            None => {
                let got = queue.pop_batch(&mut batch).map(|t| (t, batch.clone()));
                let expected = model.pop_batch();
                assert_eq!(got, expected, "batch diverged from the heap order");
                if let Some((t, _)) = got {
                    now = t;
                }
            }
        }
    }
    // Drain both to the end: every remaining batch must agree too.
    loop {
        let got = queue.pop_batch(&mut batch).map(|t| (t, batch.clone()));
        let expected = model.pop_batch();
        assert_eq!(got, expected, "drain diverged from the heap order");
        if got.is_none() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary push/pop interleavings with offsets spanning sub-bucket
    /// collisions (tiny), cross-bucket spreads (ms), and overflow-distance
    /// jumps (minutes): the calendar queue's dequeue sequence is the heap's,
    /// batch for batch.
    #[test]
    fn dequeues_in_heap_order(
        ops in prop::collection::vec(
            prop::sample::select(vec![
                None, None, None,            // ~30% pops
                Some(0u64),                  // same instant as `now`
                Some(1), Some(7),            // same bucket
                Some(1 << 24),               // exactly one bucket over
                Some(5_000_000),             // a few buckets over
                Some(93_000_000),
                Some((64u64 << 24) + 1),     // just past the near window
                Some(600_000_000_000),       // far ring (minutes out)
                Some((65u64 << 30) + 3),     // just past the far horizon
                Some(3_600_000_000_000),     // deep overflow (an hour out)
            ]),
            0..120,
        ),
    ) {
        run_script(&ops);
    }

    /// Million-stream shape: a long monotone arrival ramp pushed up front
    /// (spanning near window, far ring, and deep overflow), popped while new
    /// near-term completions keep arriving — the exact access pattern of the
    /// open-stream driver. Order must still be the heap's.
    #[test]
    fn arrival_ramp_with_interleaved_completions(
        gaps in prop::collection::vec(
            prop::sample::select(vec![0u64, 50_000, 400_000_000, 17_000_000_000]),
            1..60,
        ),
        completions in prop::collection::vec(
            prop::sample::select(vec![1_000u64, 93_000_000, 106_000_000]),
            1..30,
        ),
    ) {
        // Arrivals: cumulative gaps from t = 0, all pushed before any pop.
        let mut ops: Vec<Option<u64>> = Vec::new();
        let mut t = 0u64;
        let mut arrivals = Vec::new();
        for g in &gaps {
            t += g;
            arrivals.push(t);
        }
        // Absolute arrival instants are offsets from now = 0 at push time.
        ops.extend(arrivals.iter().map(|&a| Some(a)));
        // Then interleave pops with near-term completion pushes.
        for c in &completions {
            ops.push(None);
            ops.push(Some(*c));
            ops.push(None);
        }
        run_script(&ops);
    }

    /// Duplicate instants reached via *different* offset paths still form
    /// single FIFO batches.
    #[test]
    fn duplicate_instants_batch_together(
        times in prop::collection::vec(prop::sample::select(
            vec![0u64, 1, 93_000, 93_000, 106_000_000, 106_000_000, 600_000_000_000],
        ), 1..40),
    ) {
        // All pushes up front (arrival-style), then drain.
        let ops: Vec<Option<u64>> = times.iter().map(|&t| Some(t)).collect();
        run_script(&ops);
    }
}

/// Unit pin (non-proptest) of the engine-facing batch contract: completions
/// scheduled at one instant from different pushes come back as one batch in
/// push order, and a later batch at the same instant stays separate.
#[test]
fn same_instant_batch_semantics_pin() {
    let mut q: CalendarQueue<u32> = CalendarQueue::new();
    let t = SimTime::from_ms(106);
    q.push(SimTime::from_ms(212), 30);
    q.push(t, 10);
    q.push(t, 11);
    q.push(SimTime::from_ms(212), 31);
    q.push(t, 12);

    let mut batch = Vec::new();
    assert_eq!(q.pop_batch(&mut batch), Some(t));
    assert_eq!(batch, vec![10, 11, 12], "FIFO within the instant");
    // Events scheduled *after* an instant was drained may still land on the
    // same clock reading; they form a new batch (the engine consults the
    // policy in between).
    q.push(t, 13);
    assert_eq!(q.pop_batch(&mut batch), Some(t));
    assert_eq!(batch, vec![13]);
    assert_eq!(q.pop_batch(&mut batch), Some(SimTime::from_ms(212)));
    assert_eq!(batch, vec![30, 31]);
    assert_eq!(q.pop_batch(&mut batch), None);
    assert!(q.is_empty());
}
