//! Integration tests of the artifact harness itself: id dispatch, output
//! formats, and cross-artifact consistency.

use apt_experiments::{all_artifact_ids, run_artifact, Artifact};

#[test]
fn artifact_ids_are_unique_and_dispatchable() {
    let ids = all_artifact_ids();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate artifact ids");
    // Cheap artifacts resolve end-to-end (the sweep-backed ones are
    // exercised by the table/figure test suites; here we only check the
    // registry has no dangling ids for them by probing one).
    for id in ["table1", "table7", "table14", "fig3", "fig4", "fig5"] {
        assert!(ids.contains(&id));
        assert!(run_artifact(id).is_some(), "artifact {id} not dispatchable");
    }
}

#[test]
fn text_artifacts_render_nonempty() {
    for id in ["table1", "fig3", "fig4", "fig5"] {
        let a = run_artifact(id).unwrap();
        let text = a.to_string();
        assert!(text.len() > 40, "{id} rendered suspiciously short: {text}");
        match a {
            Artifact::Text(_) => {}
            Artifact::Table(_) => panic!("{id} should be a text artifact"),
        }
    }
}

#[test]
fn table_artifacts_render_display_and_markdown() {
    let a = run_artifact("table14").unwrap();
    let Artifact::Table(t) = a else {
        panic!("table14 must be a table");
    };
    let display = t.to_string();
    let markdown = t.to_markdown();
    assert!(display.contains("| Cholesky Decomposition |"));
    assert!(markdown.starts_with("**Table 14"));
    // Title (2 newlines) + header + separator + one line per row.
    assert_eq!(markdown.matches('\n').count(), 4 + t.row_count());
}

#[test]
fn fig5_artifact_is_the_golden_walkthrough() {
    let a = run_artifact("fig5").unwrap();
    let s = a.to_string();
    assert!(s.contains("MET Schedule"));
    assert!(s.contains("APT Schedule (α = 8)"));
    assert!(s.contains("End time: 318.093"));
    assert!(s.contains("End time: 212.093"));
}

#[test]
fn unknown_ids_are_rejected() {
    for id in ["table99", "fig0", "", "all", "list"] {
        assert!(run_artifact(id).is_none(), "{id} should not dispatch");
    }
}
