//! Read-only simulator state exposed to policies.
//!
//! On every decision edge the engine snapshots the live state into a
//! [`SimView`]: the ready set `I`, the per-processor occupancy (from which
//! the available set `A` follows), finished-kernel locations (for data
//! transfer costs), and the shared lookup table. Dynamic policies see *only*
//! this — they never see the full DFG's future, matching §2.5.2's definition
//! of dynamic scheduling. (The DFG reference is exposed for successor/
//! predecessor queries; policies that want to remain faithfully dynamic
//! restrict themselves to the ready set and precedence edges of submitted
//! kernels, which is what all the implementations in this workspace do.)

use crate::system::SystemConfig;
use apt_base::{ProcId, ProcKind, SimDuration, SimTime};
use apt_dfg::{Kernel, KernelDag, LookupTable, NodeId};

/// Snapshot of one processor's occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcView {
    /// Which processor this is.
    pub id: ProcId,
    /// Its category.
    pub kind: ProcKind,
    /// The kernel currently executing (or transferring in), if any.
    pub running: Option<NodeId>,
    /// When the processor finishes everything currently started (equals the
    /// current time when idle).
    pub busy_until: SimTime,
    /// Number of assignments waiting in this processor's FIFO queue
    /// (excluding the running kernel). `N_g` minus the running slot in
    /// AG's Eq. 2 terms.
    pub queue_len: usize,
    /// Average execution time of the last few kernels assigned to this
    /// processor (`τ_k` in AG's Eq. 2); zero when nothing has been assigned.
    pub recent_avg_exec: SimDuration,
}

impl ProcView {
    /// A processor is *available* (in `A`) when it is neither executing nor
    /// holding queued work.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.running.is_none() && self.queue_len == 0
    }

    /// `N_g` of AG's Eq. 2: queued kernel calls, counting the running one.
    #[inline]
    pub fn ag_queue_count(&self) -> usize {
        self.queue_len + usize::from(self.running.is_some())
    }
}

/// The full decision-time snapshot handed to [`crate::Policy::decide`].
pub struct SimView<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The ready set `I`: kernels whose dependencies completed and which have
    /// not been assigned yet. Sorted by node id (deterministic iteration).
    pub ready: &'a [NodeId],
    /// Per-processor occupancy snapshots, indexed by [`ProcId`].
    pub procs: &'a [ProcView],
    /// The dataflow graph (for precedence queries).
    pub dfg: &'a KernelDag,
    /// Measured execution times.
    pub lookup: &'a LookupTable,
    /// The machine description.
    pub config: &'a SystemConfig,
    /// Where each finished kernel executed (`None` while unfinished),
    /// indexed by node id.
    pub locations: &'a [Option<ProcId>],
}

impl<'a> SimView<'a> {
    /// The kernel instance at a node.
    #[inline]
    pub fn kernel(&self, node: NodeId) -> &Kernel {
        self.dfg.node(node)
    }

    /// Execution time of `node` on processor `proc`; `None` when the lookup
    /// table has no entry for that category (the kernel cannot run there).
    pub fn exec_time(&self, node: NodeId, proc: ProcId) -> Option<SimDuration> {
        self.lookup
            .exec_time(self.kernel(node), self.config.kind_of(proc))
            .ok()
    }

    /// Where a finished kernel ran (`None` if it has not finished).
    #[inline]
    pub fn location(&self, node: NodeId) -> Option<ProcId> {
        self.locations[node.index()]
    }

    /// Input-transfer time if `node` were started on `proc` right now: the
    /// sum over predecessors resident on *other* processors of moving their
    /// output across the link. Same-processor inputs are free (the Eq. 6
    /// convention `c_ij = 0` when `p_w = p_k`).
    pub fn transfer_in_time(&self, node: NodeId, proc: ProcId) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for &pred in self.dfg.preds(node) {
            if let Some(loc) = self.location(pred) {
                if loc != proc {
                    let bytes = self
                        .dfg
                        .node(pred)
                        .bytes(self.config.bytes_per_element);
                    total += self.config.link.transfer_time(bytes);
                }
            }
        }
        total
    }

    /// Combined cost of placing `node` on `proc` now: input transfer plus
    /// execution. `None` if the kernel cannot run on that category.
    pub fn placement_cost(&self, node: NodeId, proc: ProcId) -> Option<SimDuration> {
        self.exec_time(node, proc)
            .map(|e| e + self.transfer_in_time(node, proc))
    }

    /// The processor instance with the minimum *execution* time for `node`
    /// (`p_min` and `x` of §3.1). Ties break toward the lowest processor id.
    /// `None` if no processor in the system can run the kernel.
    pub fn best_proc(&self, node: NodeId) -> Option<(ProcId, SimDuration)> {
        let mut best: Option<(ProcId, SimDuration)> = None;
        for p in self.procs {
            if let Some(e) = self.exec_time(node, p.id) {
                match best {
                    Some((_, be)) if be <= e => {}
                    _ => best = Some((p.id, e)),
                }
            }
        }
        best
    }

    /// Idle processors (the available set `A`), ascending id.
    pub fn idle_procs(&self) -> impl Iterator<Item = &ProcView> {
        self.procs.iter().filter(|p| p.is_idle())
    }

    /// True if any processor is idle.
    pub fn any_idle(&self) -> bool {
        self.procs.iter().any(|p| p.is_idle())
    }

    /// The snapshot for one processor.
    #[inline]
    pub fn proc(&self, id: ProcId) -> &ProcView {
        &self.procs[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_dfg::generator::build_type1;
    use apt_dfg::{Kernel, KernelKind, LookupTable};

    fn fixture() -> (KernelDag, &'static LookupTable, SystemConfig) {
        let kernels = vec![
            Kernel::canonical(KernelKind::NeedlemanWunsch),
            Kernel::canonical(KernelKind::Bfs),
            Kernel::new(KernelKind::Cholesky, 250_000),
        ];
        (
            build_type1(&kernels),
            LookupTable::paper(),
            SystemConfig::paper_4gbps(),
        )
    }

    fn idle_procs(config: &SystemConfig, now: SimTime) -> Vec<ProcView> {
        config
            .proc_ids()
            .map(|id| ProcView {
                id,
                kind: config.kind_of(id),
                running: None,
                busy_until: now,
                queue_len: 0,
                recent_avg_exec: SimDuration::ZERO,
            })
            .collect()
    }

    #[test]
    fn best_proc_matches_lookup_best_category() {
        let (dfg, lookup, config) = fixture();
        let procs = idle_procs(&config, SimTime::ZERO);
        let locations = vec![None; dfg.len()];
        let ready: Vec<NodeId> = dfg.sources();
        let view = SimView {
            now: SimTime::ZERO,
            ready: &ready,
            procs: &procs,
            dfg: &dfg,
            lookup,
            config: &config,
            locations: &locations,
        };
        // NW is CPU-best (112 ms), BFS FPGA-best (106 ms).
        let (p, t) = view.best_proc(NodeId::new(0)).unwrap();
        assert_eq!(config.kind_of(p), ProcKind::Cpu);
        assert_eq!(t, SimDuration::from_ms(112));
        let (p, t) = view.best_proc(NodeId::new(1)).unwrap();
        assert_eq!(config.kind_of(p), ProcKind::Fpga);
        assert_eq!(t, SimDuration::from_ms(106));
    }

    #[test]
    fn transfer_time_counts_only_remote_preds() {
        let (dfg, lookup, config) = fixture();
        let procs = idle_procs(&config, SimTime::ZERO);
        // Node 2 (cd) depends on nodes 0 and 1. Say node 0 ran on p0 and
        // node 1 on p2.
        let locations = vec![Some(ProcId::new(0)), Some(ProcId::new(2)), None];
        let ready = vec![NodeId::new(2)];
        let view = SimView {
            now: SimTime::ZERO,
            ready: &ready,
            procs: &procs,
            dfg: &dfg,
            lookup,
            config: &config,
            locations: &locations,
        };
        // Placing on p2: only node 0's output moves (nw: 16777216 el × 4 B at 4 GB/s).
        let nw_bytes = 16_777_216u64 * 4;
        let expected = config.link.transfer_time(nw_bytes);
        assert_eq!(view.transfer_in_time(NodeId::new(2), ProcId::new(2)), expected);
        // Placing on p1: both inputs move.
        let bfs_bytes = 2_034_736u64 * 4;
        let expected_both = config.link.transfer_time(nw_bytes) + config.link.transfer_time(bfs_bytes);
        assert_eq!(
            view.transfer_in_time(NodeId::new(2), ProcId::new(1)),
            expected_both
        );
        // placement_cost = transfer + exec.
        let exec = view.exec_time(NodeId::new(2), ProcId::new(2)).unwrap();
        assert_eq!(
            view.placement_cost(NodeId::new(2), ProcId::new(2)).unwrap(),
            expected + exec
        );
    }

    #[test]
    fn unfinished_preds_do_not_transfer_yet() {
        let (dfg, lookup, config) = fixture();
        let procs = idle_procs(&config, SimTime::ZERO);
        let locations = vec![None; dfg.len()];
        let ready: Vec<NodeId> = dfg.sources();
        let view = SimView {
            now: SimTime::ZERO,
            ready: &ready,
            procs: &procs,
            dfg: &dfg,
            lookup,
            config: &config,
            locations: &locations,
        };
        assert_eq!(
            view.transfer_in_time(NodeId::new(2), ProcId::new(0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn idle_detection_and_ag_count() {
        let p = ProcView {
            id: ProcId::new(0),
            kind: ProcKind::Cpu,
            running: Some(NodeId::new(1)),
            busy_until: SimTime::from_ms(5),
            queue_len: 2,
            recent_avg_exec: SimDuration::from_ms(3),
        };
        assert!(!p.is_idle());
        assert_eq!(p.ag_queue_count(), 3);
        let idle = ProcView {
            running: None,
            queue_len: 0,
            ..p
        };
        assert!(idle.is_idle());
        assert_eq!(idle.ag_queue_count(), 0);
    }
}
