//! APT-R — the paper's future-work refinement.
//!
//! Conclusion (§5): "In the future, we will consider the remaining execution
//! time in the optimal processor before deciding whether to assign to an
//! alternative processor, as part of the scheduling heuristic, which will
//! improve our current savings."
//!
//! APT admits `p_alt` whenever its cost is within `α·x`, even when `p_min`
//! is about to free up — occasionally paying (cost_alt − x) for nothing.
//! APT-R adds the obvious fix: an alternative is taken only when it also
//! beats *waiting*, i.e.
//!
//! ```text
//! cost_alt ≤ α·x                 (the APT threshold, Eq. 8)
//! cost_alt <  remaining(p_min) + transfer(p_min) + x   (waiting estimate)
//! ```
//!
//! where `remaining(p_min)` is how long the optimal processor stays busy.
//! The ablation bench `apt_r` quantifies the improvement this buys.
//!
//! Like MET and APT, APT-R emits its whole per-instant fixpoint in one
//! `decide` pass. APT-R additionally reads `busy_until`, which *does*
//! change within the instant for processors the batch itself claims — so
//! the pass tracks a local finish estimate per claimed processor, computed
//! with exactly the engine's `start = now, finish = now + transfer + exec`
//! arithmetic. Byte-identical to the one-assignment-per-call form (pinned
//! by the engine-equivalence suite).

use apt_base::{ProcId, SimDuration, SimTime};
use apt_hetsim::{Assignment, AssignmentBuf, DecisionMeta, Policy, PolicyKind, SimView};
use apt_policies::common::best_instance_in;

/// APT with remaining-time awareness (future-work heuristic).
#[derive(Debug, Clone, Copy)]
pub struct AptR {
    alpha: f64,
}

impl AptR {
    /// Create an APT-R scheduler with flexibility factor `α ≥ 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha >= 1.0 && alpha.is_finite(),
            "APT-R requires a finite α ≥ 1, got {alpha}"
        );
        AptR { alpha }
    }

    /// The configured flexibility factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Policy for AptR {
    fn name(&self) -> String {
        format!("APT-R(α={})", self.alpha)
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Dynamic
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
        // Batched per-instant pass (module docs): `idle` carries this
        // batch's claims; `claimed_until` carries the finish instants of
        // kernels the batch already started, so the waiting estimate for a
        // just-claimed p_min matches what the engine's refreshed view would
        // have shown.
        let mut idle = view.idle_mask;
        let mut claimed_until = [SimTime::ZERO; 64];
        let mut claimed: u64 = 0;
        // The engine's start arithmetic for a kernel claimed at this
        // instant: start = now, finish = now + transfer + exec.
        let finish_of = |node, proc: ProcId, view: &SimView<'_>| {
            view.now
                + view.transfer_in_time(node, proc)
                // apt-lint: allow(hot-path-panic, the claim mask is restricted to processors
                // that can run the node)
                + view.exec_time(node, proc).expect("claimed proc runs node")
        };
        for node in view.ready.iter() {
            if idle == 0 {
                break; // every processor claimed: nothing left this instant
            }
            let Some(best) = best_instance_in(view, node, idle) else {
                continue;
            };
            if best.idle {
                claimed_until[best.proc.index()] = finish_of(node, best.proc, view);
                claimed |= 1 << best.proc.index();
                idle &= !(1 << best.proc.index());
                out.push(Assignment::new(node, best.proc));
                continue;
            }
            let threshold = best.exec.scale_alpha(self.alpha);
            // Cost of waiting for p_min: remaining busy time + placement.
            let busy_until = if claimed & (1 << best.proc.index()) != 0 {
                claimed_until[best.proc.index()]
            } else {
                view.proc(best.proc).busy_until
            };
            let remaining = busy_until.saturating_since(view.now);
            let wait_cost = remaining
                .saturating_add(view.transfer_in_time(node, best.proc))
                .saturating_add(best.exec);
            // Cheapest still-idle alternative.
            let mut alt: Option<(ProcId, SimDuration)> = None;
            let mut bits = idle;
            while bits != 0 {
                let p = ProcId::new(bits.trailing_zeros() as usize);
                bits &= bits - 1;
                if p == best.proc {
                    continue;
                }
                if let Some(cost) = view.placement_cost(node, p) {
                    if alt.is_none_or(|(_, c)| cost < c) {
                        alt = Some((p, cost));
                    }
                }
            }
            if let Some((proc, cost)) = alt {
                if cost <= threshold && cost < wait_cost {
                    claimed_until[proc.index()] = finish_of(node, proc, view);
                    claimed |= 1 << proc.index();
                    idle &= !(1 << proc.index());
                    out.push_explained(
                        Assignment::alternative(node, proc),
                        DecisionMeta {
                            best_proc: best.proc,
                            best_exec: best.exec,
                            best_busy_until: busy_until,
                            threshold,
                            alt_cost: cost,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Apt;
    use apt_base::SimTime;
    use apt_dfg::generator::{build_type1, generate_kernels, StreamConfig};
    use apt_dfg::{Kernel, KernelKind, LookupTable, NodeId};
    use apt_hetsim::{simulate, SystemConfig};

    fn bfs() -> Kernel {
        Kernel::canonical(KernelKind::Bfs)
    }
    fn cd() -> Kernel {
        Kernel::new(KernelKind::Cholesky, 250_000)
    }

    #[test]
    #[should_panic(expected = "α ≥ 1")]
    fn alpha_below_one_is_rejected() {
        let _ = AptR::new(0.0);
    }

    #[test]
    fn apt_r_waits_when_p_min_frees_soon() {
        // cd's p_min is the FPGA (0.093 ms). Occupy the FPGA with a bfs
        // (106 ms): plain APT at α = 16⁴ would jump to the GPU (2.749 ms ≤
        // threshold), but cd is so short that even waiting 106 ms… actually
        // waiting costs 106.093 vs alternative 2.749 — the alternative *is*
        // better here. Invert the scenario: occupy the FPGA with cd (0.093)
        // and schedule bfs. Waiting costs 0.093 + 106; the GPU alternative
        // costs 173. APT(α=2) takes the GPU; APT-R correctly waits.
        let dfg = build_type1(&[cd(), bfs(), bfs()]);
        let cfg = SystemConfig::paper_no_transfers();
        let lookup = LookupTable::paper();

        let plain = simulate(&dfg, &cfg, lookup, &mut Apt::new(2.0)).unwrap();
        let refined = simulate(&dfg, &cfg, lookup, &mut AptR::new(2.0)).unwrap();

        // Plain APT sends the first bfs to the GPU (alt).
        let b_plain = plain.trace.record(NodeId::new(1)).unwrap();
        assert!(b_plain.alt);
        assert_eq!(cfg.kind_of(b_plain.proc), apt_base::ProcKind::Gpu);

        // APT-R waits 0.093 ms and runs it on the FPGA.
        let b_ref = refined.trace.record(NodeId::new(1)).unwrap();
        assert!(!b_ref.alt);
        assert_eq!(cfg.kind_of(b_ref.proc), apt_base::ProcKind::Fpga);
        assert_eq!(b_ref.start, SimTime::from_us(93));

        // And the refined makespan is no worse.
        assert!(refined.makespan() <= plain.makespan());
    }

    #[test]
    fn apt_r_still_takes_good_alternatives() {
        // Figure-5 style: FPGA busy 106 ms with bfs; the second bfs's
        // alternative (GPU, 173) beats waiting (106 + 106 = 212) and sits
        // within α = 8 × 106 — APT-R takes it just like APT.
        let dfg = build_type1(&[bfs(), bfs(), cd()]);
        let cfg = SystemConfig::paper_no_transfers();
        let res = simulate(&dfg, &cfg, LookupTable::paper(), &mut AptR::new(8.0)).unwrap();
        let second = res.trace.record(NodeId::new(1)).unwrap();
        assert!(second.alt);
        assert_eq!(cfg.kind_of(second.proc), apt_base::ProcKind::Gpu);
    }

    #[test]
    fn apt_r_is_never_catastrophically_worse_than_apt() {
        // Across seeds, APT-R stays within 25 % of APT (usually better);
        // both produce valid schedules.
        for seed in [2u64, 31, 57] {
            let kernels = generate_kernels(&StreamConfig::new(70, seed), LookupTable::paper());
            let dfg = build_type1(&kernels);
            let cfg = SystemConfig::paper_4gbps();
            let a = simulate(&dfg, &cfg, LookupTable::paper(), &mut Apt::new(4.0)).unwrap();
            let r = simulate(&dfg, &cfg, LookupTable::paper(), &mut AptR::new(4.0)).unwrap();
            r.trace.validate(&dfg).unwrap();
            let ratio = r.makespan().as_ns() as f64 / a.makespan().as_ns().max(1) as f64;
            assert!(ratio < 1.25, "seed {seed}: APT-R {ratio}× of APT");
        }
    }

    #[test]
    fn name_includes_alpha() {
        assert_eq!(AptR::new(4.0).name(), "APT-R(α=4)");
    }
}
