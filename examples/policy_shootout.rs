//! Policy shootout: run all seven policies of the paper's comparison on the
//! same dependency-rich workload and print a Table-10-style comparison.
//!
//! ```bash
//! cargo run --release --example policy_shootout [kernels] [seed]
//! ```

use apt_metrics::table::{fmt_ms, TextTable};
use apt_metrics::RunSummary;
use apt_suite::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(81);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let lookup = LookupTable::paper();
    let dfg = generate(DfgType::Type2, &StreamConfig::new(n, seed), lookup);
    let system = SystemConfig::paper_4gbps();

    println!(
        "workload: DFG Type-2, {} kernels, {} edges (seed {seed})\n",
        dfg.len(),
        dfg.edge_count()
    );

    let mut table = TextTable::new(
        "Policy comparison (4 GB/s, α=4 for APT)",
        &[
            "Policy",
            "Makespan (ms)",
            "λ total (ms)",
            "λ avg (ms)",
            "Alt",
        ],
    );
    let mut rows: Vec<(String, u64)> = Vec::new();
    for (name, make) in all_policy_factories(PAPER_BEST_ALPHA) {
        let mut policy = make();
        let res = simulate(&dfg, &system, lookup, policy.as_mut())
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        let s = RunSummary::from_result(&res);
        rows.push((s.policy.clone(), s.makespan.as_ns()));
        table.push_row(vec![
            s.policy.clone(),
            fmt_ms(s.makespan),
            fmt_ms(s.lambda_total),
            fmt_ms(s.lambda_avg),
            s.alt_assignments.to_string(),
        ]);
    }
    println!("{table}");

    rows.sort_by_key(|&(_, ns)| ns);
    println!(
        "winner: {} ({})",
        rows[0].0,
        SimDuration::from_ns(rows[0].1)
    );
}
