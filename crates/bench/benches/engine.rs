//! Raw substrate throughput: the event engine, the workload generators, and
//! the lookup table. These are the pieces every experiment multiplies by
//! hundreds of runs, so their constant factors gate the whole harness.

use apt_bench::{run, topology_systems, type2_workload};
use apt_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_engine_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/simulate_met");
    let system = SystemConfig::paper_4gbps();
    for &n in &[46usize, 93, 157] {
        let dfg = generate(
            DfgType::Type1,
            &StreamConfig::new(n, 0xE610E),
            LookupTable::paper(),
        );
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &dfg, |b, d| {
            b.iter(|| black_box(run(d, &system, &mut Met::new())))
        });
    }
    g.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/generate");
    let lookup = LookupTable::paper();
    for ty in DfgType::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(ty.label()), &ty, |b, &ty| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(generate(ty, &StreamConfig::new(157, seed), lookup))
            })
        });
    }
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let lookup = LookupTable::paper();
    let kernels = lookup.all_kernels();
    c.bench_function("engine/lookup_exec_time", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in &kernels {
                for p in ProcKind::EVALUATED {
                    acc = acc.wrapping_add(lookup.exec_time(k, p).unwrap().as_ns());
                }
            }
            black_box(acc)
        })
    });
}

/// APT end-to-end on the transfer-heavy six-processor machine: scalar
/// uniform link vs the clustered per-pair matrix — the cost of the dense
/// pair-table transfer layer relative to the seed scalar path.
fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology/simulate_apt");
    let dfg = type2_workload();
    for (name, system) in topology_systems() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &system, |b, s| {
            b.iter(|| black_box(run(&dfg, s, &mut Apt::new(4.0))))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_engine_scaling,
    bench_generators,
    bench_lookup,
    bench_topology
);
criterion_main!(benches);
