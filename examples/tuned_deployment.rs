//! Tuned deployment: calibrate APT's flexibility factor for *your* workload
//! and machine, then export the winning schedule as CSV for analysis.
//!
//! The thesis concludes that "the threshold must be carefully tuned in order
//! to attain performance improvements" — this example shows the workflow the
//! library provides for that: derive candidate α values from the workload's
//! admission ratios, calibrate offline, deploy the winner.
//!
//! ```bash
//! cargo run --release -p apt-suite --example tuned_deployment [kernels] [seed]
//! ```

use apt_metrics::export::{summaries_to_csv, trace_to_csv};
use apt_metrics::RunSummary;
use apt_suite::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(93);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let lookup = LookupTable::paper();
    let system = SystemConfig::paper_4gbps();
    let dfg = generate(DfgType::Type1, &StreamConfig::new(n, seed), lookup);

    // 1. Candidate thresholds come from the workload itself: the admission
    //    ratios of its kernels (+ε), plus α = 1 as the MET-safe baseline.
    let candidates = ratio_candidates(lookup, &system, &dfg, 16.0);
    println!("candidate α values: {candidates:?}\n");

    // 2. Offline calibration: one simulation per candidate.
    let tuned = auto_tune(&dfg, &system, lookup, 16.0).expect("calibration");
    println!("{:>8}  {:>14}", "α", "makespan (ms)");
    for (alpha, makespan) in &tuned.evaluated {
        let marker = if *alpha == tuned.alpha {
            "  <-- best"
        } else {
            ""
        };
        println!("{alpha:>8.2}  {:>14.1}{marker}", makespan.as_ms_f64());
    }

    // 3. Deploy the winner and compare with the untuned alternatives.
    let mut runs = Vec::new();
    for mut policy in [
        Box::new(Met::new()) as Box<dyn Policy>,
        Box::new(Apt::new(PAPER_BEST_ALPHA)),
        Box::new(Apt::new(tuned.alpha)),
    ] {
        let res = simulate(&dfg, &system, lookup, policy.as_mut()).expect("run");
        runs.push(RunSummary::from_result(&res));
    }
    println!("\nrun summaries (CSV):\n{}", summaries_to_csv(&runs));

    // 4. Export the tuned schedule for external plotting.
    let best = simulate(&dfg, &system, lookup, &mut Apt::new(tuned.alpha)).expect("run");
    let csv = trace_to_csv(&best.trace, &system);
    let preview: Vec<&str> = csv.lines().take(6).collect();
    println!("schedule CSV (first rows of {}):", dfg.len());
    for line in preview {
        println!("  {line}");
    }
}
