//! APT-R — the paper's future-work refinement.
//!
//! Conclusion (§5): "In the future, we will consider the remaining execution
//! time in the optimal processor before deciding whether to assign to an
//! alternative processor, as part of the scheduling heuristic, which will
//! improve our current savings."
//!
//! APT admits `p_alt` whenever its cost is within `α·x`, even when `p_min`
//! is about to free up — occasionally paying (cost_alt − x) for nothing.
//! APT-R adds the obvious fix: an alternative is taken only when it also
//! beats *waiting*, i.e.
//!
//! ```text
//! cost_alt ≤ α·x                 (the APT threshold, Eq. 8)
//! cost_alt <  remaining(p_min) + transfer(p_min) + x   (waiting estimate)
//! ```
//!
//! where `remaining(p_min)` is how long the optimal processor stays busy.
//! The ablation bench `apt_r` quantifies the improvement this buys.

use apt_base::{ProcId, SimDuration};
use apt_hetsim::{Assignment, AssignmentBuf, Policy, PolicyKind, SimView};
use apt_policies::common::best_instance;

/// APT with remaining-time awareness (future-work heuristic).
#[derive(Debug, Clone, Copy)]
pub struct AptR {
    alpha: f64,
}

impl AptR {
    /// Create an APT-R scheduler with flexibility factor `α ≥ 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha >= 1.0 && alpha.is_finite(),
            "APT-R requires a finite α ≥ 1, got {alpha}"
        );
        AptR { alpha }
    }

    /// The configured flexibility factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Policy for AptR {
    fn name(&self) -> String {
        format!("APT-R(α={})", self.alpha)
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Dynamic
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
        for node in view.ready.iter() {
            let Some(best) = best_instance(view, node) else {
                continue;
            };
            if best.idle {
                out.push(Assignment::new(node, best.proc));
                return;
            }
            let threshold = best.exec.scale_alpha(self.alpha);
            // Cost of waiting for p_min: remaining busy time + placement.
            let p_min_view = view.proc(best.proc);
            let remaining = p_min_view.busy_until.saturating_since(view.now);
            let wait_cost = remaining
                .saturating_add(view.transfer_in_time(node, best.proc))
                .saturating_add(best.exec);
            // Cheapest available alternative.
            let mut alt: Option<(ProcId, SimDuration)> = None;
            for p in view.idle_procs() {
                if p.id == best.proc {
                    continue;
                }
                if let Some(cost) = view.placement_cost(node, p.id) {
                    if alt.is_none_or(|(_, c)| cost < c) {
                        alt = Some((p.id, cost));
                    }
                }
            }
            if let Some((proc, cost)) = alt {
                if cost <= threshold && cost < wait_cost {
                    out.push(Assignment::alternative(node, proc));
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Apt;
    use apt_base::SimTime;
    use apt_dfg::generator::{build_type1, generate_kernels, StreamConfig};
    use apt_dfg::{Kernel, KernelKind, LookupTable, NodeId};
    use apt_hetsim::{simulate, SystemConfig};

    fn bfs() -> Kernel {
        Kernel::canonical(KernelKind::Bfs)
    }
    fn cd() -> Kernel {
        Kernel::new(KernelKind::Cholesky, 250_000)
    }

    #[test]
    #[should_panic(expected = "α ≥ 1")]
    fn alpha_below_one_is_rejected() {
        let _ = AptR::new(0.0);
    }

    #[test]
    fn apt_r_waits_when_p_min_frees_soon() {
        // cd's p_min is the FPGA (0.093 ms). Occupy the FPGA with a bfs
        // (106 ms): plain APT at α = 16⁴ would jump to the GPU (2.749 ms ≤
        // threshold), but cd is so short that even waiting 106 ms… actually
        // waiting costs 106.093 vs alternative 2.749 — the alternative *is*
        // better here. Invert the scenario: occupy the FPGA with cd (0.093)
        // and schedule bfs. Waiting costs 0.093 + 106; the GPU alternative
        // costs 173. APT(α=2) takes the GPU; APT-R correctly waits.
        let dfg = build_type1(&[cd(), bfs(), bfs()]);
        let cfg = SystemConfig::paper_no_transfers();
        let lookup = LookupTable::paper();

        let plain = simulate(&dfg, &cfg, lookup, &mut Apt::new(2.0)).unwrap();
        let refined = simulate(&dfg, &cfg, lookup, &mut AptR::new(2.0)).unwrap();

        // Plain APT sends the first bfs to the GPU (alt).
        let b_plain = plain.trace.record(NodeId::new(1)).unwrap();
        assert!(b_plain.alt);
        assert_eq!(cfg.kind_of(b_plain.proc), apt_base::ProcKind::Gpu);

        // APT-R waits 0.093 ms and runs it on the FPGA.
        let b_ref = refined.trace.record(NodeId::new(1)).unwrap();
        assert!(!b_ref.alt);
        assert_eq!(cfg.kind_of(b_ref.proc), apt_base::ProcKind::Fpga);
        assert_eq!(b_ref.start, SimTime::from_us(93));

        // And the refined makespan is no worse.
        assert!(refined.makespan() <= plain.makespan());
    }

    #[test]
    fn apt_r_still_takes_good_alternatives() {
        // Figure-5 style: FPGA busy 106 ms with bfs; the second bfs's
        // alternative (GPU, 173) beats waiting (106 + 106 = 212) and sits
        // within α = 8 × 106 — APT-R takes it just like APT.
        let dfg = build_type1(&[bfs(), bfs(), cd()]);
        let cfg = SystemConfig::paper_no_transfers();
        let res = simulate(&dfg, &cfg, LookupTable::paper(), &mut AptR::new(8.0)).unwrap();
        let second = res.trace.record(NodeId::new(1)).unwrap();
        assert!(second.alt);
        assert_eq!(cfg.kind_of(second.proc), apt_base::ProcKind::Gpu);
    }

    #[test]
    fn apt_r_is_never_catastrophically_worse_than_apt() {
        // Across seeds, APT-R stays within 25 % of APT (usually better);
        // both produce valid schedules.
        for seed in [2u64, 31, 57] {
            let kernels = generate_kernels(&StreamConfig::new(70, seed), LookupTable::paper());
            let dfg = build_type1(&kernels);
            let cfg = SystemConfig::paper_4gbps();
            let a = simulate(&dfg, &cfg, LookupTable::paper(), &mut Apt::new(4.0)).unwrap();
            let r = simulate(&dfg, &cfg, LookupTable::paper(), &mut AptR::new(4.0)).unwrap();
            r.trace.validate(&dfg).unwrap();
            let ratio = r.makespan().as_ns() as f64 / a.makespan().as_ns().max(1) as f64;
            assert!(ratio < 1.25, "seed {seed}: APT-R {ratio}× of APT");
        }
    }

    #[test]
    fn name_includes_alpha() {
        assert_eq!(AptR::new(4.0).name(), "APT-R(α=4)");
    }
}
