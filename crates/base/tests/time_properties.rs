//! Property-based tests for the fixed-point time arithmetic and the small
//! statistics helpers — the numerical bedrock everything above relies on.

use apt_base::stats::{argmax_by_key, argmin_by_key, mean, mean_duration, stddev_population};
use apt_base::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Addition/subtraction round-trip exactly (no drift, ever).
    #[test]
    fn time_arithmetic_roundtrips(base in 0u64..1 << 60, delta in 0u64..1 << 60) {
        let t = SimTime::from_ns(base);
        let d = SimDuration::from_ns(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        prop_assert_eq!((t + d).saturating_since(t), d);
    }

    /// Ordering is total and compatible with the raw nanosecond values.
    #[test]
    fn ordering_matches_ns(a in any::<u64>(), b in any::<u64>()) {
        let (ta, tb) = (SimTime::from_ns(a), SimTime::from_ns(b));
        prop_assert_eq!(ta < tb, a < b);
        prop_assert_eq!(ta == tb, a == b);
    }

    /// Millisecond table entries (µs-precision) convert without rounding.
    #[test]
    fn table_ms_conversion_is_exact(us in 0u64..10_000_000_000) {
        let ms = us as f64 / 1_000.0;
        let d = SimDuration::from_table_ms(ms);
        prop_assert_eq!(d.as_ns(), us * 1_000);
    }

    /// scale_alpha with integral α is exact multiplication.
    #[test]
    fn scale_alpha_integral_is_exact(ns in 0u64..1 << 40, k in 1u64..64) {
        let d = SimDuration::from_ns(ns);
        prop_assert_eq!(d.scale_alpha(k as f64), d * k);
    }

    /// scale_alpha is monotone in α.
    #[test]
    fn scale_alpha_is_monotone(ns in 0u64..1 << 40, a in 1.0f64..32.0, b in 0.0f64..32.0) {
        let d = SimDuration::from_ns(ns);
        let (lo, hi) = if a <= a + b { (a, a + b) } else { (a + b, a) };
        prop_assert!(d.scale_alpha(lo) <= d.scale_alpha(hi));
    }

    /// The duration mean is bounded by min and max of its inputs.
    #[test]
    fn mean_duration_is_bounded(values in prop::collection::vec(0u64..1 << 50, 1..50)) {
        let ds: Vec<SimDuration> = values.iter().map(|&v| SimDuration::from_ns(v)).collect();
        let m = mean_duration(&ds);
        let min = *ds.iter().min().unwrap();
        let max = *ds.iter().max().unwrap();
        prop_assert!(min <= m && m <= max);
    }

    /// Population stddev is zero iff all values are equal, and is invariant
    /// under translation.
    #[test]
    fn stddev_translation_invariance(
        values in prop::collection::vec(-1e6f64..1e6, 2..40),
        shift in -1e6f64..1e6,
    ) {
        let sd = stddev_population(&values);
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        let sd2 = stddev_population(&shifted);
        prop_assert!((sd - sd2).abs() < 1e-6 * sd.max(1.0), "{sd} vs {sd2}");
        prop_assert!(sd >= 0.0);
        // Mean shifts by exactly the shift.
        prop_assert!((mean(&shifted) - mean(&values) - shift).abs() < 1e-6);
    }

    /// argmin/argmax return indices of true extrema with earliest-index ties.
    #[test]
    fn argmin_argmax_are_extremal(values in prop::collection::vec(any::<i64>(), 1..60)) {
        let i = argmin_by_key(&values, |&v| v).unwrap();
        let j = argmax_by_key(&values, |&v| v).unwrap();
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(values[i], min);
        prop_assert_eq!(values[j], max);
        // Earliest-index tie break.
        prop_assert_eq!(values.iter().position(|&v| v == min).unwrap(), i);
        prop_assert_eq!(values.iter().position(|&v| v == max).unwrap(), j);
    }
}
