//! Online (streaming) metrics for open-system runs.
//!
//! Closed-world metrics ([`crate::RunSummary`]) post-process a complete
//! trace. A million-job open stream never materializes one, so this module
//! accumulates everything incrementally in O(1) memory per metric:
//!
//! * [`P2Quantile`] — the Jain & Chlamtac P² algorithm: a streaming
//!   quantile estimate over five markers, no sample storage. Used for the
//!   job-latency P50/P90/P99 columns.
//! * [`OnlineMetrics`] — the aggregator the streaming driver feeds: per-job
//!   latency quantiles and means, λ-delay totals, sliding-window throughput
//!   and per-processor utilization, time-weighted queue-depth tracking, and
//!   the SLO axis (deadline-miss counts per window and tardiness P²
//!   quantiles over deadline-carrying jobs), emitted as periodic
//!   [`StreamSnapshot`]s.
//!
//! Everything here is deterministic given the observation sequence; the
//! estimators use `f64` only for reporting-grade quantities (quantiles,
//! utilization fractions), never for simulation state.

use apt_base::{SimDuration, SimTime};
use apt_hetsim::ProcStats;
use serde::{Deserialize, Serialize};

/// Streaming quantile estimation with the P² (piecewise-parabolic)
/// algorithm of Jain & Chlamtac (CACM 1985): five markers track the
/// running quantile without storing observations.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (the first `count` entries are raw samples until five
    /// observations have arrived).
    heights: [f64; 5],
    /// Marker positions (1-based, as in the paper).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    count: usize,
}

impl P2Quantile {
    /// An estimator for quantile `q` (e.g. `0.99`). Panics unless
    /// `0 < q < 1`.
    pub fn new(q: f64) -> P2Quantile {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The tracked quantile parameter.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite observation"));
            }
            return;
        }
        self.count += 1;
        // Cell k: which marker interval x falls into; extremes clamp.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            while k < 3 && x >= self.heights[k + 1] {
                k += 1;
            }
            k
        };
        for p in &mut self.positions[k + 1..] {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }
        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height prediction for marker `i` moving by
    /// `d ∈ {−1, +1}`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let n = &self.positions;
        let h = &self.heights;
        h[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback when the parabola leaves the bracketing heights.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate. Before five observations, the exact small-set
    /// quantile (nearest-rank on the sorted buffer); afterwards the P²
    /// marker height. `None` with no observations.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let mut buf: Vec<f64> = self.heights[..self.count].to_vec();
            buf.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite observation"));
            let rank = ((self.q * self.count as f64).ceil() as usize).clamp(1, self.count);
            return Some(buf[rank - 1]);
        }
        Some(self.heights[2])
    }
}

/// One periodic snapshot of an open-stream run: the window covers
/// `(end − interval, end]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSnapshot {
    /// Window end (simulation clock).
    pub end: SimTime,
    /// Window length.
    pub interval: SimDuration,
    /// Jobs completed inside this window.
    pub window_jobs: u64,
    /// Jobs completed since the run started.
    pub total_jobs: u64,
    /// Window throughput, jobs per simulated second.
    pub throughput_jps: f64,
    /// Running job-latency quantile estimates (ms, arrival → last finish).
    pub latency_p50_ms: f64,
    /// 90th percentile, ms.
    pub latency_p90_ms: f64,
    /// 99th percentile, ms.
    pub latency_p99_ms: f64,
    /// Time-weighted mean number of in-flight jobs over the window.
    pub mean_depth: f64,
    /// In-flight jobs at the window end.
    pub depth_now: usize,
    /// Deadline-carrying jobs that finished *tardy* inside this window.
    pub window_missed: u64,
    /// Deadline misses since the run started.
    pub total_missed: u64,
    /// Deadline-carrying jobs completed since the run started (the
    /// miss-rate denominator; zero when the stream is deadline-free).
    pub total_deadline_jobs: u64,
    /// Running tardiness P99 estimate over deadline-carrying jobs, ms
    /// (on-time completions contribute zero tardiness).
    pub tardiness_p99_ms: f64,
    /// Per-processor busy+transfer fraction of the window.
    pub utilization: Vec<f64>,
    /// Jobs shed by the failure model inside this window (retry budget
    /// exhausted). Zero on fault-free runs.
    #[serde(default)]
    pub window_failed: u64,
    /// Failed jobs since the run started.
    #[serde(default)]
    pub total_failed: u64,
    /// Transient kernel failures injected inside this window.
    #[serde(default)]
    pub window_kernel_failures: u64,
    /// Kernel retries scheduled inside this window.
    #[serde(default)]
    pub window_retries: u64,
    /// Processor downtime accumulated inside this window, ns (summed over
    /// processors, so it can exceed the interval on multi-crash windows).
    #[serde(default)]
    pub window_down_ns: u64,
    /// Occupancy thrown away inside this window (killed attempts), ns.
    #[serde(default)]
    pub window_wasted_ns: u64,
    /// Fraction of this window's aggregate processor-time that was up:
    /// `1 − down/(procs × interval)`. Exactly 1.0 on fault-free runs.
    #[serde(default)]
    pub availability: f64,
    /// Jobs the driver admitted into the engine inside this window (the
    /// windowed shed-rate denominator, together with `window_shed`).
    #[serde(default)]
    pub window_admitted: u64,
    /// Arrivals shed *before* entering the system inside this window —
    /// admission-gate rejections plus overload sheds (failure-model sheds
    /// of admitted jobs are `window_failed`).
    #[serde(default)]
    pub window_shed: u64,
    /// Shed arrivals since the run started.
    #[serde(default)]
    pub total_shed: u64,
    /// Deadline-carrying jobs completed inside this window (the windowed
    /// miss-rate denominator).
    #[serde(default)]
    pub window_deadline_jobs: u64,
}

impl StreamSnapshot {
    /// Cumulative deadline-miss fraction at this snapshot (0 when no
    /// deadline-carrying job has completed).
    pub fn miss_rate(&self) -> f64 {
        if self.total_deadline_jobs == 0 {
            0.0
        } else {
            self.total_missed as f64 / self.total_deadline_jobs as f64
        }
    }

    /// *Windowed* miss fraction: tardy completions over deadline-carrying
    /// completions inside this window alone (0 when the window completed
    /// none). This is the signal `apt-control`'s AIMD setpoint tests —
    /// cumulative [`StreamSnapshot::miss_rate`] lags the live operating
    /// point by the whole history of the run.
    pub fn window_miss_rate(&self) -> f64 {
        if self.window_deadline_jobs == 0 {
            0.0
        } else {
            self.window_missed as f64 / self.window_deadline_jobs as f64
        }
    }

    /// *Windowed* shed fraction: shed arrivals over offered arrivals
    /// (`shed + admitted`) inside this window (0 when none were offered).
    pub fn window_shed_rate(&self) -> f64 {
        let offered = self.window_shed + self.window_admitted;
        if offered == 0 {
            0.0
        } else {
            self.window_shed as f64 / offered as f64
        }
    }
}

/// Streaming aggregator for open-system runs. Feed it every completed job
/// plus depth changes; poll [`OnlineMetrics::maybe_snapshot`] as the clock
/// advances. Memory is O(processors + snapshots), independent of job count.
#[derive(Debug, Clone)]
pub struct OnlineMetrics {
    interval: SimDuration,
    window_end: SimTime,
    p50: P2Quantile,
    p90: P2Quantile,
    p99: P2Quantile,
    total_jobs: u64,
    window_jobs: u64,
    latency_sum_ms: f64,
    lambda_total: SimDuration,
    // SLO axis: tardiness over deadline-carrying jobs (zero when on time)
    // and miss counts, cumulative plus the open window's share.
    tardiness_p50: P2Quantile,
    tardiness_p99: P2Quantile,
    tardiness_sum_ms: f64,
    deadline_jobs: u64,
    deadline_misses: u64,
    window_misses: u64,
    // Time-weighted depth integral of the *oldest unemitted* window
    // (job·ns); integrals of further whole windows crossed by one time jump
    // queue up behind it. `depth_at` is the instant the integral has been
    // advanced to; `integral_end` the boundary `depth_integral` runs to.
    depth_integral: f64,
    depth_spill: std::collections::VecDeque<f64>,
    integral_end: SimTime,
    depth_at: SimTime,
    depth: usize,
    max_depth: usize,
    // Cumulative per-proc busy+transfer at the last snapshot boundary.
    last_busy_ns: Vec<u64>,
    // Failure axis: per-window + cumulative shed-job counts, and the
    // engine's cumulative fault counters as of "now" / the last boundary
    // (windows report the delta).
    window_failed: u64,
    total_failed: u64,
    fault_now: [u64; 4],
    fault_at_boundary: [u64; 4],
    // Admission axis: arrivals admitted/shed before entering the engine,
    // per window plus cumulative — the shed-rate signal controllers react
    // to (distinct from the failure-model sheds above).
    window_admitted: u64,
    window_shed: u64,
    total_shed: u64,
    window_deadline_jobs: u64,
    snapshots: Vec<StreamSnapshot>,
}

impl OnlineMetrics {
    /// An aggregator emitting one snapshot per `interval` of simulated
    /// time. Panics on a zero interval.
    pub fn new(interval: SimDuration, nprocs: usize) -> OnlineMetrics {
        assert!(!interval.is_zero(), "snapshot interval must be positive");
        OnlineMetrics {
            interval,
            window_end: SimTime::ZERO + interval,
            p50: P2Quantile::new(0.50),
            p90: P2Quantile::new(0.90),
            p99: P2Quantile::new(0.99),
            total_jobs: 0,
            window_jobs: 0,
            latency_sum_ms: 0.0,
            lambda_total: SimDuration::ZERO,
            tardiness_p50: P2Quantile::new(0.50),
            tardiness_p99: P2Quantile::new(0.99),
            tardiness_sum_ms: 0.0,
            deadline_jobs: 0,
            deadline_misses: 0,
            window_misses: 0,
            depth_integral: 0.0,
            depth_spill: std::collections::VecDeque::new(),
            integral_end: SimTime::ZERO + interval,
            depth_at: SimTime::ZERO,
            depth: 0,
            max_depth: 0,
            last_busy_ns: vec![0; nprocs],
            window_failed: 0,
            total_failed: 0,
            fault_now: [0; 4],
            fault_at_boundary: [0; 4],
            window_admitted: 0,
            window_shed: 0,
            total_shed: 0,
            window_deadline_jobs: 0,
            snapshots: Vec::new(),
        }
    }

    /// Record one job admitted into the engine (the windowed shed-rate
    /// denominator, together with [`OnlineMetrics::observe_job_shed`]).
    pub fn observe_job_admitted(&mut self) {
        self.window_admitted += 1;
    }

    /// Record one arrival shed *before* entering the system — an
    /// admission-gate rejection or an overload shed. Failure-model sheds
    /// of already-admitted jobs go through
    /// [`OnlineMetrics::observe_job_failed`] instead.
    pub fn observe_job_shed(&mut self) {
        self.window_shed += 1;
        self.total_shed += 1;
    }

    /// Shed arrivals observed so far.
    pub fn total_shed_jobs(&self) -> u64 {
        self.total_shed
    }

    /// Record one job shed by the failure model (retry budget exhausted).
    /// Failed jobs are excluded from the latency/tardiness estimators —
    /// they have no meaningful completion — and counted separately.
    pub fn observe_job_failed(&mut self) {
        self.total_failed += 1;
        self.window_failed += 1;
    }

    /// Update the engine's *cumulative* fault counters (transient kernel
    /// failures, retries, wasted occupancy ns, downtime ns) so the next
    /// snapshot can report this window's delta. Call before
    /// [`OnlineMetrics::maybe_snapshot`]; a fault-free run never needs to.
    pub fn note_fault_counters(
        &mut self,
        kernel_failures: u64,
        retries: u64,
        wasted_ns: u64,
        down_ns: u64,
    ) {
        self.fault_now = [kernel_failures, retries, wasted_ns, down_ns];
    }

    /// Failure-model job sheds observed so far.
    pub fn total_failed_jobs(&self) -> u64 {
        self.total_failed
    }

    /// Advance the depth integral to `now` and set the new depth.
    /// Instants are non-decreasing (the simulation clock). The integral is
    /// split at window boundaries, so a change observed past the open
    /// window's end credits each crossed window with exactly its own share
    /// — a window's `mean_depth` can never exceed the depth that was
    /// actually standing during it.
    pub fn observe_depth(&mut self, now: SimTime, depth: usize) {
        while now > self.integral_end {
            let dt = self.integral_end.saturating_since(self.depth_at);
            self.depth_integral += self.depth as f64 * dt.as_ns() as f64;
            self.depth_spill.push_back(self.depth_integral);
            self.depth_integral = 0.0;
            self.depth_at = self.integral_end;
            self.integral_end += self.interval;
        }
        let dt = now.saturating_since(self.depth_at);
        self.depth_integral += self.depth as f64 * dt.as_ns() as f64;
        self.depth_at = self.depth_at.max(now);
        self.depth = depth;
        self.max_depth = self.max_depth.max(depth);
    }

    /// Record one completed job: its end-to-end latency (arrival → last
    /// finish) and the λ delay its kernels accumulated.
    pub fn observe_job(&mut self, latency: SimDuration, lambda: SimDuration) {
        let ms = latency.as_ms_f64();
        self.p50.observe(ms);
        self.p90.observe(ms);
        self.p99.observe(ms);
        self.latency_sum_ms += ms;
        self.lambda_total += lambda;
        self.total_jobs += 1;
        self.window_jobs += 1;
    }

    /// Record the tardiness of one completed *deadline-carrying* job:
    /// `finish − deadline`, saturated at zero when the deadline was met.
    /// Call it only for jobs that carry a deadline — deadline-free jobs
    /// must not dilute the miss-rate denominator.
    pub fn observe_tardiness(&mut self, tardiness: SimDuration) {
        let ms = tardiness.as_ms_f64();
        self.tardiness_p50.observe(ms);
        self.tardiness_p99.observe(ms);
        self.tardiness_sum_ms += ms;
        self.deadline_jobs += 1;
        self.window_deadline_jobs += 1;
        if !tardiness.is_zero() {
            self.deadline_misses += 1;
            self.window_misses += 1;
        }
    }

    /// Emit every snapshot whose window closed at or before `now`.
    /// `proc_stats` are the engine's *cumulative* per-processor aggregates;
    /// utilization is the per-window delta. Returns how many snapshots were
    /// appended (all but the last of a multi-window gap cover idle windows).
    pub fn maybe_snapshot(&mut self, now: SimTime, proc_stats: &[ProcStats]) -> usize {
        let mut emitted = 0;
        // Bring the depth integral up to `now` (no depth change): every
        // window about to be emitted gets its exact share, queued in order.
        self.observe_depth(now, self.depth);
        while now >= self.window_end {
            let end = self.window_end;
            let window_integral = match self.depth_spill.pop_front() {
                Some(i) => i,
                None => {
                    // `now` sits exactly on the boundary: the open integral
                    // covers this whole window. Close it by hand.
                    debug_assert_eq!(self.integral_end, end);
                    let i = self.depth_integral;
                    self.depth_integral = 0.0;
                    self.depth_at = end;
                    self.integral_end = end + self.interval;
                    i
                }
            };
            self.close_window(end, self.interval, window_integral, proc_stats);
            self.window_end = end + self.interval;
            emitted += 1;
        }
        emitted
    }

    /// Append one snapshot covering the `span` ending at `end`, from the
    /// current window counters and the given depth integral, then reset the
    /// per-window state. Shared by the whole-window path
    /// ([`OnlineMetrics::maybe_snapshot`]) and the end-of-stream partial
    /// flush ([`OnlineMetrics::flush_partial`]).
    fn close_window(
        &mut self,
        end: SimTime,
        span: SimDuration,
        window_integral: f64,
        proc_stats: &[ProcStats],
    ) {
        let span_ns = span.as_ns() as f64;
        let busy_now: Vec<u64> = proc_stats
            .iter()
            .map(|s| (s.busy + s.transfer).as_ns())
            .collect();
        // Cumulative busy time can only be apportioned to the window it
        // was *observed* in; with multi-window gaps the delta lands in
        // the first window of the gap, which slightly front-loads
        // utilization but never loses any.
        let utilization: Vec<f64> = busy_now
            .iter()
            .zip(&self.last_busy_ns)
            .map(|(now_ns, last_ns)| (now_ns - last_ns) as f64 / span_ns)
            .collect();
        self.last_busy_ns = busy_now;
        let [failures, retries, wasted, down] = self.fault_now;
        let [b_failures, b_retries, b_wasted, b_down] = self.fault_at_boundary;
        let nprocs = self.last_busy_ns.len().max(1);
        let window_down_ns = down - b_down;
        self.fault_at_boundary = self.fault_now;
        self.snapshots.push(StreamSnapshot {
            end,
            interval: span,
            window_jobs: self.window_jobs,
            total_jobs: self.total_jobs,
            throughput_jps: self.window_jobs as f64 / span.as_secs_f64(),
            latency_p50_ms: self.p50.estimate().unwrap_or(0.0),
            latency_p90_ms: self.p90.estimate().unwrap_or(0.0),
            latency_p99_ms: self.p99.estimate().unwrap_or(0.0),
            mean_depth: window_integral / span_ns,
            depth_now: self.depth,
            window_missed: self.window_misses,
            total_missed: self.deadline_misses,
            total_deadline_jobs: self.deadline_jobs,
            tardiness_p99_ms: self.tardiness_p99.estimate().unwrap_or(0.0),
            utilization,
            window_failed: self.window_failed,
            total_failed: self.total_failed,
            window_kernel_failures: failures - b_failures,
            window_retries: retries - b_retries,
            window_down_ns,
            window_wasted_ns: wasted - b_wasted,
            availability: 1.0 - (window_down_ns as f64 / (nprocs as f64 * span_ns)).min(1.0),
            window_admitted: self.window_admitted,
            window_shed: self.window_shed,
            total_shed: self.total_shed,
            window_deadline_jobs: self.window_deadline_jobs,
        });
        self.window_jobs = 0;
        self.window_misses = 0;
        self.window_failed = 0;
        self.window_admitted = 0;
        self.window_shed = 0;
        self.window_deadline_jobs = 0;
    }

    /// Close the final **partial** window at stream end: emit one snapshot
    /// covering `(last boundary, now]` so window-driven consumers and the
    /// CSV exporters see the tail of the run. Whole windows still pending
    /// at `now` are flushed first, exactly as by
    /// [`OnlineMetrics::maybe_snapshot`]. A run ending exactly on a window
    /// boundary (or before any time elapsed in the open window) emits no
    /// extra snapshot — the tail would be empty. The partial snapshot's
    /// `interval` is the actual covered span, shorter than the configured
    /// interval; rate-like fields (throughput, utilization, mean depth,
    /// availability) are normalized over it. Returns how many snapshots
    /// were appended, tail included. Terminal: feed no more observations
    /// after flushing.
    pub fn flush_partial(&mut self, now: SimTime, proc_stats: &[ProcStats]) -> usize {
        let mut emitted = self.maybe_snapshot(now, proc_stats);
        let span = self.interval - self.window_end.saturating_since(now);
        if span.is_zero() {
            return emitted;
        }
        // `maybe_snapshot` advanced the depth integral to `now`; with
        // `now < window_end` nothing spilled, so the open integral is
        // exactly this partial window's share.
        debug_assert!(self.depth_spill.is_empty());
        let window_integral = self.depth_integral;
        self.depth_integral = 0.0;
        self.depth_at = now;
        self.close_window(now, span, window_integral, proc_stats);
        emitted += 1;
        emitted
    }

    /// Snapshots emitted so far, in window order.
    pub fn snapshots(&self) -> &[StreamSnapshot] {
        &self.snapshots
    }

    /// End of the currently open window — the earliest instant at which
    /// [`OnlineMetrics::maybe_snapshot`] would emit. Lets callers skip the
    /// (allocating) `proc_stats` snapshot argument on steps that cannot
    /// close a window.
    pub fn window_end(&self) -> SimTime {
        self.window_end
    }

    /// Jobs observed so far.
    pub fn total_jobs(&self) -> u64 {
        self.total_jobs
    }

    /// Mean end-to-end job latency (ms) over the whole run.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.total_jobs == 0 {
            0.0
        } else {
            self.latency_sum_ms / self.total_jobs as f64
        }
    }

    /// Running latency quantile estimates `(p50, p90, p99)` in ms.
    pub fn latency_quantiles_ms(&self) -> (f64, f64, f64) {
        (
            self.p50.estimate().unwrap_or(0.0),
            self.p90.estimate().unwrap_or(0.0),
            self.p99.estimate().unwrap_or(0.0),
        )
    }

    /// Total λ delay accumulated by every completed job's kernels.
    pub fn lambda_total(&self) -> SimDuration {
        self.lambda_total
    }

    /// Deadline-carrying jobs observed so far.
    pub fn deadline_jobs(&self) -> u64 {
        self.deadline_jobs
    }

    /// Deadline-carrying jobs that finished tardy.
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses
    }

    /// Fraction of deadline-carrying jobs that missed (0 when none carried
    /// deadlines).
    pub fn miss_rate(&self) -> f64 {
        if self.deadline_jobs == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.deadline_jobs as f64
        }
    }

    /// Running tardiness quantile estimates `(p50, p99)` in ms over
    /// deadline-carrying jobs (on-time jobs contribute zero).
    pub fn tardiness_quantiles_ms(&self) -> (f64, f64) {
        (
            self.tardiness_p50.estimate().unwrap_or(0.0),
            self.tardiness_p99.estimate().unwrap_or(0.0),
        )
    }

    /// Mean tardiness (ms) over deadline-carrying jobs.
    pub fn mean_tardiness_ms(&self) -> f64 {
        if self.deadline_jobs == 0 {
            0.0
        } else {
            self.tardiness_sum_ms / self.deadline_jobs as f64
        }
    }

    /// Most jobs ever in flight (as observed through `observe_depth`).
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact quantile over a slice (nearest-rank), for cross-checking.
    fn exact_quantile(values: &[f64], q: f64) -> f64 {
        let mut v = values.to_vec();
        v.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
        v[rank - 1]
    }

    #[test]
    fn p2_tracks_uniform_and_exponential_streams() {
        // Deterministic pseudo-random stream.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for q in [0.5, 0.9, 0.99] {
            for exponential in [false, true] {
                let mut est = P2Quantile::new(q);
                let mut all = Vec::new();
                for _ in 0..20_000 {
                    let u = next();
                    // Uniform on [0, 100), or a long-tailed exponential —
                    // the shape of queueing latencies this estimator is for.
                    let x = if exponential {
                        -50.0 * (1.0 - u).ln()
                    } else {
                        u * 100.0
                    };
                    est.observe(x);
                    all.push(x);
                }
                let got = est.estimate().unwrap();
                let exact = exact_quantile(&all, q);
                assert!(
                    (got - exact).abs() <= exact.abs() * 0.05 + 0.5,
                    "q={q} exp={exponential}: estimate {got} too far from exact {exact}"
                );
            }
        }
    }

    #[test]
    fn p2_small_counts_are_exact() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), None);
        est.observe(10.0);
        assert_eq!(est.estimate(), Some(10.0));
        est.observe(2.0);
        est.observe(6.0);
        // Nearest-rank median of {2, 6, 10} is 6.
        assert_eq!(est.estimate(), Some(6.0));
        assert_eq!(est.count(), 3);
    }

    /// Every sub-five count must return the exact nearest-rank quantile for
    /// every tracked q — the small-sample path the streaming suite only
    /// reaches indirectly.
    #[test]
    fn p2_small_samples_are_exact_nearest_rank_for_all_quantiles() {
        let samples = [7.0, 1.0, 9.0, 3.0];
        for q in [0.5, 0.9, 0.99] {
            let mut est = P2Quantile::new(q);
            assert_eq!(est.estimate(), None, "no observations yet");
            for n in 1..=4 {
                est.observe(samples[n - 1]);
                assert_eq!(est.count(), n);
                assert_eq!(
                    est.estimate(),
                    Some(exact_quantile(&samples[..n], q)),
                    "q={q} after {n} observations"
                );
            }
        }
        // The fifth observation switches to the marker path; the estimate
        // must still be the exact quantile of the five sorted samples
        // (markers are initialized to the sorted buffer).
        let mut est = P2Quantile::new(0.5);
        for x in [7.0, 1.0, 9.0, 3.0, 5.0] {
            est.observe(x);
        }
        assert_eq!(est.count(), 5);
        assert_eq!(est.estimate(), Some(5.0), "median marker of {{1,3,5,7,9}}");
    }

    /// Duplicate-heavy small samples (ties) stay exact too.
    #[test]
    fn p2_small_sample_ties_are_exact() {
        let mut est = P2Quantile::new(0.9);
        for x in [4.0, 4.0, 4.0] {
            est.observe(x);
        }
        assert_eq!(est.estimate(), Some(4.0));
        let mut est = P2Quantile::new(0.5);
        est.observe(2.0);
        est.observe(2.0);
        assert_eq!(est.estimate(), Some(2.0));
    }

    #[test]
    fn p2_monotone_stream_converges_tightly() {
        let mut est = P2Quantile::new(0.9);
        for i in 0..10_000 {
            est.observe(i as f64);
        }
        let got = est.estimate().unwrap();
        assert!((got - 9_000.0).abs() < 200.0, "p90 of 0..10000 was {got}");
    }

    #[test]
    fn snapshots_cover_windows_and_depth_integral() {
        let mut m = OnlineMetrics::new(SimDuration::from_ms(100), 2);
        // One job in flight for the first half of window 1.
        m.observe_depth(SimTime::ZERO, 1);
        m.observe_depth(SimTime::from_ms(50), 0);
        m.observe_job(SimDuration::from_ms(50), SimDuration::from_ms(5));
        let stats = vec![
            ProcStats {
                busy: SimDuration::from_ms(40),
                transfer: SimDuration::from_ms(10),
                kernels: 1,
            },
            ProcStats::default(),
        ];
        assert_eq!(m.maybe_snapshot(SimTime::from_ms(100), &stats), 1);
        // Nothing new: same instant emits nothing further.
        assert_eq!(m.maybe_snapshot(SimTime::from_ms(100), &stats), 0);
        let s = &m.snapshots()[0];
        assert_eq!(s.end, SimTime::from_ms(100));
        assert_eq!(s.window_jobs, 1);
        assert_eq!(s.total_jobs, 1);
        assert!((s.throughput_jps - 10.0).abs() < 1e-9);
        assert!((s.mean_depth - 0.5).abs() < 1e-9);
        assert!((s.utilization[0] - 0.5).abs() < 1e-9);
        assert_eq!(s.utilization[1], 0.0);
        assert_eq!(s.depth_now, 0);
        // A big time jump emits one snapshot per elapsed window.
        assert_eq!(m.maybe_snapshot(SimTime::from_ms(350), &stats), 2);
        assert_eq!(m.snapshots().len(), 3);
        assert_eq!(m.snapshots()[2].window_jobs, 0);
        assert_eq!(m.lambda_total(), SimDuration::from_ms(5));
        assert_eq!(m.max_depth(), 1);
        assert!((m.mean_latency_ms() - 50.0).abs() < 1e-9);
    }

    /// A depth observation landing *past* the open window's end must split
    /// its time across the crossed windows: no window's mean depth can
    /// exceed the depth that actually stood during it, and no window's time
    /// is silently zeroed.
    #[test]
    fn depth_integral_splits_at_window_boundaries() {
        let mut m = OnlineMetrics::new(SimDuration::from_ms(100), 1);
        let stats = vec![ProcStats::default()];
        // Depth 1 from t = 0; the next event lands at t = 250 ms, two and a
        // half windows later.
        m.observe_depth(SimTime::ZERO, 1);
        m.observe_depth(SimTime::from_ms(250), 0);
        assert_eq!(m.maybe_snapshot(SimTime::from_ms(250), &stats), 2);
        let s = m.snapshots();
        assert!(
            (s[0].mean_depth - 1.0).abs() < 1e-9,
            "window 1: {}",
            s[0].mean_depth
        );
        assert!(
            (s[1].mean_depth - 1.0).abs() < 1e-9,
            "window 2: {}",
            s[1].mean_depth
        );
        // The half-window [200, 250] of depth-1 time stays in the open
        // window and surfaces in window 3.
        assert_eq!(m.maybe_snapshot(SimTime::from_ms(300), &stats), 1);
        assert!(
            (m.snapshots()[2].mean_depth - 0.5).abs() < 1e-9,
            "window 3: {}",
            m.snapshots()[2].mean_depth
        );
        // Sanity: boundary-exact closes still work (no spill entry).
        m.observe_depth(SimTime::from_ms(350), 2);
        assert_eq!(m.maybe_snapshot(SimTime::from_ms(400), &stats), 1);
        assert!((m.snapshots()[3].mean_depth - 1.0).abs() < 1e-9);
    }

    /// An observation landing exactly ON the open window's boundary must
    /// not spill: the `>` guard keeps the integral in the open window, and
    /// the boundary-exact close path in `maybe_snapshot` drains it by hand.
    #[test]
    fn boundary_exact_depth_observation_does_not_spill() {
        let mut m = OnlineMetrics::new(SimDuration::from_ms(100), 1);
        let stats = vec![ProcStats::default()];
        m.observe_depth(SimTime::ZERO, 2);
        // Exactly at the boundary: whole window at depth 2, no spill entry.
        m.observe_depth(SimTime::from_ms(100), 1);
        assert_eq!(m.maybe_snapshot(SimTime::from_ms(100), &stats), 1);
        assert!((m.snapshots()[0].mean_depth - 2.0).abs() < 1e-9);
        // The following window starts from the new depth.
        assert_eq!(m.maybe_snapshot(SimTime::from_ms(200), &stats), 1);
        assert!((m.snapshots()[1].mean_depth - 1.0).abs() < 1e-9);
    }

    /// Deadline accounting: misses land in the window they completed in,
    /// `window_missed` resets per window, cumulative counters and the
    /// tardiness quantiles keep running.
    #[test]
    fn miss_counts_split_per_window() {
        let mut m = OnlineMetrics::new(SimDuration::from_ms(100), 1);
        let stats = vec![ProcStats::default()];
        // Window 1: two deadline jobs, one tardy.
        m.observe_job(SimDuration::from_ms(40), SimDuration::ZERO);
        m.observe_tardiness(SimDuration::ZERO);
        m.observe_job(SimDuration::from_ms(60), SimDuration::ZERO);
        m.observe_tardiness(SimDuration::from_ms(25));
        assert_eq!(m.maybe_snapshot(SimTime::from_ms(100), &stats), 1);
        let s = &m.snapshots()[0];
        assert_eq!(s.window_missed, 1);
        assert_eq!(s.total_missed, 1);
        assert_eq!(s.total_deadline_jobs, 2);
        assert!((s.miss_rate() - 0.5).abs() < 1e-9);
        // Window 2: one more miss; window counter restarted.
        m.observe_job(SimDuration::from_ms(10), SimDuration::ZERO);
        m.observe_tardiness(SimDuration::from_ms(5));
        assert_eq!(m.maybe_snapshot(SimTime::from_ms(200), &stats), 1);
        let s = &m.snapshots()[1];
        assert_eq!(s.window_missed, 1);
        assert_eq!(s.total_missed, 2);
        assert_eq!(s.total_deadline_jobs, 3);
        // A multi-window idle gap emits zero-miss windows without
        // disturbing the cumulative counts.
        assert_eq!(m.maybe_snapshot(SimTime::from_ms(450), &stats), 2);
        for s in &m.snapshots()[2..] {
            assert_eq!(s.window_missed, 0);
            assert_eq!(s.total_missed, 2);
        }
        assert_eq!(m.deadline_jobs(), 3);
        assert_eq!(m.deadline_misses(), 2);
        assert!((m.miss_rate() - 2.0 / 3.0).abs() < 1e-9);
        // Tardiness stats: exact small-sample quantiles over {0, 25, 5}.
        let (p50, p99) = m.tardiness_quantiles_ms();
        assert_eq!(p50, 5.0);
        assert_eq!(p99, 25.0);
        assert!((m.mean_tardiness_ms() - 10.0).abs() < 1e-9);
    }

    /// Satellite regression: a run ending mid-window flushes the tail as a
    /// partial snapshot whose `interval` is the actual covered span, with
    /// rates normalized over it — and a run ending exactly on a boundary
    /// flushes nothing extra.
    #[test]
    fn flush_partial_emits_the_tail_window_once() {
        let stats = vec![ProcStats {
            busy: SimDuration::from_ms(25),
            transfer: SimDuration::ZERO,
            kernels: 1,
        }];
        // Mid-window end: one full window, then 50 ms of tail at depth 1
        // with one completion.
        let mut m = OnlineMetrics::new(SimDuration::from_ms(100), 1);
        m.observe_depth(SimTime::ZERO, 1);
        m.observe_job(SimDuration::from_ms(10), SimDuration::ZERO);
        assert_eq!(
            m.maybe_snapshot(SimTime::from_ms(100), &[ProcStats::default()]),
            1
        );
        m.observe_job(SimDuration::from_ms(20), SimDuration::ZERO);
        assert_eq!(m.flush_partial(SimTime::from_ms(150), &stats), 1);
        let s = m.snapshots().last().unwrap();
        assert_eq!(s.end, SimTime::from_ms(150));
        assert_eq!(s.interval, SimDuration::from_ms(50), "partial span");
        assert_eq!(s.window_jobs, 1);
        assert_eq!(s.total_jobs, 2);
        assert!((s.throughput_jps - 20.0).abs() < 1e-9, "1 job / 50 ms");
        assert!((s.mean_depth - 1.0).abs() < 1e-9);
        assert!((s.utilization[0] - 0.5).abs() < 1e-9, "25 ms busy / 50 ms");
        assert_eq!(s.availability, 1.0);

        // Boundary-exact end: the whole-window snapshot already covered the
        // run; the flush must not append an empty duplicate.
        let mut m = OnlineMetrics::new(SimDuration::from_ms(100), 1);
        m.observe_job(SimDuration::from_ms(10), SimDuration::ZERO);
        assert_eq!(
            m.flush_partial(SimTime::from_ms(200), &[ProcStats::default()]),
            2
        );
        assert_eq!(m.snapshots().len(), 2);
        assert_eq!(m.snapshots()[1].end, SimTime::from_ms(200));
        assert_eq!(m.snapshots()[1].interval, SimDuration::from_ms(100));
        // A zero-duration run has no tail either.
        let mut m = OnlineMetrics::new(SimDuration::from_ms(100), 1);
        assert_eq!(m.flush_partial(SimTime::ZERO, &[ProcStats::default()]), 0);
    }

    /// The admission axis: admitted/shed counts split per window, the
    /// windowed miss/shed rates read from the window's own counters, and
    /// cumulative sheds keep running.
    #[test]
    fn admission_counters_split_per_window() {
        let stats = vec![ProcStats::default()];
        let mut m = OnlineMetrics::new(SimDuration::from_ms(100), 1);
        for _ in 0..3 {
            m.observe_job_admitted();
        }
        m.observe_job_shed();
        // One deadline job completes tardy, one on time.
        m.observe_job(SimDuration::from_ms(10), SimDuration::ZERO);
        m.observe_tardiness(SimDuration::from_ms(5));
        m.observe_job(SimDuration::from_ms(10), SimDuration::ZERO);
        m.observe_tardiness(SimDuration::ZERO);
        assert_eq!(m.maybe_snapshot(SimTime::from_ms(100), &stats), 1);
        let s = &m.snapshots()[0];
        assert_eq!(s.window_admitted, 3);
        assert_eq!(s.window_shed, 1);
        assert_eq!(s.total_shed, 1);
        assert_eq!(s.window_deadline_jobs, 2);
        assert!((s.window_shed_rate() - 0.25).abs() < 1e-9);
        assert!((s.window_miss_rate() - 0.5).abs() < 1e-9);
        // Next window: counters restarted, cumulative sheds kept.
        m.observe_job_shed();
        assert_eq!(m.maybe_snapshot(SimTime::from_ms(200), &stats), 1);
        let s = &m.snapshots()[1];
        assert_eq!(s.window_admitted, 0);
        assert_eq!(s.window_shed, 1);
        assert_eq!(s.total_shed, 2);
        assert_eq!(s.window_deadline_jobs, 0);
        assert_eq!(s.window_miss_rate(), 0.0, "no deadline completions");
        assert_eq!(m.total_shed_jobs(), 2);
    }

    /// Deadline-free streams never contribute to the SLO counters.
    #[test]
    fn deadline_free_jobs_leave_slo_counters_untouched() {
        let mut m = OnlineMetrics::new(SimDuration::from_ms(100), 1);
        m.observe_job(SimDuration::from_ms(40), SimDuration::ZERO);
        assert_eq!(m.deadline_jobs(), 0);
        assert_eq!(m.miss_rate(), 0.0);
        assert_eq!(m.mean_tardiness_ms(), 0.0);
        assert_eq!(m.tardiness_quantiles_ms(), (0.0, 0.0));
        let stats = vec![ProcStats::default()];
        m.maybe_snapshot(SimTime::from_ms(100), &stats);
        assert_eq!(m.snapshots()[0].total_deadline_jobs, 0);
        assert_eq!(m.snapshots()[0].miss_rate(), 0.0);
        assert_eq!(m.snapshots()[0].tardiness_p99_ms, 0.0);
    }
}
