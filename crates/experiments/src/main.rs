//! `apt-repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! apt-repro list            # show all artifact ids
//! apt-repro table8 fig7     # regenerate specific artifacts
//! apt-repro all             # regenerate everything, in paper order
//! apt-repro --markdown all  # markdown output (for EXPERIMENTS.md)
//! ```

use apt_experiments::{all_artifact_ids, run_artifact, Artifact};
use std::io::Write as _;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = if let Some(pos) = args.iter().position(|a| a == "--markdown") {
        args.remove(pos);
        true
    } else {
        false
    };
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: apt-repro [--markdown] <artifact-id>... | all | list");
        eprintln!("artifacts: {}", all_artifact_ids().join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args[0] == "list" {
        for id in all_artifact_ids() {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args[0] == "all" {
        // Fill the run cache for the whole evaluation grid in one parallel
        // wave (combination × graph × policy) before rendering anything.
        apt_experiments::runner::prewarm_paper_grid();
        all_artifact_ids()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut failed = false;
    for id in ids {
        match run_artifact(id) {
            Some(artifact) => {
                let rendered = match (&artifact, markdown) {
                    (Artifact::Table(t), true) => t.to_markdown(),
                    _ => artifact.to_string(),
                };
                if writeln!(out, "=== {id} ===\n{rendered}").is_err() {
                    // Downstream pipe closed (e.g. `apt-repro all | head`):
                    // stop quietly instead of panicking.
                    return;
                }
            }
            None => {
                eprintln!("unknown artifact id: {id}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
