//! Shared error type.
//!
//! The workspace uses one small hand-rolled error enum rather than pulling in
//! an error-handling dependency; every failure in the pipeline is one of a
//! few structural problems (bad graph, missing lookup entry, bad config).

use std::fmt;

/// Errors surfaced by graph construction, lookup queries, system
/// configuration, and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseError {
    /// The dataflow graph contains a cycle (scheduling requires a DAG).
    CyclicGraph {
        /// A node id known to participate in (or be reachable from) a cycle.
        node: usize,
    },
    /// An edge referenced a node id that does not exist.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes actually in the graph.
        len: usize,
    },
    /// An edge was added twice.
    DuplicateEdge {
        /// Source node id.
        from: usize,
        /// Destination node id.
        to: usize,
    },
    /// A self-loop was requested.
    SelfLoop {
        /// The node id.
        node: usize,
    },
    /// The lookup table has no entry for a kernel/data-size/processor triple.
    MissingLookup {
        /// Kernel short name (e.g. "mm").
        kernel: &'static str,
        /// The data size requested.
        data_size: u64,
        /// Processor category label.
        proc: &'static str,
    },
    /// A system was configured without any processors, or without any
    /// processor able to execute some kernel.
    InvalidSystem {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A policy produced an invalid decision (unknown node, node not ready,
    /// or an assignment to a processor that cannot run the kernel).
    InvalidAssignment {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A simulation ended with unexecuted kernels (policy starvation).
    Starvation {
        /// Number of kernels that never ran.
        unscheduled: usize,
    },
    /// A source produced an arrival earlier than its predecessor. Streams
    /// must be replayed in non-decreasing arrival order; out-of-order
    /// records end the stream with this error instead of a panic.
    DisorderedArrival {
        /// Arrival timestamp of the offending record (ns).
        at_ns: u64,
        /// Arrival timestamp of the preceding record (ns).
        prev_ns: u64,
    },
    /// A kernel exhausted its retry budget after repeated injected
    /// failures (closed-system runs, where shedding the job is not an
    /// option).
    RetriesExhausted {
        /// Arena slot / node id of the kernel that kept failing.
        node: usize,
        /// Number of execution attempts made.
        attempts: u32,
    },
    /// A policy assigned work to a processor that is currently crashed
    /// (masked out of the availability set).
    ProcUnavailable {
        /// The down processor's id.
        proc: usize,
    },
}

impl fmt::Display for BaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseError::CyclicGraph { node } => {
                write!(f, "dataflow graph is cyclic (node {node} is on a cycle)")
            }
            BaseError::NodeOutOfRange { node, len } => {
                write!(f, "node id {node} out of range (graph has {len} nodes)")
            }
            BaseError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from} -> {to}")
            }
            BaseError::SelfLoop { node } => write!(f, "self loop on node {node}"),
            BaseError::MissingLookup {
                kernel,
                data_size,
                proc,
            } => write!(
                f,
                "no lookup entry for kernel {kernel} (data size {data_size}) on {proc}"
            ),
            BaseError::InvalidSystem { reason } => write!(f, "invalid system: {reason}"),
            BaseError::InvalidAssignment { reason } => {
                write!(f, "invalid assignment: {reason}")
            }
            BaseError::Starvation { unscheduled } => write!(
                f,
                "simulation starved: {unscheduled} kernels were never scheduled"
            ),
            BaseError::DisorderedArrival { at_ns, prev_ns } => write!(
                f,
                "disordered arrival: {at_ns} ns follows {prev_ns} ns (arrivals must be non-decreasing)"
            ),
            BaseError::RetriesExhausted { node, attempts } => write!(
                f,
                "kernel {node} exhausted its retry budget after {attempts} attempts"
            ),
            BaseError::ProcUnavailable { proc } => {
                write!(f, "processor {proc} is down (crashed and not yet repaired)")
            }
        }
    }
}

impl std::error::Error for BaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BaseError::MissingLookup {
            kernel: "mm",
            data_size: 42,
            proc: "ASIC",
        };
        let s = e.to_string();
        assert!(s.contains("mm") && s.contains("42") && s.contains("ASIC"));

        let e = BaseError::CyclicGraph { node: 3 };
        assert!(e.to_string().contains("cyclic"));

        let e = BaseError::DisorderedArrival {
            at_ns: 5,
            prev_ns: 9,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('9'));

        let e = BaseError::RetriesExhausted {
            node: 7,
            attempts: 3,
        };
        assert!(e.to_string().contains("retry"));

        let e = BaseError::ProcUnavailable { proc: 2 };
        assert!(e.to_string().contains("down"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            BaseError::SelfLoop { node: 1 },
            BaseError::SelfLoop { node: 1 }
        );
        assert_ne!(
            BaseError::SelfLoop { node: 1 },
            BaseError::SelfLoop { node: 2 }
        );
    }
}
