//! `apt-lint` CLI: scan the workspace, print findings, gate CI.
//!
//! ```text
//! apt-lint [--check] [--json] [--root <path>]
//!   --check   exit 1 when any finding survives (CI gate mode)
//!   --json    emit the stable apt-lint-v1 JSON schema instead of text
//!   --root    workspace root (default: auto-discovered)
//! ```

use apt_lint::{find_root, scan_workspace, LintConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut json = false;
    let mut root_arg: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(r) => root_arg = Some(r),
                None => {
                    eprintln!("apt-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("apt-lint [--check] [--json] [--root <path>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("apt-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = find_root(root_arg.as_deref());
    let cfg = LintConfig::workspace_default();
    let report = match scan_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("apt-lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if check && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
