//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Criterion times each configuration; the *makespans* the configurations
//! produce are printed by `apt-repro ablation-*`. Together they answer:
//! how sensitive is the result to α granularity, the degree of
//! heterogeneity, the bytes-per-element convention, the machine size, and
//! the APT-R refinement?

use apt_bench::{run, type1_workload};
use apt_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_alpha_fine(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/alpha_fine");
    g.sample_size(10);
    let dfg = type1_workload();
    let system = SystemConfig::paper_4gbps();
    for alpha in [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0, 32.0] {
        g.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &a| {
            b.iter(|| black_box(run(&dfg, &system, &mut Apt::new(a))))
        });
    }
    g.finish();
}

fn bench_heterogeneity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/heterogeneity");
    g.sample_size(10);
    let dfg = type1_workload();
    let system = SystemConfig::paper_4gbps();
    for factor in [1.0, 0.5, 0.1, 0.0] {
        let table = LookupTable::paper().scaled_heterogeneity(factor);
        g.bench_with_input(BenchmarkId::from_parameter(factor), &table, |b, t| {
            b.iter(|| {
                let res = simulate(&dfg, &system, t, &mut Apt::new(4.0)).unwrap();
                black_box(res.makespan().as_ns())
            })
        });
    }
    g.finish();
}

fn bench_bytes_per_element(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/bytes_per_element");
    g.sample_size(10);
    let dfg = type1_workload();
    for bytes in [0u64, 4, 8, 64] {
        let system = SystemConfig::paper_4gbps().with_bytes_per_element(bytes);
        g.bench_with_input(BenchmarkId::from_parameter(bytes), &system, |b, s| {
            b.iter(|| black_box(run(&dfg, s, &mut Apt::new(4.0))))
        });
    }
    g.finish();
}

fn bench_processor_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/processor_count");
    g.sample_size(10);
    let dfg = type1_workload();
    for sets in [1usize, 2, 3] {
        let mut system = SystemConfig::empty(LinkRate::PCIE2_X8);
        for _ in 0..sets {
            system = system
                .with_proc(ProcKind::Cpu)
                .with_proc(ProcKind::Gpu)
                .with_proc(ProcKind::Fpga);
        }
        g.bench_with_input(BenchmarkId::from_parameter(sets * 3), &system, |b, s| {
            b.iter(|| black_box(run(&dfg, s, &mut Apt::new(4.0))))
        });
    }
    g.finish();
}

fn bench_apt_r(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/apt_r");
    g.sample_size(10);
    let dfg = type1_workload();
    let system = SystemConfig::paper_4gbps();
    g.bench_function("apt", |b| {
        b.iter(|| black_box(run(&dfg, &system, &mut Apt::new(4.0))))
    });
    g.bench_function("apt_r", |b| {
        b.iter(|| black_box(run(&dfg, &system, &mut AptR::new(4.0))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_alpha_fine,
    bench_heterogeneity,
    bench_bytes_per_element,
    bench_processor_count,
    bench_apt_r
);
criterion_main!(benches);
