//! Online job stream: applications arrive over time (the paper's "incoming
//! stream of applications", §3.2) and APT schedules them as they land.
//!
//! Each job is a small diamond DAG (decompose → parallel kernels → combine);
//! jobs are submitted at staggered instants via `simulate_stream`. Compare
//! how APT and MET absorb the bursts.
//!
//! ```bash
//! cargo run --release -p apt-suite --example online_stream [jobs] [gap_ms]
//! ```

use apt_metrics::RunSummary;
use apt_suite::prelude::*;

/// One job: srad → (mm, mi, bfs) → cd. Returns the arrival instants for its
/// nodes (all equal to the job's submission time).
fn add_job(dfg: &mut KernelDag, arrivals: &mut Vec<SimTime>, at: SimTime) {
    let srad = dfg.add_node(Kernel::canonical(KernelKind::Srad));
    let mm = dfg.add_node(Kernel::new(KernelKind::MatMul, 16_000_000));
    let mi = dfg.add_node(Kernel::new(KernelKind::MatInv, 4_000_000));
    let bfs = dfg.add_node(Kernel::canonical(KernelKind::Bfs));
    let cd = dfg.add_node(Kernel::new(KernelKind::Cholesky, 4_000_000));
    for (a, b) in [
        (srad, mm),
        (srad, mi),
        (srad, bfs),
        (mm, cd),
        (mi, cd),
        (bfs, cd),
    ] {
        dfg.add_edge(a, b).expect("fresh job edges");
    }
    arrivals.extend(std::iter::repeat_n(at, 5));
}

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let gap_ms: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(800);

    let mut dfg = KernelDag::new();
    let mut arrivals = Vec::new();
    for j in 0..jobs {
        add_job(&mut dfg, &mut arrivals, SimTime::from_ms(j as u64 * gap_ms));
    }
    println!(
        "stream: {jobs} jobs × 5 kernels, one job every {gap_ms} ms ({} kernels total)\n",
        dfg.len()
    );

    let lookup = LookupTable::paper();
    let system = SystemConfig::paper_4gbps();

    for mut policy in [
        Box::new(Met::new()) as Box<dyn Policy>,
        Box::new(Apt::new(4.0)),
    ] {
        let res =
            simulate_stream(&dfg, &system, lookup, policy.as_mut(), &arrivals).expect("stream run");
        let s = RunSummary::from_result(&res);
        let last_arrival = SimTime::from_ms((jobs as u64 - 1) * gap_ms);
        let drain = res
            .trace
            .records
            .iter()
            .map(|r| r.finish)
            .max()
            .unwrap()
            .saturating_since(last_arrival);
        println!(
            "{:10} makespan {:>12}   λ {:>12}   drain after last job {:>12}",
            s.policy,
            format!("{}", s.makespan),
            format!("{}", s.lambda_total),
            format!("{drain}"),
        );
    }

    println!("\n(λ here measures only scheduler-attributable waiting: a kernel's");
    println!(" clock starts at max(arrival, dependencies met), so idle time before");
    println!(" a job is submitted is not charged to the policy)");
}
