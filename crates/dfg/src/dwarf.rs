//! The thirteen Berkeley dwarfs (§2.4) and the application ↔ dwarf
//! membership of Table 1.
//!
//! A *dwarf* is an algorithmic method capturing a pattern of computation and
//! communication (Colella's original seven, expanded to thirteen by Asanović
//! et al.). The paper uses dwarfs to argue that the chosen kernels cover a
//! representative slice of the computation/communication design space.
//!
//! Table 1 in the thesis is a checkmark matrix whose marks do not survive
//! text extraction; the memberships encoded here are reconstructed from the
//! Rodinia / OpenDwarfs classifications the thesis cites (Krommydas et al.,
//! Skalicky et al.), which is the same provenance the thesis used.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The thirteen Berkeley dwarfs of Asanović et al. (§2.4 list a–m).
/// Variants marked `*` in the paper were the six added to Colella's seven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dwarf {
    /// (a) Traditional vector/matrix operations, BLAS levels 1–3.
    DenseLinearAlgebra,
    /// (b) Computations on matrices with many zero entries.
    SparseLinearAlgebra,
    /// (c) Spectral-domain methods, typically involving FFTs.
    SpectralMethods,
    /// (d) Interactions among many discrete points.
    NBody,
    /// (e) Regular multidimensional grids updated from neighborhoods.
    StructuredGrids,
    /// (f) Irregular grids with irregular neighbor access.
    UnstructuredGrids,
    /// (g) Independent repeated execution with final aggregation (née Monte Carlo).
    MapReduce,
    /// (h)* Simple logical operations over large data, bit-level parallelism.
    CombinationalLogic,
    /// (i)* Traversal of objects in a graph with little computation per visit.
    GraphTraversal,
    /// (j)* Decomposition into overlapping subproblems.
    DynamicProgramming,
    /// (k)* Search/optimization by pruning subregions of a search space.
    BacktrackBranchAndBound,
    /// (l)* Graphs of variables and conditional probabilities.
    GraphicalModels,
    /// (m)* Systems of connected states with input-driven transitions.
    FiniteStateMachines,
}

impl Dwarf {
    /// All thirteen dwarfs in the paper's (a)–(m) order.
    pub const ALL: [Dwarf; 13] = [
        Dwarf::DenseLinearAlgebra,
        Dwarf::SparseLinearAlgebra,
        Dwarf::SpectralMethods,
        Dwarf::NBody,
        Dwarf::StructuredGrids,
        Dwarf::UnstructuredGrids,
        Dwarf::MapReduce,
        Dwarf::CombinationalLogic,
        Dwarf::GraphTraversal,
        Dwarf::DynamicProgramming,
        Dwarf::BacktrackBranchAndBound,
        Dwarf::GraphicalModels,
        Dwarf::FiniteStateMachines,
    ];

    /// True for the six dwarfs newly introduced by Asanović et al.
    /// (marked `*` in the paper's list).
    pub const fn is_berkeley_addition(self) -> bool {
        matches!(
            self,
            Dwarf::CombinationalLogic
                | Dwarf::GraphTraversal
                | Dwarf::DynamicProgramming
                | Dwarf::BacktrackBranchAndBound
                | Dwarf::GraphicalModels
                | Dwarf::FiniteStateMachines
        )
    }

    /// Human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            Dwarf::DenseLinearAlgebra => "Dense Linear Algebra",
            Dwarf::SparseLinearAlgebra => "Sparse Linear Algebra",
            Dwarf::SpectralMethods => "Spectral Methods",
            Dwarf::NBody => "N-Body Methods",
            Dwarf::StructuredGrids => "Structured Grids",
            Dwarf::UnstructuredGrids => "Unstructured Grids",
            Dwarf::MapReduce => "MapReduce",
            Dwarf::CombinationalLogic => "Combinational Logic",
            Dwarf::GraphTraversal => "Graph Traversal",
            Dwarf::DynamicProgramming => "Dynamic Programming",
            Dwarf::BacktrackBranchAndBound => "Backtrack and Branch-and-Bound",
            Dwarf::GraphicalModels => "Graphical Models",
            Dwarf::FiniteStateMachines => "Finite State Machines",
        }
    }
}

impl fmt::Display for Dwarf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The eleven applications enumerated in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Application {
    /// Optimal global sequence alignment.
    NeedlemanWunsch,
    /// Dense matrix inversion.
    MatrixInverse,
    /// Gaussian electrostatic model (molecular surface potential).
    Gem,
    /// Cholesky factorization of an SPD matrix.
    CholeskyDecomposition,
    /// Breadth-first graph search.
    Bfs,
    /// Dense matrix-matrix multiplication.
    MatrixMatrixMultiplication,
    /// Speckle-reducing anisotropic diffusion (ultrasound despeckling).
    Srad,
    /// Rodinia molecular-dynamics particle kernel.
    LavaMd,
    /// Rodinia thermal simulation on a structured grid.
    HotSpot,
    /// Neural-network training by error backpropagation.
    Backpropagation,
    /// Fast Fourier transform.
    Fft,
}

impl Application {
    /// All Table-1 applications, in row order.
    pub const ALL: [Application; 11] = [
        Application::NeedlemanWunsch,
        Application::MatrixInverse,
        Application::Gem,
        Application::CholeskyDecomposition,
        Application::Bfs,
        Application::MatrixMatrixMultiplication,
        Application::Srad,
        Application::LavaMd,
        Application::HotSpot,
        Application::Backpropagation,
        Application::Fft,
    ];

    /// Table-1 row label.
    pub const fn name(self) -> &'static str {
        match self {
            Application::NeedlemanWunsch => "Needleman Wunsch",
            Application::MatrixInverse => "Matrix Inverse",
            Application::Gem => "GEM",
            Application::CholeskyDecomposition => "Cholesky decomp.",
            Application::Bfs => "BFS",
            Application::MatrixMatrixMultiplication => "Mat.Mat. Multi.",
            Application::Srad => "SRAD",
            Application::LavaMd => "LavaMD",
            Application::HotSpot => "HotSpot",
            Application::Backpropagation => "Backpropagation",
            Application::Fft => "FFT",
        }
    }

    /// The dwarfs this application's kernels belong to (Table 1 membership).
    pub const fn dwarfs(self) -> &'static [Dwarf] {
        match self {
            Application::NeedlemanWunsch => &[Dwarf::DynamicProgramming],
            Application::MatrixInverse => &[Dwarf::DenseLinearAlgebra],
            Application::Gem => &[Dwarf::NBody],
            Application::CholeskyDecomposition => {
                &[Dwarf::DenseLinearAlgebra, Dwarf::SparseLinearAlgebra]
            }
            Application::Bfs => &[Dwarf::GraphTraversal],
            Application::MatrixMatrixMultiplication => &[Dwarf::DenseLinearAlgebra],
            Application::Srad => &[Dwarf::StructuredGrids],
            Application::LavaMd => &[Dwarf::NBody, Dwarf::UnstructuredGrids],
            Application::HotSpot => &[Dwarf::StructuredGrids],
            Application::Backpropagation => &[Dwarf::DenseLinearAlgebra, Dwarf::UnstructuredGrids],
            Application::Fft => &[Dwarf::SpectralMethods],
        }
    }

    /// Membership test for one dwarf.
    pub fn belongs_to(self, dwarf: Dwarf) -> bool {
        self.dwarfs().contains(&dwarf)
    }
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Render the Table-1 membership matrix as ASCII (rows = applications,
/// columns = the eight dwarfs that actually appear in Table 1).
pub fn table1_matrix() -> String {
    // Table 1 shows these eight dwarf columns.
    const COLUMNS: [Dwarf; 8] = [
        Dwarf::DenseLinearAlgebra,
        Dwarf::SparseLinearAlgebra,
        Dwarf::SpectralMethods,
        Dwarf::NBody,
        Dwarf::StructuredGrids,
        Dwarf::UnstructuredGrids,
        Dwarf::GraphTraversal,
        Dwarf::DynamicProgramming,
    ];
    let mut out = String::new();
    out.push_str(&format!("{:<18}", "Application"));
    for c in COLUMNS {
        let abbrev: String = c
            .name()
            .split_whitespace()
            .map(|w| w.chars().next().unwrap())
            .collect();
        out.push_str(&format!("{abbrev:>6}"));
    }
    out.push('\n');
    for app in Application::ALL {
        out.push_str(&format!("{:<18}", app.name()));
        for c in COLUMNS {
            out.push_str(&format!("{:>6}", if app.belongs_to(c) { "x" } else { "." }));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_dwarfs_six_additions() {
        assert_eq!(Dwarf::ALL.len(), 13);
        let additions = Dwarf::ALL
            .iter()
            .filter(|d| d.is_berkeley_addition())
            .count();
        assert_eq!(additions, 6);
    }

    #[test]
    fn every_application_has_a_dwarf() {
        for app in Application::ALL {
            assert!(!app.dwarfs().is_empty(), "{app} has no dwarf");
        }
    }

    #[test]
    fn single_kernel_applications_have_one_dwarf() {
        // §2.4: "the BFS implementation for the shortest path problem ...
        // has just the Graph Traversal dwarf".
        assert_eq!(Application::Bfs.dwarfs(), &[Dwarf::GraphTraversal]);
        assert!(Application::Bfs.belongs_to(Dwarf::GraphTraversal));
        assert!(!Application::Bfs.belongs_to(Dwarf::NBody));
    }

    #[test]
    fn table1_matrix_renders_all_rows() {
        let m = table1_matrix();
        let lines: Vec<_> = m.lines().collect();
        assert_eq!(lines.len(), 1 + Application::ALL.len());
        assert!(m.contains("Needleman Wunsch"));
        assert!(m.contains("FFT"));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Dwarf::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }
}
