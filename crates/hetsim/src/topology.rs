//! Per-pair interconnect topologies.
//!
//! The paper fixes "the data transfer rates between all processors to be
//! the same" (§3.2) — the [`crate::LinkRate`] scalar [`crate::SystemConfig`]
//! has always carried. Real heterogeneous nodes are not like that: NUMA
//! clusters keep fast links inside a socket and slow ones across it, and
//! PCIe trees route every device↔device move through a host bridge. This
//! module departs from §3.2 deliberately: a [`Topology`] is a dense
//! per-(source, destination) rate matrix, so the transfer term APT's
//! threshold α trades against can finally be stressed by a machine whose
//! interconnect has *structure*.
//!
//! ## Model
//!
//! * A directed link `(src, dst)` has its own [`LinkRate`]; moving `b`
//!   bytes across it takes `ceil(b / rate)` nanoseconds — the exact
//!   integer arithmetic of [`LinkRate::transfer_time`], per pair.
//!   Same-processor moves remain free (the Eq. 6 convention `c_ij = 0`
//!   when `p_w = p_k`).
//! * The [`Topology::uniform`] preset reproduces the seed semantics: it is
//!   routed through the same scalar fast path the plain `LinkRate` field
//!   uses, and is pinned **byte-identical** to it by the equivalence
//!   suites. Every other construction (presets or [`Topology::from_fn`])
//!   uses the dense matrix — including a matrix whose rates all happen to
//!   be equal, which the differential tests hold byte-identical to the
//!   scalar path too.
//!
//! ## Presets
//!
//! * [`Topology::uniform`] — one rate everywhere (§3.2; the seed model).
//! * [`Topology::clustered`] — NUMA-ish: processors are grouped into
//!   consecutive clusters of `cluster_size`; intra-cluster pairs get the
//!   fast rate, inter-cluster pairs the slow one.
//! * [`Topology::star`] — host-staged PCIe tree: every device exchanges
//!   data with the root at the edge rate, and device↔device moves hop
//!   through the root, modeled as the effective two-hop rate (half the
//!   edge rate for equal hops — `b/r + b/r = 2b/r`). The root is the
//!   bottleneck every cross-device byte pays for.
//!
//! ## Contention
//!
//! By default ([`LinkContention::Off`]) the engine keeps the seed's
//! transfer semantics: a starting kernel's input transfers serialize on
//! the consumer (their durations sum), whatever the topology. With
//! [`LinkContention::PerLink`] the engine instead models each directed
//! link as a half-duplex channel with its own busy-until clock: a kernel's
//! input transfers proceed **concurrently across distinct links**, while
//! transfers on the *same* directed link serialize behind the clock, and
//! execution starts once the last input has landed. Policies keep seeing
//! the contention-free estimate through [`crate::SimView::transfer_in_time`]
//! — link occupancy is engine state a dynamic policy cannot observe ahead
//! of time, exactly like queueing delay behind other jobs.
//!
//! Contention is keyed on the matrix's *logical* `(src, dst)` pairs, not
//! on routed physical edges: presets that fold multi-hop paths into one
//! effective rate (the [`Topology::star`] two-hop) do not serialize the
//! shared segments those paths really traverse — see the star docs.
//!
//! ## Failure model
//!
//! The interconnect can also *degrade*: an armed
//! [`crate::FaultPlan`] with a [`crate::LinkDegradeSpec`] overlays
//! episodic slowdowns on whatever rates the topology supplies. During an
//! episode every affected transfer time is multiplied by the spec's
//! `slowdown` factor — either on one directed `(src, dst)` pair or, with
//! `pair: None`, across the whole fabric — and episodes alternate with
//! exponentially-drawn healthy intervals (`mtbf`) on the fault plan's own
//! RNG stream. Degradation composes with everything above: it scales the
//! *outcome* of the topology lookup (and, under
//! [`LinkContention::PerLink`], stretches the busy window the transfer
//! holds on its link), it never rewrites the matrix itself, and policies
//! still see the healthy estimate — a degraded link, like a busy one, is
//! engine state the scheduler discovers only through its consequences.
//! Processor crash/repair and transient kernel failures live one level
//! up in the engine; see the crate-level "Failure model" section.

use crate::link::LinkRate;
use apt_base::{BaseError, ProcId, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the engine arbitrates concurrent transfers on the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LinkContention {
    /// Seed semantics (the default): a starting kernel's input transfers
    /// serialize on the consuming processor — their durations sum —
    /// regardless of which links they use.
    #[default]
    Off,
    /// Per-link busy-until clocks: input transfers run concurrently across
    /// distinct directed links; transfers on the same directed link
    /// serialize behind the link's clock. Execution starts when the last
    /// input lands.
    PerLink,
}

/// A per-(source, destination) interconnect rate matrix. See the module
/// docs for the model, the presets, and the §3.2 departure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    nprocs: usize,
    /// Dense `src × nprocs + dst` rate matrix; the diagonal is stored (as
    /// the constructor's base rate) but never read — same-processor moves
    /// are free.
    rates: Vec<LinkRate>,
    /// `Some(rate)` only for [`Topology::uniform`]: routes the cost model
    /// through the scalar fast path, byte-identical to the seed
    /// `LinkRate` field.
    uniform: Option<LinkRate>,
    /// Transfer arbitration mode (off by default).
    contention: LinkContention,
}

impl Topology {
    /// One rate between every pair — the §3.2 model, reproduced exactly:
    /// this preset routes through the same scalar path as the plain
    /// [`crate::SystemConfig::link`] field and is pinned byte-identical to
    /// it by the equivalence suites.
    pub fn uniform(nprocs: usize, rate: LinkRate) -> Topology {
        Topology {
            nprocs,
            rates: vec![rate; nprocs * nprocs],
            uniform: Some(rate),
            contention: LinkContention::Off,
        }
    }

    /// NUMA-ish clusters: processors `[0, cluster_size)` form cluster 0,
    /// the next `cluster_size` cluster 1, and so on (a trailing partial
    /// cluster is fine). Pairs within a cluster use `intra`, pairs across
    /// clusters `inter`.
    ///
    /// Panics when `cluster_size` is zero.
    pub fn clustered(
        nprocs: usize,
        cluster_size: usize,
        intra: LinkRate,
        inter: LinkRate,
    ) -> Topology {
        assert!(cluster_size > 0, "cluster_size must be at least 1");
        Topology::from_fn(nprocs, |src, dst| {
            if src.index() / cluster_size == dst.index() / cluster_size {
                intra
            } else {
                inter
            }
        })
    }

    /// Host-staged star: `root`'s links to every device run at `edge`;
    /// device↔device pairs hop through the root and get the effective
    /// two-hop rate (`edge / 2` — `b/edge` up plus `b/edge` down).
    ///
    /// The staging is *rate-level only*: a device↔device pair is still one
    /// logical link of the matrix, so under
    /// [`LinkContention::PerLink`] two transfers out of the same device to
    /// different destinations claim distinct `(src, dst)` clocks — the
    /// shared physical root uplink they would really traverse is not
    /// serialized (routed per-edge claims are a finer model than the
    /// per-pair matrix expresses). Star + contention results are therefore
    /// optimistic about the root's aggregate bandwidth.
    ///
    /// Panics when `root` is outside the machine or `edge` would leave the
    /// two-hop rate at zero.
    pub fn star(nprocs: usize, root: ProcId, edge: LinkRate) -> Topology {
        assert!(root.index() < nprocs, "star root outside the machine");
        let staged = LinkRate {
            bytes_per_sec: edge.bytes_per_sec / 2,
        };
        assert!(
            nprocs < 3 || staged.bytes_per_sec > 0,
            "star edge rate too slow for a two-hop path"
        );
        Topology::from_fn(nprocs, |src, dst| {
            if src == root || dst == root {
                edge
            } else {
                staged
            }
        })
    }

    /// An arbitrary matrix: `rate(src, dst)` for every directed pair. The
    /// diagonal is queried too (stored but never read). Always uses the
    /// dense matrix path, even when every rate is equal — the property the
    /// differential tests hold byte-identical to the scalar path.
    pub fn from_fn(nprocs: usize, rate: impl Fn(ProcId, ProcId) -> LinkRate) -> Topology {
        let mut rates = Vec::with_capacity(nprocs * nprocs);
        for s in 0..nprocs {
            for d in 0..nprocs {
                rates.push(rate(ProcId::new(s), ProcId::new(d)));
            }
        }
        Topology {
            nprocs,
            rates,
            uniform: None,
            contention: LinkContention::Off,
        }
    }

    /// Builder: set the transfer arbitration mode (see [`LinkContention`]).
    pub fn with_contention(mut self, contention: LinkContention) -> Topology {
        self.contention = contention;
        self
    }

    /// Number of processors this matrix describes.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The rate of directed link `(src, dst)`.
    #[inline]
    pub fn rate(&self, src: ProcId, dst: ProcId) -> LinkRate {
        self.rates[src.index() * self.nprocs + dst.index()]
    }

    /// Time to move `bytes` from `src` to `dst`; zero for same-processor
    /// moves. Exact integer arithmetic, rounded up to whole nanoseconds —
    /// the same formula as [`LinkRate::transfer_time`], per pair.
    #[inline]
    pub fn transfer_time(&self, bytes: u64, src: ProcId, dst: ProcId) -> SimDuration {
        if src == dst {
            return SimDuration::ZERO;
        }
        self.rate(src, dst).transfer_time(bytes)
    }

    /// The single rate of a [`Topology::uniform`] preset; `None` for every
    /// matrix construction (even an all-equal one — see the module docs).
    #[inline]
    pub fn uniform_rate(&self) -> Option<LinkRate> {
        self.uniform
    }

    /// The transfer arbitration mode.
    #[inline]
    pub fn contention(&self) -> LinkContention {
        self.contention
    }

    /// Mean off-diagonal rate-weighted transfer time of `bytes` in
    /// fractional milliseconds — the static rankers' `c̄_ij` under a
    /// non-uniform matrix. For the uniform preset this is exactly the
    /// scalar link time (no averaging, so the value is bit-identical to
    /// the seed path).
    pub fn mean_pair_transfer_ms(&self, bytes: u64) -> f64 {
        if let Some(rate) = self.uniform {
            return rate.transfer_time(bytes).as_ms_f64();
        }
        let mut sum = 0.0f64;
        let mut pairs = 0usize;
        for s in 0..self.nprocs {
            for d in 0..self.nprocs {
                if s != d {
                    sum += self.rates[s * self.nprocs + d]
                        .transfer_time(bytes)
                        .as_ms_f64();
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            sum / pairs as f64
        }
    }

    /// Structural validation: the matrix must cover `nprocs` processors
    /// and every off-diagonal rate must be positive (a zero-rate link
    /// would make transfers across it infinite).
    pub fn validate(&self, nprocs: usize) -> Result<(), BaseError> {
        if self.nprocs != nprocs {
            return Err(BaseError::InvalidSystem {
                reason: format!(
                    "topology describes {} processors but the system has {nprocs}",
                    self.nprocs
                ),
            });
        }
        for s in 0..self.nprocs {
            for d in 0..self.nprocs {
                if s != d && self.rates[s * self.nprocs + d].bytes_per_sec == 0 {
                    return Err(BaseError::InvalidSystem {
                        reason: format!("topology link ({s} -> {d}) has zero rate"),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.uniform {
            Some(rate) => write!(f, "uniform({rate})"),
            None => write!(f, "matrix({}x{})", self.nprocs, self.nprocs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_preset_is_scalar_pathed() {
        let t = Topology::uniform(3, LinkRate::PCIE2_X8);
        assert_eq!(t.uniform_rate(), Some(LinkRate::PCIE2_X8));
        assert_eq!(t.contention(), LinkContention::Off);
        for s in 0..3 {
            for d in 0..3 {
                let (s, d) = (ProcId::new(s), ProcId::new(d));
                assert_eq!(t.rate(s, d), LinkRate::PCIE2_X8);
                let expect = if s == d {
                    SimDuration::ZERO
                } else {
                    LinkRate::PCIE2_X8.transfer_time(1 << 20)
                };
                assert_eq!(t.transfer_time(1 << 20, s, d), expect);
            }
        }
        assert_eq!(t.to_string(), "uniform(4GB/s)");
        t.validate(3).unwrap();
    }

    #[test]
    fn equal_rate_matrix_is_not_the_uniform_preset() {
        // from_fn always takes the dense path, even with equal rates — the
        // differential the equivalence property tests rely on.
        let t = Topology::from_fn(3, |_, _| LinkRate::PCIE2_X8);
        assert_eq!(t.uniform_rate(), None);
        assert_eq!(t.to_string(), "matrix(3x3)");
    }

    #[test]
    fn clustered_splits_intra_and_inter() {
        let intra = LinkRate::gbps(8);
        let inter = LinkRate::gbps(1);
        let t = Topology::clustered(6, 3, intra, inter);
        assert_eq!(t.uniform_rate(), None);
        // {0,1,2} and {3,4,5} are clusters.
        assert_eq!(t.rate(ProcId::new(0), ProcId::new(2)), intra);
        assert_eq!(t.rate(ProcId::new(3), ProcId::new(5)), intra);
        assert_eq!(t.rate(ProcId::new(2), ProcId::new(3)), inter);
        assert_eq!(t.rate(ProcId::new(5), ProcId::new(0)), inter);
        t.validate(6).unwrap();
        // A slow inter link makes cross-cluster transfers slower.
        assert!(
            t.transfer_time(1 << 26, ProcId::new(0), ProcId::new(3))
                > t.transfer_time(1 << 26, ProcId::new(0), ProcId::new(1))
        );
    }

    #[test]
    fn star_halves_the_device_to_device_rate() {
        let edge = LinkRate::gbps(4);
        let t = Topology::star(4, ProcId::new(0), edge);
        assert_eq!(t.rate(ProcId::new(0), ProcId::new(3)), edge);
        assert_eq!(t.rate(ProcId::new(2), ProcId::new(0)), edge);
        assert_eq!(
            t.rate(ProcId::new(1), ProcId::new(2)).bytes_per_sec,
            edge.bytes_per_sec / 2
        );
        // Two-hop time = twice the edge time (for bytes divisible cleanly).
        assert_eq!(
            t.transfer_time(4_000_000_000, ProcId::new(1), ProcId::new(2)),
            edge.transfer_time(4_000_000_000) * 2
        );
    }

    #[test]
    fn mean_pair_transfer_is_exact_for_uniform_and_averages_otherwise() {
        let bytes = 64_000_000u64; // 16 ms at 4 GB/s
        let u = Topology::uniform(3, LinkRate::gbps(4));
        assert_eq!(
            u.mean_pair_transfer_ms(bytes),
            LinkRate::gbps(4).transfer_time(bytes).as_ms_f64()
        );
        // 2-proc matrix with 4 and 8 GB/s: mean of 16 ms and 8 ms.
        let m = Topology::from_fn(2, |s, _| {
            if s.index() == 0 {
                LinkRate::gbps(4)
            } else {
                LinkRate::gbps(8)
            }
        });
        assert!((m.mean_pair_transfer_ms(bytes) - 12.0).abs() < 1e-9);
        // Degenerate single-proc matrix has no pairs.
        assert_eq!(
            Topology::from_fn(1, |_, _| LinkRate::gbps(4)).mean_pair_transfer_ms(5),
            0.0
        );
    }

    #[test]
    fn validation_catches_size_and_zero_links() {
        let t = Topology::uniform(3, LinkRate::gbps(4));
        assert!(t.validate(4).is_err());
        let z = Topology::from_fn(2, |s, d| {
            if s.index() == 0 && d.index() == 1 {
                LinkRate { bytes_per_sec: 0 }
            } else {
                LinkRate::gbps(4)
            }
        });
        assert!(z.validate(2).is_err());
    }

    #[test]
    fn contention_builder_round_trips() {
        let t = Topology::uniform(3, LinkRate::gbps(4)).with_contention(LinkContention::PerLink);
        assert_eq!(t.contention(), LinkContention::PerLink);
        assert_eq!(LinkContention::default(), LinkContention::Off);
    }
}
