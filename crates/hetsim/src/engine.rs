//! The discrete-event simulation loop.
//!
//! Execution model (one kernel occupies one processor for transfer + exec):
//!
//! 1. At `t = 0` all dependency-free kernels enter the ready set `I`.
//! 2. The policy is consulted to a fixpoint: it may emit any number of
//!    assignments; each removes a kernel from `I` and either *starts* it (if
//!    the processor is idle) or *enqueues* it (per-processor FIFO — AG's
//!    queues). Policies that prefer to wait simply withhold assignments.
//! 3. The earliest pending completion event fires; all completions at that
//!    instant are processed (outputs become resident on their processor,
//!    successors may become ready, queued work starts), then back to 2.
//! 4. The run ends when the event queue is empty. If kernels never ran, the
//!    policy starved them and an error is returned.
//!
//! Starting a kernel on processor `p` at time `t` costs
//! `transfer_in(node, p)` (inputs resident on other processors cross the
//! link, serialized) followed by the lookup-table execution time. λ delay is
//! measured from ready-time to start (§2.5.1).

use crate::policy::{Assignment, Policy, PrepareCtx};
use crate::system::SystemConfig;
use crate::trace::{ProcStats, SimResult, TaskRecord, Trace};
use crate::view::{ProcView, SimView};
use apt_base::{BaseError, ProcId, SimDuration, SimTime};
use apt_dfg::{KernelDag, LookupTable, NodeId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Window size for the per-processor execution-time history backing AG's
/// `τ_k` estimate (Eq. 2's "last k kernel calls"). Wu et al. leave k as a
/// parameter; 10 is used here and exposed as a named constant so ablations
/// can reference it.
pub const EXEC_HISTORY_WINDOW: usize = 10;

/// Live state of one processor during simulation.
struct ProcCore {
    busy_until: SimTime,
    running: Option<NodeId>,
    queue: VecDeque<Assignment>,
    history: VecDeque<SimDuration>,
    stats: ProcStats,
}

impl ProcCore {
    fn new() -> Self {
        ProcCore {
            busy_until: SimTime::ZERO,
            running: None,
            queue: VecDeque::new(),
            history: VecDeque::new(),
            stats: ProcStats::default(),
        }
    }

    fn recent_avg_exec(&self) -> SimDuration {
        if self.history.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self.history.iter().map(|d| d.as_ns() as u128).sum();
        SimDuration::from_ns((total / self.history.len() as u128) as u64)
    }

    fn push_history(&mut self, exec: SimDuration) {
        if self.history.len() == EXEC_HISTORY_WINDOW {
            self.history.pop_front();
        }
        self.history.push_back(exec);
    }
}

/// A scheduled simulation event: a kernel completing on a processor, or a
/// kernel arriving in the input stream (streaming mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// The kernel running on this processor completes.
    Finish(ProcId),
    /// This kernel is submitted to the system (its arrival instant).
    Arrive(NodeId),
}

struct Engine<'a> {
    dfg: &'a KernelDag,
    config: &'a SystemConfig,
    lookup: &'a LookupTable,
    now: SimTime,
    ready: Vec<NodeId>,
    ready_time: Vec<SimTime>,
    remaining_preds: Vec<usize>,
    arrived: Vec<bool>,
    locations: Vec<Option<ProcId>>,
    records: Vec<Option<TaskRecord>>,
    procs: Vec<ProcCore>,
    events: BinaryHeap<Reverse<(SimTime, u64, Event)>>,
    seq: u64,
    finished: usize,
}

impl<'a> Engine<'a> {
    fn new(
        dfg: &'a KernelDag,
        config: &'a SystemConfig,
        lookup: &'a LookupTable,
        arrivals: &[SimTime],
    ) -> Self {
        let n = dfg.len();
        debug_assert_eq!(arrivals.len(), n);
        let remaining_preds: Vec<usize> = dfg.node_ids().map(|id| dfg.in_degree(id)).collect();
        let arrived: Vec<bool> = arrivals.iter().map(|&t| t == SimTime::ZERO).collect();
        let mut ready_time = vec![SimTime::ZERO; n];
        let ready: Vec<NodeId> = dfg
            .sources()
            .into_iter()
            .filter(|s| arrived[s.index()])
            .collect();
        let mut events = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, &t) in arrivals.iter().enumerate() {
            if t > SimTime::ZERO {
                ready_time[i] = t; // provisional; finalized on readiness
                events.push(Reverse((t, seq, Event::Arrive(NodeId::new(i)))));
                seq += 1;
            }
        }
        Engine {
            dfg,
            config,
            lookup,
            now: SimTime::ZERO,
            ready,
            ready_time,
            remaining_preds,
            arrived,
            locations: vec![None; n],
            records: vec![None; n],
            procs: (0..config.len()).map(|_| ProcCore::new()).collect(),
            events,
            seq,
            finished: 0,
        }
    }

    fn proc_views(&self) -> Vec<ProcView> {
        self.procs
            .iter()
            .enumerate()
            .map(|(i, p)| ProcView {
                id: ProcId::new(i),
                kind: self.config.kind_of(ProcId::new(i)),
                running: p.running,
                busy_until: p.busy_until.max(self.now),
                queue_len: p.queue.len(),
                recent_avg_exec: p.recent_avg_exec(),
            })
            .collect()
    }

    /// Input-transfer duration for starting `node` on `proc` now.
    fn transfer_in(&self, node: NodeId, proc: ProcId) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for &pred in self.dfg.preds(node) {
            match self.locations[pred.index()] {
                Some(loc) if loc != proc => {
                    let bytes = self.dfg.node(pred).bytes(self.config.bytes_per_element);
                    total += self.config.link.transfer_time(bytes);
                }
                Some(_) => {}
                None => unreachable!("started a kernel whose predecessor never finished"),
            }
        }
        total
    }

    fn start_node(&mut self, a: Assignment, proc: ProcId) -> Result<(), BaseError> {
        let node = a.node;
        let kernel = *self.dfg.node(node);
        let exec = self
            .lookup
            .exec_time(&kernel, self.config.kind_of(proc))
            .map_err(|_| BaseError::InvalidAssignment {
                reason: format!(
                    "kernel {kernel} cannot run on {} ({})",
                    proc,
                    self.config.kind_of(proc)
                ),
            })?;
        let transfer = self.transfer_in(node, proc);
        let start = self.now;
        let exec_start = start + transfer;
        let finish = exec_start + exec;
        self.records[node.index()] = Some(TaskRecord {
            node,
            kernel,
            proc,
            ready: self.ready_time[node.index()],
            start,
            exec_start,
            finish,
            alt: a.alt,
        });
        let core = &mut self.procs[proc.index()];
        debug_assert!(core.running.is_none());
        core.running = Some(node);
        core.busy_until = finish;
        core.stats.busy += exec;
        core.stats.transfer += transfer;
        core.stats.kernels += 1;
        core.push_history(exec);
        self.events.push(Reverse((finish, self.seq, Event::Finish(proc))));
        self.seq += 1;
        Ok(())
    }

    fn apply(&mut self, a: Assignment) -> Result<(), BaseError> {
        let pos = self
            .ready
            .binary_search(&a.node)
            .map_err(|_| BaseError::InvalidAssignment {
                reason: format!("node {} is not in the ready set", a.node),
            })?;
        if a.proc.index() >= self.procs.len() {
            return Err(BaseError::InvalidAssignment {
                reason: format!("processor {} does not exist", a.proc),
            });
        }
        // Reject unrunnable targets eagerly (even when queueing).
        if self
            .lookup
            .exec_time(self.dfg.node(a.node), self.config.kind_of(a.proc))
            .is_err()
        {
            return Err(BaseError::InvalidAssignment {
                reason: format!(
                    "kernel {} cannot run on {} ({})",
                    self.dfg.node(a.node),
                    a.proc,
                    self.config.kind_of(a.proc)
                ),
            });
        }
        self.ready.remove(pos);
        if self.procs[a.proc.index()].running.is_none() {
            debug_assert!(self.procs[a.proc.index()].queue.is_empty());
            self.start_node(a, a.proc)?;
        } else {
            self.procs[a.proc.index()].queue.push_back(a);
        }
        Ok(())
    }

    fn finish_on(&mut self, proc: ProcId) -> Result<(), BaseError> {
        let core = &mut self.procs[proc.index()];
        let node = core
            .running
            .take()
            .expect("completion event for an idle processor");
        self.locations[node.index()] = Some(proc);
        self.finished += 1;
        // Release successors (only those already submitted to the system).
        for &succ in self.dfg.succs(node) {
            let r = &mut self.remaining_preds[succ.index()];
            *r -= 1;
            if *r == 0 && self.arrived[succ.index()] {
                self.make_ready(succ);
            }
        }
        // Start queued work.
        if let Some(next) = self.procs[proc.index()].queue.pop_front() {
            self.start_node(next, proc)?;
        }
        Ok(())
    }

    /// A node whose dependencies and arrival are both satisfied enters the
    /// ready set now.
    fn make_ready(&mut self, node: NodeId) {
        self.ready_time[node.index()] = self.now.max(self.ready_time[node.index()]);
        match self.ready.binary_search(&node) {
            Ok(_) => unreachable!("node became ready twice"),
            Err(pos) => self.ready.insert(pos, node),
        }
    }

    fn arrive(&mut self, node: NodeId) {
        debug_assert!(!self.arrived[node.index()]);
        self.arrived[node.index()] = true;
        if self.remaining_preds[node.index()] == 0 {
            self.make_ready(node);
        }
    }

    fn handle(&mut self, event: Event) -> Result<(), BaseError> {
        match event {
            Event::Finish(proc) => self.finish_on(proc),
            Event::Arrive(node) => {
                self.arrive(node);
                Ok(())
            }
        }
    }

    fn run(&mut self, policy: &mut dyn Policy) -> Result<(), BaseError> {
        loop {
            // Policy fixpoint at the current instant.
            loop {
                let views = self.proc_views();
                let assignments = {
                    let view = SimView {
                        now: self.now,
                        ready: &self.ready,
                        procs: &views,
                        dfg: self.dfg,
                        lookup: self.lookup,
                        config: self.config,
                        locations: &self.locations,
                    };
                    policy.decide(&view)
                };
                if assignments.is_empty() {
                    break;
                }
                for a in assignments {
                    self.apply(a)?;
                }
            }
            // Advance to the next completion instant; drain everything that
            // completes at that instant before consulting the policy again.
            match self.events.pop() {
                None => break,
                Some(Reverse((t, _, event))) => {
                    self.now = t;
                    self.handle(event)?;
                    while let Some(Reverse((t2, _, _))) = self.events.peek() {
                        if *t2 != t {
                            break;
                        }
                        let Reverse((_, _, e2)) = self.events.pop().expect("peeked");
                        self.handle(e2)?;
                    }
                }
            }
        }
        if self.finished != self.dfg.len() {
            return Err(BaseError::Starvation {
                unscheduled: self.dfg.len() - self.finished,
            });
        }
        Ok(())
    }

    fn into_trace(self) -> Trace {
        let mut records: Vec<TaskRecord> = self
            .records
            .into_iter()
            .map(|r| r.expect("run() verified completion"))
            .collect();
        records.sort_unstable_by_key(|r| (r.start, r.node));
        Trace {
            records,
            proc_stats: self.procs.into_iter().map(|p| p.stats).collect(),
        }
    }
}

/// Run one policy over one dataflow graph on one system.
///
/// Validates the inputs, calls [`Policy::prepare`], executes the event loop,
/// and returns the full schedule trace. Deterministic: identical inputs give
/// identical traces.
///
/// # Example
///
/// ```
/// use apt_hetsim::{simulate, Assignment, Policy, PolicyKind, SimView, SystemConfig};
/// use apt_dfg::generator::{generate, DfgType, StreamConfig};
/// use apt_dfg::LookupTable;
///
/// /// Place each ready kernel on the first idle processor able to run it.
/// struct FirstFit;
///
/// impl Policy for FirstFit {
///     fn name(&self) -> String { "FirstFit".into() }
///     fn kind(&self) -> PolicyKind { PolicyKind::Dynamic }
///     fn decide(&mut self, view: &SimView<'_>) -> Vec<Assignment> {
///         for &node in view.ready {
///             for p in view.idle_procs() {
///                 if view.exec_time(node, p.id).is_some() {
///                     return vec![Assignment::new(node, p.id)];
///                 }
///             }
///         }
///         Vec::new()
///     }
/// }
///
/// let lookup = LookupTable::paper();
/// let dfg = generate(DfgType::Type1, &StreamConfig::new(8, 42), lookup);
/// let result = simulate(&dfg, &SystemConfig::paper_4gbps(), lookup, &mut FirstFit).unwrap();
/// assert_eq!(result.trace.records.len(), 8);
/// result.trace.validate(&dfg).unwrap();
/// ```
pub fn simulate(
    dfg: &KernelDag,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
) -> Result<SimResult, BaseError> {
    let arrivals = vec![SimTime::ZERO; dfg.len()];
    simulate_stream(dfg, config, lookup, policy, &arrivals)
}

/// Run one policy over a *streamed* workload: each kernel is submitted to
/// the system at its arrival instant (`arrivals[node]`), modelling the
/// paper's "incoming stream of applications" (§3.2) and Algorithm 1's
/// "collect DFGs of all incoming jobs". A kernel becomes ready at
/// `max(arrival, all predecessors finished)`; λ delay is measured from that
/// instant, so queueing behind late arrivals is not charged to the policy.
///
/// `simulate` is the special case with all arrivals at `t = 0`.
pub fn simulate_stream(
    dfg: &KernelDag,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
    arrivals: &[SimTime],
) -> Result<SimResult, BaseError> {
    config.validate()?;
    dfg.validate()?;
    if arrivals.len() != dfg.len() {
        return Err(BaseError::InvalidAssignment {
            reason: format!(
                "arrival vector has {} entries for {} kernels",
                arrivals.len(),
                dfg.len()
            ),
        });
    }
    policy.prepare(PrepareCtx {
        dfg,
        lookup,
        config,
    })?;
    let mut engine = Engine::new(dfg, config, lookup, arrivals);
    engine.run(policy)?;
    let trace = engine.into_trace();
    debug_assert!(trace.validate(dfg).is_ok());
    Ok(SimResult {
        policy: policy.name(),
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use apt_dfg::generator::{build_type1, generate_kernels, StreamConfig};
    use apt_dfg::{Kernel, KernelKind};

    /// Assign each ready kernel to its execution-time-best processor when
    /// that processor is idle; otherwise wait (a minimal MET-like policy for
    /// engine tests).
    struct GreedyBest;

    impl Policy for GreedyBest {
        fn name(&self) -> String {
            "GreedyBest".into()
        }
        fn kind(&self) -> PolicyKind {
            PolicyKind::Dynamic
        }
        fn decide(&mut self, view: &SimView<'_>) -> Vec<Assignment> {
            let mut out = Vec::new();
            let mut taken: Vec<bool> = view.procs.iter().map(|p| !p.is_idle()).collect();
            for &node in view.ready {
                if let Some((proc, _)) = view.best_proc(node) {
                    if !taken[proc.index()] {
                        taken[proc.index()] = true;
                        out.push(Assignment::new(node, proc));
                    }
                }
            }
            out
        }
    }

    /// Queue everything onto processor 0 immediately (exercises FIFO queues).
    struct AllOnZero;

    impl Policy for AllOnZero {
        fn name(&self) -> String {
            "AllOnZero".into()
        }
        fn kind(&self) -> PolicyKind {
            PolicyKind::Dynamic
        }
        fn decide(&mut self, view: &SimView<'_>) -> Vec<Assignment> {
            view.ready
                .iter()
                .map(|&n| Assignment::new(n, ProcId::new(0)))
                .collect()
        }
    }

    /// Never assigns anything (starvation probe).
    struct Lazy;

    impl Policy for Lazy {
        fn name(&self) -> String {
            "Lazy".into()
        }
        fn kind(&self) -> PolicyKind {
            PolicyKind::Dynamic
        }
        fn decide(&mut self, _view: &SimView<'_>) -> Vec<Assignment> {
            Vec::new()
        }
    }

    fn nw() -> Kernel {
        Kernel::canonical(KernelKind::NeedlemanWunsch)
    }
    fn bfs() -> Kernel {
        Kernel::canonical(KernelKind::Bfs)
    }
    fn cd() -> Kernel {
        Kernel::new(KernelKind::Cholesky, 250_000)
    }

    #[test]
    fn empty_graph_finishes_instantly() {
        let dfg = build_type1(&[]);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_4gbps(),
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
        )
        .unwrap();
        assert_eq!(res.makespan(), SimDuration::ZERO);
        assert!(res.trace.records.is_empty());
    }

    #[test]
    fn single_kernel_runs_on_best_proc() {
        let dfg = build_type1(&[bfs()]);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
        )
        .unwrap();
        assert_eq!(res.makespan(), SimDuration::from_ms(106)); // FPGA
        let r = &res.trace.records[0];
        assert_eq!(r.proc, ProcId::new(2));
        assert_eq!(r.lambda(), SimDuration::ZERO);
    }

    #[test]
    fn type1_respects_the_fan_in_dependency() {
        // nw, bfs independent; cd depends on both (transfers disabled).
        let dfg = build_type1(&[nw(), bfs(), cd()]);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
        )
        .unwrap();
        res.trace.validate(&dfg).unwrap();
        // Level 1 finishes at max(112 on CPU, 106 on FPGA) = 112; cd then
        // runs 0.093 on the FPGA.
        assert_eq!(res.makespan(), SimDuration::from_us(112_093));
        let cd_rec = res.trace.record(NodeId::new(2)).unwrap();
        assert_eq!(cd_rec.ready, SimTime::from_ms(112));
        assert_eq!(cd_rec.lambda(), SimDuration::ZERO);
    }

    #[test]
    fn transfers_occupy_the_consumer() {
        // One producer (bfs on FPGA) then a dependent cd; cd's input must
        // cross the link if it runs elsewhere, but GreedyBest runs cd on the
        // FPGA too, so the transfer is zero.
        let dfg = build_type1(&[bfs(), cd()]);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_4gbps(),
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
        )
        .unwrap();
        let r = res.trace.record(NodeId::new(1)).unwrap();
        assert_eq!(r.proc, ProcId::new(2));
        assert_eq!(r.transfer_time(), SimDuration::ZERO);
        assert_eq!(res.makespan(), SimDuration::from_us(106_093));
    }

    #[test]
    fn queued_work_runs_fifo_and_counts_lambda() {
        let dfg = build_type1(&[bfs(), bfs(), bfs()]);
        // All three queue on processor 0 (CPU, 332 ms each); the third is the
        // fan-in sink and only becomes ready at t = 664.
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            apt_dfg::LookupTable::paper(),
            &mut AllOnZero,
        )
        .unwrap();
        res.trace.validate(&dfg).unwrap();
        assert_eq!(res.makespan(), SimDuration::from_ms(996));
        let r1 = res.trace.record(NodeId::new(1)).unwrap();
        // Node 1 was ready at 0 but started at 332 → λ = 332 ms.
        assert_eq!(r1.lambda(), SimDuration::from_ms(332));
        let r2 = res.trace.record(NodeId::new(2)).unwrap();
        assert_eq!(r2.ready, SimTime::from_ms(664));
        assert_eq!(r2.lambda(), SimDuration::ZERO);
        assert_eq!(res.trace.lambda_total(), SimDuration::from_ms(332));
        // All work accounted to processor 0.
        assert_eq!(res.trace.proc_stats[0].kernels, 3);
        assert_eq!(res.trace.proc_stats[0].busy, SimDuration::from_ms(996));
        assert_eq!(res.trace.proc_stats[1].kernels, 0);
    }

    #[test]
    fn starvation_is_reported() {
        let dfg = build_type1(&[bfs()]);
        let err = simulate(
            &dfg,
            &SystemConfig::paper_4gbps(),
            apt_dfg::LookupTable::paper(),
            &mut Lazy,
        )
        .unwrap_err();
        assert_eq!(err, BaseError::Starvation { unscheduled: 1 });
    }

    #[test]
    fn invalid_assignment_is_rejected() {
        struct BadNode;
        impl Policy for BadNode {
            fn name(&self) -> String {
                "BadNode".into()
            }
            fn kind(&self) -> PolicyKind {
                PolicyKind::Dynamic
            }
            fn decide(&mut self, _v: &SimView<'_>) -> Vec<Assignment> {
                vec![Assignment::new(NodeId::new(99), ProcId::new(0))]
            }
        }
        let dfg = build_type1(&[bfs()]);
        let err = simulate(
            &dfg,
            &SystemConfig::paper_4gbps(),
            apt_dfg::LookupTable::paper(),
            &mut BadNode,
        )
        .unwrap_err();
        assert!(matches!(err, BaseError::InvalidAssignment { .. }));
    }

    #[test]
    fn assignment_to_unrunnable_category_is_rejected() {
        struct ToAsic;
        impl Policy for ToAsic {
            fn name(&self) -> String {
                "ToAsic".into()
            }
            fn kind(&self) -> PolicyKind {
                PolicyKind::Dynamic
            }
            fn decide(&mut self, view: &SimView<'_>) -> Vec<Assignment> {
                view.ready
                    .iter()
                    .map(|&n| Assignment::new(n, ProcId::new(0)))
                    .collect()
            }
        }
        let config = SystemConfig::empty(crate::LinkRate::gbps(4))
            .with_proc(apt_base::ProcKind::Asic)
            .with_proc(apt_base::ProcKind::Cpu);
        let dfg = build_type1(&[bfs()]);
        let err = simulate(&dfg, &config, apt_dfg::LookupTable::paper(), &mut ToAsic).unwrap_err();
        assert!(matches!(err, BaseError::InvalidAssignment { .. }));
    }

    #[test]
    fn streaming_arrivals_delay_submission() {
        // Two independent bfs (plus fan-in cd sink). The second bfs arrives
        // at t = 50 ms: even though the GPU-best policy below would start it
        // at 0, it cannot run before its arrival.
        struct Greedy;
        impl Policy for Greedy {
            fn name(&self) -> String {
                "Greedy".into()
            }
            fn kind(&self) -> PolicyKind {
                PolicyKind::Dynamic
            }
            fn decide(&mut self, view: &SimView<'_>) -> Vec<Assignment> {
                for &node in view.ready {
                    for p in view.idle_procs() {
                        if view.exec_time(node, p.id).is_some() {
                            return vec![Assignment::new(node, p.id)];
                        }
                    }
                }
                Vec::new()
            }
        }
        let dfg = build_type1(&[bfs(), bfs(), cd()]);
        let arrivals = vec![
            SimTime::ZERO,
            SimTime::from_ms(50),
            SimTime::ZERO, // sink arrives immediately but waits on preds
        ];
        let res = simulate_stream(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            apt_dfg::LookupTable::paper(),
            &mut Greedy,
            &arrivals,
        )
        .unwrap();
        res.trace.validate(&dfg).unwrap();
        let r1 = res.trace.record(NodeId::new(1)).unwrap();
        assert_eq!(r1.ready, SimTime::from_ms(50));
        assert!(r1.start >= SimTime::from_ms(50));
        // λ is measured from arrival-adjusted readiness, so the forced wait
        // before 50 ms is not charged.
        assert_eq!(r1.lambda(), SimDuration::ZERO);
    }

    #[test]
    fn zero_arrivals_match_plain_simulate() {
        let kernels = generate_kernels(&StreamConfig::new(30, 4), apt_dfg::LookupTable::paper());
        let dfg = build_type1(&kernels);
        let cfg = SystemConfig::paper_4gbps();
        let a = simulate(&dfg, &cfg, apt_dfg::LookupTable::paper(), &mut GreedyBest).unwrap();
        let arrivals = vec![SimTime::ZERO; dfg.len()];
        let b = simulate_stream(
            &dfg,
            &cfg,
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
            &arrivals,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn arrival_vector_length_is_checked() {
        let dfg = build_type1(&[bfs()]);
        let err = simulate_stream(
            &dfg,
            &SystemConfig::paper_4gbps(),
            apt_dfg::LookupTable::paper(),
            &mut GreedyBest,
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, BaseError::InvalidAssignment { .. }));
    }

    #[test]
    fn simulation_is_deterministic() {
        let kernels = generate_kernels(&StreamConfig::new(60, 77), apt_dfg::LookupTable::paper());
        let dfg = build_type1(&kernels);
        let cfg = SystemConfig::paper_4gbps();
        let a = simulate(&dfg, &cfg, apt_dfg::LookupTable::paper(), &mut GreedyBest).unwrap();
        let b = simulate(&dfg, &cfg, apt_dfg::LookupTable::paper(), &mut GreedyBest).unwrap();
        assert_eq!(a, b);
        a.trace.validate(&dfg).unwrap();
    }

    #[test]
    fn makespan_bounded_by_critical_path_and_serial_time() {
        let kernels = generate_kernels(&StreamConfig::new(40, 5), apt_dfg::LookupTable::paper());
        let dfg = build_type1(&kernels);
        let lookup = apt_dfg::LookupTable::paper();
        let cfg = SystemConfig::paper_no_transfers();
        let res = simulate(&dfg, &cfg, lookup, &mut GreedyBest).unwrap();
        // Lower bound: critical path using each kernel's *minimum* time.
        let lower = dfg
            .critical_path(|n| lookup.best_category(dfg.node(n)).unwrap().1.as_ns())
            .unwrap();
        // Upper bound: serial execution of every kernel at its *maximum* time.
        let upper: u64 = dfg
            .iter()
            .map(|(_, k)| {
                lookup
                    .row(k)
                    .unwrap()
                    .times
                    .iter()
                    .max()
                    .unwrap()
                    .as_ns()
            })
            .sum();
        let got = res.makespan().as_ns();
        assert!(got >= lower, "makespan {got} below critical path {lower}");
        assert!(got <= upper, "makespan {got} above serial bound {upper}");
    }
}
