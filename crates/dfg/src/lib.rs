//! # apt-dfg
//!
//! The dataflow-graph substrate of the APT reproduction:
//!
//! * [`kernel`] — the seven kernels of Table 5 (Needleman-Wunsch, BFS, SRAD,
//!   GEM, Cholesky decomposition, matrix-matrix multiplication, matrix
//!   inversion) with their data sizes.
//! * [`dwarf`] — the thirteen Berkeley dwarfs (§2.4) and the application ↔
//!   dwarf membership of Table 1.
//! * [`lookup`] — the complete measured-execution-time lookup table of
//!   Appendix A (Table 14), embedded verbatim.
//! * [`graph`] — a small, dependency-free DAG container with precedence
//!   queries, Kahn topological ordering, and validation.
//! * [`rng`] — a SplitMix64 PRNG so that workload generation is bit-exact
//!   reproducible forever, independent of external crate versions.
//! * [`generator`] — the DFG Type-1 / Type-2 input-stream generators of §3.2
//!   (Figures 3 and 4).
//! * [`render`] — ASCII renderings of generated graphs (Figures 3/4 style).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod dwarf;
pub mod generator;
pub mod graph;
pub mod kernel;
pub mod lookup;
pub mod render;
pub mod rng;

pub use cost::KindCostMatrix;
pub use dwarf::{Application, Dwarf};
pub use generator::{DfgType, StreamConfig, Type2Config};
pub use graph::{Dag, NodeId};
pub use kernel::{Kernel, KernelKind};
pub use lookup::{LookupTable, MM_MI_CD_SIZES};
pub use rng::SplitMix64;

/// A dataflow graph of kernels — the unit of work the scheduler consumes.
pub type KernelDag = Dag<Kernel>;
