//! The metrics registry's armed hot path: the same Poisson APT stream
//! with telemetry fully absent (bare) and under an armed
//! `StreamTelemetry` (every driver hook fires into the registry —
//! counter adds and log-histogram observes; no heartbeat, no engine
//! profiling). The schedules are byte-identical, so the delta prices
//! pure instrument bookkeeping (<5% target; the untelemetered
//! equivalence pin is `apt-stream/tests/telemetered_stream.rs`).
//! `apt-bench` tracks the same pair in `BENCH_engine.json`.

use apt_bench::{telemetry_stream_run, STREAM_BENCH_JOBS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_telemetry_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/poisson_apt");
    g.throughput(Throughput::Elements(STREAM_BENCH_JOBS));
    for (name, armed) in [("bare", false), ("armed", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &armed, |b, &armed| {
            b.iter(|| black_box(telemetry_stream_run(armed)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_telemetry_stream);
criterion_main!(benches);
