//! The metrics registry: named, labeled instruments behind index
//! handles.
//!
//! Instruments are plain fields in a `Vec` — no atomics, no locks, no
//! interior mutability. A hot loop holds `&mut Registry` (or each shard
//! owns its own) and updates through copyable ids in a few
//! instructions; a future per-core shard folds into a global registry
//! with [`Registry::merge`]. The whole registry is `Send`, which is the
//! property the ROADMAP's sharding arc needs.

use crate::hist::LogHistogram;

/// Handle to a registered counter. Only valid for the [`Registry`]
/// (or a [`Registry::merge`]-compatible clone of the registry) that
/// issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge. See [`CounterId`] for validity rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram. See [`CounterId`] for validity
/// rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Instrument {
    Counter(u64),
    Gauge(f64),
    Histogram(LogHistogram),
}

impl Instrument {
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Metric {
    pub(crate) name: String,
    pub(crate) help: String,
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) inst: Instrument,
}

/// A registry of counters, gauges and [`LogHistogram`]s.
///
/// Registration is cold-path (linear scan, validated names); updates
/// are hot-path (index + add). Registering the same `(name, labels)`
/// twice with the same instrument kind returns the original handle, so
/// construction helpers can be called idempotently.
///
/// Merge semantics (see [`Registry::merge`]): counters and histogram
/// buckets add; gauges add too — a gauge that is *not* additive across
/// shards (a ratio, a level) should carry a distinguishing label (e.g.
/// `shard="3"`) so shards never collide.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    metrics: Vec<Metric>,
}

/// True iff `s` is a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub(crate) fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// True iff `s` is a valid Prometheus label name:
/// `[a-zA-Z_][a-zA-Z0-9_]*`.
pub(crate) fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered instruments (label sets count separately).
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    fn register(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        inst: Instrument,
    ) -> usize {
        assert!(
            valid_metric_name(name),
            "invalid metric name {name:?} (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        );
        for (k, _) in labels {
            assert!(
                valid_label_name(k),
                "invalid label name {k:?} on metric {name}"
            );
        }
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        for (i, m) in self.metrics.iter().enumerate() {
            if m.name == name {
                assert!(
                    m.inst.kind() == inst.kind(),
                    "metric {name} re-registered as {} (was {})",
                    inst.kind(),
                    m.inst.kind()
                );
                if m.labels == labels {
                    return i;
                }
            }
        }
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            inst,
        });
        self.metrics.len() - 1
    }

    /// Register (or look up) a counter. Counter names must end in
    /// `_total` — the exposition contract [`crate::validate`] enforces.
    ///
    /// # Panics
    /// On an invalid name, a name not ending in `_total`, or a kind
    /// conflict with an already-registered metric of the same name.
    pub fn counter(&mut self, name: &str, help: &str) -> CounterId {
        self.counter_with_labels(name, help, &[])
    }

    /// [`Registry::counter`] with a label set.
    pub fn counter_with_labels(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> CounterId {
        assert!(
            name.ends_with("_total"),
            "counter {name:?} must end in _total"
        );
        CounterId(self.register(name, help, labels, Instrument::Counter(0)))
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&mut self, name: &str, help: &str) -> GaugeId {
        self.gauge_with_labels(name, help, &[])
    }

    /// [`Registry::gauge`] with a label set.
    pub fn gauge_with_labels(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> GaugeId {
        GaugeId(self.register(name, help, labels, Instrument::Gauge(0.0)))
    }

    /// Register (or look up) a histogram with relative error bound
    /// `gamma` (see [`LogHistogram::new`]).
    pub fn histogram(&mut self, name: &str, help: &str, gamma: f64) -> HistId {
        self.histogram_with_labels(name, help, gamma, &[])
    }

    /// [`Registry::histogram`] with a label set.
    pub fn histogram_with_labels(
        &mut self,
        name: &str,
        help: &str,
        gamma: f64,
        labels: &[(&str, &str)],
    ) -> HistId {
        HistId(self.register(
            name,
            help,
            labels,
            Instrument::Histogram(LogHistogram::new(gamma)),
        ))
    }

    /// Increment a counter by 1.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        match &mut self.metrics[id.0].inst {
            Instrument::Counter(v) => *v += n,
            other => unreachable!("CounterId addressed a {}", other.kind()),
        }
    }

    /// Set a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        match &mut self.metrics[id.0].inst {
            Instrument::Gauge(g) => *g = v,
            other => unreachable!("GaugeId addressed a {}", other.kind()),
        }
    }

    /// Record a histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: f64) {
        match &mut self.metrics[id.0].inst {
            Instrument::Histogram(h) => h.observe(v),
            other => unreachable!("HistId addressed a {}", other.kind()),
        }
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        match &self.metrics[id.0].inst {
            Instrument::Counter(v) => *v,
            other => unreachable!("CounterId addressed a {}", other.kind()),
        }
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        match &self.metrics[id.0].inst {
            Instrument::Gauge(g) => *g,
            other => unreachable!("GaugeId addressed a {}", other.kind()),
        }
    }

    /// The histogram behind a handle.
    pub fn histogram_ref(&self, id: HistId) -> &LogHistogram {
        match &self.metrics[id.0].inst {
            Instrument::Histogram(h) => h,
            other => unreachable!("HistId addressed a {}", other.kind()),
        }
    }

    /// Look up a counter's value by name and (sorted or unsorted)
    /// label set, for assertions and exporters that never held the id.
    pub fn counter_named(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.find(name, labels).and_then(|m| match &m.inst {
            Instrument::Counter(v) => Some(*v),
            _ => None,
        })
    }

    /// Look up a gauge's value by name and label set.
    pub fn gauge_named(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.find(name, labels).and_then(|m| match &m.inst {
            Instrument::Gauge(g) => Some(*g),
            _ => None,
        })
    }

    /// Look up a histogram by name and label set.
    pub fn histogram_named(&self, name: &str, labels: &[(&str, &str)]) -> Option<&LogHistogram> {
        self.find(name, labels).and_then(|m| match &m.inst {
            Instrument::Histogram(h) => Some(h),
            _ => None,
        })
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Metric> {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        self.metrics
            .iter()
            .find(|m| m.name == name && m.labels == labels)
    }

    pub(crate) fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Fold `other` into `self`: counters add, histograms merge
    /// bucket-wise, gauges add (shard-label non-additive gauges — see
    /// the type-level docs). Metrics present only in `other` are
    /// appended. The result is independent of merge order up to
    /// instrument *ordering*; rendered exposition (which sorts) is
    /// fully order-independent, which is what the associativity and
    /// commutativity proptests pin.
    ///
    /// # Panics
    /// If the same `(name, labels)` is registered with different
    /// instrument kinds, or histograms with different γ.
    pub fn merge(&mut self, other: &Registry) {
        for om in &other.metrics {
            let existing = self
                .metrics
                .iter_mut()
                .find(|m| m.name == om.name && m.labels == om.labels);
            match existing {
                None => self.metrics.push(om.clone()),
                Some(m) => match (&mut m.inst, &om.inst) {
                    (Instrument::Counter(a), Instrument::Counter(b)) => *a += *b,
                    (Instrument::Gauge(a), Instrument::Gauge(b)) => *a += *b,
                    (Instrument::Histogram(a), Instrument::Histogram(b)) => a.merge(b),
                    (a, b) => panic!(
                        "merge kind conflict on {}: {} vs {}",
                        m.name,
                        a.kind(),
                        b.kind()
                    ),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        let c = r.counter("jobs_total", "jobs seen");
        r.inc(c);
        r.add(c, 4);
        assert_eq!(r.counter_value(c), 5);
        assert_eq!(r.counter_named("jobs_total", &[]), Some(5));
    }

    #[test]
    fn registration_is_idempotent() {
        let mut r = Registry::new();
        let a = r.counter("jobs_total", "jobs seen");
        let b = r.counter("jobs_total", "jobs seen");
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn label_sets_are_distinct_instruments() {
        let mut r = Registry::new();
        let a = r.counter_with_labels("phase_ns_total", "ns", &[("phase", "decide")]);
        let b = r.counter_with_labels("phase_ns_total", "ns", &[("phase", "apply")]);
        assert_ne!(a, b);
        r.add(a, 10);
        r.add(b, 20);
        assert_eq!(
            r.counter_named("phase_ns_total", &[("phase", "decide")]),
            Some(10)
        );
        assert_eq!(
            r.counter_named("phase_ns_total", &[("phase", "apply")]),
            Some(20)
        );
    }

    #[test]
    fn label_order_is_canonicalized() {
        let mut r = Registry::new();
        let a = r.gauge_with_labels("depth", "d", &[("a", "1"), ("b", "2")]);
        let b = r.gauge_with_labels("depth", "d", &[("b", "2"), ("a", "1")]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must end in _total")]
    fn counters_require_total_suffix() {
        Registry::new().counter("jobs", "nope");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_rejected() {
        Registry::new().gauge("0bad", "nope");
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_conflicts_rejected() {
        let mut r = Registry::new();
        r.gauge("x_total", "as gauge");
        r.counter("x_total", "as counter");
    }

    #[test]
    fn merge_adds_and_appends() {
        let mut a = Registry::new();
        let ca = a.counter("jobs_total", "jobs");
        a.add(ca, 3);
        let ga = a.gauge("alpha", "live alpha");
        a.set(ga, 2.0);

        let mut b = Registry::new();
        let cb = b.counter("jobs_total", "jobs");
        b.add(cb, 4);
        let hb = b.histogram("latency_ms", "latency", 0.01);
        b.observe(hb, 5.0);

        a.merge(&b);
        assert_eq!(a.counter_named("jobs_total", &[]), Some(7));
        assert_eq!(a.gauge_named("alpha", &[]), Some(2.0));
        let h = a
            .metrics()
            .iter()
            .find(|m| m.name == "latency_ms")
            .expect("histogram appended");
        match &h.inst {
            Instrument::Histogram(h) => assert_eq!(h.count(), 1),
            _ => panic!("wrong kind"),
        }
    }
}
