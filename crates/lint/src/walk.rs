//! Workspace walking: find every first-party `.rs` file (root `src/`
//! plus `crates/*/src/`), scan each, and assemble the sorted
//! [`Report`]. Vendored shims under `vendor/` are third-party stand-ins
//! and are not walked; crate `tests/`, `benches/` and `examples/`
//! directories are test scope and are skipped too (the in-file
//! `#[cfg(test)]` tracking covers unit tests).

use crate::config::LintConfig;
use crate::findings::Report;
use crate::rules::scan_source;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Collect the workspace-relative paths of every first-party source
/// file, sorted for deterministic reports.
fn source_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for d in dirs {
            let src = d.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Scan the whole workspace rooted at `root` with `cfg`.
pub fn scan_workspace(root: &Path, cfg: &LintConfig) -> io::Result<Report> {
    let mut report = Report {
        root: root.display().to_string(),
        ..Report::default()
    };
    for path in source_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        report.files_scanned += 1;
        report.findings.extend(scan_source(&rel, &src, cfg));
    }
    report.sort();
    Ok(report)
}

/// Locate the workspace root: an explicit `--root`, else walk up from
/// `CARGO_MANIFEST_DIR` (set by `cargo run`) or the current directory
/// until a directory containing both `Cargo.toml` and `crates/` appears.
pub fn find_root(explicit: Option<&str>) -> PathBuf {
    if let Some(r) = explicit {
        return PathBuf::from(r);
    }
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = start.clone();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return start;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_reaches_the_workspace() {
        let root = find_root(None);
        assert!(root.join("crates").join("lint").is_dir(), "root: {root:?}");
    }

    #[test]
    fn walker_sees_this_crate_but_not_vendor() {
        let root = find_root(None);
        let files = source_files(&root).unwrap();
        assert!(files.iter().any(|p| p.ends_with("crates/lint/src/walk.rs")));
        assert!(!files
            .iter()
            .any(|p| p.to_string_lossy().contains("vendor/")));
        assert!(!files
            .iter()
            .any(|p| p.to_string_lossy().contains("target/")));
    }
}
