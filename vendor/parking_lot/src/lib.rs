//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the `Mutex`/`RwLock` subset this workspace uses with
//! parking_lot's poison-free API (locking never returns `Result`). Poisoned
//! std locks are recovered transparently: a panic while holding a lock in a
//! sweep worker must not cascade into every later lock site.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with parking_lot's infallible `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new RwLock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
