//! Hand-computed verification of the Eq. 3–7 rank machinery on a custom
//! lookup table, where every intermediate value is checked against paper
//! arithmetic done by hand.
//!
//! The scenario: a three-task chain `a → b → c` plus an independent task
//! `d`, with a synthetic lookup table (distinct kernel/size keys so the
//! table can hold arbitrary times) and transfers disabled, so
//! `c̄_ij = 0` and the recurrences collapse to easily checkable sums.

use apt_base::SimDuration;
use apt_dfg::lookup::{LookupRow, LookupTable};
use apt_dfg::{Dag, Kernel, KernelDag, KernelKind};
use apt_hetsim::Policy as _;
use apt_hetsim::{simulate, CostModel, PrepareCtx, SystemConfig};
use apt_policies::ranking::{downward_ranks, oct_matrix, rank_oct, upward_ranks};
use apt_policies::{Heft, Peft};

/// Synthetic table: four "kernels" (mm at four sizes) with hand-picked
/// CPU/GPU/FPGA times in ms.
fn custom_lookup() -> LookupTable {
    let times = [
        (10, [9.0, 12.0, 18.0]), // a: mean 13
        (20, [6.0, 6.0, 6.0]),   // b: mean 6
        (30, [3.0, 30.0, 30.0]), // c: mean 21
        (40, [12.0, 6.0, 24.0]), // d: mean 14
    ];
    LookupTable::from_rows(times.iter().map(|&(size, ms)| LookupRow {
        kind: KernelKind::MatMul,
        data_size: size,
        times: [
            SimDuration::from_table_ms(ms[0]),
            SimDuration::from_table_ms(ms[1]),
            SimDuration::from_table_ms(ms[2]),
        ],
    }))
}

fn chain_dag() -> KernelDag {
    let mut g = Dag::new();
    let a = g.add_node(Kernel::new(KernelKind::MatMul, 10));
    let b = g.add_node(Kernel::new(KernelKind::MatMul, 20));
    let c = g.add_node(Kernel::new(KernelKind::MatMul, 30));
    let _d = g.add_node(Kernel::new(KernelKind::MatMul, 40));
    g.add_edge(a, b).unwrap();
    g.add_edge(b, c).unwrap();
    g
}

fn system() -> SystemConfig {
    SystemConfig::paper_no_transfers()
}

#[test]
fn upward_ranks_match_hand_computation() {
    let lookup = custom_lookup();
    let dfg = chain_dag();
    let ranks = upward_ranks(&dfg, &lookup, &system());
    // Eq. 3–4 with zero comm: rank_u(c) = 21; rank_u(b) = 6 + 21 = 27;
    // rank_u(a) = 13 + 27 = 40; rank_u(d) = 14.
    assert!((ranks[2] - 21.0).abs() < 1e-9, "rank_u(c) = {}", ranks[2]);
    assert!((ranks[1] - 27.0).abs() < 1e-9, "rank_u(b) = {}", ranks[1]);
    assert!((ranks[0] - 40.0).abs() < 1e-9, "rank_u(a) = {}", ranks[0]);
    assert!((ranks[3] - 14.0).abs() < 1e-9, "rank_u(d) = {}", ranks[3]);
}

#[test]
fn downward_ranks_match_hand_computation() {
    let lookup = custom_lookup();
    let dfg = chain_dag();
    let ranks = downward_ranks(&dfg, &lookup, &system());
    // Eq. 5 with zero comm: rank_d(a) = 0; rank_d(b) = 13; rank_d(c) = 19;
    // rank_d(d) = 0.
    assert_eq!(ranks[0], 0.0);
    assert!((ranks[1] - 13.0).abs() < 1e-9);
    assert!((ranks[2] - 19.0).abs() < 1e-9);
    assert_eq!(ranks[3], 0.0);
}

#[test]
fn oct_matches_hand_computation() {
    let lookup = custom_lookup();
    let dfg = chain_dag();
    let oct = oct_matrix(&dfg, &lookup, &system());
    // Eq. 6 with zero comm. Exit tasks c and d: all zeros.
    assert_eq!(oct[2], vec![0.0, 0.0, 0.0]);
    assert_eq!(oct[3], vec![0.0, 0.0, 0.0]);
    // OCT(b, p) = min_w(OCT(c, w) + w(c, w)) = min(3, 30, 30) = 3 for all p.
    assert_eq!(oct[1], vec![3.0, 3.0, 3.0]);
    // OCT(a, p) = min_w(OCT(b, w) + w(b, w)) = min(9, 9, 9) = 9 for all p.
    assert_eq!(oct[0], vec![9.0, 9.0, 9.0]);
    // rank_oct = row means.
    let ranks = rank_oct(&oct);
    assert_eq!(ranks, vec![9.0, 3.0, 0.0, 0.0]);
}

#[test]
fn heft_plan_on_the_chain_is_optimal_here() {
    // With zero comm, HEFT should run the chain on each task's best device:
    // a→CPU(9), b→any(6), c→CPU(3); d (rank 14) goes to its best (GPU, 6)
    // in parallel. Makespan = 9 + 6 + 3 = 18 ms.
    let lookup = custom_lookup();
    let dfg = chain_dag();
    let res = simulate(&dfg, &system(), &lookup, &mut Heft::new()).unwrap();
    assert_eq!(res.makespan(), SimDuration::from_ms(18));
    res.trace.validate(&dfg).unwrap();
}

#[test]
fn peft_plan_matches_heft_on_this_instance() {
    // The OCT rows are constant per task, so PEFT's O_EFT ordering reduces
    // to HEFT's EFT choice here: same makespan.
    let lookup = custom_lookup();
    let dfg = chain_dag();
    let res = simulate(&dfg, &system(), &lookup, &mut Peft::new()).unwrap();
    assert_eq!(res.makespan(), SimDuration::from_ms(18));
}

#[test]
fn prepare_is_idempotent() {
    // Calling prepare twice rebuilds the plan from scratch (fresh instances
    // are the documented contract, but prepare itself must not corrupt).
    let lookup = custom_lookup();
    let dfg = chain_dag();
    let config = system();
    let cost = CostModel::new(&dfg, &lookup, &config);
    let ctx = PrepareCtx {
        dfg: &dfg,
        lookup: &lookup,
        config: &config,
        cost: &cost,
    };
    let mut heft = Heft::new();
    heft.prepare(ctx).unwrap();
    let first = heft.plan().unwrap().assignment.clone();
    heft.prepare(ctx).unwrap();
    assert_eq!(heft.plan().unwrap().assignment, first);
}
