//! The precomputed per-run cost model (processor-instance level).
//!
//! Built once per `(KernelDag, LookupTable, SystemConfig)` triple at the top
//! of `simulate_stream`, then shared read-only by the engine, the
//! [`crate::SimView`] handed to dynamic policies, and the static planners'
//! [`crate::PrepareCtx`]. It precomputes everything about a decision that
//! does **not** depend on live simulator state:
//!
//! * a dense `node × processor-instance` execution-time matrix (expanding
//!   the category-level [`KindCostMatrix`] over the machine's devices),
//! * each node's *output* transfer time across the uniform link (so the
//!   engine's `transfer_in` and the view's `transfer_in_time` sum
//!   precomputed summands instead of re-deriving `bytes / rate` per query),
//! * per-node runnable-processor bitsets and the minimum-execution-time
//!   instance set (`p_min` of §3.1, with its tie mask).
//!
//! Hot accessors are branch-light array reads; every former
//! `BTreeMap`-lookup and allocation on the decision path routes through
//! here. See the "Engine architecture & cost model" notes in the crate docs.

use crate::system::SystemConfig;
use apt_base::stats::stddev_population;
use apt_base::{ProcId, ProcKind, SimDuration};
use apt_dfg::{KernelDag, KindCostMatrix, LookupTable, NodeId};
use std::sync::OnceLock;

/// Sentinel for "kernel cannot run on this processor instance" — the same
/// value the category-level matrix uses (re-exported, not redefined, so the
/// two layers cannot drift apart).
pub use apt_dfg::cost::UNRUNNABLE;

/// Largest supported machine size (runnable sets are single-word bitsets).
pub const MAX_PROCS: usize = 64;

/// Largest machine size for which [`CostModel::idle_stddev`] memoizes its
/// per-(node, idle-mask) tables (2^nprocs entries per node — 256 `f64`s per
/// node at the cap; the paper's machine has 3 processors → 8 entries).
/// Larger machines fall back to direct computation.
pub const SS_MEMO_MAX_PROCS: usize = 8;

/// Precomputed decision-cost tables for one simulation run.
#[derive(Debug, Clone)]
pub struct CostModel {
    nprocs: usize,
    /// Flattened `node × nprocs` execution times in ns ([`UNRUNNABLE`] when
    /// the instance's category has no table entry).
    exec_ns: Vec<u64>,
    /// Per-node output transfer time across the link, in ns (what a
    /// *successor* pays when this node's result is resident elsewhere).
    transfer_ns: Vec<u64>,
    /// Per-node bitset of runnable processor instances.
    runnable: Vec<u64>,
    /// Per-node minimum execution time over instances ([`UNRUNNABLE`] when
    /// no instance can run the node).
    min_ns: Vec<u64>,
    /// Per-node bitset of the instances achieving `min_ns`.
    min_mask: Vec<u64>,
    /// Per-instance category, cached densely (avoids chasing the
    /// `ProcSpec` vec and its name strings on hot reads).
    kinds: Vec<ProcKind>,
    /// Per-node lazily built `idle-mask → stddev` tables backing
    /// [`CostModel::idle_stddev`] (empty when `nprocs > SS_MEMO_MAX_PROCS`).
    /// The values are state-independent given the mask, so the cache never
    /// invalidates for the lifetime of the run.
    stddev_masks: Vec<OnceLock<Box<[f64]>>>,
}

impl CostModel {
    /// Precompute the model. O(nodes × procs) time and memory; called once
    /// per run, amortized over every decision edge of the simulation.
    ///
    /// Panics if the system has more than [`MAX_PROCS`] processors (the
    /// runnable sets are single-word bitsets; no evaluated configuration
    /// comes within an order of magnitude of the limit).
    pub fn new(dfg: &KernelDag, lookup: &LookupTable, config: &SystemConfig) -> CostModel {
        let nprocs = config.len();
        assert!(
            nprocs <= MAX_PROCS,
            "CostModel supports at most {MAX_PROCS} processors, got {nprocs}"
        );
        let kinds: Vec<ProcKind> = config.proc_ids().map(|p| config.kind_of(p)).collect();
        let kind_matrix = KindCostMatrix::build(dfg, lookup);
        let n = dfg.len();
        let mut exec_ns = Vec::with_capacity(n * nprocs);
        let mut transfer_ns = Vec::with_capacity(n);
        let mut runnable = Vec::with_capacity(n);
        let mut min_ns = Vec::with_capacity(n);
        let mut min_mask = Vec::with_capacity(n);
        for node in dfg.node_ids() {
            let mut run_bits = 0u64;
            let mut best = UNRUNNABLE;
            let mut best_bits = 0u64;
            for (i, kind) in kinds.iter().enumerate() {
                let ns = match kind.table_column() {
                    Some(col) => kind_matrix.exec_ns(node, col),
                    None => UNRUNNABLE,
                };
                exec_ns.push(ns);
                if ns != UNRUNNABLE {
                    run_bits |= 1 << i;
                    match ns.cmp(&best) {
                        std::cmp::Ordering::Less => {
                            best = ns;
                            best_bits = 1 << i;
                        }
                        std::cmp::Ordering::Equal => best_bits |= 1 << i,
                        std::cmp::Ordering::Greater => {}
                    }
                }
            }
            runnable.push(run_bits);
            min_ns.push(best);
            min_mask.push(best_bits);
            let bytes = kind_matrix.data_size(node) * config.bytes_per_element;
            transfer_ns.push(config.link.transfer_time(bytes).as_ns());
        }
        let stddev_masks = if nprocs <= SS_MEMO_MAX_PROCS {
            (0..n).map(|_| OnceLock::new()).collect()
        } else {
            Vec::new()
        };
        CostModel {
            nprocs,
            exec_ns,
            transfer_ns,
            runnable,
            min_ns,
            min_mask,
            kinds,
            stddev_masks,
        }
    }

    /// Number of processor instances in the modeled system.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Raw nanosecond execution time ([`UNRUNNABLE`] when impossible).
    #[inline]
    pub fn exec_ns(&self, node: NodeId, proc: ProcId) -> u64 {
        self.exec_ns[node.index() * self.nprocs + proc.index()]
    }

    /// Execution time of `node` on `proc`; `None` when the kernel cannot run
    /// on that instance's category.
    #[inline]
    pub fn exec_time(&self, node: NodeId, proc: ProcId) -> Option<SimDuration> {
        match self.exec_ns(node, proc) {
            UNRUNNABLE => None,
            ns => Some(SimDuration::from_ns(ns)),
        }
    }

    /// True when `proc` can execute `node`.
    #[inline]
    pub fn runnable(&self, node: NodeId, proc: ProcId) -> bool {
        proc.index() < self.nprocs && (self.runnable[node.index()] >> proc.index()) & 1 == 1
    }

    /// Bitset of instances able to execute `node` (bit i ⇔ processor i).
    #[inline]
    pub fn runnable_mask(&self, node: NodeId) -> u64 {
        self.runnable[node.index()]
    }

    /// Output transfer time of `node` across the uniform link — the cost a
    /// consumer pays per predecessor resident on another processor.
    #[inline]
    pub fn transfer_time(&self, node: NodeId) -> SimDuration {
        SimDuration::from_ns(self.transfer_ns[node.index()])
    }

    /// Input-transfer time if `node` were started on `proc` given the
    /// current residency of finished predecessors: the sum of precomputed
    /// output transfer times of predecessors resident on *other* processors
    /// (the Eq. 6 convention `c_ij = 0` when `p_w = p_k`). Unfinished
    /// predecessors (`None` location) contribute nothing; callers that
    /// require every input resident assert that themselves. This is the one
    /// shared implementation behind both the engine's start bookkeeping and
    /// `SimView::transfer_in_time`.
    pub fn transfer_in_time(
        &self,
        dfg: &KernelDag,
        locations: &[Option<ProcId>],
        node: NodeId,
        proc: ProcId,
    ) -> SimDuration {
        let mut total_ns = 0u64;
        for &pred in dfg.preds(node) {
            if let Some(loc) = locations[pred.index()] {
                if loc != proc {
                    total_ns += self.transfer_ns[pred.index()];
                }
            }
        }
        SimDuration::from_ns(total_ns)
    }

    /// Minimum execution time of `node` over all instances (`x` of §3.1);
    /// `None` when no processor can run it.
    #[inline]
    pub fn min_exec(&self, node: NodeId) -> Option<SimDuration> {
        match self.min_ns[node.index()] {
            UNRUNNABLE => None,
            ns => Some(SimDuration::from_ns(ns)),
        }
    }

    /// Bitset of the instances achieving [`CostModel::min_exec`].
    #[inline]
    pub fn min_mask(&self, node: NodeId) -> u64 {
        self.min_mask[node.index()]
    }

    /// The lowest-id minimum-execution-time instance and its time
    /// (`p_min`, `x`), `None` when the node is unrunnable everywhere.
    #[inline]
    pub fn best_proc(&self, node: NodeId) -> Option<(ProcId, SimDuration)> {
        let mask = self.min_mask[node.index()];
        if mask == 0 {
            return None;
        }
        let proc = ProcId::new(mask.trailing_zeros() as usize);
        Some((proc, SimDuration::from_ns(self.min_ns[node.index()])))
    }

    /// Cached category of one processor instance.
    #[inline]
    pub fn kind_of(&self, proc: ProcId) -> ProcKind {
        self.kinds[proc.index()]
    }

    /// Population standard deviation (fractional milliseconds, identical to
    /// `stddev_population` over ascending-id `as_ms_f64` times) of `node`'s
    /// execution times across the **runnable** processors in `idle_mask` —
    /// the quantity SS ranks ready kernels by (§2.5.3).
    ///
    /// The value is state-independent given the mask, so on machines up to
    /// [`SS_MEMO_MAX_PROCS`] processors it is memoized in a lazily built
    /// per-node table of all `2^nprocs` masks; larger machines compute it
    /// directly. Either path returns bit-identical results.
    pub fn idle_stddev(&self, node: NodeId, idle_mask: u64) -> f64 {
        match self.stddev_masks.get(node.index()) {
            Some(cell) => {
                let table = cell.get_or_init(|| {
                    (0..1u64 << self.nprocs)
                        .map(|mask| self.compute_idle_stddev(node, mask))
                        .collect()
                });
                table[(idle_mask & ((1u64 << self.nprocs) - 1)) as usize]
            }
            None => self.compute_idle_stddev(node, idle_mask),
        }
    }

    /// The uncached computation behind [`CostModel::idle_stddev`].
    fn compute_idle_stddev(&self, node: NodeId, idle_mask: u64) -> f64 {
        let mut times = [0f64; MAX_PROCS];
        let mut count = 0usize;
        let mut bits = idle_mask & self.runnable[node.index()];
        while bits != 0 {
            let p = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            times[count] = SimDuration::from_ns(self.exec_ns(node, ProcId::new(p))).as_ms_f64();
            count += 1;
        }
        stddev_population(&times[..count])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkRate;
    use apt_dfg::generator::build_type1;
    use apt_dfg::{Kernel, KernelKind};

    fn fixture() -> (KernelDag, &'static LookupTable, SystemConfig) {
        (
            build_type1(&[
                Kernel::canonical(KernelKind::NeedlemanWunsch),
                Kernel::canonical(KernelKind::Bfs),
                Kernel::new(KernelKind::Cholesky, 250_000),
            ]),
            LookupTable::paper(),
            SystemConfig::paper_4gbps(),
        )
    }

    #[test]
    fn matrix_matches_map_based_lookup() {
        let (dfg, lookup, config) = fixture();
        let cost = CostModel::new(&dfg, lookup, &config);
        for node in dfg.node_ids() {
            for proc in config.proc_ids() {
                assert_eq!(
                    cost.exec_time(node, proc),
                    lookup.exec_time(dfg.node(node), config.kind_of(proc)).ok()
                );
                assert_eq!(
                    cost.runnable(node, proc),
                    lookup
                        .exec_time(dfg.node(node), config.kind_of(proc))
                        .is_ok()
                );
            }
            let bytes = dfg.node(node).bytes(config.bytes_per_element);
            assert_eq!(cost.transfer_time(node), config.link.transfer_time(bytes));
        }
    }

    #[test]
    fn best_proc_matches_table7() {
        let (dfg, lookup, config) = fixture();
        let cost = CostModel::new(&dfg, lookup, &config);
        // NW → CPU (112 ms), BFS → FPGA (106 ms), CD → FPGA (0.093 ms).
        let (p, t) = cost.best_proc(NodeId::new(0)).unwrap();
        assert_eq!(config.kind_of(p), ProcKind::Cpu);
        assert_eq!(t, SimDuration::from_ms(112));
        let (p, t) = cost.best_proc(NodeId::new(1)).unwrap();
        assert_eq!(config.kind_of(p), ProcKind::Fpga);
        assert_eq!(t, SimDuration::from_ms(106));
        assert_eq!(
            cost.min_exec(NodeId::new(1)),
            Some(SimDuration::from_ms(106))
        );
        assert_eq!(cost.min_mask(NodeId::new(1)), 0b100);
    }

    #[test]
    fn ties_keep_every_min_instance_in_the_mask() {
        let mut table = LookupTable::from_rows([]);
        table.insert(apt_dfg::lookup::LookupRow {
            kind: KernelKind::Bfs,
            data_size: 10,
            times: [SimDuration::from_ms(5); 3],
        });
        let dfg = build_type1(&[Kernel::new(KernelKind::Bfs, 10)]);
        let config = SystemConfig::paper_4gbps();
        let cost = CostModel::new(&dfg, &table, &config);
        assert_eq!(cost.min_mask(NodeId::new(0)), 0b111);
        // Ties break to the lowest instance id, as everywhere else.
        assert_eq!(cost.best_proc(NodeId::new(0)).unwrap().0, ProcId::new(0));
    }

    #[test]
    fn unrunnable_categories_are_masked_out() {
        let config = SystemConfig::empty(LinkRate::gbps(4))
            .with_proc(ProcKind::Asic)
            .with_proc(ProcKind::Cpu);
        let dfg = build_type1(&[Kernel::canonical(KernelKind::Bfs)]);
        let cost = CostModel::new(&dfg, LookupTable::paper(), &config);
        let n = NodeId::new(0);
        assert!(!cost.runnable(n, ProcId::new(0)));
        assert!(cost.runnable(n, ProcId::new(1)));
        assert_eq!(cost.runnable_mask(n), 0b10);
        assert_eq!(cost.exec_time(n, ProcId::new(0)), None);
    }

    /// Decision-side differential: every derived field of the model
    /// (exec, runnable mask, min exec, min mask, best proc, transfer) must
    /// equal a naive scan through the raw lookup table — the logic the dense
    /// tables replaced — for **every** kernel of the paper's table (plus a
    /// missing-row kernel) on several machine shapes. The trace-level
    /// equivalence suite cannot catch regressions here (both engines would
    /// replay the same wrong decision); this test can.
    #[test]
    fn every_derived_field_matches_a_naive_lookup_scan() {
        let lookup = LookupTable::paper();
        let mut kernels = lookup.all_kernels();
        kernels.push(Kernel::new(KernelKind::MatMul, 123)); // no table row
        let dfg = build_type1(&kernels);
        let systems = [
            SystemConfig::paper_4gbps(),
            SystemConfig::paper_no_transfers(),
            SystemConfig::empty(LinkRate::gbps(8))
                .with_proc(ProcKind::Cpu)
                .with_proc(ProcKind::Cpu)
                .with_proc(ProcKind::Gpu)
                .with_proc(ProcKind::Fpga)
                .with_proc(ProcKind::Fpga)
                .with_proc(ProcKind::Asic),
            SystemConfig::empty(LinkRate::gbps(4))
                .with_proc(ProcKind::Asic)
                .with_proc(ProcKind::Gpu),
            SystemConfig::empty(LinkRate::gbps(4)).with_proc(ProcKind::Fpga),
        ];
        for config in systems {
            let cost = CostModel::new(&dfg, lookup, &config);
            for (node, kernel) in dfg.iter() {
                // Naive per-instance scan, as the seed's call sites did it.
                let naive: Vec<Option<SimDuration>> = config
                    .proc_ids()
                    .map(|p| lookup.exec_time(kernel, config.kind_of(p)).ok())
                    .collect();
                let mut naive_runnable = 0u64;
                let mut naive_min: Option<SimDuration> = None;
                for (i, t) in naive.iter().enumerate() {
                    if let Some(t) = t {
                        naive_runnable |= 1 << i;
                        if naive_min.is_none_or(|m| *t < m) {
                            naive_min = Some(*t);
                        }
                    }
                }
                let naive_mask = naive
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.is_some() && **t == naive_min)
                    .fold(0u64, |m, (i, _)| m | 1 << i);
                let naive_best = naive
                    .iter()
                    .position(|t| t.is_some() && *t == naive_min)
                    .map(|i| (ProcId::new(i), naive_min.unwrap()));

                for (i, t) in naive.iter().enumerate() {
                    assert_eq!(cost.exec_time(node, ProcId::new(i)), *t, "{kernel}");
                    assert_eq!(cost.runnable(node, ProcId::new(i)), t.is_some());
                }
                assert_eq!(cost.runnable_mask(node), naive_runnable, "{kernel}");
                assert_eq!(cost.min_exec(node), naive_min, "{kernel}");
                assert_eq!(cost.min_mask(node), naive_mask, "{kernel}");
                assert_eq!(cost.best_proc(node), naive_best, "{kernel}");
                let bytes = kernel.bytes(config.bytes_per_element);
                assert_eq!(
                    cost.transfer_time(node),
                    config.link.transfer_time(bytes),
                    "{kernel}"
                );
            }
        }
    }

    #[test]
    fn shared_transfer_in_matches_per_pred_sum() {
        // The engine and the view share CostModel::transfer_in_time; check it
        // against a by-hand sum for mixed residency.
        let (dfg, lookup, config) = fixture();
        let cost = CostModel::new(&dfg, lookup, &config);
        // Node 2 depends on 0 (on p0) and 1 (on p2); unfinished preds free.
        let locations = vec![Some(ProcId::new(0)), None, None];
        let n2 = NodeId::new(2);
        assert_eq!(
            cost.transfer_in_time(&dfg, &locations, n2, ProcId::new(0)),
            SimDuration::ZERO
        );
        assert_eq!(
            cost.transfer_in_time(&dfg, &locations, n2, ProcId::new(1)),
            cost.transfer_time(NodeId::new(0))
        );
        let locations = vec![Some(ProcId::new(0)), Some(ProcId::new(2)), None];
        assert_eq!(
            cost.transfer_in_time(&dfg, &locations, n2, ProcId::new(1)),
            cost.transfer_time(NodeId::new(0)) + cost.transfer_time(NodeId::new(1))
        );
    }

    #[test]
    fn idle_stddev_matches_naive_for_every_mask() {
        use apt_base::stats::stddev_population;
        let (dfg, lookup, config) = fixture();
        let cost = CostModel::new(&dfg, lookup, &config);
        for node in dfg.node_ids() {
            for mask in 0u64..(1 << config.len()) {
                // The logic SS used inline: ascending-id as_ms_f64 times of
                // runnable processors in the mask.
                let naive: Vec<f64> = config
                    .proc_ids()
                    .filter(|p| mask & (1 << p.index()) != 0)
                    .filter_map(|p| cost.exec_time(node, p))
                    .map(|d| d.as_ms_f64())
                    .collect();
                let expected = stddev_population(&naive);
                // Memoized path (≤ SS_MEMO_MAX_PROCS procs) — queried twice
                // to cover both the fill and the hit.
                assert_eq!(cost.idle_stddev(node, mask), expected);
                assert_eq!(cost.idle_stddev(node, mask), expected);
                // Uncached path must agree bit for bit.
                assert_eq!(cost.compute_idle_stddev(node, mask), expected);
            }
        }
    }

    #[test]
    fn idle_stddev_ignores_out_of_machine_bits() {
        let (dfg, lookup, config) = fixture();
        let cost = CostModel::new(&dfg, lookup, &config);
        let n = NodeId::new(0);
        // Bits above the machine size must not change the answer (they can
        // appear in hand-built views over a larger universe).
        assert_eq!(
            cost.idle_stddev(n, 0b111),
            cost.idle_stddev(n, 0b111 | (1 << 20))
        );
    }

    #[test]
    fn zero_bytes_per_element_disables_transfers() {
        let (dfg, lookup, _) = fixture();
        let config = SystemConfig::paper_no_transfers();
        let cost = CostModel::new(&dfg, lookup, &config);
        for node in dfg.node_ids() {
            assert_eq!(cost.transfer_time(node), SimDuration::ZERO);
        }
    }
}
