//! # apt-suite
//!
//! Meta crate for the APT reproduction workspace: re-exports the full public
//! surface (via [`apt_core::prelude`]) and hosts the runnable examples and
//! the cross-crate integration tests.
//!
//! Start with `examples/quickstart.rs`:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! ## Observability
//!
//! The [`trace`] layer (`apt-trace`) records what the simulator *did*,
//! instant by instant, without perturbing it. Arm a
//! [`trace::TraceSink`] on a run — [`trace::VecSink`] to keep
//! everything, [`trace::RingSink`] to bound memory on long streams —
//! and every layer emits typed [`trace::TraceEvent`]s: kernel
//! dispatch/transfer/exec/completion on each processor, job
//! admission/shed/retirement, fault and retry instants, control-plane
//! actions, per-window counters (in-flight jobs, queue depth, live α/ρ,
//! miss rate), and a [`trace::DecisionRecord`] for every APT
//! alternative-processor choice with its full Eq.-8 provenance.
//!
//! Tracing is **off by default and free when off**: an untraced run
//! executes byte-identically to a run built before the trace layer
//! existed (pinned by the equivalence suites), and an armed
//! [`trace::NullSink`] prices the hot path within a few percent of bare
//! (`trace/poisson_apt` benches).
//!
//! Render a recorded stream with [`trace::chrome::chrome_trace`]
//! (Chrome trace-event JSON — open it in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev)) or
//! [`trace::summary::render_summary`] (the §2.5.1 λ-delay decomposition:
//! dependency- vs scheduler- vs processor-wait per kernel). The same
//! exports are wired into the CLI as `apt-repro <scenario> --trace
//! <path>`, and `examples/traced_stream.rs` produces a loadable timeline
//! from a faulty, controlled diurnal stream:
//!
//! ```bash
//! cargo run --release -p apt-suite --example traced_stream trace.json
//! ```
//!
//! The [`telemetry`] layer (`apt-telemetry`) answers the *other*
//! observability question — not "what happened, instant by instant?" but
//! "how is the run doing, right now, in aggregate?". A
//! [`telemetry::Registry`] of counters, gauges and log-bucketed
//! histograms rides along a stream run
//! ([`apt_stream::simulate_source_telemetered`]), rendering three
//! surfaces: a Prometheus text exposition
//! ([`telemetry::render_prometheus`], re-checked by
//! [`telemetry::validate`]), a JSONL snapshot stream (one flat object per
//! closed metrics window), and a throttled stderr heartbeat for soak
//! runs. With the `self-profile` feature the engine itself is profiled:
//! contiguous wall-clock phase accounting (decide / apply / calendar /
//! handle / retire / admit / account / window) plus per-policy decision
//! counters, rendered as a [`telemetry::PhaseReport`].
//!
//! Which layer to reach for:
//!
//! | | `trace` (apt-trace) | `telemetry` (apt-telemetry) |
//! |---|---|---|
//! | question | what did the machine do, instant by instant? | how is the run doing, in aggregate? |
//! | unit | typed event per occurrence | monotone counter / gauge / histogram bucket |
//! | memory | grows with events ([`trace::RingSink`] to bound) | fixed, independent of run length |
//! | mergeable | concat event streams | [`telemetry::Registry::merge`] across shards |
//! | exports | Chrome/Perfetto JSON, λ-delay summary | Prometheus text, JSONL windows, heartbeat |
//! | consumers | humans debugging one run | dashboards, CI gates, soak monitors |
//! | cost when off | zero (byte-identical runs) | zero (byte-identical runs) |
//!
//! Both ride the same run if you want both: `apt-repro stream-saturation
//! --trace t.json --progress --metrics m.prom` draws the timeline *and*
//! exports the registry from the same representative cell.
//! `examples/telemetry_soak.rs` is the soak-run shape — heartbeat on,
//! registry armed, engine profiled:
//!
//! ```bash
//! cargo run --release -p apt-suite --example telemetry_soak soak.prom
//! ```
//!
//! ## Invariants
//!
//! Three properties hold everywhere in this workspace, and `apt-lint`
//! (the workspace's own dependency-free static analyzer) enforces them
//! mechanically — in CI and in `apt-lint`'s `workspace_is_lint_clean`
//! test:
//!
//! * **Determinism** — same seed, same trace, byte for byte. Simulation
//!   crates never iterate a `HashMap`/`HashSet` (ordered containers or
//!   sorted key lists only; keyed lookup is fine) and never read the wall
//!   clock (`Instant::now`/`SystemTime` live only in the bench, profiler
//!   and progress modules). Time is the event clock; randomness is
//!   [`SplitMix64`].
//! * **RNG-stream discipline** — every RNG stream derives from a config
//!   seed or a named `*_STREAM_SALT` constant (e.g.
//!   `FAULT_STREAM_SALT`), never an inline magic number, so streams stay
//!   disjoint, greppable, and reproducible from the config alone.
//! * **Panic-freedom tiers** — on hot-path modules (the engine fixpoint,
//!   the open driver, policy decide paths) every `unwrap`/`expect`/panic
//!   macro either becomes a typed `apt_base` error or carries a reasoned
//!   escape comment — `// apt-lint: allow(rule, why the invariant
//!   holds)` — with the reason mandatory. All lib crates carry
//!   `#![forbid(unsafe_code)]`, inherited workspace-wide via
//!   `[workspace.lints]`.
//!
//! Run the linter locally with `cargo run -p apt-lint -- --check`
//! (`--json` for the stable `apt-lint-v1` machine schema). A fourth,
//! type-level invariant — engine and source state stay [`Send`] so the
//! sharded-streaming roadmap item can move whole engines onto worker
//! threads — is compile-time-asserted by the `shard_ready` test modules
//! in `apt-hetsim` and `apt-stream`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use apt_core::prelude;
pub use apt_core::prelude::*;

// The SLO layer (deadline-aware scheduling + admission control) keeps its
// own namespace: gates are stateful and lifetime-bound, so a flat glob
// would be more confusing than helpful.
pub use apt_slo as slo;

// Same for the adaptive control plane: controllers are built, configured
// and handed to the driver explicitly, so the namespace keeps the
// closed-loop surface discoverable as a unit.
pub use apt_control as control;

// And for observability: sinks, events and exporters form one opt-in
// surface (see the "Observability" section above).
pub use apt_trace as trace;

// The aggregate half of observability: the shard-mergeable metrics
// registry, Prometheus/JSONL exposition and engine phase profiling (see
// the decision table above for trace-vs-telemetry guidance).
pub use apt_telemetry as telemetry;

/// Workspace version, for the examples' banners.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reaches_every_layer() {
        use crate::prelude::*;
        let lookup = LookupTable::paper();
        let dfg = generate(DfgType::Type1, &StreamConfig::new(6, 1), lookup);
        let res = simulate(&dfg, &SystemConfig::paper_4gbps(), lookup, &mut Met::new()).unwrap();
        assert_eq!(res.trace.records.len(), 6);
    }
}
