//! Policy supervision: a roster of candidate policies and a
//! windowed-regret supervisor that picks which one runs.

use crate::{ControlAction, Controller};
use apt_base::BaseError;
use apt_hetsim::{AssignmentBuf, Policy, PolicyKind, PrepareCtx, SimView};
use apt_metrics::StreamSnapshot;

/// A roster of policies exposed to the engine as a single [`Policy`]:
/// every member is prepared up front, exactly one (the *active* member)
/// decides, and [`Policy::switch_to`] — driven by [`PolicySupervisor`]
/// through the control plane — changes which one, between events.
///
/// The roster starts on member 0; α reads and writes delegate to the
/// active member, so an [`AlphaController`](crate::AlphaController) keeps
/// tuning whichever policy the supervisor has in play.
pub struct PolicyRoster {
    members: Vec<Box<dyn Policy>>,
    names: Vec<String>,
    active: usize,
}

impl PolicyRoster {
    /// A roster over `members` (must be non-empty); member 0 starts
    /// active.
    pub fn new(members: Vec<Box<dyn Policy>>) -> Self {
        assert!(!members.is_empty(), "a roster needs at least one member");
        let names = members.iter().map(|m| m.name()).collect();
        PolicyRoster {
            members,
            names,
            active: 0,
        }
    }

    /// Index of the member currently deciding.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Display names of all members, in roster order.
    pub fn member_names(&self) -> &[String] {
        &self.names
    }
}

impl Policy for PolicyRoster {
    /// Stable across switches (the *roster* is the policy; which member
    /// is active is run state, recorded in the control log).
    fn name(&self) -> String {
        format!("roster[{}]", self.names.join("|"))
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Dynamic
    }

    fn prepare(&mut self, ctx: PrepareCtx<'_>) -> Result<(), BaseError> {
        for m in &mut self.members {
            m.prepare(ctx)?;
        }
        Ok(())
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
        self.members[self.active].decide(view, out);
    }

    fn alpha(&self) -> Option<f64> {
        self.members[self.active].alpha()
    }

    fn set_alpha(&mut self, alpha: f64) -> bool {
        self.members[self.active].set_alpha(alpha)
    }

    fn switch_to(&mut self, index: usize) -> bool {
        if index < self.members.len() {
            self.active = index;
            true
        } else {
            false
        }
    }
}

/// Gains of [`PolicySupervisor`].
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Windows each roster member is given during the initial probe
    /// phase.
    pub probe_windows: u32,
    /// Consecutive windows the incumbent must trail the best-scored
    /// member (by more than `margin`) before the supervisor switches.
    pub patience: u32,
    /// Relative regret margin: a switch needs
    /// `best > active + margin · max(|best|, 1)`. Together with
    /// `patience` this is the switchover guard — one bad window, or a
    /// hair's-width score gap, never moves the roster.
    pub margin: f64,
    /// EWMA weight of the newest window in a member's score, in (0, 1].
    /// 1 scores on the latest window alone; smaller values remember
    /// (and therefore forgive) more history.
    pub ewma: f64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            probe_windows: 3,
            patience: 3,
            margin: 0.1,
            ewma: 0.5,
        }
    }
}

/// Windowed-regret scheduler of schedulers (actuated via
/// [`ControlAction::SwitchPolicy`] on a [`PolicyRoster`]).
///
/// Each closed window is scored for the member that was active —
/// `(jobs − 2·missed − failed) / max(jobs, 1)`, the same
/// volume-normalized goodput score the α climber uses — and EWMA-blended
/// into that member's running score. The run opens with a **probe
/// phase** (each member gets `probe_windows` windows, in roster order);
/// afterwards the supervisor **exploits**, tracking the *regret* of the
/// incumbent against the best-scored member and switching only when that
/// regret exceeds the margin for `patience` consecutive windows. Ties
/// break toward the lowest roster index, so scoring is deterministic.
///
/// Scores of inactive members age only through the guard: a member that
/// probed badly under a burst is retried only if the incumbent degrades —
/// a deliberate exploitation bias that keeps switches (each one a
/// discontinuity in queue discipline) rare.
#[derive(Debug, Clone)]
pub struct PolicySupervisor {
    cfg: SupervisorConfig,
    scores: Vec<Option<f64>>,
    active: usize,
    probing: bool,
    window_in_slot: u32,
    losing: u32,
}

impl PolicySupervisor {
    /// A supervisor over a roster of `roster_len` members; assumes the
    /// roster starts on member 0 (as [`PolicyRoster::new`] does).
    ///
    /// # Panics
    ///
    /// On an empty roster, zero `probe_windows` or `patience`, a
    /// negative or non-finite `margin`, or `ewma` outside (0, 1].
    pub fn new(roster_len: usize, cfg: SupervisorConfig) -> Self {
        assert!(roster_len > 0, "a supervisor needs a non-empty roster");
        assert!(cfg.probe_windows > 0, "probe_windows must be positive");
        assert!(cfg.patience > 0, "patience must be positive");
        assert!(
            cfg.margin.is_finite() && cfg.margin >= 0.0,
            "margin must be finite and non-negative"
        );
        assert!(
            cfg.ewma > 0.0 && cfg.ewma <= 1.0,
            "ewma weight must lie in (0, 1]"
        );
        PolicySupervisor {
            cfg,
            scores: vec![None; roster_len],
            active: 0,
            probing: true,
            window_in_slot: 0,
            losing: 0,
        }
    }

    /// The member the supervisor believes is active.
    pub fn active(&self) -> usize {
        self.active
    }

    /// True while the initial round-robin probe phase is running.
    pub fn probing(&self) -> bool {
        self.probing
    }

    fn best(&self) -> (usize, f64) {
        let mut best = (0, f64::NEG_INFINITY);
        for (i, s) in self.scores.iter().enumerate() {
            if let Some(s) = *s {
                if s > best.1 {
                    best = (i, s);
                }
            }
        }
        best
    }
}

impl Controller for PolicySupervisor {
    fn name(&self) -> String {
        format!(
            "supervisor({} members, margin={}, patience={})",
            self.scores.len(),
            self.cfg.margin,
            self.cfg.patience
        )
    }

    fn on_window(&mut self, snapshot: &StreamSnapshot, out: &mut Vec<ControlAction>) {
        let raw = (snapshot.window_jobs as f64
            - 2.0 * snapshot.window_missed as f64
            - snapshot.window_failed as f64)
            / (snapshot.window_jobs.max(1)) as f64;
        let blended = match self.scores[self.active] {
            Some(prev) => self.cfg.ewma * raw + (1.0 - self.cfg.ewma) * prev,
            None => raw,
        };
        self.scores[self.active] = Some(blended);

        if self.probing {
            self.window_in_slot += 1;
            if self.window_in_slot >= self.cfg.probe_windows {
                self.window_in_slot = 0;
                if self.active + 1 < self.scores.len() {
                    self.active += 1;
                    out.push(ControlAction::SwitchPolicy(self.active));
                } else {
                    self.probing = false;
                    let (best, _) = self.best();
                    if best != self.active {
                        self.active = best;
                        out.push(ControlAction::SwitchPolicy(best));
                    }
                }
            }
            return;
        }

        let (best, best_score) = self.best();
        let incumbent = blended;
        if best != self.active
            && best_score > incumbent + self.cfg.margin * best_score.abs().max(1.0)
        {
            self.losing += 1;
            if self.losing >= self.cfg.patience {
                self.losing = 0;
                self.active = best;
                out.push(ControlAction::SwitchPolicy(best));
            }
        } else {
            self.losing = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_snapshot;
    use apt_core::Apt;
    use apt_policies::Met;

    fn window(sup: &mut PolicySupervisor, missed: u64) -> Vec<ControlAction> {
        let mut out = Vec::new();
        sup.on_window(&test_snapshot(100, 100, missed, 100, 100, 0), &mut out);
        out
    }

    #[test]
    fn probe_phase_round_robins_then_settles_on_the_best() {
        let mut sup = PolicySupervisor::new(
            3,
            SupervisorConfig {
                probe_windows: 2,
                ..SupervisorConfig::default()
            },
        );
        // Member 0 probes clean…
        assert!(window(&mut sup, 0).is_empty());
        assert_eq!(window(&mut sup, 0), vec![ControlAction::SwitchPolicy(1)]);
        // …member 1 misses a third…
        assert!(window(&mut sup, 33).is_empty());
        assert_eq!(window(&mut sup, 33), vec![ControlAction::SwitchPolicy(2)]);
        // …member 2 misses everything: probe ends, best (0) takes over.
        assert!(window(&mut sup, 100).is_empty());
        assert_eq!(window(&mut sup, 100), vec![ControlAction::SwitchPolicy(0)]);
        assert!(!sup.probing());
        assert_eq!(sup.active(), 0);
    }

    #[test]
    fn switchover_is_guarded_by_margin_and_patience() {
        let mut sup = PolicySupervisor::new(
            2,
            SupervisorConfig {
                probe_windows: 1,
                patience: 3,
                margin: 0.1,
                ewma: 1.0,
            },
        );
        // Probe: member 0 clean, member 1 clean — tie breaks to 0.
        assert_eq!(window(&mut sup, 0), vec![ControlAction::SwitchPolicy(1)]);
        assert_eq!(window(&mut sup, 0), vec![ControlAction::SwitchPolicy(0)]);
        // Exploit: two bad windows are tolerated (patience = 3)…
        assert!(window(&mut sup, 50).is_empty());
        assert!(window(&mut sup, 50).is_empty());
        // …a clean window resets the count…
        assert!(window(&mut sup, 0).is_empty());
        assert!(window(&mut sup, 50).is_empty());
        assert!(window(&mut sup, 50).is_empty());
        // …and only the third *consecutive* losing window switches.
        assert_eq!(window(&mut sup, 50), vec![ControlAction::SwitchPolicy(1)]);
        assert_eq!(sup.active(), 1);
    }

    #[test]
    fn single_member_roster_never_switches() {
        let mut sup = PolicySupervisor::new(1, SupervisorConfig::default());
        for _ in 0..20 {
            assert!(window(&mut sup, 100).is_empty());
        }
        assert_eq!(sup.active(), 0);
    }

    #[test]
    fn roster_delegates_alpha_and_bounds_switches() {
        let mut roster = PolicyRoster::new(vec![Box::new(Apt::new(4.0)), Box::new(Met::new())]);
        assert_eq!(roster.active(), 0);
        assert_eq!(roster.member_names().len(), 2);
        assert!(roster.name().starts_with("roster["));
        // Active member 0 is APT: α reads/writes reach it.
        assert_eq!(Policy::alpha(&roster), Some(4.0));
        assert!(roster.set_alpha(6.0));
        assert_eq!(Policy::alpha(&roster), Some(6.0));
        // Switch to MET: no α knob there.
        assert!(roster.switch_to(1));
        assert_eq!(roster.active(), 1);
        assert_eq!(Policy::alpha(&roster), None);
        assert!(!roster.set_alpha(2.0));
        // Out-of-range switches are rejected and leave the roster put.
        assert!(!roster.switch_to(2));
        assert_eq!(roster.active(), 1);
        assert_eq!(roster.kind(), PolicyKind::Dynamic);
    }

    #[test]
    #[should_panic(expected = "non-empty roster")]
    fn empty_roster_is_rejected() {
        PolicySupervisor::new(0, SupervisorConfig::default());
    }
}
