//! The PCI-Express interconnect model.
//!
//! §3.2: "Using PCIe 2.0 the data rate per lane is 500 MBps; we varied the
//! number of lanes to be 8 and 16 ... With 8 lanes this would achieve an
//! approximate throughput of 4 GBps and with 16 lanes 8 GBps. We maintain
//! the data transfer rates between all processors to be the same."
//!
//! The model is therefore a single uniform rate; transfer time is
//! `bytes / rate`, computed in exact integer arithmetic (rounded up to the
//! next nanosecond so transfers are never undercounted). Machines whose
//! interconnect has *structure* — per-pair rates, clusters, host-staged
//! bottlenecks — are modeled by [`crate::Topology`], which reuses this
//! arithmetic per directed pair.

use apt_base::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bytes per PCIe 2.0 lane per second (500 MB/s).
pub const PCIE2_BYTES_PER_LANE: u64 = 500_000_000;

/// A uniform point-to-point link rate between every pair of processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkRate {
    /// Sustained throughput in bytes per second.
    pub bytes_per_sec: u64,
}

impl LinkRate {
    /// PCIe 2.0 ×8 — the paper's 4 GB/s configuration.
    pub const PCIE2_X8: LinkRate = LinkRate::lanes(8);
    /// PCIe 2.0 ×16 — the paper's 8 GB/s configuration.
    pub const PCIE2_X16: LinkRate = LinkRate::lanes(16);

    /// A PCIe 2.0 link with the given lane count.
    pub const fn lanes(n: u64) -> LinkRate {
        LinkRate {
            bytes_per_sec: n * PCIE2_BYTES_PER_LANE,
        }
    }

    /// An arbitrary rate in GB/s (decimal gigabytes, as in the paper).
    pub const fn gbps(g: u64) -> LinkRate {
        LinkRate {
            bytes_per_sec: g * 1_000_000_000,
        }
    }

    /// Time to move `bytes` across the link, rounded up to whole nanoseconds.
    /// Zero bytes take zero time (the Figure-5 example disables transfers by
    /// setting the byte volume to zero).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let num = bytes as u128 * 1_000_000_000u128;
        let den = self.bytes_per_sec as u128;
        SimDuration::from_ns(num.div_ceil(den) as u64)
    }

    /// The rate in fractional GB/s (reporting only).
    pub fn as_gbps_f64(&self) -> f64 {
        self.bytes_per_sec as f64 / 1e9
    }
}

impl fmt::Display for LinkRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}GB/s", self.as_gbps_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_math_matches_paper() {
        assert_eq!(LinkRate::PCIE2_X8.bytes_per_sec, 4_000_000_000);
        assert_eq!(LinkRate::PCIE2_X16.bytes_per_sec, 8_000_000_000);
        assert_eq!(LinkRate::PCIE2_X8, LinkRate::gbps(4));
    }

    #[test]
    fn transfer_time_exact_division() {
        // 4 GB/s moves 4 bytes per nanosecond.
        let l = LinkRate::gbps(4);
        assert_eq!(l.transfer_time(4), SimDuration::from_ns(1));
        assert_eq!(
            l.transfer_time(4_000_000_000),
            SimDuration::from_ns(1_000_000_000)
        );
        // 64 MB at 4 GB/s = 16 ms.
        assert_eq!(l.transfer_time(64_000_000), SimDuration::from_ms(16));
    }

    #[test]
    fn transfer_time_rounds_up() {
        let l = LinkRate::gbps(4);
        assert_eq!(l.transfer_time(1), SimDuration::from_ns(1));
        assert_eq!(l.transfer_time(5), SimDuration::from_ns(2));
    }

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(LinkRate::gbps(4).transfer_time(0), SimDuration::ZERO);
    }

    #[test]
    fn doubling_lanes_halves_time() {
        let big = 512 * 1024 * 1024u64;
        let t8 = LinkRate::PCIE2_X8.transfer_time(big);
        let t16 = LinkRate::PCIE2_X16.transfer_time(big);
        assert_eq!(t8.as_ns(), t16.as_ns() * 2);
    }

    #[test]
    fn display_shows_gbps() {
        assert_eq!(LinkRate::PCIE2_X8.to_string(), "4GB/s");
    }
}
