//! # apt-bench
//!
//! Shared fixtures for the Criterion benchmarks in `benches/`:
//!
//! * [`tables`](../benches/tables.rs) — one group per paper table (8–16):
//!   times the uncached sweep that regenerates it.
//! * [`figures`](../benches/figures.rs) — one group per paper figure (5–12).
//! * [`ablation`](../benches/ablation.rs) — the DESIGN.md ablations: fine α
//!   grid, heterogeneity scaling, transfer-volume knob, processor counts,
//!   APT vs APT-R.
//! * [`policy_overhead`](../benches/policy_overhead.rs) — per-policy
//!   scheduling cost, including HEFT/PEFT's pre-computation phase (the
//!   "intensive pre-computation" §1.2 says dynamic policies avoid).
//! * [`engine`](../benches/engine.rs) — raw simulator/generator throughput.
//! * [`stream`](../benches/stream.rs) — open-stream driver end-to-end and
//!   the two-level calendar under a deep far-future backlog.
//! * [`fault`](../benches/fault.rs) — the fault-injection layer: the same
//!   stream with the machinery off (zero-cost-when-off pin) and armed
//!   (transient + crash/repair + retry overhead).
//! * [`control`](../benches/control.rs) — the adaptive control plane: the
//!   same gated windowed stream bare vs with the AIMD loop evaluated at
//!   every window close inside its hysteresis band, so the delta is pure
//!   machinery on byte-identical work (<5% target).
//! * [`trace`](../benches/trace.rs) — the tracing layer's armed hot path:
//!   the same Poisson APT stream untraced vs under an armed
//!   [`apt_trace::NullSink`], so the delta is pure emission-site overhead
//!   on byte-identical schedules (<5% target).
//! * [`telemetry`](../benches/telemetry.rs) — the metrics registry's armed
//!   hot path: the same Poisson APT stream bare vs under an armed
//!   [`apt_stream::StreamTelemetry`], so the delta is pure instrument
//!   bookkeeping (counter adds, histogram observes) on byte-identical
//!   schedules (<5% target; `examples/telemetry_overhead.rs` re-checks
//!   the ratio with interleaved minima when a noisy host makes the
//!   Criterion rows disagree).
//!
//! Run with `cargo bench --workspace`; results land in `target/criterion/`.

#![forbid(unsafe_code)]

use apt_core::prelude::*;

/// A mid-size Type-1 workload (93 kernels — experiment 8's size).
pub fn type1_workload() -> KernelDag {
    generate(
        DfgType::Type1,
        &StreamConfig::new(93, 0xBE9C_0001),
        LookupTable::paper(),
    )
}

/// The largest paper workload (157 kernels) as Type-2.
pub fn type2_workload() -> KernelDag {
    generate(
        DfgType::Type2,
        &StreamConfig::new(157, 0xBE9C_0002),
        LookupTable::paper(),
    )
}

/// Run one policy to completion on a workload; returns the makespan so
/// Criterion's blackbox keeps the computation alive.
pub fn run(dfg: &KernelDag, system: &SystemConfig, policy: &mut dyn Policy) -> u64 {
    simulate(dfg, system, LookupTable::paper(), policy)
        .expect("bench simulation")
        .makespan()
        .as_ns()
}

/// The `topology_*` bench machines: the topology-sweep's own six-processor
/// pod pair (transfer-heavy 16 B/element) under the scalar uniform link
/// and under the clustered per-pair matrix (dense pair-table path).
/// Sourced from `apt_experiments::topology::topology_variants`, so
/// retuning the sweep machine retunes the benchmark with it. Timing the
/// same workload on both prices the pair-resolved transfer layer against
/// the seed scalar path.
pub fn topology_systems() -> Vec<(&'static str, SystemConfig)> {
    apt_experiments::topology::topology_variants()
        .into_iter()
        .filter(|(name, _)| matches!(*name, "uniform" | "clustered"))
        .collect()
}

/// Jobs per open-stream bench iteration (single-kernel Poisson jobs at a
/// sustainable rate — the million-job path, sized for a benchable iteration).
pub const STREAM_BENCH_JOBS: u64 = 10_000;

/// One open-stream driver run: `STREAM_BENCH_JOBS` Poisson jobs through the
/// bounded-memory driver under MET (`alpha = None`) or APT(α)
/// (`alpha = Some(α)`). Returns the final simulated instant in ns.
pub fn stream_run(alpha: Option<f64>) -> u64 {
    use apt_stream::{simulate_source, DriverOpts, JobFamily, PoissonSource};
    let mut policy: Box<dyn Policy> = match alpha {
        None => Box::new(Met::new()),
        Some(a) => Box::new(Apt::new(a)),
    };
    let mut source = PoissonSource::new(
        LookupTable::paper(),
        0.5,
        STREAM_BENCH_JOBS,
        JobFamily::Single,
        0xBE9C_5EED,
    );
    let outcome = simulate_source(
        &mut source,
        &SystemConfig::paper_4gbps(),
        LookupTable::paper(),
        policy.as_mut(),
        &DriverOpts::default(),
    )
    .expect("stream bench run");
    assert_eq!(outcome.jobs_completed, STREAM_BENCH_JOBS);
    outcome.end.as_ns()
}

/// One SLO stream run: `STREAM_BENCH_JOBS` deadline-tagged Poisson jobs
/// (D = 4 × critical path) through the gated driver under EDF-APT, with
/// either the open accept-all gate or the utilization-bound shed path —
/// the deadline plumbing's end-to-end constant factors (per-slot deadline
/// stamping, tardiness metrics, gate bookkeeping). Returns the final
/// simulated instant in ns.
pub fn slo_stream_run(gated: bool) -> u64 {
    use apt_slo::{simulate_source_slo, AcceptAll, AdmissionPolicy, UtilizationBound};
    use apt_stream::{DeadlineSpec, DriverOpts, JobFamily, PoissonSource};
    let lookup = LookupTable::paper();
    let config = SystemConfig::paper_4gbps();
    let mut policy = EdfApt::new(4.0);
    let mut source = PoissonSource::new(
        lookup,
        0.5,
        STREAM_BENCH_JOBS,
        JobFamily::Single,
        0xBE9C_5EED,
    )
    .with_deadlines(DeadlineSpec::ProportionalCp { factor: 4.0 });
    let mut accept_all = AcceptAll;
    let mut util;
    let admission: &mut dyn AdmissionPolicy = if gated {
        util = UtilizationBound::new(lookup, &config, 1.0);
        &mut util
    } else {
        &mut accept_all
    };
    let outcome = simulate_source_slo(
        &mut source,
        &config,
        lookup,
        &mut policy,
        admission,
        &DriverOpts::default(),
    )
    .expect("slo bench run");
    assert_eq!(outcome.jobs_admitted + outcome.jobs_shed, STREAM_BENCH_JOBS);
    outcome.end.as_ns()
}

/// One traced stream run: the [`stream_run`] APT configuration with the
/// tracing layer either fully absent (`null_sink = false`, the plain
/// driver — the bare baseline) or armed with an [`apt_trace::NullSink`]
/// (`null_sink = true` — every emission site fires, nothing is retained).
/// Timing both prices the armed hot path: the schedules are
/// byte-identical, so the delta is pure emission overhead. Returns the
/// final simulated instant in ns.
pub fn traced_stream_run(null_sink: bool) -> u64 {
    use apt_stream::{
        simulate_source, simulate_source_traced, AdmitAll, DriverOpts, JobFamily, PoissonSource,
    };
    use apt_trace::NullSink;
    let mut policy = Apt::new(4.0);
    let mut source = PoissonSource::new(
        LookupTable::paper(),
        0.5,
        STREAM_BENCH_JOBS,
        JobFamily::Single,
        0xBE9C_5EED,
    );
    let opts = DriverOpts::default();
    let outcome = if null_sink {
        simulate_source_traced(
            &mut source,
            &SystemConfig::paper_4gbps(),
            LookupTable::paper(),
            &mut policy,
            &opts,
            &mut AdmitAll,
            None,
            Box::new(NullSink),
            |_| {},
        )
        .map(|(outcome, _sink)| outcome)
    } else {
        simulate_source(
            &mut source,
            &SystemConfig::paper_4gbps(),
            LookupTable::paper(),
            &mut policy,
            &opts,
        )
    }
    .expect("traced bench run");
    assert_eq!(outcome.jobs_completed, STREAM_BENCH_JOBS);
    outcome.end.as_ns()
}

/// One telemetered stream run: the [`stream_run`] APT configuration with
/// the metrics registry either fully absent (`armed = false`, the plain
/// driver — the bare baseline) or armed with a default
/// [`apt_stream::StreamTelemetry`] (`armed = true` — every driver hook
/// fires into the registry: admission/completion counters, latency and
/// tardiness histogram observes; no heartbeat, no engine profiling, so
/// the delta is the pure instrument hot path). The schedules are
/// byte-identical (pinned in `tests/telemetered_stream.rs`), so the
/// armed-vs-bare delta prices registry bookkeeping alone (<5% target).
/// Returns the final simulated instant in ns.
pub fn telemetry_stream_run(armed: bool) -> u64 {
    use apt_stream::{
        simulate_source, simulate_source_telemetered, AdmitAll, DriverOpts, JobFamily,
        PoissonSource, StreamTelemetry,
    };
    let mut policy = Apt::new(4.0);
    let mut source = PoissonSource::new(
        LookupTable::paper(),
        0.5,
        STREAM_BENCH_JOBS,
        JobFamily::Single,
        0xBE9C_5EED,
    );
    let opts = DriverOpts::default();
    let outcome = if armed {
        let mut tel = StreamTelemetry::new();
        simulate_source_telemetered(
            &mut source,
            &SystemConfig::paper_4gbps(),
            LookupTable::paper(),
            &mut policy,
            &opts,
            &mut AdmitAll,
            None,
            None,
            &mut tel,
            |_| {},
        )
        .map(|(outcome, _sink)| {
            assert_eq!(
                tel.registry()
                    .counter_named("jobs_completed_total", &[])
                    .expect("registered"),
                STREAM_BENCH_JOBS
            );
            outcome
        })
    } else {
        simulate_source(
            &mut source,
            &SystemConfig::paper_4gbps(),
            LookupTable::paper(),
            &mut policy,
            &opts,
        )
    }
    .expect("telemetry bench run");
    assert_eq!(outcome.jobs_completed, STREAM_BENCH_JOBS);
    outcome.end.as_ns()
}

/// One *profiled* telemetered stream run: [`telemetry_stream_run`] with
/// engine phase profiling requested on top of the armed registry
/// (`apt-bench` builds `apt-stream` with the `self-profile` feature).
/// Returns the run's [`apt_telemetry::PhaseReport`] for the phase-breakdown
/// table `apt-bench` prints — the self-profiling acceptance surface
/// (phase wall-clock sum ≥ 90% of engine total).
pub fn profiled_stream_report() -> apt_telemetry::PhaseReport {
    use apt_stream::{
        simulate_source_telemetered, AdmitAll, DriverOpts, JobFamily, PoissonSource,
        StreamTelemetry,
    };
    let mut policy = Apt::new(4.0);
    let mut source = PoissonSource::new(
        LookupTable::paper(),
        0.5,
        STREAM_BENCH_JOBS,
        JobFamily::Single,
        0xBE9C_5EED,
    );
    let mut tel = StreamTelemetry::new().with_engine_profile();
    let (outcome, _) = simulate_source_telemetered(
        &mut source,
        &SystemConfig::paper_4gbps(),
        LookupTable::paper(),
        &mut policy,
        &DriverOpts::default(),
        &mut AdmitAll,
        None,
        None,
        &mut tel,
        |_| {},
    )
    .expect("profiled bench run");
    assert_eq!(outcome.jobs_completed, STREAM_BENCH_JOBS);
    tel.take_phase_report()
        .expect("apt-bench compiles apt-stream with self-profile")
}

/// One fault-injected stream run: the [`stream_run`] APT configuration
/// with the fault machinery either fully absent (`armed = false`, the
/// plain driver) or armed with transient kernel failures plus processor
/// crash/repair and the default retry/backoff policy (`armed = true`).
/// Timing both prices fault injection end to end: the clean row tracks
/// the zero-cost-when-off promise (the none-plan path adds no work), the
/// armed row the per-execution draw + crash calendar + retry overhead.
/// Returns the final simulated instant in ns.
pub fn fault_stream_run(armed: bool) -> u64 {
    use apt_stream::{simulate_source, DriverOpts, JobFamily, PoissonSource};
    let mut policy = Apt::new(4.0);
    let mut source = PoissonSource::new(
        LookupTable::paper(),
        0.5,
        STREAM_BENCH_JOBS,
        JobFamily::Single,
        0xBE9C_5EED,
    );
    let faults = if armed {
        FaultPlan::seeded(0xBE9C_FA17)
            .with_transient(0.02)
            .with_crashes(SimDuration::from_ms(60_000), SimDuration::from_ms(2_000))
    } else {
        FaultPlan::none()
    };
    let outcome = simulate_source(
        &mut source,
        &SystemConfig::paper_4gbps(),
        LookupTable::paper(),
        &mut policy,
        &DriverOpts {
            faults,
            retry: RetryPolicy::default(),
            ..DriverOpts::default()
        },
    )
    .expect("fault bench run");
    assert_eq!(
        outcome.jobs_completed + outcome.jobs_failed,
        STREAM_BENCH_JOBS
    );
    outcome.end.as_ns()
}

/// One control-plane stream run: the [`stream_run`] Poisson hot path
/// (deadline-tagged, `UtilizationBound`-gated, 60 s metrics windows)
/// either bare (`armed = false`, the plain gated driver) or with the
/// `apt-control` AIMD admission loop driven at every window close
/// (`armed = true`).
///
/// The AIMD loop is deliberately parked: both setpoints sit at 1.0, so
/// the armed controller evaluates every window but can never act (the
/// paper lookup table leaves a constant background of uncovered-job gate
/// sheds that would otherwise read as congestion). The scheduled work is
/// therefore **byte-identical** to the bare run (the pinned
/// inert-equivalence invariant) and the armed-vs-bare delta prices the
/// pure control-plane machinery: per-window snapshot handoff and the
/// controller's evaluation (<5% target). A controller whose actions
/// *land* would change the workload itself and measure behavior, not
/// overhead (the α hill-climb steps every epoch by design, which is why
/// the stack here is AIMD-only). Returns the final simulated instant in
/// ns.
pub fn control_stream_run(armed: bool) -> u64 {
    use apt_control::{AimdAdmission, AimdConfig, ControllerStack};
    use apt_slo::UtilizationBound;
    use apt_stream::{DeadlineSpec, DriverOpts, JobFamily, PoissonSource};
    let lookup = LookupTable::paper();
    let config = SystemConfig::paper_4gbps();
    let mut policy = EdfApt::new(4.0);
    let mut source = PoissonSource::new(
        lookup,
        0.5,
        STREAM_BENCH_JOBS,
        JobFamily::Single,
        0xBE9C_5EED,
    )
    .with_deadlines(DeadlineSpec::ProportionalCp { factor: 8.0 });
    let mut gate = UtilizationBound::new(lookup, &config, 4.0);
    let opts = DriverOpts {
        snapshot_interval: Some(SimDuration::from_ms(60_000)),
        ..DriverOpts::default()
    };
    let outcome = if armed {
        let mut stack = ControllerStack::new(vec![Box::new(AimdAdmission::new(
            4.0,
            AimdConfig {
                miss_setpoint: 1.0,
                miss_low_water: 1.0,
                shed_setpoint: 1.0,
                ..AimdConfig::default()
            },
        ))]);
        apt_stream::simulate_source_controlled(
            &mut source,
            &config,
            lookup,
            &mut policy,
            &opts,
            &mut gate,
            &mut stack,
            |_| {},
        )
    } else {
        apt_stream::simulate_source_gated(
            &mut source,
            &config,
            lookup,
            &mut policy,
            &opts,
            &mut gate,
            |_| {},
        )
    }
    .expect("control bench run");
    assert_eq!(outcome.jobs_admitted + outcome.jobs_shed, STREAM_BENCH_JOBS);
    assert!(
        outcome.control_log.is_empty(),
        "the overhead fixture's parked loop must never act"
    );
    outcome.end.as_ns()
}

/// Calendar-queue stress for the streaming access pattern: a deep
/// far-future arrival backlog (near window, far ring, and overflow tiers
/// all populated) drained batch by batch with near-term completions pushed
/// along the way. Returns a checksum so the work cannot be optimized out.
pub fn stream_calendar_backlog() -> u64 {
    let mut q: CalendarQueue<u32> = CalendarQueue::new();
    // 40k arrivals spread over ~2 simulated minutes: ~112 blocks, so the
    // near ring, the far ring, and the overflow list all carry load.
    let mut t = 0u64;
    for i in 0..40_000u32 {
        t += 3_000_000; // 3 ms apart
        q.push(apt_base::SimTime::from_ns(t), i);
    }
    let mut acc = 0u64;
    let mut batch = Vec::new();
    let mut completions = 0u32;
    while let Some(at) = q.pop_batch(&mut batch) {
        acc = acc.wrapping_add(at.as_ns()) ^ batch.len() as u64;
        // Every 8th batch schedules a near-term completion, as the engine
        // would.
        if completions.is_multiple_of(8) {
            q.push(
                at + apt_base::SimDuration::from_us(500),
                u32::MAX - completions,
            );
        }
        completions += 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_run() {
        let sys = SystemConfig::paper_4gbps();
        assert!(run(&type1_workload(), &sys, &mut Met::new()) > 0);
        assert!(run(&type2_workload(), &sys, &mut Apt::new(4.0)) > 0);
    }

    #[test]
    fn topology_fixtures_run_on_both_interconnects() {
        let dfg = type1_workload();
        for (name, system) in topology_systems() {
            system.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(run(&dfg, &system, &mut Apt::new(4.0)) > 0, "{name}");
        }
    }

    #[test]
    fn slo_fixture_runs_both_gates() {
        assert!(slo_stream_run(false) > 0);
        assert!(slo_stream_run(true) > 0);
    }

    #[test]
    fn fault_fixture_runs_clean_and_armed() {
        assert!(fault_stream_run(false) > 0);
        assert!(fault_stream_run(true) > 0);
    }

    #[test]
    fn control_fixture_runs_bare_and_armed() {
        assert!(control_stream_run(false) > 0);
        assert!(control_stream_run(true) > 0);
    }

    #[test]
    fn telemetry_fixture_runs_bare_and_armed_identically() {
        assert_eq!(telemetry_stream_run(false), telemetry_stream_run(true));
    }

    #[test]
    fn profiled_fixture_reports_with_coverage() {
        let report = profiled_stream_report();
        assert!(report.decide_calls > 0);
        assert!(
            report.coverage() >= 0.90,
            "phase sum covers only {:.1}% of engine wall-clock",
            100.0 * report.coverage()
        );
    }
}
