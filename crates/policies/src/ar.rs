//! AR — adaptive random (Wu et al.).
//!
//! §2.5.2: "Adaptive Greedy and Adaptive Random were two policies presented
//! \[18\] by Wu et al. ... the Adaptive Random policy uses random weights
//! and probabilities to assign kernels." Like AG it assigns (queues) each
//! kernel on arrival; unlike AG it samples the device from a probability
//! distribution that adapts to the observed queue pressure: device `g` is
//! drawn with weight `1 / (1 + N_g · τ_g^k + τ_g^d)` — heavily loaded or
//! transfer-expensive devices become unlikely, but never impossible.
//!
//! The randomness is a seeded [`SplitMix64`] stream, so runs remain
//! bit-reproducible (the simulator's determinism contract).

use apt_base::ProcId;
use apt_dfg::SplitMix64;
use apt_hetsim::{Assignment, AssignmentBuf, Policy, PolicyKind, SimView};

/// The AR policy.
#[derive(Debug, Clone)]
pub struct AdaptiveRandom {
    rng: SplitMix64,
    /// Scratch: runnable candidate devices of the head kernel (reused
    /// across decisions, so the steady-state decide is allocation-free).
    candidates: Vec<ProcId>,
    /// Scratch: the matching sampling weights.
    weights: Vec<u64>,
}

impl AdaptiveRandom {
    /// Create an AR scheduler with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        AdaptiveRandom {
            rng: SplitMix64::new(seed),
            candidates: Vec::new(),
            weights: Vec::new(),
        }
    }
}

impl Policy for AdaptiveRandom {
    fn name(&self) -> String {
        "AR".into()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Dynamic
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
        let Some(node) = view.ready.first() else {
            return;
        };
        // Integer weights in parts-per-million of the inverse wait estimate,
        // built into the reused scratch buffers.
        self.candidates.clear();
        self.weights.clear();
        for p in view.procs.iter() {
            if view.exec_time(node, p.id).is_none() {
                continue;
            }
            let wait_ms = (p.recent_avg_exec * p.ag_queue_count() as u64).as_ms_f64()
                + view.transfer_in_time(node, p.id).as_ms_f64();
            self.candidates.push(p.id);
            // 1e6 / (1 + wait): ≥ 1 so no device is ever impossible.
            self.weights
                .push(((1_000_000.0 / (1.0 + wait_ms)) as u64).max(1));
        }
        if self.candidates.is_empty() {
            return;
        }
        let pick = self.rng.choose_weighted(&self.weights);
        out.push(Assignment::new(node, self.candidates[pick]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_dfg::generator::{build_type1, generate_kernels, StreamConfig};
    use apt_dfg::{Kernel, KernelKind, LookupTable};
    use apt_hetsim::{simulate, SystemConfig};

    #[test]
    fn ar_is_reproducible_per_seed() {
        let kernels = generate_kernels(&StreamConfig::new(30, 5), LookupTable::paper());
        let dfg = build_type1(&kernels);
        let cfg = SystemConfig::paper_4gbps();
        let a = simulate(
            &dfg,
            &cfg,
            LookupTable::paper(),
            &mut AdaptiveRandom::new(9),
        )
        .unwrap();
        let b = simulate(
            &dfg,
            &cfg,
            LookupTable::paper(),
            &mut AdaptiveRandom::new(9),
        )
        .unwrap();
        assert_eq!(a, b);
        a.trace.validate(&dfg).unwrap();
        // A different seed almost surely produces a different schedule.
        let c = simulate(
            &dfg,
            &cfg,
            LookupTable::paper(),
            &mut AdaptiveRandom::new(10),
        )
        .unwrap();
        assert_ne!(a.trace.records, c.trace.records);
    }

    #[test]
    fn ar_spreads_load_across_devices() {
        // 60 identical cd kernels: a queue-pressure-aware sampler must not
        // put everything on one device.
        let kernels = vec![Kernel::new(KernelKind::Cholesky, 250_000); 60];
        let dfg = build_type1(&kernels);
        let cfg = SystemConfig::paper_no_transfers();
        let res = simulate(
            &dfg,
            &cfg,
            LookupTable::paper(),
            &mut AdaptiveRandom::new(3),
        )
        .unwrap();
        let used = res
            .trace
            .proc_stats
            .iter()
            .filter(|s| s.kernels > 0)
            .count();
        assert!(used >= 2, "AR used only {used} devices");
    }

    #[test]
    fn ar_never_starves() {
        for seed in 0..5u64 {
            let kernels = generate_kernels(&StreamConfig::new(25, seed), LookupTable::paper());
            let dfg = build_type1(&kernels);
            let res = simulate(
                &dfg,
                &SystemConfig::paper_4gbps(),
                LookupTable::paper(),
                &mut AdaptiveRandom::new(seed),
            )
            .unwrap();
            assert_eq!(res.trace.records.len(), 25);
        }
    }
}
