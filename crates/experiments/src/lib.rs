//! # apt-experiments
//!
//! The experiment harness: regenerates every table (7–16) and figure (3–12)
//! of the paper's evaluation from the reproduction pipeline. Used three
//! ways:
//!
//! * the `apt-repro` binary (`cargo run -p apt-experiments --release --
//!   <id>|all|list`) prints artifacts to stdout,
//! * the Criterion benches in `apt-bench` time the underlying sweeps,
//! * the integration tests assert the DESIGN.md acceptance criteria.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod control;
pub mod faults;
pub mod figures;
pub mod runner;
pub mod slo;
pub mod streaming;
pub mod tables;
pub mod telemetered;
pub mod topology;
pub mod traced;
pub mod workloads;

pub use telemetered::{artifact_has_metrics, artifact_metrics, MetricsExport};
pub use traced::{artifact_has_trace, artifact_trace, TraceExport};

use apt_metrics::TextTable;

/// A regenerated artifact: either a formatted table or free-form text.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// A paper table (rendered via `Display` / `to_markdown`).
    Table(TextTable),
    /// Free-form text (Figure 5's schedules, Figure 3/4 renders).
    Text(String),
}

impl std::fmt::Display for Artifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Artifact::Table(t) => write!(f, "{t}"),
            Artifact::Text(s) => write!(f, "{s}"),
        }
    }
}

/// Every artifact id, in paper order.
pub const ARTIFACT_IDS: [&str; 19] = [
    "table7", "table8", "table9", "table10", "table11", "table12", "table13", "table14", "table15",
    "table16", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig8b", "fig9", "fig10",
];

/// The remaining figure ids (λ sweeps) — kept separate purely so the array
/// above stays in the paper's listing order; `all_artifact_ids` merges them.
pub const LAMBDA_FIGURE_IDS: [&str; 2] = ["fig11", "fig12"];

/// Supplementary artifacts: Table 1 (background) and the §3.2 metric-5
/// "occurrences of better solutions" summary.
pub const SUPPLEMENTARY_IDS: [&str; 2] = ["table1", "wins"];

/// Open-stream artifacts (beyond the paper's closed-world evaluation; see
/// `streaming`, `slo`, `topology` and `faults`): the λ-saturation sweep,
/// the burst-absorption comparison, the deadline/admission frontier, the
/// multi-link topology saturation comparison, the failure-injection
/// MTTF × λ sweep, and the adaptive-control-plane sweep.
pub const STREAM_IDS: [&str; 6] = [
    "stream-saturation",
    "stream-bursts",
    "slo-sweep",
    "topology-sweep",
    "fault-sweep",
    "control-sweep",
];

/// Ablation artifacts (beyond the paper's evaluation; see `ablations`).
pub const ABLATION_IDS: [&str; 7] = [
    "ablation-alpha-fine",
    "ablation-heterogeneity",
    "ablation-bytes",
    "ablation-procs",
    "ablation-aptr",
    "ablation-energy",
    "ablation-quality",
];

/// All artifact ids.
pub fn all_artifact_ids() -> Vec<&'static str> {
    ARTIFACT_IDS
        .iter()
        .chain(LAMBDA_FIGURE_IDS.iter())
        .chain(SUPPLEMENTARY_IDS.iter())
        .chain(ABLATION_IDS.iter())
        .chain(STREAM_IDS.iter())
        .copied()
        .collect()
}

/// Regenerate one artifact by id. `None` for unknown ids.
pub fn run_artifact(id: &str) -> Option<Artifact> {
    let artifact = match id {
        "table1" => Artifact::Text(tables::table1()),
        "wins" => Artifact::Table(tables::wins()),
        "table7" => Artifact::Table(tables::table7()),
        "table8" => Artifact::Table(tables::table8()),
        "table9" => Artifact::Table(tables::table9()),
        "table10" => Artifact::Table(tables::table10()),
        "table11" => Artifact::Table(tables::table11()),
        "table12" => Artifact::Table(tables::table12()),
        "table13" => Artifact::Table(tables::table13()),
        "table14" => Artifact::Table(tables::table14()),
        "table15" => Artifact::Table(tables::table15()),
        "table16" => Artifact::Table(tables::table16()),
        "fig3" => Artifact::Text(figures::fig3()),
        "fig4" => Artifact::Text(figures::fig4()),
        "fig5" => Artifact::Text(figures::fig5()),
        "fig6" => Artifact::Table(figures::fig6()),
        "fig7" => Artifact::Table(figures::fig7()),
        "fig8" => Artifact::Table(figures::fig8()),
        "fig8b" => Artifact::Table(figures::fig8b()),
        "fig9" => Artifact::Table(figures::fig9()),
        "fig10" => Artifact::Table(figures::fig10()),
        "fig11" => Artifact::Table(figures::fig11()),
        "fig12" => Artifact::Table(figures::fig12()),
        "ablation-alpha-fine" => Artifact::Table(ablations::ablation_alpha_fine()),
        "ablation-heterogeneity" => Artifact::Table(ablations::ablation_heterogeneity()),
        "ablation-bytes" => Artifact::Table(ablations::ablation_bytes_per_element()),
        "ablation-procs" => Artifact::Table(ablations::ablation_processor_count()),
        "ablation-aptr" => Artifact::Table(ablations::ablation_apt_r()),
        "ablation-energy" => Artifact::Table(ablations::ablation_energy()),
        "ablation-quality" => Artifact::Table(ablations::ablation_quality()),
        "stream-saturation" => Artifact::Table(streaming::stream_saturation()),
        "stream-bursts" => Artifact::Table(streaming::stream_burst_comparison()),
        "slo-sweep" => Artifact::Table(slo::slo_sweep()),
        "topology-sweep" => Artifact::Table(topology::topology_sweep()),
        "fault-sweep" => Artifact::Table(faults::fault_sweep()),
        "control-sweep" => Artifact::Table(control::control_sweep()),
        _ => return None,
    };
    Some(artifact)
}

/// True when [`artifact_csv`] has a CSV form for `id` — a static check,
/// so callers can filter capabilities without triggering the sweep.
pub fn artifact_has_csv(id: &str) -> bool {
    matches!(
        id,
        "slo-sweep" | "stream-saturation" | "topology-sweep" | "fault-sweep" | "control-sweep"
    )
}

/// Long-format CSV companion of an artifact (`apt-repro <id> --csv
/// <path>`), for the open-stream scenarios whose windowed
/// [`apt_metrics::StreamSnapshot`]s make plottable time series. `None`
/// for artifacts without a CSV form (see [`artifact_has_csv`]).
pub fn artifact_csv(id: &str) -> Option<String> {
    match id {
        "slo-sweep" => Some(slo::slo_sweep_csv()),
        "stream-saturation" => Some(streaming::stream_saturation_csv()),
        "topology-sweep" => Some(topology::topology_sweep_csv()),
        "fault-sweep" => Some(faults::fault_sweep_csv()),
        "control-sweep" => Some(control::control_sweep_csv()),
        _ => None,
    }
}

/// Both renderings of a CSV-capable artifact from **one** grid run — what
/// `apt-repro <id> --csv <path>` uses so the sweep never simulates twice.
/// `None` exactly when [`artifact_has_csv`] is false.
pub fn artifact_with_csv(id: &str) -> Option<(Artifact, String)> {
    match id {
        "slo-sweep" => {
            let (table, csv) = slo::slo_sweep_with_csv();
            Some((Artifact::Table(table), csv))
        }
        "stream-saturation" => {
            let (table, csv) = streaming::stream_saturation_with_csv();
            Some((Artifact::Table(table), csv))
        }
        "topology-sweep" => {
            let (table, csv) = topology::topology_sweep_with_csv();
            Some((Artifact::Table(table), csv))
        }
        "fault-sweep" => {
            let (table, csv) = faults::fault_sweep_with_csv();
            Some((Artifact::Table(table), csv))
        }
        "control-sweep" => {
            let (table, csv) = control::control_sweep_with_csv();
            Some((Artifact::Table(table), csv))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_artifact_is_runnable() {
        // Cheap artifacts run fully; expensive sweeps are covered by their
        // own table/figure tests — here we check id dispatch only for the
        // static ones and id validity for the rest.
        for id in ["table7", "table14", "fig3", "fig4", "fig5"] {
            assert!(run_artifact(id).is_some(), "artifact {id} missing");
        }
        assert!(run_artifact("nope").is_none());
        assert_eq!(all_artifact_ids().len(), 36);
        assert!(all_artifact_ids().contains(&"slo-sweep"));
        assert!(all_artifact_ids().contains(&"topology-sweep"));
        assert!(all_artifact_ids().contains(&"fault-sweep"));
        assert!(all_artifact_ids().contains(&"control-sweep"));
        assert!(
            artifact_csv("table7").is_none(),
            "closed tables have no CSV"
        );
        // The static capability check agrees with the resolver for the
        // cheap (None) ids; the Some ids are pinned by their sweep tests.
        assert!(!artifact_has_csv("table7"));
        assert!(artifact_has_csv("slo-sweep"));
        assert!(artifact_has_csv("stream-saturation"));
        assert!(artifact_has_csv("topology-sweep"));
        assert!(artifact_has_csv("fault-sweep"));
        assert!(artifact_has_csv("control-sweep"));
    }
}
