//! Fault-injection overhead: the same Poisson APT stream with the fault
//! machinery fully off (the none-plan path must cost nothing — the
//! engine's fault runtime is never allocated) and armed with transient
//! kernel failures, processor crash/repair cycles, and retry/backoff.
//! `apt-bench` tracks the same configurations as `fault/*` rows in
//! `BENCH_engine.json`.

use apt_bench::{fault_stream_run, STREAM_BENCH_JOBS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_fault_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault/poisson_apt");
    g.throughput(Throughput::Elements(STREAM_BENCH_JOBS));
    for (name, armed) in [("clean", false), ("armed", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &armed, |b, &armed| {
            b.iter(|| black_box(fault_stream_run(armed)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fault_stream);
criterion_main!(benches);
