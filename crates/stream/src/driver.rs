//! The bounded-memory streaming driver.
//!
//! [`simulate_source`] pulls arrivals from a [`Source`] *just-in-time* —
//! each job is admitted into the [`OpenEngine`] only once the simulation
//! clock is about to reach its arrival — steps the engine event by event,
//! retires completed jobs into the [`OnlineMetrics`] aggregator (and an
//! optional per-job observer), and returns a compact [`StreamOutcome`].
//!
//! Memory is bounded by the jobs in flight plus one pending arrival: the
//! arrival vector is never materialized, retired jobs free their arena
//! slots, and metrics are O(1) per job. A million-job Poisson run completes
//! in a few hundred kilobytes of simulator state (see this crate's
//! `examples/million_jobs.rs` and the bounded-arena assertions in
//! `tests/`).
//!
//! `simulate_stream` semantics are preserved exactly: a finite source
//! replayed through this driver produces the same schedule, record for
//! record, as the closed-world engine over the materialized workload (the
//! `finite_source_matches_simulate_stream` proptest pins this byte for
//! byte).

use crate::job::JobTemplate;
use crate::source::Source;
use crate::telemetry::StreamTelemetry;
use apt_base::{BaseError, SimDuration, SimTime};
use apt_control::{ControlAction, ControlEvent, Controller};
use apt_dfg::LookupTable;
use apt_hetsim::{
    CompletedJob, FaultPlan, FaultTotals, OpenEngine, Policy, ProcStats, ReadyOrder, RetryPolicy,
    SystemConfig, TaskRecord,
};
use apt_metrics::{OnlineMetrics, StreamSnapshot};
use apt_trace::{ControlKind, CounterKind, ShedReason, TraceEvent, TraceSink};

/// Driver knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverOpts {
    /// Emit an [`StreamSnapshot`] every this much simulated time (`None`:
    /// no periodic snapshots; the final aggregates are always produced).
    pub snapshot_interval: Option<SimDuration>,
    /// Stop admitting new jobs once this many are in flight and mark the
    /// outcome [`StreamOutcome::saturated`]. `None`: admit everything.
    /// This is the overload guard for λ-sweep experiments — a saturated
    /// system's backlog would otherwise grow without bound. By default the
    /// guard is a *latch*: once tripped, admission stops permanently and
    /// the run drains; set [`DriverOpts::shed_when_full`] to shed only the
    /// jobs that arrive while the system is actually full.
    pub max_in_flight_jobs: Option<usize>,
    /// Soften the `max_in_flight_jobs` guard from a permanent latch into
    /// per-arrival shedding: a job arriving while the system is at the cap
    /// is dropped (counted in [`StreamOutcome::jobs_shed`]), and admission
    /// resumes as soon as the backlog drains below the cap. The latch
    /// (default, `false`) preserves the historical sweep semantics, where
    /// one transient burst ends admission for the rest of the stream.
    pub shed_when_full: bool,
    /// Iteration order of the engine's ready set: FCFS admission order
    /// (the default, byte-identical to `simulate_stream`) or
    /// earliest-deadline-first.
    pub ready_order: ReadyOrder,
    /// Fault-injection plan armed over the run. The default,
    /// [`FaultPlan::none()`], leaves the driver on the fault-free path —
    /// byte-identical outcomes, zero fault counters.
    pub faults: FaultPlan,
    /// Retry policy for transiently failed kernels (only consulted when
    /// [`DriverOpts::faults`] is armed).
    pub retry: RetryPolicy,
}

/// Everything an admission decision may inspect: the job about to enter
/// the system and the live backlog it would join.
#[derive(Debug, Clone, Copy)]
pub struct AdmitRequest<'a> {
    /// The [`apt_hetsim::JobId`] the job receives **if admitted** (from
    /// [`OpenEngine::next_job_id`]) — the id its [`CompletedJob`] will
    /// carry, so stateful gates key per-job reservations on it.
    pub job_id: apt_hetsim::JobId,
    /// The job's arrival instant.
    pub arrival: SimTime,
    /// Its absolute deadline (`arrival + relative deadline`), if tagged.
    pub deadline: Option<SimTime>,
    /// The job itself (kernels, edges, relative deadline).
    pub job: &'a JobTemplate,
    /// The engine clock at decision time (`≤ arrival` — jobs are admitted
    /// just-in-time).
    pub now: SimTime,
    /// Jobs currently in flight.
    pub in_flight_jobs: usize,
    /// Kernels currently in flight.
    pub in_flight_kernels: usize,
    /// Processors currently up (not crashed). Equal to the machine size on
    /// fault-free runs; capacity-budget gates scale to this so admission
    /// tightens while the machine is degraded.
    pub live_procs: usize,
}

/// The admission hook of [`simulate_source_gated`]: decide per job whether
/// it enters the system, and observe completions to release whatever
/// budget the decision reserved. `apt-slo`'s `AdmissionPolicy` gates plug
/// in through this. An accepted request's job enters the engine under
/// exactly [`AdmitRequest::job_id`].
pub trait AdmissionGate {
    /// True to admit the job, false to shed it (the job never enters the
    /// system and is counted in [`StreamOutcome::jobs_shed`]).
    fn admit(&mut self, req: &AdmitRequest<'_>) -> bool;

    /// Called for every completed job, in completion order, before the
    /// driver's own observer.
    fn on_complete(&mut self, _job: &CompletedJob) {}

    /// Set the gate's utilization bound ρ at runtime — how
    /// `apt-control`'s AIMD admission loop reaches the gate. The gate
    /// clamps to its own valid range; the default (`false`) means "no
    /// such knob" and the driver records the action unapplied.
    fn set_utilization_bound(&mut self, _bound: f64) -> bool {
        false
    }

    /// The gate's current utilization bound, when it has one.
    fn utilization_bound(&self) -> Option<f64> {
        None
    }
}

/// The open gate: admit everything (plain [`simulate_source`] behaviour).
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitAll;

impl AdmissionGate for AdmitAll {
    fn admit(&mut self, _req: &AdmitRequest<'_>) -> bool {
        true
    }
}

/// Everything a streaming run reports. All aggregates are online — no
/// per-job storage survives the run (jobs stream through the optional
/// observer instead).
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Policy display name.
    pub policy: String,
    /// Jobs the driver admitted into the system.
    pub jobs_admitted: u64,
    /// Jobs that ran to completion (equals `jobs_admitted` on fault-free
    /// success).
    pub jobs_completed: u64,
    /// Admitted jobs shed by the failure model after exhausting their
    /// retry budget. Zero on fault-free runs.
    pub jobs_failed: u64,
    /// Kernels executed to completion (including those of failed jobs that
    /// finished before the job was shed).
    pub kernels_completed: u64,
    /// The instant the last event fired (the open-system "makespan").
    pub end: SimTime,
    /// Jobs leaving the system per simulated second — completed *and*
    /// failed. Equals [`StreamOutcome::goodput_jps`] on fault-free runs.
    pub throughput_jps: f64,
    /// Successfully completed jobs per simulated second — throughput minus
    /// the failure-model sheds.
    pub goodput_jps: f64,
    /// Mean end-to-end job latency (arrival → last kernel finish), ms.
    pub mean_latency_ms: f64,
    /// Streaming quantile estimates of job latency, ms.
    pub latency_p50_ms: f64,
    /// 90th percentile job latency, ms.
    pub latency_p90_ms: f64,
    /// 99th percentile job latency, ms.
    pub latency_p99_ms: f64,
    /// Total λ delay accumulated by all kernels.
    pub lambda_total: SimDuration,
    /// Most jobs ever simultaneously in flight.
    pub peak_in_flight_jobs: usize,
    /// Most kernels ever simultaneously in flight.
    pub peak_in_flight_kernels: usize,
    /// Final slot-arena size — the memory high-water mark, bounded by the
    /// in-flight peak rather than the stream length.
    pub arena_slots: usize,
    /// Cumulative per-processor aggregates.
    pub proc_stats: Vec<ProcStats>,
    /// Periodic snapshots (empty unless `snapshot_interval` was set).
    pub snapshots: Vec<StreamSnapshot>,
    /// True when the `max_in_flight_jobs` guard tripped at least once:
    /// with the default latch, admission stopped early; with
    /// [`DriverOpts::shed_when_full`], at least one arrival was shed while
    /// the system was full.
    pub saturated: bool,
    /// Jobs that never entered the system: rejected by the admission gate
    /// or shed by the `max_in_flight_jobs` guard in shed mode.
    pub jobs_shed: u64,
    /// Completed jobs that carried a deadline (the miss-rate denominator).
    pub deadline_jobs: u64,
    /// Deadline-carrying jobs that finished after their deadline.
    pub deadline_misses: u64,
    /// Median tardiness over deadline-carrying jobs, ms (on-time jobs
    /// count as zero tardiness).
    pub tardiness_p50_ms: f64,
    /// 99th-percentile tardiness, ms.
    pub tardiness_p99_ms: f64,
    /// Mean tardiness over deadline-carrying jobs, ms.
    pub mean_tardiness_ms: f64,
    /// Fault-injection counters for the run (all zeros when
    /// [`DriverOpts::faults`] was [`FaultPlan::none()`]).
    pub faults: FaultTotals,
    /// Every action a controller emitted, in emission order, with whether
    /// the run had the knob. Empty on uncontrolled runs *and* under an
    /// armed controller that never acted — an inert-armed run's outcome
    /// is byte-identical to a controller-off run (pinned in this crate's
    /// equivalence suite).
    pub control_log: Vec<ControlEvent>,
}

impl StreamOutcome {
    /// Per-processor busy+transfer fraction of the whole run. A run that
    /// never advanced the clock (`end == 0`) reports zero utilization
    /// rather than dividing by a degenerate denominator.
    pub fn utilization(&self) -> Vec<f64> {
        if self.end.as_ns() == 0 {
            return vec![0.0; self.proc_stats.len()];
        }
        let total = self.end.as_ns() as f64;
        self.proc_stats
            .iter()
            .map(|s| (s.busy + s.transfer).as_ns() as f64 / total)
            .collect()
    }

    /// Fraction of deadline-carrying jobs that missed their deadline
    /// (0 when the stream carried none).
    pub fn miss_rate(&self) -> f64 {
        if self.deadline_jobs == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.deadline_jobs as f64
        }
    }

    /// Fraction of *offered* jobs the admission gate shed.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.jobs_admitted + self.jobs_shed;
        if offered == 0 {
            0.0
        } else {
            self.jobs_shed as f64 / offered as f64
        }
    }

    /// Machine availability over the run: the fraction of aggregate
    /// processor-time that was up, `1 − down/(procs × end)`. Exactly 1 on
    /// fault-free runs (and degenerate zero-duration runs).
    pub fn availability(&self) -> f64 {
        let span = self
            .end
            .as_ns()
            .saturating_mul(self.proc_stats.len() as u64);
        if span == 0 {
            1.0
        } else {
            1.0 - (self.faults.down_ns as f64 / span as f64).min(1.0)
        }
    }

    /// Wasted-work fraction: of all processor occupancy (busy + transfer,
    /// which includes the partial occupancy of killed attempts), the share
    /// thrown away by transient failures and crashes. Zero on fault-free
    /// runs.
    pub fn wasted_work_frac(&self) -> f64 {
        let occupied: u64 = self
            .proc_stats
            .iter()
            .map(|s| (s.busy + s.transfer).as_ns())
            .sum();
        if occupied == 0 {
            0.0
        } else {
            self.faults.wasted_ns as f64 / occupied as f64
        }
    }
}

/// Run `policy` over the arrivals of `source` on `config`'s machine. See
/// the module docs. Fails on starvation (the policy stops scheduling while
/// jobs are in flight), on a source yielding decreasing arrival times, or
/// on a static policy.
pub fn simulate_source(
    source: &mut dyn Source,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
    opts: &DriverOpts,
) -> Result<StreamOutcome, BaseError> {
    simulate_source_observed(source, config, lookup, policy, opts, |_| {})
}

/// [`simulate_source`] with a per-job observer: `observe` is called once
/// for every [`CompletedJob`], in completion order, before its storage is
/// recycled — the hook tests and exporters use to stream records out
/// without the driver retaining them.
pub fn simulate_source_observed(
    source: &mut dyn Source,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
    opts: &DriverOpts,
    observe: impl FnMut(&CompletedJob),
) -> Result<StreamOutcome, BaseError> {
    simulate_source_gated(source, config, lookup, policy, opts, &mut AdmitAll, observe)
}

/// [`simulate_source_observed`] with an [`AdmissionGate`] in the admit
/// path: each due job is offered to `gate` *before* entering the engine;
/// rejected jobs are shed (counted, never admitted) and the gate hears
/// about every completion so it can release reserved budget. This is how
/// `apt-slo`'s admission policies bound overload instead of letting the
/// backlog grow without bound.
pub fn simulate_source_gated(
    source: &mut dyn Source,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
    opts: &DriverOpts,
    gate: &mut dyn AdmissionGate,
    observe: impl FnMut(&CompletedJob),
) -> Result<StreamOutcome, BaseError> {
    simulate_source_inner(source, config, lookup, policy, opts, gate, None, observe)
}

/// [`simulate_source_gated`] with an `apt-control` [`Controller`] closing
/// the loop: at every metrics-window close the controller observes the
/// window's [`StreamSnapshot`] and may emit bounded [`ControlAction`]s,
/// which the driver applies *between* events — α retunes via
/// [`Policy::set_alpha`], the admission bound via
/// [`AdmissionGate::set_utilization_bound`], roster switches via
/// [`Policy::switch_to`] — and records in
/// [`StreamOutcome::control_log`] (including rejected actions, with
/// `applied: false`). Controllers are deterministic functions of the
/// window sequence, so controlled runs replay bit-for-bit under a seed.
///
/// Windows are the controller's clock, so a snapshot interval is
/// mandatory here; the final *partial* window flushed at stream end is
/// not delivered (nothing is left to control).
#[allow(clippy::too_many_arguments)]
pub fn simulate_source_controlled(
    source: &mut dyn Source,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
    opts: &DriverOpts,
    gate: &mut dyn AdmissionGate,
    controller: &mut dyn Controller,
    observe: impl FnMut(&CompletedJob),
) -> Result<StreamOutcome, BaseError> {
    if opts.snapshot_interval.is_none() {
        return Err(BaseError::InvalidSystem {
            reason: "a controlled run needs DriverOpts::snapshot_interval — metrics windows \
                     are the controller's clock"
                .into(),
        });
    }
    simulate_source_inner(
        source,
        config,
        lookup,
        policy,
        opts,
        gate,
        Some(controller),
        observe,
    )
}

/// [`simulate_source_controlled`] (with the controller optional) under an
/// armed [`TraceSink`]: the engine records every admission, dispatch,
/// transfer, completion, fault, and APT decision record; the driver adds
/// what only it can see — gate/capacity sheds, job retirements, per-window
/// counter samples (α, ρ, in-flight jobs, queue depth, window miss rate),
/// and control actions. Returns the outcome *and* the sink back, loaded
/// with the run's events, ready for `apt-trace`'s Chrome exporter or
/// wait-decomposition summary.
///
/// Tracing is purely observational: a traced run's [`StreamOutcome`] is
/// byte-identical to the untraced equivalent (pinned in `tests/`).
#[allow(clippy::too_many_arguments)]
pub fn simulate_source_traced(
    source: &mut dyn Source,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
    opts: &DriverOpts,
    gate: &mut dyn AdmissionGate,
    controller: Option<&mut dyn Controller>,
    sink: Box<dyn TraceSink>,
    observe: impl FnMut(&CompletedJob),
) -> Result<(StreamOutcome, Box<dyn TraceSink>), BaseError> {
    if controller.is_some() && opts.snapshot_interval.is_none() {
        return Err(BaseError::InvalidSystem {
            reason: "a controlled run needs DriverOpts::snapshot_interval — metrics windows \
                     are the controller's clock"
                .into(),
        });
    }
    let mut sink = Some(sink);
    let outcome = simulate_source_inner_traced(
        source, config, lookup, policy, opts, gate, controller, &mut sink, None, observe,
    )?;
    Ok((
        outcome,
        // apt-lint: allow(hot-path-panic, the traced driver always hands the armed sink back at
        // stream end)
        sink.expect("the driver hands the armed sink back at stream end"),
    ))
}

/// [`simulate_source_traced`] (with the sink optional) under an armed
/// [`StreamTelemetry`]: the driver publishes admissions, sheds,
/// completions, latency/tardiness histograms and per-window operating
/// points (live α/ρ, backlog, miss rate, availability) into the
/// telemetry registry, emits one JSONL line per closed metrics window,
/// ticks the `--progress` heartbeat when one is armed, and — when the
/// `self-profile` feature is compiled in and
/// [`StreamTelemetry::with_engine_profile`] was requested — arms the
/// engine's phase profiler and freezes its report at stream end. When a
/// trace sink rides along, its `recorded`/`dropped` totals surface as
/// `trace_events_total` / `trace_events_dropped_total`.
///
/// Telemetry is purely observational: a telemetered run's
/// [`StreamOutcome`] is byte-identical to the bare equivalent (pinned
/// in `tests/telemetered_stream.rs`).
#[allow(clippy::too_many_arguments)]
pub fn simulate_source_telemetered(
    source: &mut dyn Source,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
    opts: &DriverOpts,
    gate: &mut dyn AdmissionGate,
    controller: Option<&mut dyn Controller>,
    sink: Option<Box<dyn TraceSink>>,
    tel: &mut StreamTelemetry,
    observe: impl FnMut(&CompletedJob),
) -> Result<(StreamOutcome, Option<Box<dyn TraceSink>>), BaseError> {
    if controller.is_some() && opts.snapshot_interval.is_none() {
        return Err(BaseError::InvalidSystem {
            reason: "a controlled run needs DriverOpts::snapshot_interval — metrics windows \
                     are the controller's clock"
                .into(),
        });
    }
    let mut sink = sink;
    let outcome = simulate_source_inner_traced(
        source,
        config,
        lookup,
        policy,
        opts,
        gate,
        controller,
        &mut sink,
        Some(tel),
        observe,
    )?;
    Ok((outcome, sink))
}

#[allow(clippy::too_many_arguments)]
fn simulate_source_inner(
    source: &mut dyn Source,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
    opts: &DriverOpts,
    gate: &mut dyn AdmissionGate,
    controller: Option<&mut dyn Controller>,
    observe: impl FnMut(&CompletedJob),
) -> Result<StreamOutcome, BaseError> {
    let mut no_sink = None;
    simulate_source_inner_traced(
        source,
        config,
        lookup,
        policy,
        opts,
        gate,
        controller,
        &mut no_sink,
        None,
        observe,
    )
}

#[allow(clippy::too_many_arguments)]
fn simulate_source_inner_traced(
    source: &mut dyn Source,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
    opts: &DriverOpts,
    gate: &mut dyn AdmissionGate,
    mut controller: Option<&mut dyn Controller>,
    sink: &mut Option<Box<dyn TraceSink>>,
    mut tel: Option<&mut StreamTelemetry>,
    mut observe: impl FnMut(&CompletedJob),
) -> Result<StreamOutcome, BaseError> {
    let mut engine = OpenEngine::with_order(config, lookup, opts.ready_order)?;
    engine.prepare(policy)?;
    let faults_armed = !opts.faults.is_none();
    if faults_armed {
        engine.arm_faults(opts.faults, opts.retry);
    }
    if let Some(s) = sink.take() {
        engine.arm_trace(s);
    }
    // Total engine wall-clock, the denominator of the phase report's
    // coverage fraction.
    #[cfg(feature = "self-profile")]
    // apt-lint: allow(wall-clock, feature-gated self-profile denominator for the phase report's
    // coverage fraction; never reaches simulation state)
    let run_started = std::time::Instant::now();
    #[cfg(feature = "self-profile")]
    if tel
        .as_deref()
        .is_some_and(StreamTelemetry::wants_engine_profile)
    {
        engine.arm_profiler(Box::new(apt_telemetry::PhaseProfiler::new()));
    }
    // The aggregator always runs; without a snapshot interval its window is
    // pushed past any reachable instant so only the running estimators are
    // exercised.
    let far = SimDuration::from_ns(u64::MAX >> 1);
    let mut metrics = OnlineMetrics::new(opts.snapshot_interval.unwrap_or(far), config.len());
    let snapshots_enabled = opts.snapshot_interval.is_some();

    // Hoisted heartbeat gate: a telemetered run without `--progress`
    // pays one local bool per iteration, not a method call.
    let heartbeat_armed = tel.as_deref().is_some_and(StreamTelemetry::heartbeat_armed);
    let mut pending = source.next_job();
    let mut last_arrival = SimTime::ZERO;
    let mut admitted = 0u64;
    let mut shed = 0u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut kernels = 0u64;
    let mut saturated = false;
    let mut done: Vec<CompletedJob> = Vec::new();
    let mut control_log: Vec<ControlEvent> = Vec::new();
    let mut actions: Vec<ControlAction> = Vec::new();

    // Admit every due job — at most one job plus its same-instant
    // companions sit outside the engine at any moment. Called *after* the
    // fixpoint, so the event queue reflects everything the policy
    // scheduled and "due" genuinely means "nothing can happen before this
    // arrival" (an empty queue then means the engine is quiescent, however
    // far away the arrival is). The overload latch therefore trips only
    // when a job wants in at an instant where the system is actually full
    // — a pending arrival hours past a drainable burst never latches.
    // `seed` phases run before a fixpoint, when direct (at ≤ now) arrivals
    // push no events — only the current-instant cohort is due there.
    let mut admit_due = |engine: &mut OpenEngine<'_>,
                         pending: &mut Option<(SimTime, crate::job::JobTemplate)>,
                         gate: &mut dyn AdmissionGate,
                         saturated: &mut bool,
                         last_arrival: &mut SimTime,
                         admitted: &mut u64,
                         shed: &mut u64,
                         metrics: &mut OnlineMetrics,
                         tel: &mut Option<&mut StreamTelemetry>,
                         seed: bool|
     -> Result<(), BaseError> {
        // The latch (default) stops admission permanently once tripped; in
        // shed mode `saturated` only records that the guard ever fired.
        while !*saturated || opts.shed_when_full {
            let Some((at, _)) = pending else { break };
            if *at < *last_arrival {
                return Err(BaseError::DisorderedArrival {
                    at_ns: at.as_ns(),
                    prev_ns: last_arrival.as_ns(),
                });
            }
            let due = if seed {
                *at <= engine.now()
            } else {
                match engine.next_event_time() {
                    None => true,
                    Some(next) => *at <= next,
                }
            };
            if !due {
                break;
            }
            if opts
                .max_in_flight_jobs
                .is_some_and(|cap| engine.in_flight_jobs() >= cap)
            {
                *saturated = true;
                if !opts.shed_when_full {
                    break;
                }
                // Shed exactly this arrival; the next one is re-examined
                // against the (possibly drained) backlog.
                // apt-lint: allow(hot-path-panic, the enclosing loop only runs while pending is
                // Some)
                let (at, _) = pending.take().expect("checked above");
                *last_arrival = at;
                *shed += 1;
                metrics.observe_job_shed();
                if let Some(t) = tel.as_deref_mut() {
                    t.on_shed();
                }
                if let Some(t) = engine.tracer_mut() {
                    t.record(TraceEvent::JobShed {
                        at,
                        reason: ShedReason::CapacityFull,
                    });
                }
                *pending = source.next_job();
                continue;
            }
            // apt-lint: allow(hot-path-panic, the enclosing loop only runs while pending is
            // Some)
            let (at, job) = pending.take().expect("checked above");
            let deadline = job.deadline().map(|d| at + d);
            let accept = gate.admit(&AdmitRequest {
                job_id: engine.next_job_id(),
                arrival: at,
                deadline,
                job: &job,
                now: engine.now(),
                in_flight_jobs: engine.in_flight_jobs(),
                in_flight_kernels: engine.in_flight_kernels(),
                live_procs: engine.live_procs(),
            });
            // Shed or admitted, the arrival is consumed either way; the
            // arrival clock keeps its monotonicity check.
            *last_arrival = at;
            if accept {
                engine.admit_with_deadline(job.kernels(), job.edges(), at, deadline)?;
                *admitted += 1;
                metrics.observe_job_admitted();
                metrics.observe_depth(engine.now(), engine.in_flight_jobs());
                if let Some(t) = tel.as_deref_mut() {
                    t.on_admit();
                }
            } else {
                *shed += 1;
                metrics.observe_job_shed();
                if let Some(t) = tel.as_deref_mut() {
                    t.on_shed();
                }
                if let Some(t) = engine.tracer_mut() {
                    t.record(TraceEvent::JobShed {
                        at,
                        reason: ShedReason::Gate,
                    });
                }
            }
            *pending = source.next_job();
        }
        Ok(())
    };

    // Seed the engine with the t = 0 cohort before the first fixpoint.
    #[cfg(feature = "self-profile")]
    engine.prof_enter(apt_telemetry::Phase::Admit);
    admit_due(
        &mut engine,
        &mut pending,
        gate,
        &mut saturated,
        &mut last_arrival,
        &mut admitted,
        &mut shed,
        &mut metrics,
        &mut tel,
        true,
    )?;

    loop {
        engine.decide(policy)?;
        #[cfg(feature = "self-profile")]
        engine.prof_enter(apt_telemetry::Phase::Admit);
        admit_due(
            &mut engine,
            &mut pending,
            gate,
            &mut saturated,
            &mut last_arrival,
            &mut admitted,
            &mut shed,
            &mut metrics,
            &mut tel,
            false,
        )?;
        let advanced = engine.advance()?;

        #[cfg(feature = "self-profile")]
        engine.prof_enter(apt_telemetry::Phase::Account);
        engine.drain_completed(&mut done);
        if !done.is_empty() {
            for job in &done {
                kernels += job.records.len() as u64;
                if job.failed {
                    // A shed job has no meaningful completion: it counts
                    // toward throughput (it left the system) but never
                    // toward goodput, latency, or the SLO estimators. The
                    // gate still hears it, releasing its reservation.
                    failed += 1;
                    metrics.observe_job_failed();
                    if let Some(t) = tel.as_deref_mut() {
                        t.on_job_failed(job);
                    }
                } else {
                    completed += 1;
                    let finish = job.finish();
                    let latency = finish.saturating_since(job.arrival);
                    let tardiness = job.deadline.map(|d| finish.saturating_since(d));
                    let lambda: SimDuration = job.records.iter().map(TaskRecord::lambda).sum();
                    metrics.observe_job(latency, lambda);
                    if let Some(tardiness) = tardiness {
                        metrics.observe_tardiness(tardiness);
                    }
                    if let Some(t) = tel.as_deref_mut() {
                        t.on_job_done(job, latency, tardiness);
                    }
                }
                gate.on_complete(job);
                observe(job);
            }
            if engine.tracer_mut().is_some() {
                let now = engine.now();
                for job in &done {
                    let ev = TraceEvent::JobRetired {
                        job: job.job.0,
                        at: now,
                        failed: job.failed,
                        missed_deadline: job.missed_deadline(),
                    };
                    // apt-lint: allow(hot-path-panic, tracer presence is checked by the
                    // enclosing if)
                    engine.tracer_mut().expect("checked above").record(ev);
                }
            }
            metrics.observe_depth(engine.now(), engine.in_flight_jobs());
        }
        if heartbeat_armed {
            if let Some(t) = tel.as_deref_mut() {
                // The heartbeat first checks cheaply whether it is even
                // due — the common case is one branch per loop iteration.
                if t.progress_due() {
                    t.emit_progress(
                        completed + failed,
                        engine.in_flight_jobs(),
                        metrics.miss_rate(),
                        policy.alpha(),
                        gate.utilization_bound(),
                        engine.now().as_secs_f64(),
                    );
                }
            }
        }
        if snapshots_enabled && engine.now() >= metrics.window_end() {
            #[cfg(feature = "self-profile")]
            engine.prof_enter(apt_telemetry::Phase::Window);
            if faults_armed {
                let ft = engine.fault_totals();
                metrics.note_fault_counters(
                    ft.kernel_failures,
                    ft.retries,
                    ft.wasted_ns,
                    ft.down_ns,
                );
            }
            let before = metrics.snapshots().len();
            metrics.maybe_snapshot(engine.now(), &engine.proc_stats());
            // Sample the operating point at every window close: live α and
            // ρ, the backlog, and the window's miss rate — shared by the
            // Chrome-timeline counter tracks and the telemetry registry.
            let alpha = policy.alpha();
            let rho = gate.utilization_bound();
            let in_flight = engine.in_flight_jobs();
            let queued = engine.in_flight_kernels();
            if let Some(t) = tel.as_deref_mut() {
                for idx in before..metrics.snapshots().len() {
                    t.on_window(&metrics.snapshots()[idx], alpha, rho, in_flight, queued);
                }
            }
            if engine.tracer_mut().is_some() {
                let in_flight = in_flight as f64;
                let queued = queued as f64;
                for idx in before..metrics.snapshots().len() {
                    let (at, miss) = {
                        let snap = &metrics.snapshots()[idx];
                        (snap.end, snap.miss_rate())
                    };
                    // apt-lint: allow(hot-path-panic, tracer presence is checked by the
                    // enclosing if)
                    let t = engine.tracer_mut().expect("checked above");
                    t.record(TraceEvent::Counter {
                        at,
                        kind: CounterKind::InFlightJobs,
                        value: in_flight,
                    });
                    t.record(TraceEvent::Counter {
                        at,
                        kind: CounterKind::QueueDepth,
                        value: queued,
                    });
                    if let Some(a) = alpha {
                        t.record(TraceEvent::Counter {
                            at,
                            kind: CounterKind::Alpha,
                            value: a,
                        });
                    }
                    if let Some(r) = rho {
                        t.record(TraceEvent::Counter {
                            at,
                            kind: CounterKind::Rho,
                            value: r,
                        });
                    }
                    t.record(TraceEvent::Counter {
                        at,
                        kind: CounterKind::WindowMissRate,
                        value: miss,
                    });
                }
            }
            // Deliver each newly closed window to the controller, in
            // emission order, applying its actions before the next event —
            // every window's statistics therefore describe exactly one
            // operating point.
            if let Some(ctrl) = controller.as_mut() {
                for idx in before..metrics.snapshots().len() {
                    let snap = metrics.snapshots()[idx].clone();
                    actions.clear();
                    ctrl.on_window(&snap, &mut actions);
                    for action in actions.drain(..) {
                        let applied = match action {
                            ControlAction::SetAlpha(alpha) => policy.set_alpha(alpha),
                            ControlAction::SetAdmissionBound(bound) => {
                                gate.set_utilization_bound(bound)
                            }
                            ControlAction::SwitchPolicy(member) => policy.switch_to(member),
                        };
                        if let Some(t) = engine.tracer_mut() {
                            let (kind, value) = match action {
                                ControlAction::SetAlpha(a) => (ControlKind::Alpha, a),
                                ControlAction::SetAdmissionBound(b) => {
                                    (ControlKind::AdmissionBound, b)
                                }
                                ControlAction::SwitchPolicy(m) => {
                                    (ControlKind::SwitchPolicy, m as f64)
                                }
                            };
                            t.record(TraceEvent::Control {
                                at: snap.end,
                                kind,
                                value,
                                applied,
                            });
                        }
                        control_log.push(ControlEvent {
                            at: snap.end,
                            action,
                            applied,
                        });
                    }
                }
            }
        }
        // With a fault plan armed the calendar always holds the perpetual
        // crash/repair cycle, so `advance` never runs dry — stop once the
        // source is exhausted (or latched shut) and the system has drained.
        if faults_armed
            && engine.in_flight_jobs() == 0
            && (pending.is_none() || (saturated && !opts.shed_when_full))
        {
            break;
        }

        if advanced.is_none() {
            // No event fired and the queue is empty. With work still in
            // flight that means the fixpoint just declined to schedule
            // anything — the policy starved it (future arrivals cannot
            // unblock kernels whose dependencies are all internal).
            if engine.in_flight_kernels() > 0 {
                return Err(BaseError::Starvation {
                    unscheduled: engine.in_flight_kernels(),
                });
            }
            if pending.is_none() || (saturated && !opts.shed_when_full) {
                break;
            }
            // Idle engine with a pending arrival: the admission loop admits
            // it on the next pass (it is now unconditionally due).
        }
    }

    let end = engine.now();
    // Hand the sink back to the traced entry point, loaded with the run.
    *sink = engine.take_trace();
    // Freeze the phase report before the tail flush so its wall-clock
    // denominator covers exactly the profiled span.
    #[cfg(feature = "self-profile")]
    if let Some(p) = engine.take_profiler() {
        if let Some(t) = tel.as_deref_mut() {
            t.set_phase_report(p.report(&policy.name(), run_started.elapsed()));
        }
    }
    // Flush the final *partial* window so window-driven consumers (CSV
    // exporters, controller post-mortems) see the tail of the run; a run
    // ending exactly on a boundary flushes nothing extra.
    if snapshots_enabled {
        if faults_armed {
            let ft = engine.fault_totals();
            metrics.note_fault_counters(ft.kernel_failures, ft.retries, ft.wasted_ns, ft.down_ns);
        }
        let before_flush = metrics.snapshots().len();
        metrics.flush_partial(end, &engine.proc_stats());
        if let Some(t) = tel.as_deref_mut() {
            let alpha = policy.alpha();
            let rho = gate.utilization_bound();
            let in_flight = engine.in_flight_jobs();
            let queued = engine.in_flight_kernels();
            for idx in before_flush..metrics.snapshots().len() {
                t.on_window(&metrics.snapshots()[idx], alpha, rho, in_flight, queued);
            }
        }
    }
    if let Some(t) = tel {
        if let Some(s) = sink.as_deref() {
            t.on_trace_sink(s.recorded(), s.dropped());
        }
        t.on_end(
            end.as_secs_f64(),
            completed + failed,
            engine.in_flight_jobs(),
            metrics.miss_rate(),
        );
    }
    let (p50, p90, p99) = metrics.latency_quantiles_ms();
    let (tardiness_p50_ms, tardiness_p99_ms) = metrics.tardiness_quantiles_ms();
    Ok(StreamOutcome {
        policy: policy.name(),
        jobs_admitted: admitted,
        jobs_completed: completed,
        jobs_failed: failed,
        kernels_completed: kernels,
        end,
        // A stream completing entirely at t = 0 has no meaningful rate; the
        // old `max(f64::MIN_POSITIVE)` clamp reported ~1e308 jobs/s for it.
        throughput_jps: if end.as_ns() == 0 {
            0.0
        } else {
            (completed + failed) as f64 / end.as_secs_f64()
        },
        goodput_jps: if end.as_ns() == 0 {
            0.0
        } else {
            completed as f64 / end.as_secs_f64()
        },
        mean_latency_ms: metrics.mean_latency_ms(),
        latency_p50_ms: p50,
        latency_p90_ms: p90,
        latency_p99_ms: p99,
        lambda_total: metrics.lambda_total(),
        peak_in_flight_jobs: engine.peak_in_flight_jobs(),
        peak_in_flight_kernels: engine.peak_in_flight_kernels(),
        arena_slots: engine.arena_slots(),
        proc_stats: engine.proc_stats(),
        snapshots: metrics.snapshots().to_vec(),
        saturated,
        jobs_shed: shed,
        deadline_jobs: metrics.deadline_jobs(),
        deadline_misses: metrics.deadline_misses(),
        tardiness_p50_ms,
        tardiness_p99_ms,
        mean_tardiness_ms: metrics.mean_tardiness_ms(),
        faults: engine.fault_totals(),
        control_log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobFamily;
    use crate::source::PoissonSource;
    use apt_base::ProcId;
    use apt_dfg::NodeId;
    use apt_hetsim::{Assignment, AssignmentBuf, PolicyKind, SimView};

    /// Place each ready kernel on the first idle processor able to run it.
    struct FirstFit;

    impl Policy for FirstFit {
        fn name(&self) -> String {
            "FirstFit".into()
        }
        fn kind(&self) -> PolicyKind {
            PolicyKind::Dynamic
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
            for node in view.ready.iter() {
                for p in view.idle_procs() {
                    if view.exec_time(node, p.id).is_some() {
                        out.push(Assignment::new(node, p.id));
                        return;
                    }
                }
            }
        }
    }

    /// Never schedules anything.
    struct Lazy;
    impl Policy for Lazy {
        fn name(&self) -> String {
            "Lazy".into()
        }
        fn kind(&self) -> PolicyKind {
            PolicyKind::Dynamic
        }
        fn decide(&mut self, _view: &SimView<'_>, _out: &mut AssignmentBuf) {}
    }

    fn paper() -> (&'static SystemConfig, &'static LookupTable) {
        use std::sync::OnceLock;
        static CFG: OnceLock<SystemConfig> = OnceLock::new();
        (
            CFG.get_or_init(SystemConfig::paper_4gbps),
            LookupTable::paper(),
        )
    }

    #[test]
    fn poisson_stream_runs_to_completion_with_bounded_arena() {
        let (config, lookup) = paper();
        // 0.2 jobs/s (5 s mean gap) under MET: well below saturation for
        // uniformly drawn kernels, so the backlog — and with it the arena —
        // stays small while 400 jobs stream through.
        let mut source = PoissonSource::new(lookup, 0.2, 400, JobFamily::Diamond { width: 2 }, 17);
        let outcome = simulate_source(
            &mut source,
            config,
            lookup,
            &mut apt_policies::Met::new(),
            &DriverOpts {
                snapshot_interval: Some(SimDuration::from_ms(100_000)),
                max_in_flight_jobs: None,
                ..DriverOpts::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.jobs_admitted, 400);
        assert_eq!(outcome.jobs_completed, 400);
        assert_eq!(outcome.kernels_completed, 400 * 4);
        assert!(!outcome.saturated);
        assert!(outcome.end > SimTime::ZERO);
        assert!(outcome.throughput_jps > 0.0);
        assert!(outcome.mean_latency_ms > 0.0);
        assert!(outcome.latency_p99_ms >= outcome.latency_p50_ms);
        // Bounded memory: the arena tracks the in-flight peak, not 1600.
        assert_eq!(outcome.arena_slots, outcome.peak_in_flight_kernels);
        assert!(
            outcome.arena_slots < 400,
            "arena {} not bounded by in-flight jobs",
            outcome.arena_slots
        );
        assert!(!outcome.snapshots.is_empty());
        let last = outcome.snapshots.last().unwrap();
        assert!(last.total_jobs <= 400);
        // All work is accounted somewhere.
        assert_eq!(
            outcome.proc_stats.iter().map(|s| s.kernels).sum::<usize>(),
            1600
        );
        let u = outcome.utilization();
        assert!(u.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn observer_sees_every_job_in_completion_order() {
        let (config, lookup) = paper();
        let mut source = PoissonSource::new(lookup, 5.0, 60, JobFamily::Chain { len: 2 }, 5);
        let mut seen = Vec::new();
        let outcome = simulate_source_observed(
            &mut source,
            config,
            lookup,
            &mut FirstFit,
            &DriverOpts::default(),
            |job| seen.push((job.job, job.finish())),
        )
        .unwrap();
        assert_eq!(seen.len(), 60);
        assert_eq!(outcome.jobs_completed, 60);
        assert!(seen.windows(2).all(|w| w[0].1 <= w[1].1));
        // Each job's records were renumbered to local ids.
        assert_eq!(outcome.kernels_completed, 120);
        let _ = ProcId::new(0);
        let _ = NodeId::new(0);
    }

    #[test]
    fn overload_guard_marks_saturation_and_drains() {
        let (config, lookup) = paper();
        // Absurd rate into a 3-proc machine with long kernels: backlog
        // explodes; the guard must trip and the run still drain cleanly.
        let mut source = PoissonSource::new(lookup, 2_000.0, 500, JobFamily::Single, 23);
        let outcome = simulate_source(
            &mut source,
            config,
            lookup,
            &mut FirstFit,
            &DriverOpts {
                snapshot_interval: None,
                max_in_flight_jobs: Some(32),
                ..DriverOpts::default()
            },
        )
        .unwrap();
        assert!(outcome.saturated);
        assert!(outcome.jobs_admitted < 500);
        assert_eq!(outcome.jobs_admitted, outcome.jobs_completed);
        assert!(outcome.peak_in_flight_jobs <= 33);
    }

    /// Regression + new-knob pin: the `max_in_flight_jobs` guard is a
    /// permanent latch by default (one burst past the cap ends admission
    /// for the rest of the stream), while `shed_when_full` sheds only the
    /// arrivals that land while the system is actually full and resumes
    /// admission once the backlog drains.
    #[test]
    fn overload_guard_latch_and_shed_modes_behave_as_documented() {
        let (config, lookup) = paper();
        let lookup_static: &'static LookupTable = lookup;
        let make_jobs = || {
            let mut rng = apt_dfg::SplitMix64::new(11);
            // 10 singles at t = 0 (two past the cap of 8), then one more an
            // hour later, long after the burst has drained.
            let mut jobs: Vec<(SimTime, crate::job::JobTemplate)> = (0..10)
                .map(|_| {
                    (
                        SimTime::ZERO,
                        JobFamily::Single.instantiate(&mut rng, lookup_static),
                    )
                })
                .collect();
            jobs.push((
                SimTime::from_ms(3_600_000),
                JobFamily::Single.instantiate(&mut rng, lookup_static),
            ));
            jobs
        };
        let run = |shed_when_full: bool| {
            let mut source = crate::source::TraceSource::new(make_jobs());
            simulate_source(
                &mut source,
                config,
                lookup,
                &mut FirstFit,
                &DriverOpts {
                    snapshot_interval: None,
                    max_in_flight_jobs: Some(8),
                    shed_when_full,
                    ..DriverOpts::default()
                },
            )
            .unwrap()
        };
        // Latch (default): the 9th arrival trips the guard, admission stops
        // permanently — even the hour-later job never enters.
        let latched = run(false);
        assert!(latched.saturated);
        assert_eq!(latched.jobs_admitted, 8);
        assert_eq!(latched.jobs_completed, 8);
        assert_eq!(latched.jobs_shed, 0, "the latch drops without counting");
        // Shed mode: only the two burst arrivals that found the system full
        // are shed; the hour-later job is admitted after the drain.
        let shedding = run(true);
        assert!(shedding.saturated, "the guard did fire");
        assert_eq!(shedding.jobs_shed, 2);
        assert_eq!(shedding.jobs_admitted, 9);
        assert_eq!(shedding.jobs_completed, 9);
        assert!(shedding.end >= SimTime::from_ms(3_600_000));
    }

    /// Regression: a stream completing entirely at t = 0 used to report
    /// ~1e308 jobs/s (`end.max(f64::MIN_POSITIVE)` as the denominator).
    /// Zero-duration runs now report zero throughput and utilization.
    #[test]
    fn zero_duration_runs_report_zero_throughput_and_utilization() {
        use apt_dfg::{Kernel, KernelKind};
        let config = SystemConfig::paper_4gbps();
        let mut table = LookupTable::from_rows([]);
        table.insert(apt_dfg::lookup::LookupRow {
            kind: KernelKind::Bfs,
            data_size: 10,
            times: [SimDuration::ZERO; 3],
        });
        let job = crate::job::JobTemplate::new(vec![Kernel::new(KernelKind::Bfs, 10)], Vec::new())
            .unwrap();
        let mut source = crate::source::TraceSource::new(vec![(SimTime::ZERO, job)]);
        let outcome = simulate_source(
            &mut source,
            &config,
            &table,
            &mut FirstFit,
            &DriverOpts::default(),
        )
        .unwrap();
        assert_eq!(outcome.jobs_completed, 1);
        assert_eq!(outcome.end, SimTime::ZERO);
        assert_eq!(outcome.throughput_jps, 0.0, "no 1e308 jobs/s");
        assert!(outcome.utilization().iter().all(|&u| u == 0.0));
    }

    #[test]
    fn drainable_burst_does_not_trip_the_overload_latch() {
        // A burst exactly at the cap, then a lone job an hour later: while
        // the burst drains, the pending far-future arrival must not latch
        // saturation — the system is idle again by the time it arrives.
        let (config, lookup) = paper();
        let lookup_static: &'static LookupTable = lookup;
        let mut rng = apt_dfg::SplitMix64::new(3);
        let mut jobs: Vec<(SimTime, crate::job::JobTemplate)> = (0..8)
            .map(|_| {
                (
                    SimTime::ZERO,
                    crate::job::JobFamily::Single.instantiate(&mut rng, lookup_static),
                )
            })
            .collect();
        jobs.push((
            SimTime::from_ms(3_600_000),
            crate::job::JobFamily::Single.instantiate(&mut rng, lookup_static),
        ));
        let mut source = crate::source::TraceSource::new(jobs);
        let outcome = simulate_source(
            &mut source,
            config,
            lookup,
            &mut FirstFit,
            &DriverOpts {
                snapshot_interval: None,
                max_in_flight_jobs: Some(8),
                ..DriverOpts::default()
            },
        )
        .unwrap();
        assert!(!outcome.saturated, "drainable burst latched saturation");
        assert_eq!(outcome.jobs_completed, 9);
    }

    /// A disordered captured trace fails the run with a typed error (the
    /// offending pair named in nanoseconds), not a panic — and the jobs
    /// before the disorder are untouched by the failure path.
    #[test]
    fn disordered_trace_yields_typed_error_not_panic() {
        let (config, lookup) = paper();
        let mut rng = apt_dfg::SplitMix64::new(7);
        let jobs: Vec<(SimTime, crate::job::JobTemplate)> = [5u64, 9, 2]
            .iter()
            .map(|&ms| {
                (
                    SimTime::from_ms(ms),
                    JobFamily::Single.instantiate(&mut rng, lookup),
                )
            })
            .collect();
        let mut source = crate::source::TraceSource::new(jobs);
        let err = simulate_source(
            &mut source,
            config,
            lookup,
            &mut FirstFit,
            &DriverOpts::default(),
        )
        .unwrap_err();
        match err {
            BaseError::DisorderedArrival { at_ns, prev_ns } => {
                assert_eq!(at_ns, SimTime::from_ms(2).as_ns());
                assert_eq!(prev_ns, SimTime::from_ms(9).as_ns());
            }
            other => panic!("expected DisorderedArrival, got {other:?}"),
        }
    }

    #[test]
    fn gate_sheds_jobs_and_hears_completions() {
        use crate::deadline::DeadlineSpec;
        // A gate admitting every other offered job: shed accounting, the
        // JobId alignment contract, and completion callbacks all pin here.
        struct EveryOther {
            offered: u64,
            accepted: u64,
            completions: Vec<apt_hetsim::JobId>,
        }
        impl AdmissionGate for EveryOther {
            fn admit(&mut self, req: &AdmitRequest<'_>) -> bool {
                assert!(req.now <= req.arrival, "jobs admitted just-in-time");
                // The advertised contract: the request carries the id the
                // job gets if admitted — sheds don't consume ids.
                assert_eq!(req.job_id.0, self.accepted, "job_id out of step");
                self.offered += 1;
                let accept = self.offered % 2 == 1;
                if accept {
                    self.accepted += 1;
                }
                accept
            }
            fn on_complete(&mut self, job: &CompletedJob) {
                self.completions.push(job.job);
            }
        }
        let (config, lookup) = paper();
        let mut source = PoissonSource::new(lookup, 1.0, 40, JobFamily::Single, 11)
            .with_deadlines(DeadlineSpec::Fixed(SimDuration::from_ms(10_000)));
        let mut gate = EveryOther {
            offered: 0,
            accepted: 0,
            completions: Vec::new(),
        };
        let outcome = simulate_source_gated(
            &mut source,
            config,
            lookup,
            &mut apt_policies::Met::new(),
            &DriverOpts::default(),
            &mut gate,
            |_| {},
        )
        .unwrap();
        assert_eq!(outcome.jobs_admitted, 20);
        assert_eq!(outcome.jobs_shed, 20);
        assert_eq!(outcome.jobs_completed, 20);
        assert!((outcome.shed_rate() - 0.5).abs() < 1e-9);
        // Engine JobIds are 0..20, exactly the ids the requests advertised.
        let mut seen: Vec<u64> = gate.completions.iter().map(|j| j.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<u64>>());
        // Every admitted job carried its (loose) deadline and met it.
        assert_eq!(outcome.deadline_jobs, 20);
        assert_eq!(outcome.deadline_misses, 0);
        assert_eq!(outcome.miss_rate(), 0.0);
        assert_eq!(outcome.tardiness_p99_ms, 0.0);
    }

    #[test]
    fn tight_deadlines_surface_as_misses_and_tardiness() {
        use crate::deadline::DeadlineSpec;
        let (config, lookup) = paper();
        // 1 µs relative deadlines: even the fastest table kernel (93 µs
        // Cholesky) is tardy.
        let mut source = PoissonSource::new(lookup, 0.2, 30, JobFamily::Single, 5)
            .with_deadlines(DeadlineSpec::Fixed(SimDuration::from_us(1)));
        let outcome = simulate_source(
            &mut source,
            config,
            lookup,
            &mut apt_policies::Met::new(),
            &DriverOpts {
                snapshot_interval: Some(SimDuration::from_ms(60_000)),
                max_in_flight_jobs: None,
                ..DriverOpts::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.deadline_jobs, 30);
        assert_eq!(outcome.deadline_misses, 30);
        assert_eq!(outcome.miss_rate(), 1.0);
        assert!(outcome.mean_tardiness_ms > 0.0);
        assert!(outcome.tardiness_p99_ms >= outcome.tardiness_p50_ms);
        // Snapshots carry the miss counts; the sum over windows equals the
        // run total.
        let windowed: u64 = outcome.snapshots.iter().map(|s| s.window_missed).sum();
        assert_eq!(windowed, outcome.snapshots.last().unwrap().total_missed);
        assert!(outcome.snapshots.last().unwrap().miss_rate() > 0.99);
    }

    /// Satellite pin: the driver flushes the final *partial* metrics
    /// window, so the tail of every run reaches window-driven consumers.
    /// A run ending exactly on a window boundary flushes nothing extra.
    #[test]
    fn final_partial_window_is_flushed_at_stream_end() {
        use apt_dfg::{Kernel, KernelKind};
        let config = SystemConfig::paper_no_transfers();
        let mut table = LookupTable::from_rows([]);
        table.insert(apt_dfg::lookup::LookupRow {
            kind: KernelKind::Bfs,
            data_size: 10,
            times: [SimDuration::from_ms(100); 3],
        });
        let run = |interval_ms: u64| {
            let job =
                crate::job::JobTemplate::new(vec![Kernel::new(KernelKind::Bfs, 10)], Vec::new())
                    .unwrap();
            let mut source = crate::source::TraceSource::new(vec![(SimTime::ZERO, job)]);
            simulate_source(
                &mut source,
                &config,
                &table,
                &mut FirstFit,
                &DriverOpts {
                    snapshot_interval: Some(SimDuration::from_ms(interval_ms)),
                    ..DriverOpts::default()
                },
            )
            .unwrap()
        };
        // The single 100 ms job ends the run mid-window under an 80 ms
        // interval: one whole window plus a flushed 20 ms tail.
        let mid = run(80);
        assert_eq!(mid.end, SimTime::from_ms(100));
        assert_eq!(mid.snapshots.len(), 2, "whole window + flushed tail");
        let tail = mid.snapshots.last().unwrap();
        assert_eq!(tail.end, SimTime::from_ms(100));
        assert_eq!(tail.interval, SimDuration::from_ms(20));
        assert_eq!(
            mid.snapshots.iter().map(|s| s.window_jobs).sum::<u64>(),
            mid.jobs_completed
        );
        assert_eq!(
            mid.snapshots.iter().map(|s| s.window_admitted).sum::<u64>(),
            mid.jobs_admitted
        );
        // Ending exactly on the boundary: one window, no zero-span tail.
        let exact = run(100);
        assert_eq!(exact.end, SimTime::from_ms(100));
        assert_eq!(exact.snapshots.len(), 1, "no empty tail on a boundary");
        assert_eq!(exact.snapshots[0].interval, SimDuration::from_ms(100));
        assert_eq!(exact.snapshots[0].window_jobs, 1);
    }

    /// The controlled driver delivers every closed window to the
    /// controller and applies/logs its actions — including actions the
    /// run has no knob for, which are logged unapplied.
    #[test]
    fn controlled_run_applies_and_logs_actions() {
        use apt_control::{ControlAction, Controller};
        /// Emits one action of each kind on the first window, then rests.
        struct OneShot {
            fired: bool,
            windows_seen: u32,
        }
        impl Controller for OneShot {
            fn name(&self) -> String {
                "one-shot".into()
            }
            fn on_window(&mut self, _s: &StreamSnapshot, out: &mut Vec<ControlAction>) {
                self.windows_seen += 1;
                if !self.fired {
                    self.fired = true;
                    out.push(ControlAction::SetAlpha(8.0));
                    out.push(ControlAction::SetAdmissionBound(0.5));
                    out.push(ControlAction::SwitchPolicy(1));
                }
            }
        }
        let (config, lookup) = paper();
        let mut source = PoissonSource::new(lookup, 0.2, 120, JobFamily::Diamond { width: 2 }, 17);
        let mut policy = apt_core::Apt::new(4.0);
        let mut ctrl = OneShot {
            fired: false,
            windows_seen: 0,
        };
        let outcome = simulate_source_controlled(
            &mut source,
            config,
            lookup,
            &mut policy,
            &DriverOpts {
                snapshot_interval: Some(SimDuration::from_ms(60_000)),
                ..DriverOpts::default()
            },
            &mut AdmitAll,
            &mut ctrl,
            |_| {},
        )
        .unwrap();
        assert_eq!(outcome.jobs_completed, 120);
        assert!(ctrl.windows_seen > 0, "the controller never saw a window");
        // The flushed tail window is not delivered: closed windows only.
        let tail_flushed =
            outcome.snapshots.last().unwrap().interval != SimDuration::from_ms(60_000);
        assert_eq!(
            ctrl.windows_seen as usize,
            outcome.snapshots.len() - usize::from(tail_flushed),
            "the controller must see exactly the closed windows"
        );
        assert_eq!(outcome.control_log.len(), 3);
        let log = &outcome.control_log;
        // α retunes on an APT policy; the other two knobs don't exist
        // here (AdmitAll, leaf policy) and are logged unapplied.
        assert_eq!(log[0].action, ControlAction::SetAlpha(8.0));
        assert!(log[0].applied);
        assert_eq!(log[1].action, ControlAction::SetAdmissionBound(0.5));
        assert!(!log[1].applied);
        assert_eq!(log[2].action, ControlAction::SwitchPolicy(1));
        assert!(!log[2].applied);
        assert!(log.iter().all(|e| e.at > SimTime::ZERO));
        // The α write actually landed on the policy.
        assert_eq!(Policy::alpha(&policy), Some(8.0));
    }

    /// Windows are the controller's clock: a controlled run without a
    /// snapshot interval is a typed error, not a silently inert loop.
    #[test]
    fn controlled_run_requires_a_snapshot_interval() {
        use apt_control::InertController;
        let (config, lookup) = paper();
        let mut source = PoissonSource::new(lookup, 1.0, 3, JobFamily::Single, 1);
        let err = simulate_source_controlled(
            &mut source,
            config,
            lookup,
            &mut apt_policies::Met::new(),
            &DriverOpts::default(),
            &mut AdmitAll,
            &mut InertController,
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, BaseError::InvalidSystem { .. }));
    }

    #[test]
    fn starving_policy_reports_starvation() {
        let (config, lookup) = paper();
        let mut source = PoissonSource::new(lookup, 10.0, 3, JobFamily::Single, 1);
        let err = simulate_source(
            &mut source,
            config,
            lookup,
            &mut Lazy,
            &DriverOpts::default(),
        )
        .unwrap_err();
        assert!(matches!(err, BaseError::Starvation { .. }));
    }

    #[test]
    fn static_policies_are_rejected_by_the_driver() {
        struct FakeStatic;
        impl Policy for FakeStatic {
            fn name(&self) -> String {
                "FakeStatic".into()
            }
            fn kind(&self) -> PolicyKind {
                PolicyKind::Static
            }
            fn decide(&mut self, _v: &SimView<'_>, _o: &mut AssignmentBuf) {}
        }
        let (config, lookup) = paper();
        let mut source = PoissonSource::new(lookup, 10.0, 3, JobFamily::Single, 1);
        assert!(simulate_source(
            &mut source,
            config,
            lookup,
            &mut FakeStatic,
            &DriverOpts::default()
        )
        .is_err());
    }
}
