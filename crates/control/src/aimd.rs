//! AIMD admission control: multiplicative decrease / additive increase on
//! the utilization bound ρ, with hysteresis and cooldown.

use crate::{ControlAction, Controller};
use apt_metrics::StreamSnapshot;

/// Gains and guards of [`AimdAdmission`]. The defaults target a 5% miss
/// budget with a 1% low-water mark and halve ρ on violation — sensible for
/// the paper's workloads, but every field is plain data: build your own.
#[derive(Debug, Clone, Copy)]
pub struct AimdConfig {
    /// Windowed miss rate above which ρ is multiplicatively decreased.
    pub miss_setpoint: f64,
    /// Windowed miss rate below which ρ may be additively increased (the
    /// gap up to `miss_setpoint` is the hysteresis band: inside it the
    /// controller holds).
    pub miss_low_water: f64,
    /// Windowed shed rate that must be exceeded for an increase to be
    /// worth probing — if the gate is not shedding, raising ρ admits
    /// nothing extra and only widens the next overshoot.
    pub shed_setpoint: f64,
    /// Multiplicative decrease factor, in (0, 1).
    pub decrease: f64,
    /// Additive increase step (absolute ρ units), > 0.
    pub increase: f64,
    /// Windows to hold (observe without judging) after a decrease, letting
    /// the pre-decrease backlog drain so stale misses cannot trigger a
    /// second cut.
    pub cooldown: u32,
    /// Floor for ρ (never decreased below).
    pub min_bound: f64,
    /// Ceiling for ρ (never increased above).
    pub max_bound: f64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            miss_setpoint: 0.05,
            miss_low_water: 0.01,
            shed_setpoint: 0.02,
            decrease: 0.5,
            increase: 0.05,
            cooldown: 2,
            min_bound: 0.05,
            max_bound: 8.0,
        }
    }
}

/// AIMD controller over the admission gate's utilization bound ρ
/// (actuated via [`ControlAction::SetAdmissionBound`]).
///
/// Per closed window, in order:
///
/// 1. If a cooldown is pending, consume one window and hold.
/// 2. If `window_miss_rate > miss_setpoint`: ρ ← max(min, ρ·decrease),
///    start the cooldown. Misses mean work *already admitted* exceeds
///    capacity, so back off fast (multiplicative).
/// 3. Else if `window_miss_rate ≤ miss_low_water` **and**
///    `window_shed_rate > shed_setpoint`: ρ ← min(max, ρ+increase).
///    The system is comfortably meeting deadlines while turning work
///    away, so probe upward slowly (additive).
/// 4. Otherwise hold (the hysteresis band).
///
/// Deterministic: state is ρ and the cooldown counter, both pure
/// functions of the snapshot sequence.
#[derive(Debug, Clone)]
pub struct AimdAdmission {
    cfg: AimdConfig,
    bound: f64,
    cooldown_left: u32,
}

impl AimdAdmission {
    /// A controller starting from `initial_bound` — pass the same ρ the
    /// admission gate was built with, so controller state and gate state
    /// agree from window one.
    ///
    /// # Panics
    ///
    /// On non-finite or non-positive gains, `decrease` outside (0, 1),
    /// an inverted hysteresis band (`miss_low_water > miss_setpoint`), or
    /// `initial_bound` outside `[min_bound, max_bound]` — these are
    /// construction bugs, not runtime conditions.
    pub fn new(initial_bound: f64, cfg: AimdConfig) -> Self {
        assert!(
            cfg.miss_setpoint.is_finite() && cfg.miss_setpoint >= 0.0,
            "miss_setpoint must be finite and non-negative"
        );
        assert!(
            (0.0..=cfg.miss_setpoint).contains(&cfg.miss_low_water),
            "miss_low_water must sit in [0, miss_setpoint] (the hysteresis band)"
        );
        assert!(
            cfg.shed_setpoint.is_finite() && cfg.shed_setpoint >= 0.0,
            "shed_setpoint must be finite and non-negative"
        );
        assert!(
            cfg.decrease > 0.0 && cfg.decrease < 1.0,
            "decrease must lie in (0, 1)"
        );
        assert!(
            cfg.increase.is_finite() && cfg.increase > 0.0,
            "increase must be finite and positive"
        );
        assert!(
            cfg.min_bound > 0.0 && cfg.min_bound <= cfg.max_bound && cfg.max_bound.is_finite(),
            "bounds must satisfy 0 < min ≤ max < ∞"
        );
        assert!(
            (cfg.min_bound..=cfg.max_bound).contains(&initial_bound),
            "initial_bound must lie in [min_bound, max_bound]"
        );
        AimdAdmission {
            cfg,
            bound: initial_bound,
            cooldown_left: 0,
        }
    }

    /// The controller's current belief of ρ.
    pub fn bound(&self) -> f64 {
        self.bound
    }
}

impl Controller for AimdAdmission {
    fn name(&self) -> String {
        format!(
            "aimd(miss≤{}, ×{}/+{})",
            self.cfg.miss_setpoint, self.cfg.decrease, self.cfg.increase
        )
    }

    fn on_window(&mut self, snapshot: &StreamSnapshot, out: &mut Vec<ControlAction>) {
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return;
        }
        let miss = snapshot.window_miss_rate();
        if miss > self.cfg.miss_setpoint {
            let next = (self.bound * self.cfg.decrease).max(self.cfg.min_bound);
            self.cooldown_left = self.cfg.cooldown;
            if next < self.bound {
                self.bound = next;
                out.push(ControlAction::SetAdmissionBound(next));
            }
        } else if miss <= self.cfg.miss_low_water
            && snapshot.window_shed_rate() > self.cfg.shed_setpoint
        {
            let next = (self.bound + self.cfg.increase).min(self.cfg.max_bound);
            if next > self.bound {
                self.bound = next;
                out.push(ControlAction::SetAdmissionBound(next));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_snapshot;

    fn drive(ctrl: &mut AimdAdmission, snap: &StreamSnapshot) -> Vec<ControlAction> {
        let mut out = Vec::new();
        ctrl.on_window(snap, &mut out);
        out
    }

    #[test]
    fn misses_trigger_multiplicative_decrease_then_cooldown() {
        let mut ctrl = AimdAdmission::new(1.0, AimdConfig::default());
        // 20% windowed misses: halve ρ.
        let hot = test_snapshot(100, 10, 2, 10, 10, 0);
        assert_eq!(
            drive(&mut ctrl, &hot),
            vec![ControlAction::SetAdmissionBound(0.5)]
        );
        // Cooldown (2 windows): the same hot window is ignored twice.
        assert!(drive(&mut ctrl, &hot).is_empty());
        assert!(drive(&mut ctrl, &hot).is_empty());
        // Then it judges again.
        assert_eq!(
            drive(&mut ctrl, &hot),
            vec![ControlAction::SetAdmissionBound(0.25)]
        );
        assert_eq!(ctrl.bound(), 0.25);
    }

    #[test]
    fn clean_windows_with_shedding_creep_the_bound_back_up() {
        let mut ctrl = AimdAdmission::new(0.5, AimdConfig::default());
        // No misses, 50% shed: probe upward additively.
        let shedding = test_snapshot(100, 10, 0, 10, 10, 10);
        for step in [0.55, 0.60] {
            let up = drive(&mut ctrl, &shedding);
            assert_eq!(up.len(), 1);
            assert!(
                matches!(up[0], ControlAction::SetAdmissionBound(b) if (b - step).abs() < 1e-9),
                "expected ρ≈{step}, got {up:?}"
            );
        }
    }

    #[test]
    fn hysteresis_band_and_quiet_windows_hold() {
        let mut ctrl = AimdAdmission::new(1.0, AimdConfig::default());
        // 3% misses: above low water, below setpoint — hold.
        assert!(drive(&mut ctrl, &test_snapshot(100, 100, 3, 100, 100, 50)).is_empty());
        // Clean but not shedding: nothing to reclaim — hold.
        assert!(drive(&mut ctrl, &test_snapshot(200, 100, 0, 100, 100, 0)).is_empty());
        // Idle window (nothing offered, nothing due): hold.
        assert!(drive(&mut ctrl, &test_snapshot(300, 0, 0, 0, 0, 0)).is_empty());
        assert_eq!(ctrl.bound(), 1.0);
    }

    #[test]
    fn bound_saturates_at_the_floor_and_ceiling() {
        let cfg = AimdConfig {
            min_bound: 0.4,
            max_bound: 0.6,
            cooldown: 0,
            ..AimdConfig::default()
        };
        let mut ctrl = AimdAdmission::new(0.5, cfg);
        let hot = test_snapshot(100, 10, 10, 10, 10, 0);
        assert_eq!(
            drive(&mut ctrl, &hot),
            vec![ControlAction::SetAdmissionBound(0.4)]
        );
        // Already at the floor: no action, but the (empty) judgement still
        // happens every window.
        assert!(drive(&mut ctrl, &hot).is_empty());
        let shedding = test_snapshot(200, 10, 0, 10, 5, 5);
        let up = drive(&mut ctrl, &shedding);
        assert_eq!(up.len(), 1);
        assert!(matches!(up[0], ControlAction::SetAdmissionBound(b) if (b - 0.45).abs() < 1e-9));
        for _ in 0..10 {
            drive(&mut ctrl, &shedding);
        }
        assert_eq!(ctrl.bound(), 0.6);
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn inverted_hysteresis_band_is_rejected() {
        AimdAdmission::new(
            1.0,
            AimdConfig {
                miss_low_water: 0.2,
                miss_setpoint: 0.1,
                ..AimdConfig::default()
            },
        );
    }
}
