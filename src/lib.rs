//! # apt-suite
//!
//! Meta crate for the APT reproduction workspace: re-exports the full public
//! surface (via [`apt_core::prelude`]) and hosts the runnable examples and
//! the cross-crate integration tests.
//!
//! Start with `examples/quickstart.rs`:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use apt_core::prelude;
pub use apt_core::prelude::*;

// The SLO layer (deadline-aware scheduling + admission control) keeps its
// own namespace: gates are stateful and lifetime-bound, so a flat glob
// would be more confusing than helpful.
pub use apt_slo as slo;

// Same for the adaptive control plane: controllers are built, configured
// and handed to the driver explicitly, so the namespace keeps the
// closed-loop surface discoverable as a unit.
pub use apt_control as control;

/// Workspace version, for the examples' banners.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reaches_every_layer() {
        use crate::prelude::*;
        let lookup = LookupTable::paper();
        let dfg = generate(DfgType::Type1, &StreamConfig::new(6, 1), lookup);
        let res = simulate(&dfg, &SystemConfig::paper_4gbps(), lookup, &mut Met::new()).unwrap();
        assert_eq!(res.trace.records.len(), 6);
    }
}
