//! Per-policy scheduling overhead.
//!
//! §1.2 motivates APT with "it does not need an intensive pre-computation
//! phase like HEFT and PEFT" and §3.1 with "the scheduling policy should be
//! quick in choosing the task and the processor". These benches quantify
//! both claims on the largest paper workload (157 kernels):
//!
//! * `end_to_end/<policy>` — the full simulated run (decisions + event loop),
//! * `precompute/heft|peft` — just the static rank/plan construction, the
//!   phase the dynamic policies skip entirely.

use apt_bench::{run, type2_workload};
use apt_core::prelude::*;
use apt_policies::plan::build_plan;
use apt_policies::ranking::{oct_matrix, rank_oct, upward_ranks};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_overhead/end_to_end");
    let dfg = type2_workload();
    let system = SystemConfig::paper_4gbps();
    for (name, make) in apt_core::all_policy_factories(4.0) {
        g.bench_function(&name, |b| {
            b.iter(|| {
                let mut policy = make();
                black_box(run(&dfg, &system, policy.as_mut()))
            })
        });
    }
    g.finish();
}

fn bench_precompute(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_overhead/precompute");
    let dfg = type2_workload();
    let system = SystemConfig::paper_4gbps();
    let lookup = LookupTable::paper();

    g.bench_function("heft_ranks_and_plan", |b| {
        b.iter(|| {
            let cost = CostModel::new(&dfg, lookup, &system);
            let ranks = upward_ranks(&dfg, lookup, &system);
            let ctx = PrepareCtx {
                dfg: &dfg,
                lookup,
                config: &system,
                cost: &cost,
            };
            let plan = build_plan(&ctx, &ranks, |_, cands| {
                apt_base::stats::argmin_by_key(cands, |c| c.finish).unwrap()
            });
            black_box(plan.planned_makespan.as_ns())
        })
    });

    g.bench_function("peft_oct_and_plan", |b| {
        b.iter(|| {
            let cost = CostModel::new(&dfg, lookup, &system);
            let oct = oct_matrix(&dfg, lookup, &system);
            let ranks = rank_oct(&oct);
            let ctx = PrepareCtx {
                dfg: &dfg,
                lookup,
                config: &system,
                cost: &cost,
            };
            let plan = build_plan(&ctx, &ranks, |node, cands| {
                apt_base::stats::argmin_by_key(cands, |c| {
                    apt_base::stats::FiniteF64(
                        c.finish.as_ms_f64() + oct[node.index()][c.proc.index()],
                    )
                })
                .unwrap()
            });
            black_box(plan.planned_makespan.as_ns())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_end_to_end, bench_precompute);
criterion_main!(benches);
