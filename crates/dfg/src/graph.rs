//! A small, dependency-free directed-acyclic-graph container.
//!
//! Scheduling consumes a dataflow graph `G = (V, E)` where `V` is the set of
//! kernels and `E` the data/computational dependencies (§2.5.1). The
//! container here is deliberately minimal: adjacency lists in both
//! directions, O(1) node payload access, Kahn topological ordering, and
//! validation. It is generic over the node payload so the simulator's tests
//! can use toy payloads, while production code uses [`crate::Kernel`].

use apt_base::BaseError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within one [`Dag`]. Dense indices starting at zero.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Construct from a raw index.
    #[inline]
    pub const fn new(idx: usize) -> Self {
        NodeId(idx as u32)
    }

    /// The raw index, widened for slice indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed graph intended to be acyclic, with payload `T` per node.
///
/// Edges may be added freely; acyclicity is checked by [`Dag::validate`] /
/// [`Dag::topo_order`] (Kahn's algorithm), which the generators and the
/// simulator call before use.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dag<T> {
    nodes: Vec<T>,
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl<T> Default for Dag<T> {
    fn default() -> Self {
        Dag::new()
    }
}

impl<T> Dag<T> {
    /// An empty graph.
    pub fn new() -> Self {
        Dag {
            nodes: Vec::new(),
            preds: Vec::new(),
            succs: Vec::new(),
            edge_count: 0,
        }
    }

    /// An empty graph with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Dag {
            nodes: Vec::with_capacity(n),
            preds: Vec::with_capacity(n),
            succs: Vec::with_capacity(n),
            edge_count: 0,
        }
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, payload: T) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(payload);
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        id
    }

    /// Add a dependency edge `from → to` (`to` consumes `from`'s output).
    ///
    /// Rejects out-of-range endpoints, self-loops, and duplicate edges.
    /// Cycle detection is deferred to [`Dag::validate`].
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), BaseError> {
        let len = self.nodes.len();
        for node in [from, to] {
            if node.index() >= len {
                return Err(BaseError::NodeOutOfRange {
                    node: node.index(),
                    len,
                });
            }
        }
        if from == to {
            return Err(BaseError::SelfLoop { node: from.index() });
        }
        if self.succs[from.index()].contains(&to) {
            return Err(BaseError::DuplicateEdge {
                from: from.index(),
                to: to.index(),
            });
        }
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        self.edge_count += 1;
        Ok(())
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Payload of a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &T {
        &self.nodes[id.index()]
    }

    /// Mutable payload of a node.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut T {
        &mut self.nodes[id.index()]
    }

    /// Remove every edge incident to `id` (both directions), leaving the
    /// node in place with no neighbors. Used by the streaming engine's slot
    /// arena to recycle the nodes of a retired job before rebinding them to
    /// the next arrival; the node's own adjacency capacity is kept so a
    /// recycled slot does not re-allocate.
    pub fn detach_node(&mut self, id: NodeId) {
        while let Some(s) = self.succs[id.index()].pop() {
            self.preds[s.index()].retain(|&p| p != id);
            self.edge_count -= 1;
        }
        while let Some(p) = self.preds[id.index()].pop() {
            self.succs[p.index()].retain(|&s| s != id);
            self.edge_count -= 1;
        }
    }

    /// Immediate predecessors (dependencies) of a node.
    #[inline]
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.index()]
    }

    /// Immediate successors (dependents) of a node.
    #[inline]
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.index()]
    }

    /// In-degree of a node.
    #[inline]
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.preds[id.index()].len()
    }

    /// Out-degree of a node.
    #[inline]
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.succs[id.index()].len()
    }

    /// Iterate `(id, payload)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, t)| (NodeId::new(i), t))
    }

    /// All node ids in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// All edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(i, ss)| ss.iter().map(move |&t| (NodeId::new(i), t)))
    }

    /// Nodes with no predecessors (the initially ready set).
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.in_degree(n) == 0)
            .collect()
    }

    /// Nodes with no successors (exit tasks).
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.out_degree(n) == 0)
            .collect()
    }

    /// A topological order (Kahn's algorithm; within a frontier, smaller ids
    /// first, so the order is deterministic). Errors on cycles.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, BaseError> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut in_deg: Vec<usize> = self.node_ids().map(|n| self.in_degree(n)).collect();
        // A min-heap frontier pops the smallest ready id in O(log F). (The
        // seed did a linear min-scan per pop — O(V·F), which on Type-1
        // graphs, whose frontier is nearly all of V, made validation as
        // expensive as generation itself.)
        let mut frontier: BinaryHeap<Reverse<NodeId>> = self
            .node_ids()
            .filter(|n| in_deg[n.index()] == 0)
            .map(Reverse)
            .collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(Reverse(n)) = frontier.pop() {
            order.push(n);
            for &s in self.succs(n) {
                in_deg[s.index()] -= 1;
                if in_deg[s.index()] == 0 {
                    frontier.push(Reverse(s));
                }
            }
        }
        if order.len() != self.len() {
            let culprit = in_deg
                .iter()
                .position(|&d| d > 0)
                .expect("some node must remain");
            return Err(BaseError::CyclicGraph { node: culprit });
        }
        Ok(order)
    }

    /// Validate acyclicity.
    pub fn validate(&self) -> Result<(), BaseError> {
        self.topo_order().map(|_| ())
    }

    /// Map payloads, preserving structure.
    pub fn map<U>(&self, mut f: impl FnMut(NodeId, &T) -> U) -> Dag<U> {
        Dag {
            nodes: self.iter().map(|(id, t)| f(id, t)).collect(),
            preds: self.preds.clone(),
            succs: self.succs.clone(),
            edge_count: self.edge_count,
        }
    }

    /// Length (in accumulated node weight) of the longest weighted path,
    /// where each node contributes `weight(node)` and edges are free. This is
    /// the classic critical-path lower bound on any schedule's makespan when
    /// `weight` is the *minimum* execution time of each kernel.
    pub fn critical_path(&self, mut weight: impl FnMut(NodeId) -> u64) -> Result<u64, BaseError> {
        let order = self.topo_order()?;
        let mut dist = vec![0u64; self.len()];
        let mut best = 0u64;
        for &n in &order {
            let w = weight(n);
            let start = self
                .preds(n)
                .iter()
                .map(|p| dist[p.index()])
                .max()
                .unwrap_or(0);
            dist[n.index()] = start + w;
            best = best.max(dist[n.index()]);
        }
        Ok(best)
    }

    /// Partition nodes into precedence levels: level 0 = sources, level k =
    /// nodes whose longest predecessor chain has k edges. Used by the ASCII
    /// renderer and by structure tests.
    pub fn levels(&self) -> Result<Vec<Vec<NodeId>>, BaseError> {
        let order = self.topo_order()?;
        let mut level = vec![0usize; self.len()];
        let mut max_level = 0;
        for &n in &order {
            let l = self
                .preds(n)
                .iter()
                .map(|p| level[p.index()] + 1)
                .max()
                .unwrap_or(0);
            level[n.index()] = l;
            max_level = max_level.max(l);
        }
        let mut out = vec![Vec::new(); max_level + 1];
        for n in self.node_ids() {
            out[level[n.index()]].push(n);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag<&'static str> {
        // a → b, a → c, b → d, c → d
        let mut g = Dag::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        g
    }

    #[test]
    fn construction_and_queries() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources(), vec![NodeId(0)]);
        assert_eq!(g.sinks(), vec![NodeId(3)]);
        assert_eq!(g.preds(NodeId(3)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.succs(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.in_degree(NodeId(0)), 0);
        assert_eq!(g.out_degree(NodeId(3)), 0);
        assert_eq!(*g.node(NodeId(2)), "c");
    }

    #[test]
    fn detach_node_removes_both_directions_and_allows_rewiring() {
        let mut g = diamond();
        g.detach_node(NodeId(1)); // b loses a→b and b→d
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.succs(NodeId(0)), &[NodeId(2)]);
        assert_eq!(g.preds(NodeId(3)), &[NodeId(2)]);
        assert_eq!(g.in_degree(NodeId(1)), 0);
        assert_eq!(g.out_degree(NodeId(1)), 0);
        // The slot can be reconnected freshly (arena reuse).
        g.add_edge(NodeId(2), NodeId(1)).unwrap();
        assert_eq!(g.edge_count(), 3);
        g.validate().unwrap();
        // Detaching every node empties the edge set.
        for i in 0..4 {
            g.detach_node(NodeId(i));
        }
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn topo_order_is_deterministic_and_valid() {
        let g = diamond();
        let order = g.topo_order().unwrap();
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        // Every edge points forward in the order.
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.len()];
            for (i, n) in order.iter().enumerate() {
                pos[n.index()] = i;
            }
            pos
        };
        for (u, v) in g.edges() {
            assert!(pos[u.index()] < pos[v.index()]);
        }
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = diamond();
        g.add_edge(NodeId(3), NodeId(0)).unwrap();
        assert!(matches!(g.validate(), Err(BaseError::CyclicGraph { .. })));
    }

    #[test]
    fn edge_validation() {
        let mut g = diamond();
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(9)),
            Err(BaseError::NodeOutOfRange { node: 9, len: 4 })
        ));
        assert!(matches!(
            g.add_edge(NodeId(1), NodeId(1)),
            Err(BaseError::SelfLoop { node: 1 })
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1)),
            Err(BaseError::DuplicateEdge { from: 0, to: 1 })
        ));
    }

    #[test]
    fn critical_path_of_diamond() {
        let g = diamond();
        // All nodes weight 10: path a→b→d = 30.
        assert_eq!(g.critical_path(|_| 10).unwrap(), 30);
        // Heavier branch c: a→c→d = 10+50+10.
        assert_eq!(
            g.critical_path(|n| if n == NodeId(2) { 50 } else { 10 })
                .unwrap(),
            70
        );
    }

    #[test]
    fn levels_partition_nodes() {
        let g = diamond();
        let levels = g.levels().unwrap();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![NodeId(0)]);
        assert_eq!(levels[1], vec![NodeId(1), NodeId(2)]);
        assert_eq!(levels[2], vec![NodeId(3)]);
        let total: usize = levels.iter().map(|l| l.len()).sum();
        assert_eq!(total, g.len());
    }

    #[test]
    fn map_preserves_structure() {
        let g = diamond();
        let mapped = g.map(|id, s| format!("{}{}", s, id.index()));
        assert_eq!(mapped.node(NodeId(3)), "d3");
        assert_eq!(mapped.edge_count(), g.edge_count());
        assert_eq!(mapped.preds(NodeId(3)), g.preds(NodeId(3)));
    }

    #[test]
    fn empty_graph_behaves() {
        let g: Dag<()> = Dag::new();
        assert!(g.is_empty());
        assert!(g.topo_order().unwrap().is_empty());
        assert!(g.sources().is_empty());
        assert_eq!(g.critical_path(|_| 1).unwrap(), 0);
    }
}
