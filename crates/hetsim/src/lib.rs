//! # apt-hetsim
//!
//! Discrete-event simulator for heterogeneous CPU/GPU/FPGA systems — the
//! experimental substrate of §3.2. "We have developed a software to simulate
//! the distributed hardware heterogeneous system, the incoming stream of
//! applications as a work load for the system and the different scheduling
//! policies." This crate is that software:
//!
//! * [`link`] — the PCI-Express interconnect model (uniform rate between all
//!   processor pairs; 4 GB/s for ×8 lanes, 8 GB/s for ×16).
//! * [`topology`] — per-pair interconnect matrices beyond §3.2's uniform
//!   rate: clustered/NUMA-ish and host-staged star presets, plus optional
//!   per-link transfer contention (off by default; the uniform preset is
//!   byte-identical to the scalar link path).
//! * [`system`] — the simulated machine: a customizable set of processor
//!   instances plus the link and the bytes-per-element convention.
//! * [`policy`] — the [`Policy`] trait every scheduling heuristic
//!   implements, and the [`Assignment`] type policies emit.
//! * [`view`] — the read-only snapshot of simulator state handed to dynamic
//!   policies on every decision edge.
//! * [`engine`] — the event loop: ready-set maintenance, per-processor
//!   queues, transfer+execute timing, λ-delay measurement.
//! * [`trace`] — the schedule log and the derived statistics of §3.2
//!   (makespan, per-processor busy/transfer/idle time, λ totals, Eq. 11–12).
//!
//! Determinism: time is integer nanoseconds, the event queue is totally
//! ordered by `(time, sequence number)`, and every argmin in the pipeline
//! breaks ties by the lowest index — two runs of the same configuration are
//! bit-identical.
//!
//! # Engine architecture & cost model
//!
//! The paper's core claim is that APT stays near HEFT/PEFT schedule quality
//! *without* their "intensive pre-computation" — so the per-decision cost of
//! the simulator is the experiment itself, and the decision path is built
//! around one principle: **nothing state-independent is computed on a
//! decision edge.**
//!
//! * [`cost::CostModel`] is precomputed once per
//!   `(KernelDag, LookupTable, SystemConfig)` at the top of
//!   [`simulate_stream`]: a dense `node × processor` execution-time matrix
//!   (expanding `apt_dfg::KindCostMatrix`, which flattens the lookup table
//!   per category), per-node output link-transfer times, per-node
//!   runnable-processor bitsets, and the `p_min` instance set with its tie
//!   mask. Every [`SimView`] cost query (`exec_time`, `placement_cost`,
//!   `best_proc`) and the engine's own admission/start bookkeeping are plain
//!   array reads against it — no `BTreeMap` walks, no allocation, no
//!   repeated `bytes / rate` division.
//! * The engine maintains its policy-visible state **incrementally**: the
//!   [`ProcView`] snapshots live in one `Vec` mutated as kernels start,
//!   finish and queue (with a running-sum windowed execution-time average,
//!   rounded to nearest); the ready set is an index-backed bitset
//!   ([`ready::ReadySet`]) with O(1) insert/remove/membership and
//!   deterministic ascending-id iteration; a running idle-processor bitset
//!   makes `SimView::any_idle` O(1).
//! * The event core is **allocation-free**: pending events live in a
//!   [`calendar::CalendarQueue`] (bucket ring + overflow, whole same-instant
//!   batches popped into a reused buffer) and every `Policy::decide` writes
//!   into a per-run [`policy::AssignmentBuf`] arena instead of returning a
//!   fresh `Vec` — so a steady-state fixpoint loop touches the allocator
//!   exactly zero times.
//! * Static policies get the same tables through [`PrepareCtx::cost`], so
//!   HEFT/PEFT plan construction shares the dense path.
//!
//! The differential test `tests/engine_equivalence.rs` (workspace root)
//! replays all twenty canonical workloads under every policy against a
//! straight port of the seed engine's naive bookkeeping and asserts
//! byte-identical traces, so this hot-path structure cannot silently change
//! schedules.
//!
//! # Failure model
//!
//! Both engines can optionally run under an `apt-faults` [`FaultPlan`]
//! (armed via [`simulate_stream_faulty`] or `OpenEngine::arm_faults`):
//! transient kernel failures abort a running kernel partway through and
//! re-execute it under a [`RetryPolicy`] (exponential backoff with jitter);
//! processor crashes (exponential MTTF/MTTR) kill the in-flight kernel,
//! flush the processor's queue, and mask the processor out of the idle set
//! until repair — [`ProcView::down`] is the policy-visible flag, and
//! [`SimView::up_mask`] / [`SimView::live_procs`] summarize surviving
//! capacity; link-degradation episodes scale transfer times on one (or
//! every) processor pair for a bounded interval. All fault draws come from
//! a dedicated salted RNG stream, so a disabled plan is byte-identical to a
//! fault-free run and workload generation never shifts under injection.
//! Orphaned and failed kernels re-enter the ordinary ready path, so any
//! dynamic policy fails over without fault-specific code — APT picks an
//! alternative processor within threshold while MET waits for its best
//! instance to be repaired, which is exactly the contrast the fault sweeps
//! measure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calendar;
pub mod cost;
pub mod engine;
pub mod link;
pub mod open;
pub mod policy;
pub mod ready;
#[cfg(test)]
mod shard_ready;
pub mod system;
pub mod topology;
pub mod trace;
pub mod view;

pub use apt_faults::{FaultPlan, FaultTotals, LinkDegradeSpec, RetryPolicy};
pub use apt_trace::{DecisionMeta, DecisionRecord, NullSink, TraceEvent, TraceSink, VecSink};
pub use calendar::CalendarQueue;
pub use cost::CostModel;
pub use engine::{simulate, simulate_stream, simulate_stream_faulty};
pub use link::LinkRate;
pub use open::{validate_job, CompletedJob, JobId, OpenEngine, ReadyOrder};
pub use policy::{Assignment, AssignmentBuf, Policy, PolicyKind, PrepareCtx};
pub use ready::ReadySet;
pub use system::{ProcSpec, SystemConfig};
pub use topology::{LinkContention, Topology};
pub use trace::{ProcStats, SimResult, TaskRecord, Trace};
pub use view::{ProcView, SimView};
