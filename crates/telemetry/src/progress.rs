//! The `--progress` stderr heartbeat for soak runs.
//!
//! A [`Heartbeat`] is wall-clock throttled (default one line per
//! 200 ms) and renders through [`render_heartbeat`], a pure function so
//! the degenerate cases — zero elapsed time, zero jobs, no target —
//! are unit-testable without sleeping. Rate and ETA never divide by
//! zero: a first-window or zero-duration tick reports `0 jobs/s` and an
//! unknown ETA, the same convention as `StreamOutcome::throughput_jps`
//! on zero-duration runs.

use std::time::{Duration, Instant};

/// Render one heartbeat line.
///
/// Degenerate inputs are safe by construction: `elapsed == 0` or
/// `jobs_done == 0` yields a `0` rate and an unknown (`?`) ETA; a
/// reached-or-exceeded target yields ETA `0s`. Never panics, never
/// divides by zero.
#[allow(clippy::too_many_arguments)]
pub fn render_heartbeat(
    elapsed: Duration,
    jobs_done: u64,
    target_jobs: Option<u64>,
    in_flight: usize,
    miss_rate: f64,
    alpha: Option<f64>,
    rho: Option<f64>,
    sim_seconds: f64,
) -> String {
    let secs = elapsed.as_secs_f64();
    let rate = if secs > 0.0 && jobs_done > 0 {
        jobs_done as f64 / secs
    } else {
        0.0
    };
    let done = match target_jobs {
        Some(t) => format!("{jobs_done}/{t}"),
        None => format!("{jobs_done}"),
    };
    let eta = match target_jobs {
        Some(t) if jobs_done >= t => "0s".to_string(),
        Some(t) if rate > 0.0 => format_secs((t - jobs_done) as f64 / rate),
        _ => "?".to_string(),
    };
    let alpha = alpha.map_or_else(|| "-".to_string(), |a| format!("{a:.2}"));
    let rho = rho.map_or_else(|| "-".to_string(), |r| format!("{r:.2}"));
    format!(
        "[{}] {done} jobs | {rate:.0} jobs/s | in-flight {in_flight} | miss {:.1}% | alpha {alpha} | rho {rho} | sim {sim_seconds:.1}s | eta {eta}",
        format_secs(secs),
        miss_rate * 100.0,
    )
}

fn format_secs(s: f64) -> String {
    if !s.is_finite() || s < 0.0 {
        return "?".to_string();
    }
    if s >= 3600.0 {
        format!(
            "{}h{:02}m",
            (s / 3600.0) as u64,
            ((s % 3600.0) / 60.0) as u64
        )
    } else if s >= 60.0 {
        format!("{}m{:02}s", (s / 60.0) as u64, (s % 60.0) as u64)
    } else {
        format!("{s:.0}s")
    }
}

/// Wall-clock throttled progress reporter. Call [`Heartbeat::tick`]
/// as often as convenient (per completion batch, per window); it
/// returns a rendered line at most once per `min_gap`.
#[derive(Debug)]
pub struct Heartbeat {
    start: Instant,
    last: Option<Instant>,
    min_gap: Duration,
    target: Option<u64>,
}

impl Heartbeat {
    /// A heartbeat counting toward `target_jobs` (ETA needs a target;
    /// pass `None` for open-ended runs).
    pub fn new(target_jobs: Option<u64>) -> Self {
        Self::with_min_gap(target_jobs, Duration::from_millis(200))
    }

    /// [`Heartbeat::new`] with an explicit throttle interval.
    pub fn with_min_gap(target_jobs: Option<u64>, min_gap: Duration) -> Self {
        Self {
            start: Instant::now(),
            last: None,
            min_gap,
            target: target_jobs,
        }
    }

    /// The configured job target.
    pub fn target(&self) -> Option<u64> {
        self.target
    }

    /// True when enough wall-clock has passed for another line. The
    /// check is cheap — callers can gate expensive argument gathering
    /// on it.
    pub fn due(&self) -> bool {
        match self.last {
            None => true,
            Some(t) => t.elapsed() >= self.min_gap,
        }
    }

    /// Render a line if one is due (see [`render_heartbeat`] for the
    /// formatting and the division-by-zero guarantees).
    pub fn tick(
        &mut self,
        jobs_done: u64,
        in_flight: usize,
        miss_rate: f64,
        alpha: Option<f64>,
        rho: Option<f64>,
        sim_seconds: f64,
    ) -> Option<String> {
        if !self.due() {
            return None;
        }
        self.last = Some(Instant::now());
        Some(render_heartbeat(
            self.start.elapsed(),
            jobs_done,
            self.target,
            in_flight,
            miss_rate,
            alpha,
            rho,
            sim_seconds,
        ))
    }

    /// Render a final line unconditionally (run completion).
    pub fn finish(
        &mut self,
        jobs_done: u64,
        in_flight: usize,
        miss_rate: f64,
        sim_seconds: f64,
    ) -> String {
        self.last = Some(Instant::now());
        render_heartbeat(
            self.start.elapsed(),
            jobs_done,
            self.target,
            in_flight,
            miss_rate,
            None,
            None,
            sim_seconds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Satellite regression tests: the heartbeat math mirrors the
    // zero-duration guard on `StreamOutcome::throughput_jps` — no
    // division by zero on the first window or a zero-duration run.
    #[test]
    fn zero_elapsed_reports_zero_rate_and_unknown_eta() {
        let line = render_heartbeat(Duration::ZERO, 0, Some(100), 0, 0.0, None, None, 0.0);
        assert!(line.contains("0 jobs/s"), "{line}");
        assert!(line.contains("eta ?"), "{line}");
    }

    #[test]
    fn zero_jobs_with_elapsed_time_reports_zero_rate() {
        let line = render_heartbeat(
            Duration::from_secs(5),
            0,
            Some(100),
            3,
            0.0,
            None,
            None,
            1.0,
        );
        assert!(line.contains("0 jobs/s"), "{line}");
        assert!(line.contains("eta ?"), "{line}");
    }

    #[test]
    fn reached_target_reports_zero_eta_even_at_zero_elapsed() {
        let line = render_heartbeat(Duration::ZERO, 100, Some(100), 0, 0.0, None, None, 2.0);
        assert!(line.contains("eta 0s"), "{line}");
    }

    #[test]
    fn steady_state_eta_is_finite() {
        let line = render_heartbeat(
            Duration::from_secs(10),
            100,
            Some(300),
            5,
            0.25,
            Some(4.0),
            Some(0.9),
            42.0,
        );
        assert!(line.contains("10 jobs/s"), "{line}");
        assert!(line.contains("eta 20s"), "{line}");
        assert!(line.contains("miss 25.0%"), "{line}");
        assert!(line.contains("alpha 4.00"), "{line}");
        assert!(line.contains("rho 0.90"), "{line}");
    }

    #[test]
    fn no_target_formats_bare_count() {
        let line = render_heartbeat(Duration::from_secs(1), 7, None, 1, 0.0, None, None, 0.5);
        assert!(line.contains(" 7 jobs "), "{line}");
        assert!(line.contains("eta ?"), "{line}");
    }

    #[test]
    fn throttle_suppresses_back_to_back_ticks() {
        let mut hb = Heartbeat::with_min_gap(Some(10), Duration::from_secs(3600));
        assert!(hb.tick(1, 0, 0.0, None, None, 0.0).is_some());
        assert!(hb.tick(2, 0, 0.0, None, None, 0.0).is_none());
        // finish() always renders.
        assert!(hb.finish(10, 0, 0.0, 1.0).contains("10/10"));
    }

    #[test]
    fn long_durations_format_in_minutes_and_hours() {
        assert_eq!(format_secs(75.0), "1m15s");
        assert_eq!(format_secs(3700.0), "1h01m");
        assert_eq!(format_secs(f64::INFINITY), "?");
    }
}
