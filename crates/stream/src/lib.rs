//! # apt-stream
//!
//! Open-system streaming on top of the APT reproduction: arrival sources,
//! a bounded-memory driver, and online metrics.
//!
//! The paper evaluates *closed* workloads — every kernel present at
//! `t = 0` (or at a fixed, fully materialized arrival vector). The
//! ROADMAP's north-star is a production-scale system under continuous
//! heavy traffic, which needs the opposite regime: jobs arrive forever,
//! the system never drains, and evaluation happens on throughput, latency
//! quantiles and saturation points rather than makespan. This crate opens
//! that axis:
//!
//! * [`source`] — the [`Source`] trait plus Poisson, bursty on/off (MMPP),
//!   diurnal-rate, and trace-replay arrival processes, all seeded through
//!   the workspace's own `SplitMix64` and yielding [`JobTemplate`]s of
//!   configurable DAG families lazily, one at a time.
//! * [`driver`] — [`simulate_source`]: pulls arrivals just-in-time, feeds
//!   them into `apt-hetsim`'s slot-recycling [`apt_hetsim::OpenEngine`],
//!   retires completed jobs into streaming metrics, and sustains
//!   million-job runs with memory bounded by the jobs in flight. The gated
//!   form ([`simulate_source_gated`]) puts an [`AdmissionGate`] in the
//!   admit path so overload *sheds* jobs instead of queueing unboundedly.
//! * [`job`] — job templates and the DAG families they instantiate.
//! * [`deadline`] — per-job SLOs: [`DeadlineSpec`] derives relative
//!   deadlines (fixed, proportional to each job's minimum critical path,
//!   or distribution-drawn) on a dedicated RNG stream, so tagging never
//!   perturbs arrivals. The driver converts them to absolute deadlines on
//!   admission; the engine stamps every kernel slot (policies read them
//!   via `SimView::deadline`, and `ReadyOrder::EarliestDeadline` makes
//!   the ready set iterate EDF); retirement feeds miss-rate and tardiness
//!   quantiles in `apt-metrics`. The admission gates and SLO evaluation
//!   live one layer up in `apt-slo`.
//!
//! The streaming path is *semantics-preserving*: a finite source replayed
//! through the driver schedules byte-for-byte like
//! `apt_hetsim::simulate_stream` over the materialized workload (pinned by
//! the differential proptests in `tests/`), so every closed-world result in
//! this repo extends unchanged to the open system.
//!
//! ## Failure model
//!
//! Setting [`DriverOpts::faults`] to a non-empty [`apt_hetsim::FaultPlan`]
//! arms `apt-faults`' seeded fault injection inside the engine: transient
//! kernel failures (the attempt dies partway through and re-executes),
//! processor crash/repair cycles (a down processor leaves the idle set,
//! its in-flight kernel is orphaned back into the ready queue, and it
//! returns after repair), and link-degradation episodes. The driver layers
//! a [`apt_hetsim::RetryPolicy`] on top — bounded attempts per kernel with
//! exponential backoff and jitter, plus a per-job retry budget — and a job
//! that exhausts either bound is *shed*: it retires as
//! `CompletedJob::failed` with partial records instead of wedging the
//! stream. [`StreamOutcome`] then splits **goodput** (completed jobs/s)
//! from raw throughput, and carries the fault bill —
//! [`StreamOutcome::availability`], [`StreamOutcome::wasted_work_frac`],
//! and the engine's `FaultTotals` — while the windowed snapshots expose
//! per-window failure counters and availability for online dashboards.
//! Fault draws ride a salted RNG stream of their own, so arming a plan
//! never perturbs arrivals or deadline tags, and a `FaultPlan::none()`
//! run is byte-identical to the plain driver (pinned in
//! `tests/stream_equivalence.rs`).
//!
//! ## Quickstart
//!
//! ```
//! use apt_stream::{simulate_source, DriverOpts, JobFamily, PoissonSource};
//! use apt_hetsim::SystemConfig;
//! use apt_dfg::LookupTable;
//! use apt_core::Apt;
//!
//! // 300 diamond jobs arriving at 0.25 jobs/s, scheduled by APT(α = 4).
//! let lookup = LookupTable::paper();
//! let mut source = PoissonSource::new(lookup, 0.25, 300, JobFamily::Diamond { width: 2 }, 42);
//! let outcome = simulate_source(
//!     &mut source,
//!     &SystemConfig::paper_4gbps(),
//!     lookup,
//!     &mut Apt::new(4.0),
//!     &DriverOpts::default(),
//! )
//! .unwrap();
//! assert_eq!(outcome.jobs_completed, 300);
//! // Memory scaled with the in-flight peak, not the 300-job stream.
//! assert!(outcome.arena_slots < 300);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod deadline;
pub mod driver;
pub mod job;
#[cfg(test)]
mod shard_ready;
pub mod source;
pub mod telemetry;

pub use deadline::DeadlineSpec;
pub use driver::{
    simulate_source, simulate_source_controlled, simulate_source_gated, simulate_source_observed,
    simulate_source_telemetered, simulate_source_traced, AdmissionGate, AdmitAll, AdmitRequest,
    DriverOpts, StreamOutcome,
};
pub use job::{JobFamily, JobTemplate};
pub use source::{DiurnalSource, OnOffSource, PoissonSource, Source, TraceSource};
pub use telemetry::StreamTelemetry;

// Completed-job types come from the engine; re-export for one-stop imports.
pub use apt_hetsim::{CompletedJob, JobId, ReadyOrder};
