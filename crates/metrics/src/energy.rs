//! Energy accounting — an extension beyond the paper's evaluation.
//!
//! The thesis motivates heterogeneous systems with *both* "higher
//! performance and power efficiency" (§1, abstract) and cites Huang et al.
//! on GPU energy efficiency, but its evaluation only measures time. This
//! module closes that gap: given per-category busy/idle power draws, it
//! integrates a schedule trace into energy (joules), so policies can be
//! compared on the paper's second axis too.
//!
//! The default model uses TDP-class figures for the paper's devices
//! (Intel i7-2600 class CPU, Tesla K20 class GPU, Virtex-7 class FPGA).
//! They are *illustrative* — the thesis provides no power measurements —
//! and fully overridable.

use apt_base::{ProcKind, SimDuration};
use apt_hetsim::{SystemConfig, Trace};
use serde::{Deserialize, Serialize};

/// Busy/idle power draw of one processor category, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerDraw {
    /// Power while executing or transferring, W.
    pub busy_watts: f64,
    /// Power while idle, W.
    pub idle_watts: f64,
}

/// Per-category power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    cpu: PowerDraw,
    gpu: PowerDraw,
    fpga: PowerDraw,
    asic: PowerDraw,
}

impl Default for PowerModel {
    /// TDP-class defaults for the paper's device classes: 95/25 W CPU,
    /// 225/25 W GPU, 25/10 W FPGA, 5/1 W ASIC.
    fn default() -> Self {
        PowerModel {
            cpu: PowerDraw {
                busy_watts: 95.0,
                idle_watts: 25.0,
            },
            gpu: PowerDraw {
                busy_watts: 225.0,
                idle_watts: 25.0,
            },
            fpga: PowerDraw {
                busy_watts: 25.0,
                idle_watts: 10.0,
            },
            asic: PowerDraw {
                busy_watts: 5.0,
                idle_watts: 1.0,
            },
        }
    }
}

impl PowerModel {
    /// The draw of one category.
    pub fn draw(&self, kind: ProcKind) -> PowerDraw {
        match kind {
            ProcKind::Cpu => self.cpu,
            ProcKind::Gpu => self.gpu,
            ProcKind::Fpga => self.fpga,
            ProcKind::Asic => self.asic,
        }
    }

    /// Override one category's draw (builder style).
    pub fn with_draw(mut self, kind: ProcKind, draw: PowerDraw) -> Self {
        match kind {
            ProcKind::Cpu => self.cpu = draw,
            ProcKind::Gpu => self.gpu = draw,
            ProcKind::Fpga => self.fpga = draw,
            ProcKind::Asic => self.asic = draw,
        }
        self
    }
}

/// Per-run energy breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Energy spent executing and transferring, J.
    pub busy_joules: f64,
    /// Energy spent idling until the makespan, J.
    pub idle_joules: f64,
    /// Per-processor totals (busy + idle), J, indexed by processor.
    pub per_proc_joules: Vec<f64>,
}

impl EnergyReport {
    /// Total energy of the schedule, J.
    pub fn total_joules(&self) -> f64 {
        self.busy_joules + self.idle_joules
    }
}

fn joules(power_watts: f64, d: SimDuration) -> f64 {
    power_watts * d.as_secs_f64()
}

/// Integrate a trace into energy under a power model. Idle time is charged
/// until the *makespan* on every processor (the machine is on for the whole
/// run — exactly why MET's voluntary idling costs energy as well as time).
pub fn energy_report(trace: &Trace, config: &SystemConfig, model: &PowerModel) -> EnergyReport {
    let makespan = trace.makespan();
    let mut busy_total = 0.0;
    let mut idle_total = 0.0;
    let mut per_proc = Vec::with_capacity(config.len());
    for proc in config.proc_ids() {
        let draw = model.draw(config.kind_of(proc));
        let stats = trace
            .proc_stats
            .get(proc.index())
            .copied()
            .unwrap_or_default();
        let active = stats.busy + stats.transfer;
        let busy = joules(draw.busy_watts, active);
        let idle = joules(draw.idle_watts, makespan - active);
        busy_total += busy;
        idle_total += idle;
        per_proc.push(busy + idle);
    }
    EnergyReport {
        busy_joules: busy_total,
        idle_joules: idle_total,
        per_proc_joules: per_proc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_dfg::generator::build_type1;
    use apt_dfg::{Kernel, KernelKind, LookupTable};
    use apt_hetsim::simulate;
    use apt_policies::Met;

    #[test]
    fn hand_computed_energy_for_figure5_met() {
        // MET on the Figure-5 workload: makespan 318.093 ms.
        // CPU busy 112 ms, GPU busy 0, FPGA busy 318.093 ms (3×106 + 0.093).
        let dfg = build_type1(&[
            Kernel::canonical(KernelKind::NeedlemanWunsch),
            Kernel::canonical(KernelKind::Bfs),
            Kernel::canonical(KernelKind::Bfs),
            Kernel::canonical(KernelKind::Bfs),
            Kernel::new(KernelKind::Cholesky, 250_000),
        ]);
        let config = SystemConfig::paper_no_transfers();
        let res = simulate(&dfg, &config, LookupTable::paper(), &mut Met::new()).unwrap();
        let report = energy_report(&res.trace, &config, &PowerModel::default());

        let makespan_s = 0.318_093;
        let cpu = 95.0 * 0.112 + 25.0 * (makespan_s - 0.112);
        let gpu = 225.0 * 0.0 + 25.0 * makespan_s;
        let fpga = 25.0 * makespan_s; // busy the whole run at 25 W
        assert!((report.per_proc_joules[0] - cpu).abs() < 1e-9);
        assert!((report.per_proc_joules[1] - gpu).abs() < 1e-9);
        assert!((report.per_proc_joules[2] - fpga).abs() < 1e-9);
        assert!((report.total_joules() - (cpu + gpu + fpga)).abs() < 1e-9);
    }

    #[test]
    fn energy_splits_busy_and_idle_consistently() {
        let dfg = build_type1(&[Kernel::canonical(KernelKind::Srad); 4]);
        let config = SystemConfig::paper_4gbps();
        let res = simulate(&dfg, &config, LookupTable::paper(), &mut Met::new()).unwrap();
        let r = energy_report(&res.trace, &config, &PowerModel::default());
        let per_proc_sum: f64 = r.per_proc_joules.iter().sum();
        assert!((r.total_joules() - per_proc_sum).abs() < 1e-9);
        assert!(r.busy_joules > 0.0 && r.idle_joules > 0.0);
    }

    #[test]
    fn custom_model_overrides_apply() {
        let model = PowerModel::default().with_draw(
            ProcKind::Fpga,
            PowerDraw {
                busy_watts: 40.0,
                idle_watts: 0.0,
            },
        );
        assert_eq!(model.draw(ProcKind::Fpga).busy_watts, 40.0);
        assert_eq!(model.draw(ProcKind::Fpga).idle_watts, 0.0);
        // Other categories untouched.
        assert_eq!(model.draw(ProcKind::Cpu).busy_watts, 95.0);
    }

    #[test]
    fn empty_trace_consumes_nothing() {
        let trace = Trace {
            records: vec![],
            proc_stats: vec![Default::default(); 3],
        };
        let config = SystemConfig::paper_4gbps();
        let r = energy_report(&trace, &config, &PowerModel::default());
        assert_eq!(r.total_joules(), 0.0);
    }
}
