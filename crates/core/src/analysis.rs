//! Allocation analyses — Appendix B (Tables 15 and 16).
//!
//! The thesis appendix breaks down, per experiment and per α, how many times
//! APT chose a second-best processor and for which kernels. The same
//! analysis is regenerated here from simulation traces: every alternative
//! assignment is flagged in the trace by the policy, so the table is a
//! straight aggregation.

use apt_dfg::KernelKind;
use apt_hetsim::Trace;
use std::collections::BTreeMap;
use std::fmt;

/// Summary of APT's alternative-processor decisions in one run
/// (one row of Table 15/16).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationAnalysis {
    /// Total kernels in the experiment.
    pub total_kernels: usize,
    /// Total assignments that went to a second-best processor.
    pub total_alternative: usize,
    /// Alternative assignments per kernel kind (the "kernel specific
    /// assignments" column), sorted by kind.
    pub by_kind: BTreeMap<KernelKind, usize>,
}

impl AllocationAnalysis {
    /// Aggregate a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        AllocationAnalysis {
            total_kernels: trace.records.len(),
            total_alternative: trace.alt_total(),
            by_kind: trace.alt_by_kind(),
        }
    }

    /// Fraction of kernels that ran on a second-best processor.
    pub fn alternative_fraction(&self) -> f64 {
        if self.total_kernels == 0 {
            0.0
        } else {
            self.total_alternative as f64 / self.total_kernels as f64
        }
    }

    /// The per-kind column in the appendix's `count-tag` notation
    /// (e.g. `"11-bfs 6-nw"`); `"0"` when no alternatives were taken.
    pub fn kind_column(&self) -> String {
        if self.by_kind.is_empty() {
            return "0".to_string();
        }
        // Appendix style: most-frequent first, ties by tag.
        let mut entries: Vec<(&KernelKind, &usize)> = self.by_kind.iter().collect();
        entries.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.tag().cmp(b.0.tag())));
        entries
            .iter()
            .map(|(k, n)| format!("{n}-{}", k.tag()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for AllocationAnalysis {
    /// A single appendix-style row.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} kernels, {} alternative ({})",
            self.total_kernels,
            self.total_alternative,
            self.kind_column()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Apt;
    use apt_dfg::generator::build_type1;
    use apt_dfg::{Kernel, LookupTable};
    use apt_hetsim::{simulate, SystemConfig};

    fn bfs() -> Kernel {
        Kernel::canonical(KernelKind::Bfs)
    }
    fn nw() -> Kernel {
        Kernel::canonical(KernelKind::NeedlemanWunsch)
    }
    fn cd() -> Kernel {
        Kernel::new(KernelKind::Cholesky, 250_000)
    }

    #[test]
    fn figure5_analysis_counts_the_gpu_bfs() {
        let dfg = build_type1(&[nw(), bfs(), bfs(), bfs(), cd()]);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            LookupTable::paper(),
            &mut Apt::new(8.0),
        )
        .unwrap();
        let a = AllocationAnalysis::from_trace(&res.trace);
        assert_eq!(a.total_kernels, 5);
        assert_eq!(a.total_alternative, 1);
        assert_eq!(a.by_kind[&KernelKind::Bfs], 1);
        assert_eq!(a.kind_column(), "1-bfs");
        assert!((a.alternative_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_alternative_formats_as_zero() {
        let dfg = build_type1(&[nw()]);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            LookupTable::paper(),
            &mut Apt::new(1.5),
        )
        .unwrap();
        let a = AllocationAnalysis::from_trace(&res.trace);
        assert_eq!(a.total_alternative, 0);
        assert_eq!(a.kind_column(), "0");
        assert_eq!(a.to_string(), "1 kernels, 0 alternative (0)");
    }

    #[test]
    fn kind_column_sorts_by_frequency() {
        let mut by_kind = BTreeMap::new();
        by_kind.insert(KernelKind::NeedlemanWunsch, 6);
        by_kind.insert(KernelKind::Bfs, 11);
        let a = AllocationAnalysis {
            total_kernels: 46,
            total_alternative: 17,
            by_kind,
        };
        // Matches Table 15's first row at α = 4: "11-bfs 6-nw".
        assert_eq!(a.kind_column(), "11-bfs 6-nw");
    }
}
