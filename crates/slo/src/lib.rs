//! # apt-slo
//!
//! Deadline-aware scheduling on top of the open-system streaming layer:
//! per-job SLOs, admission control, and the runner that ties them
//! together.
//!
//! ## The SLO model
//!
//! `apt-stream` jobs may carry a *relative deadline* (finish within `D` of
//! arrival — `apt_stream::DeadlineSpec` generates them fixed,
//! proportional to each job's minimum critical path, or drawn from a
//! distribution). The streaming driver converts it to an absolute
//! deadline on admission; the open engine stamps every kernel slot with
//! it (visible to policies via `apt_hetsim::SimView::deadline`, and
//! driving the ready set's iteration under
//! `apt_hetsim::ReadyOrder::EarliestDeadline`); retirement reports
//! per-job tardiness into `apt-metrics`' online miss-rate and tardiness
//! quantile estimators. The deadline-aware policy variants — `EDF-APT`
//! and `LL-APT` in `apt-core` — order work by urgency and (for LL-APT)
//! clamp APT's α-threshold to the evaporating slack.
//!
//! ## Admission control
//!
//! An open system under sustained overload (offered λ past the service
//! capacity) has no good steady state: either the backlog grows without
//! bound or *every* job goes tardy. This crate's [`AdmissionPolicy`]
//! gates decide per arriving job whether it enters the system at all, so
//! overload degrades into *shed* jobs plus on-time survivors instead of
//! universal lateness:
//!
//! * [`AcceptAll`] — the open baseline (every comparison's control row).
//! * [`UtilizationBound`] — the classic density test: admit while the sum
//!   of in-flight job densities `work / deadline` stays within
//!   `bound × m` for `m` processors. Deadline-free jobs have density 0.
//! * [`FeasibilityGate`] — a response-time estimate: admit only when
//!   `backlog / m + critical_path(job) ≤ D`, i.e. the job still has a
//!   plausible chance of meeting its deadline behind the current
//!   in-flight work.
//!
//! Gates plug into the driver through `apt_stream::AdmissionGate`
//! (see [`simulate_source_slo`]) and hear every completion, so their
//! reservations drain as jobs retire. Shed/accepted accounting lands in
//! `StreamOutcome::jobs_shed` / `shed_rate`.
//!
//! ## Quickstart
//!
//! ```
//! use apt_slo::{simulate_source_slo, UtilizationBound};
//! use apt_stream::{DeadlineSpec, DriverOpts, JobFamily, PoissonSource};
//! use apt_hetsim::SystemConfig;
//! use apt_dfg::LookupTable;
//! use apt_base::SimDuration;
//! use apt_core::EdfApt;
//!
//! let lookup = LookupTable::paper();
//! let config = SystemConfig::paper_4gbps();
//! // 200 diamond jobs at 0.3 j/s, deadlines 4× each job's critical path.
//! let mut source = PoissonSource::new(lookup, 0.3, 200, JobFamily::Diamond { width: 2 }, 7)
//!     .with_deadlines(DeadlineSpec::ProportionalCp { factor: 4.0 });
//! let mut gate = UtilizationBound::new(lookup, &config, 1.0);
//! let outcome = simulate_source_slo(
//!     &mut source,
//!     &config,
//!     lookup,
//!     &mut EdfApt::new(4.0),
//!     &mut gate,
//!     &DriverOpts::default(),
//! )
//! .unwrap();
//! assert_eq!(outcome.jobs_admitted + outcome.jobs_shed, 200);
//! assert!(outcome.miss_rate() <= 1.0);
//! # let _ = SimDuration::ZERO;
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod runner;

pub use admission::{
    AcceptAll, AdmissionPolicy, FeasibilityGate, UtilizationBound, MAX_RUNTIME_BOUND,
    MIN_RUNTIME_BOUND,
};
pub use runner::{simulate_source_slo, simulate_source_slo_observed};
