//! Quickstart: schedule a random kernel stream on the paper's CPU+GPU+FPGA
//! machine with APT and inspect the result.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use apt_metrics::gantt::gantt;
use apt_metrics::RunSummary;
use apt_suite::prelude::*;

fn main() {
    // 1. The measured execution times (Appendix A of the thesis).
    let lookup = LookupTable::paper();

    // 2. A workload: 24 kernels, no cross-kernel dependencies except the
    //    final fan-in (DFG Type-1), generated reproducibly from a seed.
    let dfg = generate(DfgType::Type1, &StreamConfig::new(24, 0xC0FFEE), lookup);
    println!(
        "workload: {} kernels, {} edges",
        dfg.len(),
        dfg.edge_count()
    );

    // 3. The machine: one CPU, one GPU, one FPGA, 4 GB/s PCIe everywhere.
    let system = SystemConfig::paper_4gbps();

    // 4. Schedule with APT at the paper's best flexibility factor α = 4,
    //    and with plain MET for comparison.
    let apt = simulate(&dfg, &system, lookup, &mut Apt::new(4.0)).expect("APT run");
    let met = simulate(&dfg, &system, lookup, &mut Met::new()).expect("MET run");

    for res in [&met, &apt] {
        let s = RunSummary::from_result(res);
        println!(
            "\n{:10} makespan {:>10}   λ total {:>10}   alt assignments {}",
            s.policy,
            format!("{}", s.makespan),
            format!("{}", s.lambda_total),
            s.alt_assignments
        );
        for (i, u) in s.utilization().iter().enumerate() {
            println!(
                "  {:>5}: {:>5.1}% busy",
                system.proc(ProcId::new(i)).name,
                u * 100.0
            );
        }
    }

    println!("\nAPT schedule (Gantt, · = transfer):");
    print!("{}", gantt(&apt.trace, &system, 100));

    let gain = 100.0 * (met.makespan().as_ns() as f64 - apt.makespan().as_ns() as f64)
        / met.makespan().as_ns() as f64;
    println!("\nAPT vs MET on this stream: {gain:+.1}% makespan");
}
