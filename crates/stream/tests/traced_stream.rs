//! The tracing contract of the streaming driver.
//!
//! Tracing must be *purely observational*: a run under an armed
//! [`TraceSink`] — null or recording — produces a [`StreamOutcome`]
//! identical to the untraced run, while the recorded event stream accounts
//! for every admission, shed, retirement, dispatch, completion, control
//! action, and window counter the run produced.

use apt_base::{SimDuration, SimTime};
use apt_control::{ControlAction, Controller};
use apt_core::Apt;
use apt_dfg::LookupTable;
use apt_hetsim::FaultPlan;
use apt_hetsim::SystemConfig;
use apt_metrics::StreamSnapshot;
use apt_stream::{
    simulate_source_traced, AdmitAll, DeadlineSpec, DriverOpts, JobFamily, PoissonSource,
    StreamOutcome,
};
use apt_trace::{CounterKind, NullSink, TraceEvent, TraceSink, VecSink};

/// Emits one action of each driver-visible kind on the first window.
struct OneShot {
    fired: bool,
}

impl Controller for OneShot {
    fn name(&self) -> String {
        "one-shot".into()
    }
    fn on_window(&mut self, _s: &StreamSnapshot, out: &mut Vec<ControlAction>) {
        if !self.fired {
            self.fired = true;
            out.push(ControlAction::SetAlpha(6.0));
            out.push(ControlAction::SetAdmissionBound(0.9));
        }
    }
}

/// A controlled, capacity-gated, faulty, deadline-carrying stream — every
/// driver emission path live at once.
fn run(sink: Option<Box<dyn TraceSink>>) -> (StreamOutcome, Option<Box<dyn TraceSink>>) {
    let config = SystemConfig::paper_4gbps();
    let lookup = LookupTable::paper();
    let mut source = PoissonSource::new(lookup, 2.0, 150, JobFamily::Chain { len: 2 }, 9)
        .with_deadlines(DeadlineSpec::Fixed(SimDuration::from_ms(800)));
    let mut policy = Apt::new(8.0);
    let mut ctrl = OneShot { fired: false };
    let opts = DriverOpts {
        snapshot_interval: Some(SimDuration::from_ms(10_000)),
        max_in_flight_jobs: Some(6),
        shed_when_full: true,
        faults: FaultPlan::seeded(5).with_transient(0.05),
        ..DriverOpts::default()
    };
    match sink {
        Some(sink) => {
            let (outcome, sink) = simulate_source_traced(
                &mut source,
                &config,
                lookup,
                &mut policy,
                &opts,
                &mut AdmitAll,
                Some(&mut ctrl),
                sink,
                |_| {},
            )
            .unwrap();
            (outcome, Some(sink))
        }
        None => {
            let outcome = apt_stream::simulate_source_controlled(
                &mut source,
                &config,
                lookup,
                &mut policy,
                &opts,
                &mut AdmitAll,
                &mut ctrl,
                |_| {},
            )
            .unwrap();
            (outcome, None)
        }
    }
}

fn assert_outcomes_equal(a: &StreamOutcome, b: &StreamOutcome) {
    assert_eq!(a.jobs_admitted, b.jobs_admitted);
    assert_eq!(a.jobs_completed, b.jobs_completed);
    assert_eq!(a.jobs_failed, b.jobs_failed);
    assert_eq!(a.jobs_shed, b.jobs_shed);
    assert_eq!(a.kernels_completed, b.kernels_completed);
    assert_eq!(a.end, b.end);
    assert_eq!(a.lambda_total, b.lambda_total);
    assert_eq!(a.proc_stats, b.proc_stats);
    assert_eq!(a.snapshots, b.snapshots);
    assert_eq!(a.deadline_misses, b.deadline_misses);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.control_log.len(), b.control_log.len());
    for (x, y) in a.control_log.iter().zip(&b.control_log) {
        assert_eq!(x.at, y.at);
        assert_eq!(x.action, y.action);
        assert_eq!(x.applied, y.applied);
    }
}

/// An armed recording sink changes nothing, and its event stream accounts
/// for exactly the run the outcome describes.
#[test]
fn traced_run_is_identical_and_fully_accounted() {
    let (bare, _) = run(None);
    let (traced, sink) = run(Some(Box::new(VecSink::new())));
    assert_outcomes_equal(&bare, &traced);

    let events = sink.unwrap().snapshot();
    assert!(!events.is_empty());
    let count =
        |pred: &dyn Fn(&TraceEvent) -> bool| events.iter().filter(|e| pred(e)).count() as u64;

    // Driver bookkeeping: every admission, shed, and retirement is an event.
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::JobAdmitted { .. })),
        traced.jobs_admitted
    );
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::JobShed { .. })),
        traced.jobs_shed
    );
    assert!(traced.jobs_shed > 0, "the capacity guard never shed");
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::JobRetired { .. })),
        traced.jobs_completed + traced.jobs_failed
    );
    // Engine bookkeeping: completions match, and every completed kernel
    // was dispatched and started.
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::KernelComplete { .. })),
        traced.kernels_completed
    );
    assert!(count(&|e| matches!(e, TraceEvent::KernelDispatch { .. })) >= traced.kernels_completed);
    assert!(count(&|e| matches!(e, TraceEvent::ExecStart { .. })) >= traced.kernels_completed);
    // Every kernel slot was bound to its job at admission.
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::KernelBound { .. })),
        2 * traced.jobs_admitted,
        "Chain {{ len: 2 }} binds two kernels per job"
    );
    // APT under load produced decision provenance for alternative picks.
    assert!(
        count(&|e| matches!(e, TraceEvent::Decision(_))) > 0,
        "no DecisionRecord from APT under a saturating stream"
    );
    // Transient faults fired, and each retry left its event.
    assert!(traced.faults.retries > 0, "the fault plan never fired");
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::RetryAttempt { .. })),
        traced.faults.retries
    );
    // Control actions are mirrored one-to-one.
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::Control { .. })),
        traced.control_log.len() as u64
    );
    // Window counters: one α and one in-flight sample per closed window.
    let closed = traced
        .snapshots
        .iter()
        .filter(|s| s.interval == SimDuration::from_ms(10_000))
        .count() as u64;
    assert!(closed > 0);
    let counter_of = |kind: CounterKind| {
        count(&|e| matches!(e, TraceEvent::Counter { kind: k, .. } if *k == kind))
    };
    assert!(counter_of(CounterKind::Alpha) >= closed);
    assert!(counter_of(CounterKind::InFlightJobs) >= closed);
    assert!(counter_of(CounterKind::WindowMissRate) >= closed);
    // AdmitAll has no utilization bound: no ρ track on this run.
    assert_eq!(counter_of(CounterKind::Rho), 0);
    // The α retune is visible in the counter track: 8 before the window
    // where the one-shot controller fired, 6 after.
    let alphas: Vec<f64> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Counter {
                kind: CounterKind::Alpha,
                value,
                ..
            } => Some(*value),
            _ => None,
        })
        .collect();
    assert_eq!(alphas[0], 8.0);
    assert_eq!(*alphas.last().unwrap(), 6.0);
}

/// The null sink: same outcome, nothing retained, nothing dropped.
#[test]
fn null_sink_run_is_identical_and_empty() {
    let (bare, _) = run(None);
    let (nulled, sink) = run(Some(Box::new(NullSink)));
    assert_outcomes_equal(&bare, &nulled);
    let sink = sink.unwrap();
    assert_eq!(sink.dropped(), 0);
    assert!(sink.snapshot().is_empty());
    assert_eq!(sink.name(), "null");
}

/// Satellite pin: the per-window admission/shed counters under
/// `shed_when_full` — every window's `window_admitted`/`window_shed`
/// partitions the offered load, and the sums reconcile with the run
/// totals.
#[test]
fn window_admission_counters_reconcile_under_shed_when_full() {
    let config = SystemConfig::paper_4gbps();
    let lookup = LookupTable::paper();
    let mut source = PoissonSource::new(lookup, 4.0, 200, JobFamily::Single, 21);
    let outcome = apt_stream::simulate_source(
        &mut source,
        &config,
        lookup,
        &mut Apt::new(4.0),
        &DriverOpts {
            snapshot_interval: Some(SimDuration::from_ms(5_000)),
            max_in_flight_jobs: Some(4),
            shed_when_full: true,
            ..DriverOpts::default()
        },
    )
    .unwrap();
    assert!(outcome.saturated, "the guard must fire under this load");
    assert!(outcome.jobs_shed > 0);
    assert_eq!(
        outcome
            .snapshots
            .iter()
            .map(|s| s.window_admitted)
            .sum::<u64>(),
        outcome.jobs_admitted
    );
    assert_eq!(
        outcome.snapshots.iter().map(|s| s.window_shed).sum::<u64>(),
        outcome.jobs_shed
    );
    assert!(
        outcome.snapshots.iter().any(|s| s.window_shed > 0),
        "no single window recorded a shed"
    );
    assert!(
        outcome
            .snapshots
            .iter()
            .any(|s| s.window_admitted > 0 && s.window_shed > 0),
        "shed mode interleaves admissions and sheds within a window"
    );
    assert!(outcome.end > SimTime::ZERO);
}
