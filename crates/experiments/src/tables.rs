//! Regeneration of the paper's result tables (7–16).
//!
//! Each function prints the same rows the thesis reports. Absolute values
//! depend on the reconstructed kernel streams (see `workloads`), so the
//! quantities to compare against the paper are the *shapes*: which policy
//! wins, by what rough factor, where the α valley sits, and which kernels
//! receive alternative assignments at which α.

use crate::runner::{
    avg_lambda_ms, avg_makespans_ms, policy_index, policy_matrix, Rate, POLICY_ORDER,
};
use apt_core::prelude::*;
use apt_metrics::improvement::{improvement_percent, second_best};
use apt_metrics::table::{fmt_ms, fmt_pct, TextTable};

/// Which per-run quantity a comparison table reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Metric {
    Makespan,
    Lambda,
}

/// Table 1 — the application ↔ dwarf membership matrix (§2.4).
pub fn table1() -> String {
    format!(
        "Table 1. Application/dwarf membership (x = belongs; columns are the eight dwarfs of Table 1).\n{}",
        apt_dfg::dwarf::table1_matrix()
    )
}

/// §3.2 metric 5 — "number of occurrences of better solutions": per DFG
/// family, on how many of the ten experiments APT (α=4) strictly beats every
/// dynamic baseline, and every policy including the static ones.
pub fn wins() -> TextTable {
    let mut t = TextTable::new(
        "Occurrences of better solutions for APT (α=4), out of 10 experiments",
        &["DFG family", "vs dynamic policies", "vs all policies"],
    );
    for ty in DfgType::ALL {
        let matrix = policy_matrix(ty, 4.0, Rate::Gbps4);
        let apt: Vec<f64> = matrix
            .iter()
            .map(|r| r[policy_index("APT")].makespan.as_ms_f64())
            .collect();
        let col = |p: &str| -> Vec<f64> {
            matrix
                .iter()
                .map(|r| r[policy_index(p)].makespan.as_ms_f64())
                .collect()
        };
        let dynamic: Vec<Vec<f64>> = ["MET", "SPN", "SS", "AG"].iter().map(|p| col(p)).collect();
        let all: Vec<Vec<f64>> = ["MET", "SPN", "SS", "AG", "HEFT", "PEFT"]
            .iter()
            .map(|p| col(p))
            .collect();
        t.push_row(vec![
            ty.label().to_string(),
            apt_metrics::better_solution_count(&apt, &dynamic).to_string(),
            apt_metrics::better_solution_count(&apt, &all).to_string(),
        ]);
    }
    t
}

/// Table 7 — execution times of the Figure-5 kernels on each category.
pub fn table7() -> TextTable {
    let lookup = LookupTable::paper();
    let mut t = TextTable::new(
        "Table 7. Execution time of different kernels (ms)",
        &["Kernel", "CPU", "GPU", "FPGA"],
    );
    for kernel in [
        Kernel::canonical(KernelKind::NeedlemanWunsch),
        Kernel::canonical(KernelKind::Bfs),
        Kernel::new(KernelKind::Cholesky, 250_000),
    ] {
        let row = lookup.row(&kernel).expect("paper kernels are in the table");
        t.push_row(vec![
            kernel.kind.tag().to_uppercase(),
            format!("{:.3}", row.times[0].as_ms_f64()),
            format!("{:.3}", row.times[1].as_ms_f64()),
            format!("{:.3}", row.times[2].as_ms_f64()),
        ]);
    }
    t
}

fn comparison_table(title: &str, ty: DfgType, alpha: f64, metric: Metric) -> TextTable {
    let headers: Vec<&str> = std::iter::once("Graph").chain(POLICY_ORDER).collect();
    let mut t = TextTable::new(title, &headers);
    let matrix = policy_matrix(ty, alpha, Rate::Gbps4);
    for (i, row) in matrix.iter().enumerate() {
        let mut cells = vec![(i + 1).to_string()];
        for s in row {
            let v = match metric {
                Metric::Makespan => s.makespan,
                Metric::Lambda => s.lambda_total,
            };
            cells.push(fmt_ms(v));
        }
        t.push_row(cells);
    }
    t
}

/// Table 8 — total computation time (ms), DFG Type-1, α = 1.5, 4 GB/s.
pub fn table8() -> TextTable {
    comparison_table(
        "Table 8. Total computation time (ms), DFG Type-1, α=1.5",
        DfgType::Type1,
        1.5,
        Metric::Makespan,
    )
}

/// Table 9 — total computation time (ms), DFG Type-2, α = 1.5, 4 GB/s.
pub fn table9() -> TextTable {
    comparison_table(
        "Table 9. Total computation time (ms), DFG Type-2, α=1.5",
        DfgType::Type2,
        1.5,
        Metric::Makespan,
    )
}

/// Table 10 — total computation time (ms), DFG Type-2, α = 4, 4 GB/s.
pub fn table10() -> TextTable {
    comparison_table(
        "Table 10. Total computation time (ms), DFG Type-2, α=4",
        DfgType::Type2,
        4.0,
        Metric::Makespan,
    )
}

/// Table 11 — total λ delay (ms), DFG Type-1, α = 4, 4 GB/s.
pub fn table11() -> TextTable {
    comparison_table(
        "Table 11. Total λ delay (ms), DFG Type-1, α=4",
        DfgType::Type1,
        4.0,
        Metric::Lambda,
    )
}

/// Table 12 — total λ delay (ms), DFG Type-2, α = 4, 4 GB/s.
pub fn table12() -> TextTable {
    comparison_table(
        "Table 12. Total λ delay (ms), DFG Type-2, α=4",
        DfgType::Type2,
        4.0,
        Metric::Lambda,
    )
}

/// The §4.4 improvement of APT over the second-best *dynamic* policy for
/// one family at one α (positive = APT faster). Returns
/// `(improvement_exec_pct, improvement_lambda_pct)`.
///
/// The paper designates a single reference — "the second best policy can
/// only be a dynamic policy", in practice MET, "the closest performing
/// dynamic policy" — and measures both Eq. 13 and Eq. 14 against it. We do
/// the same: the reference is the dynamic baseline with the best *average
/// execution time*, and its λ is the Eq. 14 denominator.
pub fn improvements(ty: DfgType, alpha: f64) -> (f64, f64) {
    let matrix = policy_matrix(ty, alpha, Rate::Gbps4);
    let exec_avgs = avg_makespans_ms(&matrix);
    let lambda_avgs = avg_lambda_ms(&matrix);
    let apt = policy_index("APT");
    // Dynamic baselines only (the paper's rule).
    let dyn_policies = ["MET", "SPN", "SS", "AG"];
    let exec_refs: Vec<(String, f64)> = dyn_policies
        .iter()
        .map(|&p| (p.to_string(), exec_avgs[policy_index(p)]))
        .collect();
    let (ref_name, exec_ref) = second_best(&exec_refs).expect("nonempty").clone();
    let lambda_ref = lambda_avgs[policy_index(&ref_name)];
    (
        improvement_percent(exec_avgs[apt], exec_ref),
        improvement_percent(lambda_avgs[apt], lambda_ref),
    )
}

/// Table 13 — improvement metrics for APT per α and DFG family (Eq. 13–14).
pub fn table13() -> TextTable {
    let mut t = TextTable::new(
        "Table 13. Improvement metrics for APT vs second-best dynamic policy (%)",
        &[
            "α",
            "T1 Improvement_exec",
            "T1 Improvement_λ",
            "T2 Improvement_exec",
            "T2 Improvement_λ",
        ],
    );
    for &alpha in &PAPER_ALPHAS {
        let (e1, l1) = improvements(DfgType::Type1, alpha);
        let (e2, l2) = improvements(DfgType::Type2, alpha);
        t.push_row(vec![
            format!("{alpha}"),
            fmt_pct(e1),
            fmt_pct(l1),
            fmt_pct(e2),
            fmt_pct(l2),
        ]);
    }
    t
}

/// Table 14 — the complete lookup table (Appendix A).
pub fn table14() -> TextTable {
    let mut t = TextTable::new(
        "Table 14. Complete lookup table (ms)",
        &["Kernel", "Data Size", "CPU", "GPU", "FPGA"],
    );
    for row in LookupTable::paper().rows() {
        t.push_row(vec![
            row.kind.full_name().to_string(),
            row.data_size.to_string(),
            format!("{:.3}", row.times[0].as_ms_f64()),
            format!("{:.3}", row.times[1].as_ms_f64()),
            format!("{:.3}", row.times[2].as_ms_f64()),
        ]);
    }
    t
}

fn allocation_table(title: &str, ty: DfgType) -> TextTable {
    let mut t = TextTable::new(
        title,
        &[
            "α",
            "Experiment",
            "Total kernels",
            "Total different assignments",
            "Kernel specific assignments",
        ],
    );
    for &alpha in &PAPER_ALPHAS {
        let matrix = policy_matrix(ty, alpha, Rate::Gbps4);
        for (i, row) in matrix.iter().enumerate() {
            let apt = &row[policy_index("APT")];
            let analysis = apt_core::AllocationAnalysis {
                total_kernels: EXPERIMENT_KERNEL_COUNTS[i],
                total_alternative: apt.alt_assignments,
                by_kind: apt.alt_by_kind.clone(),
            };
            t.push_row(vec![
                format!("{alpha}"),
                (i + 1).to_string(),
                analysis.total_kernels.to_string(),
                analysis.total_alternative.to_string(),
                analysis.kind_column(),
            ]);
        }
    }
    t
}

/// Table 15 — APT kernel-allocation analyses for the DFG Type-1 graphs.
pub fn table15() -> TextTable {
    allocation_table(
        "Table 15. APT kernel allocation analyses, DFG Type-1",
        DfgType::Type1,
    )
}

/// Table 16 — APT kernel-allocation analyses for the DFG Type-2 graphs.
pub fn table16() -> TextTable {
    allocation_table(
        "Table 16. APT kernel allocation analyses, DFG Type-2",
        DfgType::Type2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_shape() {
        let t = table7();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.cell_f64(0, 1), Some(112.0)); // NW on CPU
        assert_eq!(t.cell_f64(1, 3), Some(106.0)); // BFS on FPGA
    }

    #[test]
    fn table8_has_ten_rows_and_apt_tracks_met_at_small_alpha() {
        let t = table8();
        assert_eq!(t.row_count(), 10);
        // Acceptance criterion 2 (DESIGN.md): APT ≈ MET at α = 1.5.
        for row in 0..10 {
            let apt = t.cell_f64(row, 1).unwrap();
            let met = t.cell_f64(row, 2).unwrap();
            assert!(
                (apt - met).abs() / met < 0.10,
                "row {row}: APT {apt} vs MET {met} diverge at α=1.5"
            );
        }
    }

    #[test]
    fn table10_apt_beats_met_at_alpha4_on_average() {
        let t = table10();
        let mut apt_total = 0.0;
        let mut met_total = 0.0;
        for row in 0..10 {
            apt_total += t.cell_f64(row, 1).unwrap();
            met_total += t.cell_f64(row, 2).unwrap();
        }
        assert!(
            apt_total < met_total,
            "APT(α=4) should beat MET on Type-2 overall: {apt_total} vs {met_total}"
        );
    }

    #[test]
    fn table13_shows_the_alpha4_peak() {
        let t = table13();
        assert_eq!(t.row_count(), PAPER_ALPHAS.len());
        // α = 4 (row 2) must show positive exec AND λ improvements on both
        // types (the paper's headline: 16–18 % exec, ~20 % λ).
        for col in 1..=4 {
            let v = t.cell_f64(2, col).unwrap();
            assert!(v > 0.0, "α=4 improvement in column {col} is {v}");
        }
        // α = 4 is the best α for execution time (the valley bottom).
        for col in [1, 3] {
            let at4 = t.cell_f64(2, col).unwrap();
            for row in [0, 1, 3, 4] {
                let other = t.cell_f64(row, col).unwrap();
                assert!(
                    at4 >= other,
                    "α=4 ({at4}) not the best in column {col}: row {row} has {other}"
                );
            }
        }
    }

    #[test]
    fn table14_embeds_all_25_rows() {
        let t = table14();
        assert_eq!(t.row_count(), 25);
    }

    #[test]
    fn allocation_tables_grow_with_alpha() {
        let t = table15();
        assert_eq!(t.row_count(), 50); // 5 α × 10 experiments
                                       // Total alternative assignments at α = 4 exceed those at α = 1.5.
        let sum_alpha = |alpha_row_base: usize| -> f64 {
            (0..10)
                .map(|i| t.cell_f64(alpha_row_base + i, 3).unwrap())
                .sum()
        };
        let at_1_5 = sum_alpha(0);
        let at_4 = sum_alpha(20);
        assert!(
            at_4 > at_1_5,
            "α=4 must produce more alternative assignments ({at_4} vs {at_1_5})"
        );
    }
}
