//! SLO-path throughput: deadline-tagged streams through the gated driver
//! (per-slot deadline stamping, EDF ordering, tardiness metrics, and
//! admission-gate bookkeeping on top of the plain streaming cost).
//! `apt-bench` tracks the same configurations as `slo/*` rows in
//! `BENCH_engine.json`.

use apt_bench::{slo_stream_run, STREAM_BENCH_JOBS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_slo_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("slo/poisson_edf_apt");
    g.throughput(Throughput::Elements(STREAM_BENCH_JOBS));
    for (name, gated) in [("open", false), ("gated", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &gated, |b, &gated| {
            b.iter(|| black_box(slo_stream_run(gated)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_slo_stream);
criterion_main!(benches);
