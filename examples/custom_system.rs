//! Custom systems: the simulator is not limited to the paper's 1×CPU +
//! 1×GPU + 1×FPGA machine. This example scales the machine (Quadro-Plex /
//! Axel style multi-accelerator nodes, §2.2) and the *degree of
//! heterogeneity* of the lookup table, then watches how much APT's threshold
//! still buys over MET.
//!
//! ```bash
//! cargo run --release --example custom_system
//! ```

use apt_suite::prelude::*;

fn gain_pct(dfg: &KernelDag, system: &SystemConfig, lookup: &LookupTable) -> f64 {
    let met = simulate(dfg, system, lookup, &mut Met::new()).expect("MET");
    let apt = simulate(dfg, system, lookup, &mut Apt::new(4.0)).expect("APT");
    100.0 * (met.makespan().as_ns() as f64 - apt.makespan().as_ns() as f64)
        / met.makespan().as_ns() as f64
}

fn main() {
    let lookup = LookupTable::paper();
    let dfg = generate(DfgType::Type1, &StreamConfig::new(100, 21), lookup);

    // --- Scaling the machine -------------------------------------------
    println!("machine scaling (paper lookup table, 100-kernel Type-1 stream):");
    let machines: [(&str, SystemConfig); 3] = [
        ("paper: 1 CPU + 1 GPU + 1 FPGA", SystemConfig::paper_4gbps()),
        (
            "Axel-ish: 2 CPU + 2 GPU + 2 FPGA",
            SystemConfig::empty(LinkRate::PCIE2_X8)
                .with_proc(ProcKind::Cpu)
                .with_proc(ProcKind::Cpu)
                .with_proc(ProcKind::Gpu)
                .with_proc(ProcKind::Gpu)
                .with_proc(ProcKind::Fpga)
                .with_proc(ProcKind::Fpga),
        ),
        (
            "GPU farm: 1 CPU + 4 GPU",
            SystemConfig::empty(LinkRate::PCIE2_X8)
                .with_proc(ProcKind::Cpu)
                .with_proc(ProcKind::Gpu)
                .with_proc(ProcKind::Gpu)
                .with_proc(ProcKind::Gpu)
                .with_proc(ProcKind::Gpu),
        ),
    ];
    for (name, system) in &machines {
        let met = simulate(&dfg, system, lookup, &mut Met::new()).expect("MET");
        println!(
            "  {name:34} MET {:>12}   APT(4) gain {:+.1}%",
            format!("{}", met.makespan()),
            gain_pct(&dfg, system, lookup)
        );
    }

    // --- Scaling the degree of heterogeneity ---------------------------
    // factor 1.0 = the paper's table; 0.0 = homogeneous (every kernel runs
    // the same everywhere). APT's advantage should vanish as heterogeneity
    // (and with it the cost of MET's waiting) collapses.
    println!("\nheterogeneity scaling (paper machine):");
    for factor in [1.0, 0.5, 0.25, 0.1, 0.0] {
        let scaled = lookup.scaled_heterogeneity(factor);
        let gain = gain_pct(&dfg, &SystemConfig::paper_4gbps(), &scaled);
        println!("  factor {factor:>4}: APT(4) vs MET {gain:+7.2}%");
    }

    // --- Interconnect structure ----------------------------------------
    // §3.2 fixes one rate between all processors; `Topology` drops that.
    // The same six-processor machine under three interconnects — watch the
    // transfer share of busy time grow as links get structure (and APT's
    // threshold keep paying off anyway).
    println!("\ninterconnect structure (2×(CPU+GPU+FPGA), 16 B/element):");
    let pods = || {
        SystemConfig::empty(LinkRate::PCIE2_X8)
            .with_proc(ProcKind::Cpu)
            .with_proc(ProcKind::Gpu)
            .with_proc(ProcKind::Fpga)
            .with_proc(ProcKind::Cpu)
            .with_proc(ProcKind::Gpu)
            .with_proc(ProcKind::Fpga)
            .with_bytes_per_element(16)
    };
    let slow = LinkRate {
        bytes_per_sec: 500_000_000, // 0.5 GB/s
    };
    let interconnects: [(&str, SystemConfig); 3] = [
        ("uniform 4 GB/s", pods()),
        (
            "clustered (8 GB/s pods, 0.5 GB/s across)",
            pods().with_topology(Topology::clustered(6, 3, LinkRate::PCIE2_X16, slow)),
        ),
        (
            "host-staged star (1 GB/s edges via CPU0)",
            pods().with_topology(Topology::star(6, ProcId::new(0), LinkRate::gbps(1))),
        ),
    ];
    for (name, system) in &interconnects {
        let apt = simulate(&dfg, system, lookup, &mut Apt::new(4.0)).expect("APT");
        let busy: f64 = apt
            .trace
            .proc_stats
            .iter()
            .map(|s| (s.busy + s.transfer).as_ms_f64())
            .sum();
        let xfer: f64 = apt
            .trace
            .proc_stats
            .iter()
            .map(|s| s.transfer.as_ms_f64())
            .sum();
        println!(
            "  {name:42} APT {:>12}   xfer {:4.1}%   vs MET {:+.1}%",
            format!("{}", apt.makespan()),
            if busy > 0.0 { xfer / busy * 100.0 } else { 0.0 },
            gain_pct(&dfg, system, lookup)
        );
    }

    println!("\n(the paper's point: α must be tuned to the degree of heterogeneity —");
    println!(" a threshold that pays off on a strongly heterogeneous table buys");
    println!(" nothing once the platforms look alike)");
}
