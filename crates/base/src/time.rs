//! Fixed-point simulation time.
//!
//! All simulation arithmetic is integer nanoseconds. The paper's measured
//! execution times (Appendix A) are milliseconds with at most three decimal
//! digits, i.e. exact microseconds, so every table entry converts to
//! nanoseconds without rounding. Using integers (rather than `f64`) gives:
//!
//! * a total order for the event queue (no NaN / tie instability),
//! * exact reproduction of the paper's Figure-5 schedule end times
//!   (318.093 ms vs 212.093 ms),
//! * deterministic results independent of summation order.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanoseconds per millisecond.
pub const NS_PER_MS: u64 = 1_000_000;
/// Number of nanoseconds per microsecond.
pub const NS_PER_US: u64 = 1_000;
/// Number of nanoseconds per second.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in nanoseconds since the
/// simulation epoch (t = 0).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulation time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * NS_PER_US)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * NS_PER_MS)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Lossy conversion to fractional milliseconds (reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / NS_PER_MS as f64
    }

    /// Lossy conversion to fractional seconds (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking, because policies may probe "how long until" quantities with
    /// instants that are already in the past.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier` is after `self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration (an "unreachable" sentinel).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * NS_PER_US)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * NS_PER_MS)
    }

    /// Exact conversion from the paper's lookup-table format: milliseconds
    /// with up to microsecond precision (three decimal digits).
    ///
    /// Panics in debug builds if `ms` carries sub-microsecond precision, which
    /// would indicate a transcription error in the embedded table.
    pub fn from_table_ms(ms: f64) -> Self {
        debug_assert!(ms >= 0.0, "negative execution time {ms}");
        let us = ms * 1_000.0;
        let rounded = us.round();
        debug_assert!(
            (us - rounded).abs() < 1e-6,
            "lookup value {ms} ms is not an exact microsecond count"
        );
        SimDuration(rounded as u64 * NS_PER_US)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Lossy conversion to fractional milliseconds (reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / NS_PER_MS as f64
    }

    /// Lossy conversion to fractional seconds (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Multiply by the APT flexibility factor `α ≥ 1`, rounding to the nearest
    /// nanosecond. `α` values in the paper are small rationals (1.5, 2, 4, 8,
    /// 16) so the rounding is exact for every table entry.
    #[inline]
    pub fn scale_alpha(self, alpha: f64) -> SimDuration {
        debug_assert!(alpha >= 0.0);
        let scaled = self.0 as f64 * alpha;
        if scaled >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(scaled.round() as u64)
        }
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ms_is_exact() {
        // Entries straight out of Appendix A.
        assert_eq!(SimDuration::from_table_ms(0.061).as_ns(), 61_000);
        assert_eq!(SimDuration::from_table_ms(0.093).as_ns(), 93_000);
        assert_eq!(
            SimDuration::from_table_ms(76_293.945).as_ns(),
            76_293_945_000
        );
        assert_eq!(
            SimDuration::from_table_ms(610_351.562).as_ns(),
            610_351_562_000
        );
        assert_eq!(SimDuration::from_table_ms(112.0).as_ns(), 112_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_ms(318) + SimDuration::from_us(93);
        assert_eq!(t.as_ns(), 318_093_000);
        assert!((t.as_ms_f64() - 318.093).abs() < 1e-9);
        let back = t - SimDuration::from_us(93);
        assert_eq!(back, SimTime::from_ms(318));
    }

    #[test]
    fn ordering_is_total_and_exact() {
        let a = SimTime::from_ns(1);
        let b = SimTime::from_ns(2);
        assert!(a < b);
        assert_eq!(b - a, SimDuration::from_ns(1));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_ms(1);
        let late = SimTime::from_ms(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_ms(1));
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn scale_alpha_matches_paper_thresholds() {
        // Figure 5: threshold for bfs with α = 8 on FPGA-best time 106 ms.
        let x = SimDuration::from_table_ms(106.0);
        assert_eq!(x.scale_alpha(8.0), SimDuration::from_ms(848));
        // α = 1.5 on 112 ms -> 168 ms exactly.
        let nw = SimDuration::from_table_ms(112.0);
        assert_eq!(nw.scale_alpha(1.5), SimDuration::from_ms(168));
    }

    #[test]
    fn duration_sum_and_div() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&ms| SimDuration::from_ms(ms))
            .sum();
        assert_eq!(total, SimDuration::from_ms(6));
        assert_eq!(total / 3, SimDuration::from_ms(2));
        assert_eq!(total * 2, SimDuration::from_ms(12));
    }

    #[test]
    fn display_formats_ms() {
        assert_eq!(SimTime::from_us(318_093).to_string(), "318.093ms");
        assert_eq!(SimDuration::from_us(61).to_string(), "0.061ms");
    }
}
