//! Open-stream throughput: the bounded-memory driver end to end, and the
//! two-level calendar queue under a deep far-future backlog. These are the
//! million-job path's constant factors — `apt-bench` tracks the same
//! configurations in `BENCH_engine.json`.

use apt_bench::{stream_calendar_backlog, stream_run, STREAM_BENCH_JOBS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_stream_driver(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream/poisson");
    g.throughput(Throughput::Elements(STREAM_BENCH_JOBS));
    for (name, alpha) in [("met", None), ("apt", Some(4.0))] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &alpha, |b, &alpha| {
            b.iter(|| black_box(stream_run(alpha)))
        });
    }
    g.finish();
}

fn bench_calendar_backlog(c: &mut Criterion) {
    c.bench_function("stream/calendar_backlog", |b| {
        b.iter(|| black_box(stream_calendar_backlog()))
    });
}

criterion_group!(benches, bench_stream_driver, bench_calendar_backlog);
criterion_main!(benches);
