//! Offline stand-in for the `serde` facade.
//!
//! Exposes `Serialize`/`Deserialize` both as (blanket-implemented) marker
//! traits and as no-op derive macros, which is the full surface this
//! workspace consumes. The container image has no crates.io access, so the
//! real `serde` cannot be fetched; this shim keeps every `#[derive(...)]`
//! and `use serde::...` site source-compatible with it.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; blanket-implemented because
/// the no-op derive emits no impls.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
