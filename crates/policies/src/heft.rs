//! HEFT — heterogeneous earliest finish time (Topcuoglu et al.).
//!
//! §2.5.3: a static policy that "first statically ranks all kernels and then
//! assigns them to processors in order of highest rank first". Task
//! priority is the upward rank (Eq. 3–4); processor selection minimizes the
//! earliest finish time with the insertion-based slot policy. The resulting
//! plan is handed to the simulator and replayed in plan order.

use crate::plan::{build_plan, PlannedSchedule};
use crate::ranking::upward_ranks;
use apt_base::stats::argmin_by_key;
use apt_base::BaseError;
use apt_hetsim::{AssignmentBuf, Policy, PolicyKind, PrepareCtx, SimView};

/// The HEFT policy.
#[derive(Debug, Default)]
pub struct Heft {
    plan: Option<PlannedSchedule>,
}

impl Heft {
    /// Create a HEFT scheduler (the plan is built in `prepare`).
    pub fn new() -> Self {
        Heft { plan: None }
    }

    /// The plan built during `prepare`, if any (exposed for analysis).
    pub fn plan(&self) -> Option<&PlannedSchedule> {
        self.plan.as_ref()
    }
}

impl Policy for Heft {
    fn name(&self) -> String {
        "HEFT".into()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Static
    }

    fn prepare(&mut self, ctx: PrepareCtx<'_>) -> Result<(), BaseError> {
        let ranks = upward_ranks(ctx.dfg, ctx.lookup, ctx.config);
        let plan = build_plan(&ctx, &ranks, |_node, candidates| {
            // apt-lint: allow(hot-path-panic, build_plan only invokes the selector with a
            // nonempty candidate list)
            argmin_by_key(candidates, |c| c.finish).expect("candidates nonempty")
        });
        self.plan = Some(plan);
        Ok(())
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
        self.plan
            .as_mut()
            // apt-lint: allow(hot-path-panic, the engine contract runs prepare() before any
            // decide())
            .expect("prepare() runs before decide()")
            .release(view, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_base::SimDuration;
    use apt_dfg::generator::{
        build_type1, build_type2, generate_kernels, StreamConfig, Type2Config,
    };
    use apt_dfg::{Kernel, KernelKind, LookupTable};
    use apt_hetsim::{simulate, CostModel, SystemConfig};

    #[test]
    fn heft_plans_every_node_exactly_once() {
        let kernels = generate_kernels(&StreamConfig::new(46, 8), LookupTable::paper());
        let dfg = build_type2(&kernels, 8, &Type2Config::default());
        let config = SystemConfig::paper_4gbps();
        let cost = CostModel::new(&dfg, LookupTable::paper(), &config);
        let mut heft = Heft::new();
        heft.prepare(PrepareCtx {
            dfg: &dfg,
            lookup: LookupTable::paper(),
            config: &config,
            cost: &cost,
        })
        .unwrap();
        let plan = heft.plan().unwrap();
        let planned: usize = plan.per_proc_order.iter().map(|q| q.len()).sum();
        assert_eq!(planned, dfg.len());
        assert!(plan.planned_makespan > SimDuration::ZERO);
    }

    #[test]
    fn heft_replay_produces_a_valid_schedule() {
        for seed in [1u64, 9, 23] {
            let kernels = generate_kernels(&StreamConfig::new(60, seed), LookupTable::paper());
            let dfg = build_type2(&kernels, seed, &Type2Config::default());
            let res = simulate(
                &dfg,
                &SystemConfig::paper_4gbps(),
                LookupTable::paper(),
                &mut Heft::new(),
            )
            .unwrap();
            res.trace.validate(&dfg).unwrap();
        }
    }

    #[test]
    fn heft_beats_serial_execution_on_parallel_work() {
        // Ten independent NW kernels (plus sink): HEFT must spread them, so
        // the makespan is far below 11 × 112 ms serial.
        let kernels = vec![Kernel::canonical(KernelKind::NeedlemanWunsch); 11];
        let dfg = build_type1(&kernels);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            LookupTable::paper(),
            &mut Heft::new(),
        )
        .unwrap();
        let serial = SimDuration::from_ms(11 * 112);
        assert!(res.makespan() < serial);
        // All three processors participate (NW's avg cost justifies them).
        let used = res
            .trace
            .proc_stats
            .iter()
            .filter(|s| s.kernels > 0)
            .count();
        assert_eq!(used, 3);
    }

    #[test]
    fn heft_follows_its_plan_assignment() {
        let kernels = generate_kernels(&StreamConfig::new(30, 14), LookupTable::paper());
        let dfg = build_type1(&kernels);
        let config = SystemConfig::paper_4gbps();
        let cost = CostModel::new(&dfg, LookupTable::paper(), &config);
        let mut heft = Heft::new();
        heft.prepare(PrepareCtx {
            dfg: &dfg,
            lookup: LookupTable::paper(),
            config: &config,
            cost: &cost,
        })
        .unwrap();
        let planned_assignment = heft.plan().unwrap().assignment.clone();
        // Fresh instance for the run (single-use contract).
        let res = simulate(&dfg, &config, LookupTable::paper(), &mut Heft::new()).unwrap();
        for rec in &res.trace.records {
            assert_eq!(
                rec.proc,
                planned_assignment[rec.node.index()],
                "node {} deviated from the plan",
                rec.node
            );
        }
    }
}
