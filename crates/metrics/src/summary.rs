//! Per-run summaries: everything §3.2 says the simulator reports, in one
//! compact serializable struct.

use apt_base::SimDuration;
use apt_dfg::KernelKind;
use apt_hetsim::SimResult;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The §3.2 statistics of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Policy display name.
    pub policy: String,
    /// Metric 1 — total execution time (makespan).
    pub makespan: SimDuration,
    /// Metric 2 — compute time per processor.
    pub busy_per_proc: Vec<SimDuration>,
    /// Metric 3 — transfer time per processor.
    pub transfer_per_proc: Vec<SimDuration>,
    /// Metric 4 — idle time per processor.
    pub idle_per_proc: Vec<SimDuration>,
    /// Metric 6 — total λ delay.
    pub lambda_total: SimDuration,
    /// Metric 7 — average λ delay (Eq. 11).
    pub lambda_avg: SimDuration,
    /// Metric 8 — λ standard deviation in ms (Eq. 12).
    pub lambda_stddev_ms: f64,
    /// Number of delay occurrences (`N`).
    pub lambda_count: usize,
    /// Number of alternative-processor assignments (APT analyses).
    pub alt_assignments: usize,
    /// Alternative assignments per kernel kind (Appendix-B columns).
    pub alt_by_kind: BTreeMap<KernelKind, usize>,
}

impl RunSummary {
    /// Extract the summary from a simulation result.
    pub fn from_result(res: &SimResult) -> Self {
        let makespan = res.makespan();
        RunSummary {
            policy: res.policy.clone(),
            makespan,
            busy_per_proc: res.trace.proc_stats.iter().map(|s| s.busy).collect(),
            transfer_per_proc: res.trace.proc_stats.iter().map(|s| s.transfer).collect(),
            idle_per_proc: res
                .trace
                .proc_stats
                .iter()
                .map(|s| s.idle(makespan))
                .collect(),
            lambda_total: res.trace.lambda_total(),
            lambda_avg: res.trace.lambda_avg(),
            lambda_stddev_ms: res.trace.lambda_stddev_ms(),
            lambda_count: res.trace.lambda_count(),
            alt_assignments: res.trace.alt_total(),
            alt_by_kind: res.trace.alt_by_kind(),
        }
    }

    /// Utilization fraction (busy + transfer over makespan) per processor.
    pub fn utilization(&self) -> Vec<f64> {
        let total = self.makespan.as_ns().max(1) as f64;
        self.busy_per_proc
            .iter()
            .zip(&self.transfer_per_proc)
            .map(|(b, t)| (b.as_ns() + t.as_ns()) as f64 / total)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_dfg::generator::build_type1;
    use apt_dfg::{Kernel, KernelKind, LookupTable};
    use apt_hetsim::{simulate, SystemConfig};
    use apt_policies::Met;

    #[test]
    fn summary_is_internally_consistent() {
        let kernels = vec![
            Kernel::canonical(KernelKind::NeedlemanWunsch),
            Kernel::canonical(KernelKind::Bfs),
            Kernel::canonical(KernelKind::Bfs),
            Kernel::canonical(KernelKind::Bfs),
            Kernel::new(KernelKind::Cholesky, 250_000),
        ];
        let dfg = build_type1(&kernels);
        let config = SystemConfig::paper_no_transfers();
        let res = simulate(&dfg, &config, LookupTable::paper(), &mut Met::new()).unwrap();
        let s = RunSummary::from_result(&res);
        assert_eq!(s.policy, "MET");
        assert_eq!(s.makespan, SimDuration::from_us(318_093));
        assert_eq!(s.busy_per_proc.len(), 3);
        // busy + idle + transfer == makespan per processor.
        for i in 0..3 {
            let total = s.busy_per_proc[i] + s.transfer_per_proc[i] + s.idle_per_proc[i];
            assert_eq!(total, s.makespan, "processor {i}");
        }
        // GPU unused under MET here.
        assert_eq!(s.busy_per_proc[1], SimDuration::ZERO);
        let u = s.utilization();
        assert_eq!(u[1], 0.0);
        assert!(u[2] > 0.9, "FPGA nearly saturated, got {}", u[2]);
        assert_eq!(s.alt_assignments, 0);
        assert!(s.alt_by_kind.is_empty());
    }

    #[test]
    fn lambda_fields_match_trace() {
        let kernels = vec![Kernel::canonical(KernelKind::Bfs); 6];
        let dfg = build_type1(&kernels);
        let config = SystemConfig::paper_no_transfers();
        let res = simulate(&dfg, &config, LookupTable::paper(), &mut Met::new()).unwrap();
        let s = RunSummary::from_result(&res);
        assert_eq!(s.lambda_total, res.trace.lambda_total());
        assert_eq!(s.lambda_count, res.trace.lambda_count());
        // MET serializes the five level-1 bfs on the FPGA → delays exist.
        assert!(s.lambda_count > 0);
        assert!(s.lambda_stddev_ms >= 0.0);
    }
}
