//! `apt-bench` — perf-trajectory helper emitting `BENCH_engine.json`.
//!
//! Times the same configurations as the Criterion groups in
//! `benches/engine.rs` and `benches/policy_overhead.rs` with a
//! dependency-free median-of-samples loop, then records the results under a
//! label:
//!
//! ```bash
//! cargo run -p apt-bench --release -- --label before   # pre-refactor
//! cargo run -p apt-bench --release -- --label after    # post-refactor
//! ```
//!
//! Both labels merge into one `BENCH_engine.json` (schema: bench name →
//! median ns per label — plus criterion-style `mean`/`stddev` estimates of
//! the sample distribution, so distribution shifts are visible, not just
//! median drift — and the before/after speedup), which is checked in so
//! future PRs can extend the perf trajectory.
//!
//! A third mode guards the trajectory in CI:
//!
//! ```bash
//! cargo run -p apt-bench --release -- --check                # 10% tolerance
//! cargo run -p apt-bench --release -- --check --tolerance 25
//! ```
//!
//! `--check` re-times every bench and exits non-zero if any of them is more
//! than the tolerance slower than the checked-in `after_ns` median. It
//! never writes the file — refreshing the medians stays an explicit
//! `--label after` run. `--check --json verdict.json` additionally writes
//! the per-bench verdict (recorded/measured ns, signed delta %, tolerance,
//! pass/fail) as machine-readable JSON for CI annotations.
//!
//! `--profile` runs the telemetered stream fixture once with engine
//! self-profiling armed and prints the phase-breakdown table (where a
//! driver iteration's wall-clock goes: decide / apply / calendar / handle
//! / retire / admit / account / window), then exits.

use apt_bench::{
    control_stream_run, fault_stream_run, profiled_stream_report, run, slo_stream_run,
    stream_calendar_backlog, stream_run, telemetry_stream_run, topology_systems, traced_stream_run,
    type2_workload, STREAM_BENCH_JOBS,
};
use apt_core::prelude::*;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples per bench (median reported).
const SAMPLES: usize = 15;
/// Target wall time per sample; iterations are batched up to this.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);
/// Upper bound on total time spent per bench.
const MAX_BENCH_TIME: Duration = Duration::from_secs(4);

/// One bench measurement: the median plus criterion-style distribution
/// estimates over the per-sample ns/iteration values.
#[derive(Clone, Copy)]
struct Measurement {
    median_ns: u64,
    mean_ns: u64,
    stddev_ns: u64,
}

/// Measure ns/iteration of `routine` (median of batched samples, plus the
/// sample mean and population standard deviation).
fn measure<O>(mut routine: impl FnMut() -> O) -> Measurement {
    let t0 = Instant::now();
    black_box(routine());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let batch = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
    let deadline = Instant::now() + MAX_BENCH_TIME;
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        samples.push(t.elapsed().as_nanos() as u64 / batch);
        if Instant::now() > deadline && samples.len() >= 3 {
            break;
        }
    }
    samples.sort_unstable();
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<u64>() as f64 / n;
    let var = samples
        .iter()
        .map(|&s| (s as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    Measurement {
        median_ns: samples[samples.len() / 2],
        mean_ns: mean.round() as u64,
        stddev_ns: var.sqrt().round() as u64,
    }
}

fn engine_benches(out: &mut Vec<(String, Measurement)>) {
    let system = SystemConfig::paper_4gbps();
    let lookup = LookupTable::paper();
    for &n in &[46usize, 93, 157] {
        let dfg = generate(DfgType::Type1, &StreamConfig::new(n, 0xE610E), lookup);
        let ns = measure(|| run(&dfg, &system, &mut Met::new()));
        out.push((format!("engine/simulate_met/{n}"), ns));
    }
    for ty in DfgType::ALL {
        let ns = measure(|| generate(ty, &StreamConfig::new(157, 7), lookup));
        out.push((format!("engine/generate/{}", ty.label()), ns));
    }
    let kernels = lookup.all_kernels();
    let ns = measure(|| {
        let mut acc = 0u64;
        for k in &kernels {
            for p in ProcKind::EVALUATED {
                acc = acc.wrapping_add(lookup.exec_time(k, p).unwrap().as_ns());
            }
        }
        acc
    });
    out.push(("engine/lookup_exec_time".into(), ns));
}

/// Open-stream driver end-to-end plus the two-level calendar backlog —
/// mirrors `benches/stream.rs`.
fn stream_benches(out: &mut Vec<(String, Measurement)>) {
    for (name, alpha) in [("met", None), ("apt", Some(4.0))] {
        let ns = measure(|| stream_run(alpha));
        out.push((format!("stream/poisson_{name}/{STREAM_BENCH_JOBS}"), ns));
    }
    let ns = measure(stream_calendar_backlog);
    out.push(("stream/calendar_backlog".into(), ns));
}

/// Deadline-tagged gated streaming — mirrors `benches/slo.rs`.
fn slo_benches(out: &mut Vec<(String, Measurement)>) {
    for (name, gated) in [("open", false), ("gated", true)] {
        let ns = measure(|| slo_stream_run(gated));
        out.push((
            format!("slo/poisson_edf_apt_{name}/{STREAM_BENCH_JOBS}"),
            ns,
        ));
    }
}

/// Fault machinery off vs armed on the same stream — mirrors
/// `benches/fault.rs`.
fn fault_benches(out: &mut Vec<(String, Measurement)>) {
    for (name, armed) in [("clean", false), ("armed", true)] {
        let ns = measure(|| fault_stream_run(armed));
        out.push((format!("fault/poisson_apt_{name}/{STREAM_BENCH_JOBS}"), ns));
    }
}

/// Controller stack off vs closing the loop at every window on the same
/// gated stream — mirrors `benches/control.rs`.
fn control_benches(out: &mut Vec<(String, Measurement)>) {
    for (name, armed) in [("bare", false), ("armed", true)] {
        let ns = measure(|| control_stream_run(armed));
        out.push((
            format!("control/poisson_edf_apt_{name}/{STREAM_BENCH_JOBS}"),
            ns,
        ));
    }
}

/// Tracing absent vs an armed `NullSink` on the same stream — mirrors
/// `benches/trace.rs`.
fn trace_benches(out: &mut Vec<(String, Measurement)>) {
    for (name, null_sink) in [("bare", false), ("null_sink", true)] {
        let ns = measure(|| traced_stream_run(null_sink));
        out.push((format!("trace/poisson_apt_{name}/{STREAM_BENCH_JOBS}"), ns));
    }
}

/// Telemetry registry absent vs armed on the same stream — mirrors
/// `benches/telemetry.rs`.
fn telemetry_benches(out: &mut Vec<(String, Measurement)>) {
    for (name, armed) in [("bare", false), ("armed", true)] {
        let ns = measure(|| telemetry_stream_run(armed));
        out.push((
            format!("telemetry/poisson_apt_{name}/{STREAM_BENCH_JOBS}"),
            ns,
        ));
    }
}

/// Uniform-scalar vs clustered-matrix transfer layer on the six-processor
/// transfer-heavy machine — mirrors the `topology/*` group in
/// `benches/engine.rs`.
fn topology_benches(out: &mut Vec<(String, Measurement)>) {
    let dfg = type2_workload();
    for (name, system) in topology_systems() {
        let ns = measure(|| run(&dfg, &system, &mut Apt::new(4.0)));
        out.push((format!("topology/simulate_apt/{name}"), ns));
    }
}

fn policy_benches(out: &mut Vec<(String, Measurement)>) {
    let dfg = type2_workload();
    let system = SystemConfig::paper_4gbps();
    for (name, make) in apt_core::all_policy_factories(4.0) {
        let ns = measure(|| {
            let mut policy = make();
            run(&dfg, &system, policy.as_mut())
        });
        out.push((format!("policy_overhead/end_to_end/{name}"), ns));
    }
}

/// One bench row: medians (and distribution estimates) per label.
#[derive(Default, Clone)]
struct Row {
    before_ns: Option<u64>,
    after_ns: Option<u64>,
    before_mean_ns: Option<u64>,
    before_stddev_ns: Option<u64>,
    after_mean_ns: Option<u64>,
    after_stddev_ns: Option<u64>,
}

/// Parse the flat JSON this binary itself emits (no external JSON dep).
fn parse_existing(text: &str) -> BTreeMap<String, Row> {
    let mut rows = BTreeMap::new();
    for line in text.lines() {
        let Some(name) = line.trim().strip_prefix('"').and_then(|r| {
            let end = r.find('"')?;
            r[end..].contains('{').then(|| r[..end].to_string())
        }) else {
            continue;
        };
        let grab = |key: &str| -> Option<u64> {
            let pos = line.find(key)? + key.len();
            let digits: String = line[pos..]
                .chars()
                .skip_while(|c| !c.is_ascii_digit())
                .take_while(|c| c.is_ascii_digit())
                .collect();
            digits.parse().ok()
        };
        let row = Row {
            before_ns: grab("\"before_ns\":"),
            after_ns: grab("\"after_ns\":"),
            before_mean_ns: grab("\"before_mean_ns\":"),
            before_stddev_ns: grab("\"before_stddev_ns\":"),
            after_mean_ns: grab("\"after_mean_ns\":"),
            after_stddev_ns: grab("\"after_stddev_ns\":"),
        };
        // Structural lines ("benches": { ... ) carry no recorded medians.
        if row.before_ns.is_some() || row.after_ns.is_some() {
            rows.insert(name, row);
        }
    }
    rows
}

fn render(rows: &BTreeMap<String, Row>) -> String {
    let mut s = String::from("{\n  \"schema\": \"apt-bench-v2\",\n  \"unit\": \"median ns per iteration (means/stddevs: sample-distribution estimates)\",\n  \"benches\": {\n");
    let n = rows.len();
    for (i, (name, row)) in rows.iter().enumerate() {
        s.push_str(&format!("    \"{name}\": {{ "));
        let mut fields = Vec::new();
        if let Some(b) = row.before_ns {
            fields.push(format!("\"before_ns\": {b}"));
        }
        if let Some(m) = row.before_mean_ns {
            fields.push(format!("\"before_mean_ns\": {m}"));
        }
        if let Some(sd) = row.before_stddev_ns {
            fields.push(format!("\"before_stddev_ns\": {sd}"));
        }
        if let Some(a) = row.after_ns {
            fields.push(format!("\"after_ns\": {a}"));
        }
        if let Some(m) = row.after_mean_ns {
            fields.push(format!("\"after_mean_ns\": {m}"));
        }
        if let Some(sd) = row.after_stddev_ns {
            fields.push(format!("\"after_stddev_ns\": {sd}"));
        }
        if let (Some(b), Some(a)) = (row.before_ns, row.after_ns) {
            fields.push(format!("\"speedup\": {:.2}", b as f64 / a.max(1) as f64));
        }
        s.push_str(&fields.join(", "));
        s.push_str(" }");
        if i + 1 < n {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  }\n}\n");
    s
}

/// Compare re-timed medians against the checked-in `after_ns` rows;
/// returns the process exit code (0 = within tolerance). With `json_path`
/// set, also writes a machine-readable verdict (one object per bench:
/// recorded/measured ns, signed delta %, the tolerance, pass/fail) for CI
/// annotations and dashboards.
fn check(
    out_path: &str,
    tolerance_percent: u64,
    rows: &BTreeMap<String, Row>,
    results: &[(String, Measurement)],
    json_path: Option<&str>,
) -> i32 {
    let mut regressions = 0usize;
    let mut json_rows = Vec::new();
    for (name, m) in results {
        let ns = m.median_ns;
        let Some(recorded) = rows.get(name).and_then(|r| r.after_ns) else {
            eprintln!("{name:<45} {ns:>12} ns  [new — no recorded median]");
            json_rows.push(format!(
                "    {{ \"bench\": \"{name}\", \"recorded_ns\": null, \"measured_ns\": {ns}, \
                 \"delta_pct\": null, \"tolerance_pct\": {tolerance_percent}, \"pass\": true }}"
            ));
            continue;
        };
        let limit = recorded + recorded * tolerance_percent / 100;
        let pass = ns <= limit;
        let delta_pct = 100.0 * (ns as f64 - recorded as f64) / recorded.max(1) as f64;
        json_rows.push(format!(
            "    {{ \"bench\": \"{name}\", \"recorded_ns\": {recorded}, \"measured_ns\": {ns}, \
             \"delta_pct\": {delta_pct:.2}, \"tolerance_pct\": {tolerance_percent}, \
             \"pass\": {pass} }}"
        ));
        if !pass {
            regressions += 1;
            eprintln!(
                "{name:<45} {ns:>12} ns  REGRESSED (recorded {recorded} ns, limit {limit} ns)"
            );
        } else {
            eprintln!("{name:<45} {ns:>12} ns  ok (recorded {recorded} ns)");
        }
    }
    if let Some(path) = json_path {
        let verdict = format!(
            "{{\n  \"schema\": \"apt-bench-check-v1\",\n  \"baseline\": \"{out_path}\",\n  \
             \"tolerance_pct\": {tolerance_percent},\n  \"pass\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
            regressions == 0,
            json_rows.join(",\n"),
        );
        std::fs::write(path, verdict).expect("write --json verdict");
        eprintln!("wrote {path}");
    }
    if regressions > 0 {
        eprintln!(
            "{regressions} bench(es) regressed more than {tolerance_percent}% past {out_path}"
        );
        1
    } else {
        eprintln!("all benches within {tolerance_percent}% of {out_path}");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = "after".to_string();
    let mut out_path = "BENCH_engine.json".to_string();
    let mut check_mode = false;
    let mut tolerance_percent = 10u64;
    let mut json_path: Option<String> = None;
    let mut profile_mode = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                label = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--label needs a value (before|after)");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--out" => {
                out_path = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--check" => {
                check_mode = true;
                i += 1;
            }
            "--json" => {
                json_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--profile" => {
                profile_mode = true;
                i += 1;
            }
            "--tolerance" => {
                tolerance_percent =
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--tolerance needs a whole percentage");
                            std::process::exit(2);
                        });
                i += 2;
            }
            other => {
                eprintln!(
                    "usage: apt-bench [--label before|after] [--out BENCH_engine.json] \
                     [--check [--tolerance PERCENT] [--json PATH]] [--profile]"
                );
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if label != "before" && label != "after" {
        eprintln!("--label must be `before` or `after`, got {label}");
        std::process::exit(2);
    }

    // `--profile`: time nothing — run the profiled stream once and print
    // the engine's phase breakdown (where a driver iteration's wall-clock
    // actually goes), then exit.
    if profile_mode {
        let report = profiled_stream_report();
        println!("{}", report.render());
        if report.coverage() < 0.90 {
            eprintln!(
                "warning: phases cover only {:.1}% of engine wall-clock",
                100.0 * report.coverage()
            );
        }
        return;
    }

    // Fail fast in check mode: validate the recorded medians *before*
    // spending minutes re-timing everything.
    let recorded = if check_mode {
        match std::fs::read_to_string(&out_path) {
            Ok(t) => Some(parse_existing(&t)),
            Err(e) => {
                eprintln!("--check needs an existing {out_path}: {e}");
                std::process::exit(2);
            }
        }
    } else {
        None
    };

    let mut results = Vec::new();
    engine_benches(&mut results);
    policy_benches(&mut results);
    stream_benches(&mut results);
    slo_benches(&mut results);
    fault_benches(&mut results);
    control_benches(&mut results);
    trace_benches(&mut results);
    telemetry_benches(&mut results);
    topology_benches(&mut results);

    if let Some(rows) = recorded {
        std::process::exit(check(
            &out_path,
            tolerance_percent,
            &rows,
            &results,
            json_path.as_deref(),
        ));
    }

    let mut rows = std::fs::read_to_string(&out_path)
        .map(|t| parse_existing(&t))
        .unwrap_or_default();
    for (name, m) in results {
        let row = rows.entry(name.clone()).or_default();
        match label.as_str() {
            "before" => {
                row.before_ns = Some(m.median_ns);
                row.before_mean_ns = Some(m.mean_ns);
                row.before_stddev_ns = Some(m.stddev_ns);
            }
            _ => {
                row.after_ns = Some(m.median_ns);
                row.after_mean_ns = Some(m.mean_ns);
                row.after_stddev_ns = Some(m.stddev_ns);
            }
        }
        eprintln!(
            "{name:<45} {:>12} ns  (mean {} ± {})  [{label}]",
            m.median_ns, m.mean_ns, m.stddev_ns
        );
    }
    std::fs::write(&out_path, render(&rows)).expect("write BENCH_engine.json");
    eprintln!("wrote {out_path}");
}
