//! Property-based tests of the event engine on arbitrary dependency
//! structures (not just the paper's two DFG shapes).

use apt_base::{ProcKind, SimDuration, SimTime};
use apt_dfg::{Dag, KernelDag, LookupTable, NodeId, SplitMix64};
use apt_hetsim::{
    simulate, simulate_stream_faulty, Assignment, AssignmentBuf, FaultPlan, LinkRate, Policy,
    PolicyKind, RetryPolicy, SimView, SystemConfig,
};
use proptest::prelude::*;

/// A random kernel DAG with arbitrary forward edges.
fn random_kernel_dag(n: usize, density: u64, seed: u64) -> KernelDag {
    let lookup = LookupTable::paper();
    let all = lookup.all_kernels();
    let mut rng = SplitMix64::new(seed);
    let mut g = Dag::new();
    for _ in 0..n {
        g.add_node(*rng.choose(&all));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_range(100) < density {
                g.add_edge(NodeId::new(i), NodeId::new(j)).unwrap();
            }
        }
    }
    g
}

/// Minimal work-conserving policy: first ready kernel to the first idle
/// processor that can run it.
struct FirstFit;

impl Policy for FirstFit {
    fn name(&self) -> String {
        "FirstFit".into()
    }
    fn kind(&self) -> PolicyKind {
        PolicyKind::Dynamic
    }
    fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
        for node in view.ready.iter() {
            for p in view.idle_procs() {
                if view.exec_time(node, p.id).is_some() {
                    out.push(Assignment::new(node, p.id));
                    return;
                }
            }
        }
    }
}

/// Queue-everything policy stressing FIFO handling: round-robins ready
/// kernels over processors immediately, regardless of occupancy.
struct QueueAll {
    cursor: usize,
}

impl Policy for QueueAll {
    fn name(&self) -> String {
        "QueueAll".into()
    }
    fn kind(&self) -> PolicyKind {
        PolicyKind::Dynamic
    }
    fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
        let n = view.procs.len();
        for node in view.ready.iter() {
            for off in 0..n {
                let p = &view.procs[(self.cursor + off) % n];
                if view.exec_time(node, p.id).is_some() {
                    self.cursor = (self.cursor + off + 1) % n;
                    out.push(Assignment::new(node, p.id));
                    return;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any dependency structure, any density: the engine completes with a
    /// valid trace, correct λ bookkeeping, and exact busy-time accounting.
    #[test]
    fn engine_handles_arbitrary_dags(
        n in 0usize..45,
        density in 0u64..80,
        seed in any::<u64>(),
        queue_mode in prop::bool::ANY,
    ) {
        let dfg = random_kernel_dag(n, density, seed);
        let system = SystemConfig::paper_4gbps();
        let mut policy: Box<dyn Policy> = if queue_mode {
            Box::new(QueueAll { cursor: 0 })
        } else {
            Box::new(FirstFit)
        };
        let res = simulate(&dfg, &system, LookupTable::paper(), policy.as_mut()).unwrap();
        res.trace.validate(&dfg).unwrap();

        // Per-processor busy accounting equals the sum of record intervals.
        for proc in system.proc_ids() {
            let stats = res.trace.proc_stats[proc.index()];
            let exec: SimDuration = res
                .trace
                .records
                .iter()
                .filter(|r| r.proc == proc)
                .map(|r| r.exec_time())
                .sum();
            let transfer: SimDuration = res
                .trace
                .records
                .iter()
                .filter(|r| r.proc == proc)
                .map(|r| r.transfer_time())
                .sum();
            prop_assert_eq!(stats.busy, exec);
            prop_assert_eq!(stats.transfer, transfer);
        }
    }

    /// Transfer accounting is exact: every record's transfer interval equals
    /// the link time of its remote predecessors' outputs, recomputed from
    /// the trace's own placements. Zero bytes-per-element implies zero
    /// transfer everywhere.
    #[test]
    fn transfer_times_recompute_from_placements(
        n in 1usize..30,
        density in 10u64..70,
        seed in any::<u64>(),
        bytes in prop::sample::select(vec![0u64, 1, 4, 64]),
    ) {
        let dfg = random_kernel_dag(n, density, seed);
        let lookup = LookupTable::paper();
        let system = SystemConfig::paper_4gbps().with_bytes_per_element(bytes);
        let res = simulate(&dfg, &system, lookup, &mut FirstFit).unwrap();
        // node → processor map from the trace.
        let mut loc = vec![None; dfg.len()];
        for r in &res.trace.records {
            loc[r.node.index()] = Some(r.proc);
        }
        for r in &res.trace.records {
            let expected: SimDuration = dfg
                .preds(r.node)
                .iter()
                .filter(|p| loc[p.index()] != Some(r.proc))
                .map(|p| system.link.transfer_time(dfg.node(*p).bytes(bytes)))
                .sum();
            prop_assert_eq!(
                r.transfer_time(),
                expected,
                "node {} on {}",
                r.node,
                r.proc
            );
            if bytes == 0 {
                prop_assert_eq!(r.transfer_time(), SimDuration::ZERO);
            }
        }
    }

    /// Contention-off pair-matrix model ≡ scalar model whenever all rates
    /// are equal: on arbitrary DAGs, an all-equal-rate `Topology` matrix
    /// (dense per-pair tables, *not* the uniform preset's scalar fast
    /// path) and the plain `LinkRate` config produce byte-identical
    /// traces. The satellite property pin of the topology PR.
    #[test]
    fn equal_rate_matrix_matches_scalar_link_on_arbitrary_dags(
        n in 1usize..35,
        density in 0u64..80,
        seed in any::<u64>(),
        queue_mode in prop::bool::ANY,
        lanes in prop::sample::select(vec![1u64, 8, 16]),
    ) {
        use apt_hetsim::Topology;
        let dfg = random_kernel_dag(n, density, seed);
        let lookup = LookupTable::paper();
        let rate = LinkRate::lanes(lanes);
        let plain = SystemConfig::paper_4gbps().with_link(rate);
        let matrix = SystemConfig::paper_4gbps()
            .with_link(rate)
            .with_topology(Topology::from_fn(3, move |_, _| rate));
        prop_assert!(matrix.uniform_rate().is_none(), "must take the matrix path");
        let make = |_: ()| -> Box<dyn Policy> {
            if queue_mode {
                Box::new(QueueAll { cursor: 0 })
            } else {
                Box::new(FirstFit)
            }
        };
        let a = simulate(&dfg, &plain, lookup, make(()).as_mut()).unwrap();
        let b = simulate(&dfg, &matrix, lookup, make(()).as_mut()).unwrap();
        prop_assert_eq!(a.trace, b.trace);
    }

    /// Per-link contention never delays a kernel past the serialized
    /// model's transfer phase (concurrent distinct links can only help),
    /// and reproduces it exactly when every start pulls at most one remote
    /// input. Chains have single predecessors, so contention must be a
    /// strict no-op there.
    #[test]
    fn per_link_contention_is_a_no_op_on_single_input_chains(
        len in 1usize..15,
        seed in any::<u64>(),
    ) {
        use apt_hetsim::{LinkContention, Topology};
        let lookup = LookupTable::paper();
        let all = lookup.all_kernels();
        let mut rng = SplitMix64::new(seed);
        let mut g: KernelDag = Dag::new();
        let mut prev: Option<NodeId> = None;
        for _ in 0..len {
            let id = g.add_node(*rng.choose(&all));
            if let Some(p) = prev {
                g.add_edge(p, id).unwrap();
            }
            prev = Some(id);
        }
        let serial = SystemConfig::paper_4gbps();
        let contended = SystemConfig::paper_4gbps().with_topology(
            Topology::uniform(3, LinkRate::PCIE2_X8)
                .with_contention(LinkContention::PerLink),
        );
        let a = simulate(&g, &serial, lookup, &mut FirstFit).unwrap();
        let b = simulate(&g, &contended, lookup, &mut FirstFit).unwrap();
        prop_assert_eq!(a.trace, b.trace);
    }

    /// Single-processor machines serialize everything: the makespan equals
    /// the total work (exec + transfers are zero since everything is local).
    #[test]
    fn single_processor_serializes(n in 0usize..25, density in 0u64..80, seed in any::<u64>()) {
        let dfg = random_kernel_dag(n, density, seed);
        let lookup = LookupTable::paper();
        let system = SystemConfig::empty(LinkRate::PCIE2_X8).with_proc(ProcKind::Gpu);
        let res = simulate(&dfg, &system, lookup, &mut FirstFit).unwrap();
        let total: SimDuration = dfg
            .iter()
            .map(|(_, k)| lookup.exec_time(k, ProcKind::Gpu).unwrap())
            .sum();
        prop_assert_eq!(res.makespan(), total);
        // No cross-processor edges → no transfers at all.
        for r in &res.trace.records {
            prop_assert_eq!(r.transfer_time(), SimDuration::ZERO);
        }
    }

    /// The engine's makespan for a chain equals the sum along the chain —
    /// dependencies leave no gaps when the machine is otherwise idle.
    #[test]
    fn pure_chains_have_no_idle_gaps(len in 1usize..20, seed in any::<u64>()) {
        let lookup = LookupTable::paper();
        let all = lookup.all_kernels();
        let mut rng = SplitMix64::new(seed);
        let mut g: KernelDag = Dag::new();
        let mut prev: Option<NodeId> = None;
        for _ in 0..len {
            let id = g.add_node(*rng.choose(&all));
            if let Some(p) = prev {
                g.add_edge(p, id).unwrap();
            }
            prev = Some(id);
        }
        let system = SystemConfig::paper_no_transfers();
        let res = simulate(&g, &system, lookup, &mut FirstFit).unwrap();
        // FirstFit always picks p0 (CPU) when idle — the chain serializes on
        // it with zero transfers, so makespan = Σ CPU times.
        let expected: SimDuration = g
            .iter()
            .map(|(_, k)| lookup.exec_time(k, ProcKind::Cpu).unwrap())
            .sum();
        prop_assert_eq!(res.makespan(), expected);
        prop_assert_eq!(res.trace.lambda_total(), SimDuration::ZERO);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Faulty runs replay byte-identically under one `(workload, fault)`
    /// seed pair on arbitrary DAGs — determinism survives transient
    /// retries, crash/repair cycles, and orphan re-dispatch.
    #[test]
    fn faulty_runs_are_deterministic_on_arbitrary_dags(
        n in 1usize..22,
        density in 0u64..70,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        let dfg = random_kernel_dag(n, density, seed);
        let system = SystemConfig::paper_4gbps();
        let arrivals = vec![SimTime::ZERO; dfg.len()];
        // MTTF well above the longest paper kernel so a crash-looped
        // kernel always eventually completes; generous attempts so p=0.2
        // never exhausts the budget.
        let plan = FaultPlan::seeded(fault_seed)
            .with_transient(0.2)
            .with_crashes(SimDuration::from_ms(60_000), SimDuration::from_ms(1_000));
        let retry = RetryPolicy { max_attempts: 64, ..RetryPolicy::default() };
        let lookup = LookupTable::paper();
        let (a, ta) = simulate_stream_faulty(
            &dfg, &system, lookup, &mut FirstFit, &arrivals, plan, retry,
        ).unwrap();
        let (b, tb) = simulate_stream_faulty(
            &dfg, &system, lookup, &mut FirstFit, &arrivals, plan, retry,
        ).unwrap();
        prop_assert_eq!(&a, &b, "same seeds must replay identically");
        prop_assert_eq!(ta, tb);
        prop_assert_eq!(a.trace.records.len(), n, "a kernel was lost");
        a.trace.validate(&dfg).unwrap();
    }

    /// Crashes landing mid-transfer are safe: inflated cross-processor
    /// inputs under aggressive crash cycling still complete every kernel,
    /// the trace validates, and the waste/downtime books stay consistent
    /// (wasted occupancy never exceeds total occupancy).
    #[test]
    fn crash_during_transfer_is_safe(
        n in 2usize..12,
        density in 20u64..80,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        let dfg = random_kernel_dag(n, density, seed);
        // 64 B/element stretches transfers to multi-second spans, so
        // MTTF 5 s lands crashes inside them routinely.
        let system = SystemConfig::paper_4gbps().with_bytes_per_element(64);
        let arrivals = vec![SimTime::ZERO; dfg.len()];
        let plan = FaultPlan::seeded(fault_seed)
            .with_crashes(SimDuration::from_ms(5_000), SimDuration::from_ms(200));
        let (res, totals) = simulate_stream_faulty(
            &dfg,
            &system,
            LookupTable::paper(),
            &mut FirstFit,
            &arrivals,
            plan,
            RetryPolicy::default(),
        ).unwrap();
        prop_assert_eq!(res.trace.records.len(), n, "a kernel was lost");
        res.trace.validate(&dfg).unwrap();
        let occupancy_ns: u64 = res
            .trace
            .proc_stats
            .iter()
            .map(|s| s.busy.as_ns() + s.transfer.as_ns())
            .sum();
        prop_assert!(
            totals.wasted_ns <= occupancy_ns,
            "wasted {} ns exceeds total occupancy {} ns",
            totals.wasted_ns,
            occupancy_ns
        );
        prop_assert_eq!(totals.kernel_failures, 0, "crash-only plan drew a transient");
        prop_assert!(totals.repairs <= totals.crashes);
    }
}

#[test]
fn kernel_without_table_entry_cannot_deadlock_firstfit() {
    // FirstFit skips processors that cannot run a kernel; on an ASIC+CPU
    // machine everything lands on the CPU.
    let dfg = random_kernel_dag(10, 30, 77);
    let system = SystemConfig::empty(LinkRate::PCIE2_X8)
        .with_proc(ProcKind::Asic)
        .with_proc(ProcKind::Cpu);
    let res = simulate(&dfg, &system, LookupTable::paper(), &mut FirstFit).unwrap();
    assert!(res.trace.records.iter().all(|r| r.proc.index() == 1));
}
