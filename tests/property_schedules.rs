//! Property-based tests: every policy, on arbitrary seeded workloads and
//! machines, must produce schedules that satisfy the structural invariants
//! the trace validator encodes — every kernel exactly once, no processor
//! overlap, precedence respected — plus global bounds and determinism.

use apt_suite::prelude::*;
use proptest::prelude::*;

/// Construct the policy under test by index (covers all nine schedulers).
fn make_policy(which: usize, alpha: f64) -> Box<dyn Policy> {
    match which {
        0 => Box::new(Apt::new(alpha)),
        1 => Box::new(AptR::new(alpha)),
        2 => Box::new(Met::new()),
        3 => Box::new(Spn::new()),
        4 => Box::new(SerialScheduling::new()),
        5 => Box::new(AdaptiveGreedy::new()),
        6 => Box::new(Olb::new()),
        7 => Box::new(Heft::new()),
        _ => Box::new(Peft::new()),
    }
}

fn arbitrary_workload() -> impl Strategy<Value = (KernelDag, u64)> {
    (1usize..40, any::<u64>(), prop::bool::ANY).prop_map(|(n, seed, type2)| {
        let lookup = LookupTable::paper();
        let cfg = StreamConfig::new(n, seed);
        let ty = if type2 {
            DfgType::Type2
        } else {
            DfgType::Type1
        };
        (generate(ty, &cfg, lookup), seed)
    })
}

fn arbitrary_system() -> impl Strategy<Value = SystemConfig> {
    (1u8..=2, 1u8..=2, 1u8..=2, prop::bool::ANY, 0u64..=8).prop_map(
        |(cpus, gpus, fpgas, fast, bpe)| {
            let mut sys = SystemConfig::empty(if fast {
                LinkRate::PCIE2_X16
            } else {
                LinkRate::PCIE2_X8
            })
            .with_bytes_per_element(bpe);
            for _ in 0..cpus {
                sys = sys.with_proc(ProcKind::Cpu);
            }
            for _ in 0..gpus {
                sys = sys.with_proc(ProcKind::Gpu);
            }
            for _ in 0..fpgas {
                sys = sys.with_proc(ProcKind::Fpga);
            }
            sys
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant: every policy yields a valid schedule on any workload and
    /// machine, and the λ accounting is self-consistent.
    #[test]
    fn every_policy_produces_valid_schedules(
        (dfg, _) in arbitrary_workload(),
        system in arbitrary_system(),
        which in 0usize..9,
        alpha in 1.0f64..20.0,
    ) {
        let mut policy = make_policy(which, alpha);
        let res = simulate(&dfg, &system, LookupTable::paper(), policy.as_mut())
            .expect("simulation must complete");
        res.trace.validate(&dfg).expect("trace invariants");
        // λ total equals the sum of per-record delays.
        let manual: SimDuration = res.trace.records.iter().map(|r| r.lambda()).sum();
        prop_assert_eq!(res.trace.lambda_total(), manual);
        // Record count and per-processor kernel counts agree.
        let by_stats: usize = res.trace.proc_stats.iter().map(|s| s.kernels).sum();
        prop_assert_eq!(by_stats, dfg.len());
    }

    /// Bound: the makespan sits between the critical-path lower bound (each
    /// kernel at its best time, transfers free) and the serial upper bound
    /// (every kernel at its worst time plus all input transfers).
    #[test]
    fn makespan_respects_global_bounds(
        (dfg, _) in arbitrary_workload(),
        which in 0usize..9,
    ) {
        let lookup = LookupTable::paper();
        let system = SystemConfig::paper_4gbps();
        let mut policy = make_policy(which, 4.0);
        let res = simulate(&dfg, &system, lookup, policy.as_mut()).unwrap();

        let lower = dfg
            .critical_path(|n| lookup.best_category(dfg.node(n)).unwrap().1.as_ns())
            .unwrap();
        let transfer_bound: u64 = dfg
            .edges()
            .map(|(u, _)| {
                system
                    .link
                    .transfer_time(dfg.node(u).bytes(system.bytes_per_element))
                    .as_ns()
            })
            .sum();
        let upper: u64 = dfg
            .iter()
            .map(|(_, k)| lookup.row(k).unwrap().times.iter().max().unwrap().as_ns())
            .sum::<u64>()
            + transfer_bound;

        let got = res.makespan().as_ns();
        prop_assert!(got >= lower, "makespan {got} < critical path {lower}");
        prop_assert!(got <= upper, "makespan {got} > serial bound {upper}");
    }

    /// Determinism: identical inputs give bit-identical traces.
    #[test]
    fn simulation_is_a_pure_function(
        (dfg, _) in arbitrary_workload(),
        which in 0usize..9,
    ) {
        let system = SystemConfig::paper_4gbps();
        let lookup = LookupTable::paper();
        let a = simulate(&dfg, &system, lookup, make_policy(which, 4.0).as_mut()).unwrap();
        let b = simulate(&dfg, &system, lookup, make_policy(which, 4.0).as_mut()).unwrap();
        prop_assert_eq!(a, b);
    }

    /// APT dominance over its own rigidity: opening the threshold can only
    /// help or leave unchanged the *total work* assigned to the system's
    /// best processors... which is hard to state exactly — so we assert the
    /// practical version the paper relies on: APT's makespan never exceeds
    /// MET's by more than the worst single admission, bounded here loosely
    /// as (α − 1) × the largest best-case kernel time in the stream.
    #[test]
    fn apt_regression_versus_met_is_bounded(
        (dfg, _) in arbitrary_workload(),
        alpha in 1.0f64..8.0,
    ) {
        let lookup = LookupTable::paper();
        let system = SystemConfig::paper_no_transfers();
        let met = simulate(&dfg, &system, lookup, &mut Met::new()).unwrap();
        let apt = simulate(&dfg, &system, lookup, &mut Apt::new(alpha)).unwrap();
        let worst_best: u64 = dfg
            .iter()
            .map(|(_, k)| lookup.best_category(k).unwrap().1.as_ns())
            .max()
            .unwrap_or(0);
        let slack = ((alpha - 1.0) * worst_best as f64) as u64 + worst_best;
        prop_assert!(
            apt.makespan().as_ns() <= met.makespan().as_ns() + slack.saturating_mul(2),
            "APT(α={alpha}) {} vs MET {} exceeds admission slack",
            apt.makespan(),
            met.makespan()
        );
    }

    /// The DAG generators only ever emit valid graphs whose kernels all have
    /// lookup coverage (so any policy can run any generated workload).
    #[test]
    fn generated_workloads_are_always_schedulable(
        n in 0usize..200,
        seed in any::<u64>(),
        type2 in prop::bool::ANY,
    ) {
        let lookup = LookupTable::paper();
        let ty = if type2 { DfgType::Type2 } else { DfgType::Type1 };
        let dfg = generate(ty, &StreamConfig::new(n, seed), lookup);
        prop_assert_eq!(dfg.len(), n);
        dfg.validate().expect("generated DAG");
        for (_, k) in dfg.iter() {
            prop_assert!(lookup.row(k).is_ok());
        }
    }
}
