//! SPN — shortest process next (Khokhar et al.).
//!
//! §2.5.3: SPN "chooses a kernel from I that has the minimum execution time
//! on any of the processors from A. If there is any processor available and
//! there are kernels in set I, assignments are made to keep the system
//! busy." The selection therefore ranges over *(kernel, available
//! processor)* pairs, and the defining weakness is that SPN "disregards the
//! observed heterogeneity": when the globally best device is busy it happily
//! places work on an arbitrarily slow available one — which is exactly what
//! produces its catastrophic Table-8/9 rows (e.g. a GEM forced onto the
//! FPGA costs 585 760 ms against 4 001 ms on the GPU).

use apt_base::{ProcId, SimDuration};
use apt_dfg::NodeId;
use apt_hetsim::{Assignment, AssignmentBuf, Policy, PolicyKind, SimView};

/// The SPN policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct Spn;

impl Spn {
    /// Create an SPN scheduler.
    pub const fn new() -> Self {
        Spn
    }
}

impl Policy for Spn {
    fn name(&self) -> String {
        "SPN".into()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Dynamic
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
        // Enumerate (ready kernel, idle processor) pairs; pick the pair with
        // the smallest execution time. Ties: first in (node id, proc id)
        // enumeration order — a strict `<` running minimum keeps the
        // earliest pair, matching the argmin helper this replaced without
        // materializing the pair list.
        let mut best: Option<(NodeId, ProcId, SimDuration)> = None;
        for node in view.ready.iter() {
            for p in view.idle_procs() {
                if let Some(e) = view.exec_time(node, p.id) {
                    if best.is_none_or(|(_, _, be)| e < be) {
                        best = Some((node, p.id, e));
                    }
                }
            }
        }
        if let Some((node, proc, _)) = best {
            out.push(Assignment::new(node, proc));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_base::{ProcKind, SimDuration};
    use apt_dfg::generator::{build_type1, generate_kernels, StreamConfig};
    use apt_dfg::{Kernel, KernelKind, LookupTable};
    use apt_hetsim::{simulate, SystemConfig};

    #[test]
    fn spn_keeps_the_system_busy_even_on_terrible_devices() {
        // Three GEMs: GPU-best (4 001 ms). SPN fills CPU (21 592) and FPGA
        // (585 760) instead of letting them idle.
        let kernels = [
            Kernel::canonical(KernelKind::Gem),
            Kernel::canonical(KernelKind::Gem),
            Kernel::canonical(KernelKind::Gem),
        ];
        let dfg = build_type1(&kernels[..]);
        // No fan-in sink here: use 3 independent kernels by building Type-1
        // of 4 and ignoring... simpler: the 3rd is the sink; still all three run.
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            LookupTable::paper(),
            &mut Spn::new(),
        )
        .unwrap();
        res.trace.validate(&dfg).unwrap();
        let kinds: Vec<ProcKind> = res
            .trace
            .records
            .iter()
            .map(|r| SystemConfig::paper_no_transfers().kind_of(r.proc))
            .collect();
        // First two (independent level) land on GPU then CPU (4 001 < 21 592
        // < 585 760); the dependent third waits for both and takes the GPU.
        assert_eq!(kinds[0], ProcKind::Gpu);
        assert_eq!(kinds[1], ProcKind::Cpu);
        assert_eq!(kinds[2], ProcKind::Gpu);
    }

    #[test]
    fn spn_picks_the_globally_shortest_pair_first() {
        // nw (CPU 112) and cd (FPGA 0.093): cd is the shortest pair and is
        // scheduled first even though nw has a lower node id.
        let kernels = vec![
            Kernel::canonical(KernelKind::NeedlemanWunsch),
            Kernel::new(KernelKind::Cholesky, 250_000),
            Kernel::canonical(KernelKind::Bfs),
        ];
        let dfg = build_type1(&kernels);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            LookupTable::paper(),
            &mut Spn::new(),
        )
        .unwrap();
        // cd is the globally shortest (kernel, processor) pair, so it claims
        // the FPGA at t = 0 — before bfs (whose best is also the FPGA) can.
        let cd = res
            .trace
            .records
            .iter()
            .find(|r| r.kernel.kind == KernelKind::Cholesky)
            .unwrap();
        assert_eq!(cd.start.as_ns(), 0);
        assert_eq!(
            SystemConfig::paper_no_transfers().kind_of(cd.proc),
            ProcKind::Fpga
        );
        // bfs therefore could not start on the FPGA at t = 0.
        let bfs = res
            .trace
            .records
            .iter()
            .find(|r| r.kernel.kind == KernelKind::Bfs)
            .unwrap();
        assert!(
            SystemConfig::paper_no_transfers().kind_of(bfs.proc) != ProcKind::Fpga
                || bfs.start.as_ns() > 0
        );
    }

    #[test]
    fn spn_never_leaves_a_runnable_processor_idle_while_work_waits() {
        // Structural property from the paper's Table 2: "never waits".
        // With ≥ 3 ready kernels at t = 0 every processor must be busy at 0.
        let kernels = generate_kernels(&StreamConfig::new(30, 13), LookupTable::paper());
        let dfg = build_type1(&kernels);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_4gbps(),
            LookupTable::paper(),
            &mut Spn::new(),
        )
        .unwrap();
        let mut started_at_zero = res
            .trace
            .records
            .iter()
            .filter(|r| r.start == apt_base::SimTime::ZERO)
            .map(|r| r.proc)
            .collect::<Vec<_>>();
        started_at_zero.sort_unstable();
        started_at_zero.dedup();
        assert_eq!(started_at_zero.len(), 3, "some processor idled at t=0");
        assert!(res.makespan() > SimDuration::ZERO);
    }
}
