//! Multi-link topology scenarios: does APT's α advantage survive when
//! transfer cost is no longer a single scalar?
//!
//! The paper evaluates one uniform link (§3.2). `apt-repro topology-sweep`
//! re-runs the open-stream saturation question on a six-processor machine
//! (two CPU+GPU+FPGA pods) under four interconnects:
//!
//! * **uniform** — 4 GB/s between every pair (the §3.2 model, scaled up),
//! * **clustered** — NUMA-ish: 8 GB/s inside a pod, 0.5 GB/s across pods,
//! * **bottleneck** — host-staged star rooted at CPU0: 1 GB/s to the root,
//!   0.5 GB/s effective for every device↔device two-hop,
//! * **bottleneck+pl** — the same star with per-link contention enabled
//!   ([`apt_hetsim::LinkContention::PerLink`]): a starting kernel's inputs
//!   stream concurrently over distinct links instead of serializing on the
//!   consumer. Contention is keyed on logical `(src, dst)` pairs, so the
//!   star's shared root uplink is not itself serialized — this row is an
//!   optimistic bound on what link-level parallelism buys back (see the
//!   `Topology::star` docs).
//!
//! Each cell sweeps offered λ against achieved throughput, latency tails
//! and the transfer share of busy time, per dynamic policy at the paper's
//! best α — the saturation-knee comparison `stream-saturation` asks on the
//! paper machine, now with interconnect structure in the way. `--csv`
//! exports the windowed snapshots in long format for plotting.

use crate::runner::run_pool;
use crate::streaming::stream_policy_factories;
use apt_core::prelude::*;
use apt_metrics::TextTable;
use apt_stream::{simulate_source, DriverOpts, JobFamily, PoissonSource, StreamOutcome};

/// Jobs per sweep cell. Smaller than the single-topology sweep's 600: the
/// grid is 4 topologies wide.
pub const TOPO_JOBS: u64 = 400;

/// Swept offered rates, jobs per simulated second. The six-processor
/// machine sustains roughly twice the paper machine's diamond-mix capacity
/// on a uniform link; the slow-link topologies saturate much earlier, so
/// the grid straddles both knees.
pub const TOPO_RATES: [f64; 4] = [0.1, 0.25, 0.4, 0.6];

/// In-flight cap marking a cell saturated (admission latches and drains).
pub const TOPO_CAP: usize = 256;

/// Seed for the arrival streams: every (topology, policy) cell at a given
/// λ sees the same arrivals.
pub const TOPO_SEED: u64 = 0x0070_9010;

/// Bytes per element for the sweep machine: 4× the paper's f32 setting,
/// so the diamond mix is genuinely transfer-heavy and the interconnect
/// structure (not just compute) shapes the knee.
pub const TOPO_BYTES_PER_ELEMENT: u64 = 16;

/// The six-processor base machine: two CPU+GPU+FPGA pods at the paper's
/// 4 GB/s uniform link (the baseline every topology row is compared to),
/// with a transfer-heavy 16 B/element convention.
fn six_proc_base() -> SystemConfig {
    SystemConfig::empty(LinkRate::PCIE2_X8)
        .with_proc(ProcKind::Cpu)
        .with_proc(ProcKind::Gpu)
        .with_proc(ProcKind::Fpga)
        .with_proc(ProcKind::Cpu)
        .with_proc(ProcKind::Gpu)
        .with_proc(ProcKind::Fpga)
        .with_bytes_per_element(TOPO_BYTES_PER_ELEMENT)
}

/// The compared interconnects over the same six processors (see the
/// module docs).
pub fn topology_variants() -> Vec<(&'static str, SystemConfig)> {
    let base = six_proc_base;
    let inter = LinkRate {
        bytes_per_sec: 500_000_000, // 0.5 GB/s across pods
    };
    vec![
        ("uniform", base()),
        (
            "clustered",
            base().with_topology(Topology::clustered(6, 3, LinkRate::PCIE2_X16, inter)),
        ),
        (
            "bottleneck",
            base().with_topology(Topology::star(6, ProcId::new(0), LinkRate::gbps(1))),
        ),
        (
            "bottleneck+pl",
            base().with_topology(
                Topology::star(6, ProcId::new(0), LinkRate::gbps(1))
                    .with_contention(LinkContention::PerLink),
            ),
        ),
    ]
}

/// One sweep cell: policy × offered λ on one topology.
pub fn topology_point(
    make: &(dyn Fn() -> Box<dyn Policy> + Send + Sync),
    rate: f64,
    config: &SystemConfig,
    snapshot_interval: Option<SimDuration>,
) -> StreamOutcome {
    let mut policy = make();
    let mut source = PoissonSource::new(
        LookupTable::paper(),
        rate,
        TOPO_JOBS,
        JobFamily::Diamond { width: 2 },
        TOPO_SEED,
    );
    simulate_source(
        &mut source,
        config,
        LookupTable::paper(),
        policy.as_mut(),
        &DriverOpts {
            snapshot_interval,
            max_in_flight_jobs: Some(TOPO_CAP),
            ..DriverOpts::default()
        },
    )
    .expect("topology sweep point failed")
}

/// Run the topology × λ × policy grid once on the shared worker pool.
fn run_topology_grid(snapshot_interval: Option<SimDuration>) -> Vec<StreamOutcome> {
    let variants = topology_variants();
    let factories = stream_policy_factories(PAPER_BEST_ALPHA);
    let per_topo = TOPO_RATES.len() * factories.len();
    run_pool(variants.len() * per_topo, |i| {
        let (_, config) = &variants[i / per_topo];
        let rate = TOPO_RATES[(i % per_topo) / factories.len()];
        let (_, make) = &factories[i % factories.len()];
        topology_point(make.as_ref(), rate, config, snapshot_interval)
    })
}

/// Cell label (`topology/policy/λ=r`) for row `i` of the flattened grid.
fn cell_label(i: usize) -> String {
    let variants = topology_variants();
    let factories = stream_policy_factories(PAPER_BEST_ALPHA);
    let per_topo = TOPO_RATES.len() * factories.len();
    format!(
        "{}/{}/λ={}",
        variants[i / per_topo].0,
        factories[i % factories.len()].0,
        TOPO_RATES[(i % per_topo) / factories.len()],
    )
}

fn render_topology_table(outcomes: &[StreamOutcome]) -> TextTable {
    let variants = topology_variants();
    let factories = stream_policy_factories(PAPER_BEST_ALPHA);
    let per_topo = TOPO_RATES.len() * factories.len();
    let mut table = TextTable::new(
        format!(
            "Topology sweep — {} Poisson diamond jobs/cell on 2×(CPU+GPU+FPGA), α = {} (sat = admission capped at {} in flight)",
            TOPO_JOBS, PAPER_BEST_ALPHA, TOPO_CAP
        ),
        &[
            "topology",
            "offered λ (j/s)",
            "policy",
            "achieved (j/s)",
            "p50 (ms)",
            "p99 (ms)",
            "xfer %",
            "util %",
            "sat",
        ],
    );
    for (i, o) in outcomes.iter().enumerate() {
        let busy: f64 = o
            .proc_stats
            .iter()
            .map(|s| s.busy.as_ms_f64() + s.transfer.as_ms_f64())
            .sum();
        let xfer: f64 = o.proc_stats.iter().map(|s| s.transfer.as_ms_f64()).sum();
        let mean_util =
            o.utilization().iter().sum::<f64>() / o.proc_stats.len().max(1) as f64 * 100.0;
        table.push_row(vec![
            variants[i / per_topo].0.to_string(),
            format!("{}", TOPO_RATES[(i % per_topo) / factories.len()]),
            factories[i % factories.len()].0.clone(),
            format!("{:.2}", o.throughput_jps),
            format!("{:.0}", o.latency_p50_ms),
            format!("{:.0}", o.latency_p99_ms),
            format!("{:.0}", if busy > 0.0 { xfer / busy * 100.0 } else { 0.0 }),
            format!("{mean_util:.0}"),
            if o.saturated { "yes" } else { "" }.to_string(),
        ]);
    }
    table
}

fn render_topology_csv(outcomes: &[StreamOutcome]) -> String {
    let labels: Vec<String> = (0..outcomes.len()).map(cell_label).collect();
    apt_metrics::export::snapshots_to_csv(
        labels
            .iter()
            .zip(outcomes)
            .map(|(label, o)| (label.as_str(), o.snapshots.as_slice())),
    )
}

/// The topology saturation sweep (see the module docs).
pub fn topology_sweep() -> TextTable {
    render_topology_table(&run_topology_grid(None))
}

/// Long-format snapshot CSV over the topology grid (windows every 2
/// simulated minutes) — the plottable companion of [`topology_sweep`].
pub fn topology_sweep_csv() -> String {
    render_topology_csv(&run_topology_grid(Some(SimDuration::from_ms(120_000))))
}

/// One snapshot-enabled grid run rendered both ways, so
/// `apt-repro topology-sweep --csv <path>` simulates the grid once.
pub fn topology_sweep_with_csv() -> (TextTable, String) {
    let outcomes = run_topology_grid(Some(SimDuration::from_ms(120_000)));
    (
        render_topology_table(&outcomes),
        render_topology_csv(&outcomes),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_cover_the_advertised_interconnects() {
        let v = topology_variants();
        assert_eq!(
            v.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            vec!["uniform", "clustered", "bottleneck", "bottleneck+pl"],
        );
        for (name, config) in &v {
            assert_eq!(config.len(), 6, "{name}");
            config.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert_eq!(v[0].1.uniform_rate(), Some(LinkRate::PCIE2_X8));
        assert_eq!(v[1].1.uniform_rate(), None);
        assert_eq!(v[3].1.contention(), LinkContention::PerLink);
    }

    #[test]
    fn slow_topologies_differ_measurably_from_uniform() {
        // One transfer-heavy cell per topology: same arrivals, same
        // policy — the bottleneck star must lose throughput or latency
        // against the uniform baseline (the knee the sweep exists to show).
        let variants = topology_variants();
        let factories = stream_policy_factories(PAPER_BEST_ALPHA);
        let (_, apt) = &factories[0];
        let uniform = topology_point(apt.as_ref(), 0.4, &variants[0].1, None);
        let star = topology_point(apt.as_ref(), 0.4, &variants[2].1, None);
        assert!(
            star.latency_p99_ms > uniform.latency_p99_ms
                || star.throughput_jps < uniform.throughput_jps
                || (star.saturated && !uniform.saturated),
            "bottleneck star indistinguishable from uniform: {} vs {} p99, {} vs {} j/s",
            star.latency_p99_ms,
            uniform.latency_p99_ms,
            star.throughput_jps,
            uniform.throughput_jps,
        );
        // Determinism: the same cell replays identically.
        let again = topology_point(apt.as_ref(), 0.4, &variants[2].1, None);
        assert_eq!(star.end, again.end);
        assert_eq!(star.proc_stats, again.proc_stats);
    }

    #[test]
    fn cell_labels_cover_the_grid_in_order() {
        let variants = topology_variants();
        let factories = stream_policy_factories(PAPER_BEST_ALPHA);
        let cells = variants.len() * TOPO_RATES.len() * factories.len();
        assert_eq!(cell_label(0), "uniform/APT/λ=0.1");
        assert_eq!(
            cell_label(cells - 1),
            format!("bottleneck+pl/AG/λ={}", TOPO_RATES[TOPO_RATES.len() - 1])
        );
    }
}
