//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so that
//! downstream users *could* serialize them, but nothing in the repository
//! actually serializes — so in this hermetic (no-network) build the derives
//! expand to nothing. Swapping the real `serde` back in is a one-line
//! manifest change per crate.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
