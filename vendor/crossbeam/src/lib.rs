//! Offline stand-in for the `crossbeam` scoped-thread API, backed by
//! `std::thread::scope` (stable since Rust 1.63, which post-dates crossbeam's
//! scoped threads and makes them redundant for this workspace's usage).
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` are provided — the one
//! surface the experiment runner consumes.

/// Scoped threads (`crossbeam::thread` subset).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives the
        /// scope again so it can spawn nested work.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope; every spawned thread is joined before this
    /// returns. Returns `Err` with the panic payload if any unjoined child
    /// panicked (crossbeam's contract).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let hits = AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| hits.fetch_add(1, Ordering::SeqCst));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn child_panic_is_reported() {
        let res = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }
}
