//! A domain scenario from the paper's motivation (§1.1): a medical-imaging
//! pipeline in the style of Skalicky et al.'s transmural electrophysiological
//! imaging and Binotto et al.'s X-ray processing — repeated frames, each a
//! small DAG of despeckling (SRAD), linear-algebra reconstruction (MM / CD /
//! MI) and an alignment stage (NW), with a BFS-based segmentation step.
//!
//! The DAG is built by hand (no generator) to show the public graph API, and
//! scheduled with APT, MET and HEFT.
//!
//! ```bash
//! cargo run --release --example imaging_pipeline [frames]
//! ```

use apt_metrics::gantt::state_log;
use apt_metrics::RunSummary;
use apt_suite::prelude::*;

/// One frame: srad → (mm, cd) → mi → nw, plus a bfs segmentation that joins
/// the reconstruction before the final alignment.
fn add_frame(dfg: &mut KernelDag) {
    let srad = dfg.add_node(Kernel::canonical(KernelKind::Srad));
    let mm = dfg.add_node(Kernel::new(KernelKind::MatMul, 4_000_000));
    let cd = dfg.add_node(Kernel::new(KernelKind::Cholesky, 4_000_000));
    let bfs = dfg.add_node(Kernel::canonical(KernelKind::Bfs));
    let mi = dfg.add_node(Kernel::new(KernelKind::MatInv, 4_000_000));
    let nw = dfg.add_node(Kernel::canonical(KernelKind::NeedlemanWunsch));
    for (a, b) in [
        (srad, mm),
        (srad, cd),
        (mm, mi),
        (cd, mi),
        (mi, nw),
        (bfs, nw),
    ] {
        dfg.add_edge(a, b).expect("frame edges are fresh");
    }
}

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);

    let mut dfg = KernelDag::new();
    for _ in 0..frames {
        add_frame(&mut dfg);
    }
    dfg.validate().expect("pipeline is a DAG");
    println!(
        "imaging pipeline: {frames} frames, {} kernels, {} edges",
        dfg.len(),
        dfg.edge_count()
    );

    let lookup = LookupTable::paper();
    let system = SystemConfig::paper_4gbps();

    for run in [
        simulate(&dfg, &system, lookup, &mut Met::new()),
        simulate(&dfg, &system, lookup, &mut Apt::new(4.0)),
        simulate(&dfg, &system, lookup, &mut Heft::new()),
    ] {
        let res = run.expect("simulation");
        let s = RunSummary::from_result(&res);
        let frame_rate = frames as f64 / s.makespan.as_secs_f64();
        println!(
            "{:10} makespan {:>12}   λ {:>12}   throughput {frame_rate:.2} frames/s",
            s.policy,
            format!("{}", s.makespan),
            format!("{}", s.lambda_total),
        );
    }

    // Show the first events of the APT schedule in the Figure-5 format.
    let apt = simulate(&dfg, &system, lookup, &mut Apt::new(4.0)).expect("APT");
    let log = state_log(&apt.trace, &system);
    println!("\nfirst APT schedule states:");
    for line in log.lines().take(8) {
        println!("  {line}");
    }
}
