//! SS — priority-rule serial scheduling (Liu & Yang).
//!
//! §2.5.3: "for each kernel in I, the mean and standard deviation of the
//! compute times are calculated for each kernel-to-available-processor
//! mapping. Then the scheduler chooses the kernel from I with the highest
//! standard deviation and assigns it to the processor from A in which the
//! kernel has the lowest execution time. Whenever there are kernels in I and
//! there are available processors, assignments can be made."
//!
//! The standard deviation is computed over the *available* processors only,
//! so the priority adapts as devices come and go. Like SPN, SS never waits:
//! when the best device is busy it assigns to the best *available* one "even
//! if they are not the best choice".
//!
//! The per-kernel stddev depends only on `(node, idle-processor mask)` —
//! not on any other live state — so it is memoized in the run's
//! [`CostModel`](apt_hetsim::CostModel) (`idle_stddev`), turning the former
//! per-edge recomputation (SS was the slowest dynamic policy end-to-end)
//! into a table read.

use apt_base::stats::FiniteF64;
use apt_base::{ProcId, SimDuration};
use apt_dfg::NodeId;
use apt_hetsim::{Assignment, AssignmentBuf, Policy, PolicyKind, SimView};

/// The SS policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialScheduling;

impl SerialScheduling {
    /// Create an SS scheduler.
    pub const fn new() -> Self {
        SerialScheduling
    }
}

impl Policy for SerialScheduling {
    fn name(&self) -> String {
        "SS".into()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Dynamic
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut AssignmentBuf) {
        // Highest-stddev ready kernel over the available processors. The
        // stddev is a memoized (node, idle-mask) cost-model read; only the
        // best available processor is found by scanning.
        let idle_mask = view.idle_mask;
        let mut best: Option<(FiniteF64, NodeId, ProcId)> = None;
        for node in view.ready.iter() {
            let mut best_proc: Option<(ProcId, SimDuration)> = None;
            for p in view.idle_procs() {
                if let Some(e) = view.exec_time(node, p.id) {
                    if best_proc.is_none_or(|(_, be)| e < be) {
                        best_proc = Some((p.id, e));
                    }
                }
            }
            let Some((proc, _)) = best_proc else { continue };
            let sd = FiniteF64(view.cost.idle_stddev(node, idle_mask));
            // Strict `>` keeps the earliest (lowest-id) kernel on ties.
            if best.is_none_or(|(bsd, _, _)| sd > bsd) {
                best = Some((sd, node, proc));
            }
        }
        if let Some((_, node, proc)) = best {
            out.push(Assignment::new(node, proc));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_base::ProcKind;
    use apt_dfg::generator::build_type1;
    use apt_dfg::{Kernel, KernelKind, LookupTable};
    use apt_hetsim::{simulate, SystemConfig};

    #[test]
    fn ss_prioritizes_the_most_heterogeneous_kernel() {
        // gem (stddev over {21592, 4001, 585760} ≈ huge) must be placed
        // before nw (stddev over {112, 146, 397} tiny), taking the GPU.
        let kernels = vec![
            Kernel::canonical(KernelKind::NeedlemanWunsch),
            Kernel::canonical(KernelKind::Gem),
            Kernel::canonical(KernelKind::Bfs),
        ];
        let dfg = build_type1(&kernels);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            LookupTable::paper(),
            &mut SerialScheduling::new(),
        )
        .unwrap();
        // gem is picked first (highest stddev) and claims the GPU at t = 0;
        // nw gets the CPU (its best among the remaining devices).
        let gem = res
            .trace
            .records
            .iter()
            .find(|r| r.kernel.kind == KernelKind::Gem)
            .unwrap();
        assert_eq!(gem.start.as_ns(), 0);
        assert_eq!(
            SystemConfig::paper_no_transfers().kind_of(gem.proc),
            ProcKind::Gpu
        );
    }

    #[test]
    fn ss_assigns_to_best_available_not_best_overall() {
        // Two gems: the first takes the GPU; the second is then assigned to
        // the best *available* processor (CPU, 21 592 ms) instead of waiting
        // for the GPU — the "not the best choice" behaviour of §2.5.3.
        let kernels = vec![
            Kernel::canonical(KernelKind::Gem),
            Kernel::canonical(KernelKind::Gem),
            Kernel::new(KernelKind::Cholesky, 250_000),
        ];
        let dfg = build_type1(&kernels);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_no_transfers(),
            LookupTable::paper(),
            &mut SerialScheduling::new(),
        )
        .unwrap();
        let gem_procs: Vec<ProcKind> = res
            .trace
            .records
            .iter()
            .filter(|r| r.kernel.kind == KernelKind::Gem)
            .map(|r| SystemConfig::paper_no_transfers().kind_of(r.proc))
            .collect();
        assert_eq!(gem_procs, vec![ProcKind::Gpu, ProcKind::Cpu]);
    }

    #[test]
    fn ss_trace_is_valid_on_a_mixed_workload() {
        let kernels = vec![
            Kernel::canonical(KernelKind::Srad),
            Kernel::new(KernelKind::MatMul, 16_000_000),
            Kernel::new(KernelKind::MatInv, 698_896),
            Kernel::canonical(KernelKind::Bfs),
            Kernel::canonical(KernelKind::NeedlemanWunsch),
        ];
        let dfg = build_type1(&kernels);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_4gbps(),
            LookupTable::paper(),
            &mut SerialScheduling::new(),
        )
        .unwrap();
        res.trace.validate(&dfg).unwrap();
        assert_eq!(res.trace.records.len(), 5);
    }
}
