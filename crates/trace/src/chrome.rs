//! Chrome trace-event JSON export (loadable in `chrome://tracing` and
//! Perfetto) plus the field-contract validator the schema tests pin.
//!
//! Layout of the exported timeline:
//!
//! * one thread track per processor (`tid = proc index + 1`), named from
//!   the machine description ("p0 CPU", …);
//! * one `driver` track (`tid = procs + 1`) carrying job admission /
//!   shed / retirement instants, control actions, and fault episodes;
//! * kernels as complete (`ph: "X"`) spans from dispatch to completion,
//!   with `xfer` / `exec` sub-slices nested inside, alternative (APT
//!   `p_alt`) placements colored and annotated;
//! * [`DecisionRecord`](crate::DecisionRecord)s as instant events on the
//!   chosen processor's track with the full Eq.-8 provenance in `args`;
//! * every [`CounterKind`](crate::CounterKind) as a counter (`ph: "C"`)
//!   track — queue depth, in-flight jobs, live α/ρ, window miss rate.

use crate::json::{escape, JsonValue};
use crate::{DecisionRecord, TraceEvent};
use apt_base::{ProcId, SimTime};
use apt_dfg::Kernel;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Export-time description of the traced machine.
#[derive(Debug, Clone, Default)]
pub struct ChromeConfig {
    /// One display name per processor, index-aligned with `ProcId`
    /// (e.g. `"p0 CPU"`). Processors beyond this list render as `p<i>`.
    pub proc_names: Vec<String>,
}

impl ChromeConfig {
    /// Names taken straight from a machine's processor list.
    pub fn with_proc_names(proc_names: Vec<String>) -> Self {
        ChromeConfig { proc_names }
    }

    fn proc_name(&self, p: ProcId) -> String {
        self.proc_names
            .get(p.index())
            .cloned()
            .unwrap_or_else(|| format!("p{}", p.index()))
    }
}

/// `pid` of the single exported process.
const PID: u32 = 1;

/// Microsecond timestamp (Chrome's `ts` unit) from a sim instant.
fn us(t: SimTime) -> f64 {
    t.as_ns() as f64 / 1_000.0
}

/// One open kernel span being reconstructed on a processor track.
struct OpenSpan {
    node: u32,
    kernel: Kernel,
    start: SimTime,
    exec_start: Option<SimTime>,
    alt: bool,
    job: Option<u64>,
}

/// Streams one JSON event object into `out`.
struct EventWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> EventWriter<'a> {
    fn new(out: &'a mut String) -> Self {
        EventWriter { out, first: true }
    }

    fn raw(&mut self, body: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str("  ");
        self.out.push_str(body);
    }

    fn meta_thread(&mut self, tid: u32, name: &str, sort_index: u32) {
        self.raw(&format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":{}}}}}",
            escape(name)
        ));
        self.raw(&format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_sort_index\",\
             \"args\":{{\"sort_index\":{sort_index}}}}}"
        ));
    }

    fn span(&mut self, tid: u32, name: &str, ts: f64, dur: f64, cname: Option<&str>, args: &str) {
        let mut body = format!(
            "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"name\":{},\"cat\":\"kernel\",\
             \"ts\":{ts},\"dur\":{dur}",
            escape(name)
        );
        if let Some(c) = cname {
            let _ = write!(body, ",\"cname\":{}", escape(c));
        }
        let _ = write!(body, ",\"args\":{{{args}}}}}");
        self.raw(&body);
    }

    fn instant(&mut self, tid: u32, name: &str, ts: f64, args: &str) {
        self.raw(&format!(
            "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{tid},\"name\":{},\"cat\":\"event\",\
             \"ts\":{ts},\"s\":\"t\",\"args\":{{{args}}}}}",
            escape(name)
        ));
    }

    fn counter(&mut self, name: &str, ts: f64, value: f64) {
        self.raw(&format!(
            "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":0,\"name\":{},\"ts\":{ts},\
             \"args\":{{\"value\":{value}}}}}",
            escape(name)
        ));
    }
}

fn span_args(s: &OpenSpan) -> String {
    let mut args = format!(
        "\"node\":{},\"data_size\":{},\"alt\":{}",
        s.node, s.kernel.data_size, s.alt
    );
    if let Some(job) = s.job {
        let _ = write!(args, ",\"job\":{job}");
    }
    args
}

/// Close `span` at `end`, emitting the outer kernel span plus its
/// `xfer`/`exec` sub-slices.
fn close_span(w: &mut EventWriter<'_>, tid: u32, span: &OpenSpan, end: SimTime, completed: bool) {
    let ts = us(span.start);
    let dur = us(end) - ts;
    let cname = if !completed {
        Some("terrible")
    } else if span.alt {
        Some("thread_state_iowait")
    } else {
        None
    };
    let mut args = span_args(span);
    if !completed {
        args.push_str(",\"killed\":true");
    }
    w.span(tid, span.kernel.kind.tag(), ts, dur, cname, &args);
    let sub_args = format!("\"node\":{}", span.node);
    if let Some(exec_start) = span.exec_start {
        if exec_start > span.start && exec_start <= end {
            w.span(tid, "xfer", ts, us(exec_start) - ts, None, &sub_args);
        }
        if exec_start < end {
            w.span(
                tid,
                "exec",
                us(exec_start),
                us(end) - us(exec_start),
                None,
                &sub_args,
            );
        }
    }
}

/// Render a recorded event stream as Chrome trace-event JSON.
///
/// The result is a single `{"traceEvents": [...]}` document; feed it to
/// `chrome://tracing` or <https://ui.perfetto.dev> as-is. Events need not
/// be globally sorted (recorders emit in simulation order already; ring
/// snapshots are oldest-first).
pub fn chrome_trace(events: &[TraceEvent], cfg: &ChromeConfig) -> String {
    let mut nprocs = cfg.proc_names.len();
    for e in events {
        let p = match *e {
            TraceEvent::KernelDispatch { proc, .. }
            | TraceEvent::TransferStart { proc, .. }
            | TraceEvent::ExecStart { proc, .. }
            | TraceEvent::KernelComplete { proc, .. }
            | TraceEvent::KernelKilled { proc, .. }
            | TraceEvent::ProcCrash { proc, .. }
            | TraceEvent::ProcRepair { proc, .. } => Some(proc),
            TraceEvent::Decision(d) => Some(d.chosen),
            _ => None,
        };
        if let Some(p) = p {
            nprocs = nprocs.max(p.index() + 1);
        }
    }
    let driver_tid = nprocs as u32 + 1;
    let proc_tid = |p: ProcId| p.index() as u32 + 1;

    let mut out = String::with_capacity(events.len() * 96 + 1024);
    out.push_str("{\"traceEvents\": [\n");
    let mut w = EventWriter::new(&mut out);

    w.raw(&format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"apt-sim\"}}}}"
    ));
    for i in 0..nprocs {
        let name = cfg.proc_name(ProcId::new(i));
        w.meta_thread(i as u32 + 1, &name, i as u32 + 1);
    }
    w.meta_thread(driver_tid, "driver", driver_tid);

    // Replay per-processor state to pair dispatches with completions, and
    // the slot → job binding so spans can name their owning job.
    let mut open: Vec<Option<OpenSpan>> = (0..nprocs).map(|_| None).collect();
    let mut slot_job: BTreeMap<u32, u64> = BTreeMap::new();

    for e in events {
        match *e {
            TraceEvent::KernelBound { node, job, .. } => {
                slot_job.insert(node, job);
            }
            TraceEvent::KernelDispatch {
                node,
                kernel,
                proc,
                at,
                alt,
            } => {
                // A dispatch while a span is open (ring-truncated stream)
                // closes the stale span at its own start.
                if let Some(stale) = open[proc.index()].take() {
                    close_span(&mut w, proc_tid(proc), &stale, at, false);
                }
                open[proc.index()] = Some(OpenSpan {
                    node,
                    kernel,
                    start: at,
                    exec_start: None,
                    alt,
                    job: slot_job.get(&node).copied(),
                });
            }
            TraceEvent::ExecStart { node, proc, at } => {
                if let Some(span) = open[proc.index()].as_mut() {
                    if span.node == node {
                        span.exec_start = Some(at);
                    }
                }
            }
            TraceEvent::TransferStart { .. } => {
                // The xfer sub-slice is derived from dispatch → exec-start;
                // the explicit event carries the same boundary.
            }
            TraceEvent::KernelComplete { node, proc, at } => {
                if let Some(span) = open[proc.index()].take() {
                    if span.node == node {
                        close_span(&mut w, proc_tid(proc), &span, at, true);
                    } else {
                        open[proc.index()] = Some(span);
                    }
                }
            }
            TraceEvent::KernelKilled { node, proc, at } => {
                if let Some(span) = open[proc.index()].take() {
                    if span.node == node {
                        close_span(&mut w, proc_tid(proc), &span, at, false);
                    } else {
                        open[proc.index()] = Some(span);
                    }
                }
            }
            TraceEvent::KernelReady { .. } => {}
            TraceEvent::JobAdmitted {
                job, at, kernels, ..
            } => {
                w.instant(
                    driver_tid,
                    "job-admitted",
                    us(at),
                    &format!("\"job\":{job},\"kernels\":{kernels}"),
                );
            }
            TraceEvent::JobShed { at, reason } => {
                w.instant(
                    driver_tid,
                    "job-shed",
                    us(at),
                    &format!("\"reason\":{}", escape(reason.label())),
                );
            }
            TraceEvent::JobRetired {
                job,
                at,
                failed,
                missed_deadline,
            } => {
                w.instant(
                    driver_tid,
                    "job-retired",
                    us(at),
                    &format!("\"job\":{job},\"failed\":{failed},\"missed\":{missed_deadline}"),
                );
            }
            TraceEvent::RetryAttempt {
                node,
                at,
                attempt,
                backoff,
            } => {
                w.instant(
                    driver_tid,
                    "retry",
                    us(at),
                    &format!(
                        "\"node\":{node},\"attempt\":{attempt},\"backoff_ms\":{}",
                        backoff.as_ms_f64()
                    ),
                );
            }
            TraceEvent::ProcCrash { proc, at } => {
                if let Some(span) = open[proc.index()].take() {
                    close_span(&mut w, proc_tid(proc), &span, at, false);
                }
                w.instant(proc_tid(proc), "crash", us(at), "");
            }
            TraceEvent::ProcRepair { proc, at } => {
                w.instant(proc_tid(proc), "repair", us(at), "");
            }
            TraceEvent::LinkDegrade { at, active } => {
                w.instant(
                    driver_tid,
                    if active {
                        "link-degrade-start"
                    } else {
                        "link-degrade-end"
                    },
                    us(at),
                    "",
                );
            }
            TraceEvent::Control {
                at,
                kind,
                value,
                applied,
            } => {
                w.instant(
                    driver_tid,
                    kind.label(),
                    us(at),
                    &format!("\"value\":{value},\"applied\":{applied}"),
                );
            }
            TraceEvent::Decision(DecisionRecord {
                at,
                node,
                chosen,
                meta,
            }) => {
                w.instant(
                    proc_tid(chosen),
                    "alt-decision",
                    us(at),
                    &format!(
                        "\"node\":{node},\"best_proc\":{},\"best_exec_ms\":{},\
                         \"best_busy_until_ms\":{},\"threshold_ms\":{},\"alt_cost_ms\":{}",
                        meta.best_proc.index(),
                        meta.best_exec.as_ms_f64(),
                        meta.best_busy_until.as_ms_f64(),
                        meta.threshold.as_ms_f64(),
                        meta.alt_cost.as_ms_f64()
                    ),
                );
            }
            TraceEvent::Counter { at, kind, value } => {
                w.counter(kind.label(), us(at), value);
            }
        }
    }

    // Close anything still running when recording stopped.
    let end = events.iter().map(|e| e.at()).max().unwrap_or(SimTime::ZERO);
    for (i, slot) in open.iter_mut().enumerate() {
        if let Some(span) = slot.take() {
            let at = end.max(span.start);
            close_span(&mut w, i as u32 + 1, &span, at, false);
        }
    }

    out.push_str("\n]}\n");
    out
}

/// What [`validate`] measured about an exported document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeStats {
    /// Total event objects.
    pub events: usize,
    /// Complete (`ph: "X"`) span events.
    pub spans: usize,
    /// Thread tracks (`tid`s) that carry at least one span.
    pub span_tracks: Vec<u32>,
    /// Counter-track names, sorted.
    pub counter_tracks: Vec<String>,
    /// Instant events named `alt-decision` (DecisionRecord annotations).
    pub alt_decisions: usize,
    /// Spans flagged `alt: true`.
    pub alt_spans: usize,
}

fn req_num(ev: &JsonValue, key: &str, i: usize) -> Result<f64, String> {
    ev.get(key)
        .and_then(JsonValue::as_num)
        .ok_or_else(|| format!("event {i}: missing numeric `{key}`"))
}

/// Parse an exported document and enforce the trace-event field contract:
/// a `traceEvents` array whose members all carry `ph`; `X` events carry
/// finite `ts`/`dur` and integer `pid`/`tid`; counters carry `args`; and
/// the spans of each track nest monotonically (stack discipline — no
/// partially-overlapping spans on one `tid`).
pub fn validate(text: &str) -> Result<ChromeStats, String> {
    let doc = crate::json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("missing `traceEvents` array")?;
    let mut stats = ChromeStats {
        events: events.len(),
        ..ChromeStats::default()
    };
    // (tid) -> [(ts, dur)]
    let mut spans_by_tid: BTreeMap<u32, Vec<(f64, f64)>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        match ph {
            "X" => {
                let ts = req_num(ev, "ts", i)?;
                let dur = req_num(ev, "dur", i)?;
                let pid = req_num(ev, "pid", i)?;
                let tid = req_num(ev, "tid", i)?;
                if !ts.is_finite() || !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i}: non-finite span geometry"));
                }
                if pid.fract() != 0.0 || tid.fract() != 0.0 {
                    return Err(format!("event {i}: non-integer pid/tid"));
                }
                ev.get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("event {i}: span without `name`"))?;
                stats.spans += 1;
                if ev
                    .get("args")
                    .and_then(|a| a.get("alt"))
                    .map(|v| *v == JsonValue::Bool(true))
                    .unwrap_or(false)
                {
                    stats.alt_spans += 1;
                }
                spans_by_tid.entry(tid as u32).or_default().push((ts, dur));
            }
            "C" => {
                req_num(ev, "ts", i)?;
                let name = ev
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("event {i}: counter without `name`"))?;
                ev.get("args")
                    .ok_or_else(|| format!("event {i}: counter without `args`"))?;
                if !stats.counter_tracks.iter().any(|n| n == name) {
                    stats.counter_tracks.push(name.to_string());
                }
            }
            "i" | "I" => {
                req_num(ev, "ts", i)?;
                if ev
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .map(|n| n == "alt-decision")
                    .unwrap_or(false)
                {
                    stats.alt_decisions += 1;
                }
            }
            "M" => {}
            other => return Err(format!("event {i}: unsupported phase `{other}`")),
        }
    }
    // Monotone nesting per track: sweep spans ordered by (start asc, dur
    // desc); every span must lie inside whatever is still open.
    const EPS: f64 = 1e-6;
    for (tid, spans) in &mut spans_by_tid {
        spans.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut stack: Vec<f64> = Vec::new(); // open span end times
        for &(ts, dur) in spans.iter() {
            while let Some(&end) = stack.last() {
                if end <= ts + EPS {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&end) = stack.last() {
                if ts + dur > end + EPS {
                    return Err(format!(
                        "tid {tid}: span [{ts}, {}) overlaps enclosing span ending {end}",
                        ts + dur
                    ));
                }
            }
            stack.push(ts + dur);
        }
        stats.span_tracks.push(*tid);
    }
    stats.counter_tracks.sort();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterKind, DecisionMeta, ShedReason};
    use apt_base::SimDuration;
    use apt_dfg::KernelKind;

    fn kernel() -> Kernel {
        Kernel::new(KernelKind::Bfs, 1_000_000)
    }

    fn sample_events() -> Vec<TraceEvent> {
        let p0 = ProcId::new(0);
        let p1 = ProcId::new(1);
        vec![
            TraceEvent::JobAdmitted {
                job: 0,
                at: SimTime::ZERO,
                kernels: 1,
                deadline: None,
            },
            TraceEvent::KernelBound {
                node: 3,
                job: 0,
                at: SimTime::ZERO,
            },
            TraceEvent::KernelReady {
                node: 3,
                at: SimTime::ZERO,
            },
            TraceEvent::KernelDispatch {
                node: 3,
                kernel: kernel(),
                proc: p0,
                at: SimTime::from_ms(1),
                alt: false,
            },
            TraceEvent::ExecStart {
                node: 3,
                proc: p0,
                at: SimTime::from_ms(2),
            },
            TraceEvent::Decision(DecisionRecord {
                at: SimTime::from_ms(1),
                node: 4,
                chosen: p1,
                meta: DecisionMeta {
                    best_proc: p0,
                    best_exec: SimDuration::from_ms(10),
                    best_busy_until: SimTime::from_ms(60),
                    threshold: SimDuration::from_ms(40),
                    alt_cost: SimDuration::from_ms(30),
                },
            }),
            TraceEvent::KernelDispatch {
                node: 4,
                kernel: kernel(),
                proc: p1,
                at: SimTime::from_ms(1),
                alt: true,
            },
            TraceEvent::ExecStart {
                node: 4,
                proc: p1,
                at: SimTime::from_ms(1),
            },
            TraceEvent::KernelComplete {
                node: 3,
                proc: p0,
                at: SimTime::from_ms(12),
            },
            TraceEvent::KernelComplete {
                node: 4,
                proc: p1,
                at: SimTime::from_ms(31),
            },
            TraceEvent::JobShed {
                at: SimTime::from_ms(5),
                reason: ShedReason::Gate,
            },
            TraceEvent::Counter {
                at: SimTime::from_ms(20),
                kind: CounterKind::Alpha,
                value: 4.0,
            },
            TraceEvent::Counter {
                at: SimTime::from_ms(20),
                kind: CounterKind::Rho,
                value: 1.0,
            },
            TraceEvent::JobRetired {
                job: 0,
                at: SimTime::from_ms(31),
                failed: false,
                missed_deadline: false,
            },
        ]
    }

    #[test]
    fn export_validates_and_counts_tracks() {
        let cfg = ChromeConfig::with_proc_names(vec!["p0 CPU".into(), "p1 GPU".into()]);
        let text = chrome_trace(&sample_events(), &cfg);
        let stats = validate(&text).expect("export must satisfy its own contract");
        // Two kernels: each an outer span + xfer/exec sub-slices (node 4
        // has a zero-length xfer, so it gets outer + exec only).
        assert_eq!(stats.spans, 5);
        assert_eq!(stats.span_tracks, vec![1, 2]);
        assert_eq!(stats.alt_spans, 1);
        assert_eq!(stats.alt_decisions, 1);
        assert_eq!(stats.counter_tracks, vec!["alpha", "rho"]);
        assert!(text.contains("\"job\":0"), "spans name their owning job");
        assert!(text.contains("thread_name"));
        assert!(text.contains("p1 GPU"));
    }

    #[test]
    fn killed_spans_close_at_the_kill_instant() {
        let p0 = ProcId::new(0);
        let events = vec![
            TraceEvent::KernelDispatch {
                node: 1,
                kernel: kernel(),
                proc: p0,
                at: SimTime::from_ms(1),
                alt: false,
            },
            TraceEvent::KernelKilled {
                node: 1,
                proc: p0,
                at: SimTime::from_ms(3),
            },
        ];
        let text = chrome_trace(&events, &ChromeConfig::default());
        let stats = validate(&text).unwrap();
        assert_eq!(stats.spans, 1);
        assert!(text.contains("\"killed\":true"));
    }

    #[test]
    fn dangling_spans_are_closed_at_stream_end() {
        let p0 = ProcId::new(0);
        let events = vec![
            TraceEvent::KernelDispatch {
                node: 1,
                kernel: kernel(),
                proc: p0,
                at: SimTime::from_ms(1),
                alt: false,
            },
            TraceEvent::Counter {
                at: SimTime::from_ms(9),
                kind: CounterKind::QueueDepth,
                value: 2.0,
            },
        ];
        let text = chrome_trace(&events, &ChromeConfig::default());
        let stats = validate(&text).unwrap();
        assert_eq!(stats.spans, 1, "dangling dispatch still renders");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate("not json").is_err());
        assert!(
            validate(r#"{"traceEvents": [{"ts": 1}]}"#).is_err(),
            "no ph"
        );
        assert!(
            validate(r#"{"traceEvents": [{"ph":"X","ts":1,"dur":1,"pid":1}]}"#).is_err(),
            "span without tid"
        );
        // Partially-overlapping spans on one track violate nesting.
        let bad = r#"{"traceEvents": [
            {"ph":"X","name":"a","ts":0,"dur":10,"pid":1,"tid":1},
            {"ph":"X","name":"b","ts":5,"dur":10,"pid":1,"tid":1}
        ]}"#;
        assert!(validate(bad).is_err(), "overlap must be rejected");
        // Proper nesting passes.
        let good = r#"{"traceEvents": [
            {"ph":"X","name":"a","ts":0,"dur":10,"pid":1,"tid":1},
            {"ph":"X","name":"b","ts":2,"dur":3,"pid":1,"tid":1}
        ]}"#;
        assert!(validate(good).is_ok());
    }

    #[test]
    fn empty_stream_exports_a_valid_document() {
        let text = chrome_trace(&[], &ChromeConfig::default());
        let stats = validate(&text).unwrap();
        assert_eq!(stats.spans, 0);
        assert_eq!(stats.counter_tracks.len(), 0);
    }
}
