//! Shard-readiness assertions for the engine state.
//!
//! The "sharded multi-core streaming" roadmap item moves whole engines
//! (tracer and fault runtime included) onto worker threads, one shard per
//! core. That only works if every piece of engine state is [`Send`] — and
//! `Send`-ness is exactly the kind of property that erodes silently: one
//! `Rc`, one `*mut`, one non-`Send` trait object added to a deeply nested
//! field and the whole engine quietly stops being movable, discovered only
//! when the threading code finally lands.
//!
//! These are *compile-time* checks: `assert_send::<T>()` fails to build —
//! naming the offending field chain in the error — the moment a `!Send`
//! type sneaks in. They live here rather than in `apt-lint` because
//! [`EngineCore`] is deliberately `pub(crate)`: only this crate can name
//! it. (`apt-lint` covers the source-level invariants; this module covers
//! the type-level one.)
//!
//! The one deliberate bound behind these assertions: [`TraceSink`] carries
//! a `Send` supertrait, so `Box<dyn TraceSink>` — the armed tracer slot in
//! [`EngineCore`] — is `Send` by construction.

use crate::engine::{EngineCore, Event, FaultRuntime};
use crate::{CalendarQueue, CostModel, OpenEngine, ReadySet, SystemConfig, TraceSink};
use apt_dfg::LookupTable;

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

/// Every owned piece of closed- and open-engine state moves across
/// threads: a shard can own its engine outright.
#[test]
fn engine_state_is_send() {
    assert_send::<EngineCore>();
    assert_send::<CostModel>();
    assert_send::<ReadySet>();
    assert_send::<CalendarQueue<Event>>();
    assert_send::<FaultRuntime>();
    assert_send::<Box<dyn TraceSink>>();
}

/// The open engine as a whole is `Send`. `OpenEngine<'a>` borrows the
/// machine description, so this additionally needs the borrowed types
/// `Sync` (asserted on their own below) — the bound is independent of the
/// concrete lifetime, so `'static` proves it for all of them.
#[test]
fn open_engine_is_send() {
    assert_send::<OpenEngine<'static>>();
}

/// Shards *share* one machine description, lookup table, and cost model by
/// reference — `&T: Send` needs `T: Sync`.
#[test]
fn shared_machine_state_is_sync() {
    assert_sync::<SystemConfig>();
    assert_sync::<LookupTable>();
    assert_sync::<CostModel>();
}
