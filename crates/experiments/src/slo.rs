//! SLO scenarios: deadline-tagged open streams, admission control, and
//! the miss-rate/tardiness frontier.
//!
//! The ROADMAP's tail-latency-vs-α question — does `threshold_brk` move
//! once jobs carry deadlines and the system runs open? — becomes
//! answerable here: [`slo_sweep`] drives deadline-tagged Poisson streams
//! over the α × offered-λ × deadline-tightness grid for the
//! deadline-aware policy roster (plain APT as the timeliness-oblivious
//! control, EDF-APT, LL-APT), each both *open* (accept-all) and
//! *admission-gated* (utilization-bound shedding), and reports per-cell
//! miss rate, tardiness quantiles, and shed fractions. The same grid
//! exports long-format [`apt_metrics::StreamSnapshot`] CSV through
//! [`slo_sweep_csv`] (`apt-repro slo-sweep --csv <path>`), making the
//! frontier a plottable artifact rather than a table.

use crate::runner::run_pool;
use apt_core::prelude::*;
use apt_core::PolicyFactory;
use apt_metrics::export::snapshots_to_csv;
use apt_metrics::TextTable;
use apt_slo::{AcceptAll, AdmissionPolicy, UtilizationBound};
use apt_stream::{DeadlineSpec, DriverOpts, JobFamily, PoissonSource, StreamOutcome};

/// Jobs per sweep cell — small enough for the full grid to regenerate in
/// seconds, large enough for stable miss rates.
pub const SLO_JOBS: u64 = 300;

/// Offered arrival rates (jobs/s): one comfortably below the diamond-mix
/// service capacity (~0.3 j/s), one well past it.
pub const SLO_RATES: [f64; 2] = [0.15, 0.45];

/// Deadline tightness: `D = tightness × critical_path_min(job)`.
pub const SLO_TIGHTNESS: [f64; 2] = [2.0, 8.0];

/// The swept α values (a sub-grid of the paper's).
pub const SLO_ALPHAS: [f64; 3] = [1.5, 4.0, 16.0];

/// Density budget of the gated rows' [`UtilizationBound`].
pub const SLO_UTIL_BOUND: f64 = 0.25;

/// In-flight cap: past-capacity accept-all cells would otherwise backlog
/// without bound.
pub const SLO_CAP: usize = 256;

/// Seed of the sweep's arrival streams: every policy and admission mode
/// sees identical arrivals at a given (λ, tightness).
pub const SLO_SEED: u64 = 0x0510_CAFE;

/// The deadline-aware roster: plain APT (timeliness-oblivious control),
/// EDF-APT, and LL-APT, all at the same α.
pub fn slo_policy_factories(alpha: f64) -> Vec<(String, PolicyFactory)> {
    vec![
        (
            "APT".to_string(),
            Box::new(move || Box::new(Apt::new(alpha)) as Box<dyn Policy>),
        ),
        (
            "EDF-APT".to_string(),
            Box::new(move || Box::new(EdfApt::new(alpha)) as Box<dyn Policy>),
        ),
        (
            "LL-APT".to_string(),
            Box::new(move || Box::new(LlApt::new(alpha)) as Box<dyn Policy>),
        ),
    ]
}

/// One sweep cell: a deadline-tagged Poisson stream under one policy and
/// one admission mode. `snapshots` enables the periodic windows the CSV
/// exporter needs (the table path skips them).
pub fn slo_point(
    make: &(dyn Fn() -> Box<dyn Policy> + Send + Sync),
    rate: f64,
    tightness: f64,
    gated: bool,
    snapshots: bool,
) -> StreamOutcome {
    let lookup = LookupTable::paper();
    let config = SystemConfig::paper_4gbps();
    let mut policy = make();
    let mut source = PoissonSource::new(
        lookup,
        rate,
        SLO_JOBS,
        JobFamily::Diamond { width: 2 },
        SLO_SEED,
    )
    .with_deadlines(DeadlineSpec::ProportionalCp { factor: tightness });
    let opts = DriverOpts {
        snapshot_interval: snapshots.then(|| SimDuration::from_ms(120_000)),
        max_in_flight_jobs: Some(SLO_CAP),
        ..DriverOpts::default()
    };
    let mut accept_all = AcceptAll;
    let mut util;
    let admission: &mut dyn AdmissionPolicy = if gated {
        util = UtilizationBound::new(lookup, &config, SLO_UTIL_BOUND);
        &mut util
    } else {
        &mut accept_all
    };
    apt_slo::simulate_source_slo(
        &mut source,
        &config,
        lookup,
        policy.as_mut(),
        admission,
        &opts,
    )
    .expect("slo sweep point failed")
}

/// One sweep-grid cell's coordinates: `(α, λ, tightness, policy index,
/// gated)`.
type SloCell = (f64, f64, f64, usize, bool);

/// Flattened cell coordinates of the sweep grid, in row order.
fn grid() -> Vec<SloCell> {
    let mut cells = Vec::new();
    for &alpha in &SLO_ALPHAS {
        for &rate in &SLO_RATES {
            for &tight in &SLO_TIGHTNESS {
                for policy_idx in 0..slo_policy_factories(alpha).len() {
                    for gated in [false, true] {
                        cells.push((alpha, rate, tight, policy_idx, gated));
                    }
                }
            }
        }
    }
    cells
}

/// Display label of one cell's admission mode — routed through the
/// gates' own `AdmissionPolicy::name` so the table can never drift from
/// the configured gate.
fn admission_label(gated: bool) -> String {
    use apt_slo::AdmissionPolicy as _;
    if gated {
        UtilizationBound::new(
            LookupTable::paper(),
            &SystemConfig::paper_4gbps(),
            SLO_UTIL_BOUND,
        )
        .name()
    } else {
        AcceptAll.name()
    }
}

/// Run the whole sweep grid once (optionally snapshot-enabled).
fn run_grid(snapshots: bool) -> (Vec<SloCell>, Vec<StreamOutcome>) {
    let cells = grid();
    let outcomes = run_pool(cells.len(), |i| {
        let (alpha, rate, tight, policy_idx, gated) = cells[i];
        let factories = slo_policy_factories(alpha);
        let (_, make) = &factories[policy_idx];
        slo_point(make.as_ref(), rate, tight, gated, snapshots)
    });
    (cells, outcomes)
}

/// The α × λ × tightness miss-rate/tardiness frontier, per policy, open
/// vs admission-gated.
pub fn slo_sweep() -> TextTable {
    let (cells, outcomes) = run_grid(false);
    render_slo_table(&cells, &outcomes)
}

/// Render the sweep table from computed outcomes (shared by the plain and
/// the table-plus-CSV paths; the aggregates don't depend on whether
/// snapshots were enabled).
fn render_slo_table(cells: &[SloCell], outcomes: &[StreamOutcome]) -> TextTable {
    let mut table = TextTable::new(
        format!(
            "SLO sweep — {SLO_JOBS} Poisson diamond jobs/cell, D = tightness × CP_min, \
             gated = util(ρ≤{SLO_UTIL_BOUND}) admission"
        ),
        &[
            "α",
            "λ (j/s)",
            "tight",
            "policy",
            "admission",
            "admitted",
            "shed",
            "miss %",
            "tard p50 (ms)",
            "tard p99 (ms)",
            "p99 lat (ms)",
        ],
    );
    for (i, o) in outcomes.iter().enumerate() {
        let (alpha, rate, tight, policy_idx, gated) = cells[i];
        let name = &slo_policy_factories(alpha)[policy_idx].0;
        table.push_row(vec![
            format!("{alpha}"),
            format!("{rate}"),
            format!("{tight}"),
            name.clone(),
            admission_label(gated),
            format!("{}", o.jobs_admitted),
            format!("{}", o.jobs_shed),
            format!("{:.1}", o.miss_rate() * 100.0),
            format!("{:.0}", o.tardiness_p50_ms),
            format!("{:.0}", o.tardiness_p99_ms),
            format!("{:.0}", o.latency_p99_ms),
        ]);
    }
    table
}

/// Render the long-format snapshot CSV from snapshot-enabled outcomes,
/// labelled `policy/α/λ/tight/admission`.
fn render_slo_csv(cells: &[SloCell], outcomes: &[StreamOutcome]) -> String {
    let labels: Vec<String> = cells
        .iter()
        .map(|&(alpha, rate, tight, policy_idx, gated)| {
            let name = &slo_policy_factories(alpha)[policy_idx].0;
            format!(
                "{name}/α={alpha}/λ={rate}/tight={tight}/{}",
                admission_label(gated)
            )
        })
        .collect();
    snapshots_to_csv(
        labels
            .iter()
            .zip(outcomes)
            .map(|(label, o)| (label.as_str(), o.snapshots.as_slice())),
    )
}

/// Long-format snapshot CSV over the same grid (windows every 2 simulated
/// minutes). Prefer [`slo_sweep_with_csv`] when the table is also wanted
/// — it runs the grid once for both.
pub fn slo_sweep_csv() -> String {
    let (cells, outcomes) = run_grid(true);
    render_slo_csv(&cells, &outcomes)
}

/// One snapshot-enabled grid run rendered both ways: the sweep table and
/// the long-format CSV (`apt-repro slo-sweep --csv <path>` uses this so
/// the grid simulates once, not twice).
pub fn slo_sweep_with_csv() -> (TextTable, String) {
    let (cells, outcomes) = run_grid(true);
    (
        render_slo_table(&cells, &outcomes),
        render_slo_csv(&cells, &outcomes),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_and_determinism() {
        let factories = slo_policy_factories(4.0);
        assert_eq!(
            factories
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["APT", "EDF-APT", "LL-APT"],
        );
        let (_, edf) = &factories[1];
        let a = slo_point(edf.as_ref(), 0.15, 8.0, false, false);
        let b = slo_point(edf.as_ref(), 0.15, 8.0, false, false);
        assert_eq!(a.end, b.end);
        assert_eq!(a.deadline_misses, b.deadline_misses);
        assert_eq!(a.proc_stats, b.proc_stats);
        assert_eq!(a.deadline_jobs, SLO_JOBS, "every job carries an SLO");
    }

    /// The acceptance-criterion contrast in the sweep's own cells: at the
    /// overload rate, accept-all goes heavily tardy while the gated run
    /// sheds and keeps the admitted miss rate clearly lower.
    #[test]
    fn overload_cells_show_the_admission_difference() {
        let factories = slo_policy_factories(4.0);
        let (_, edf) = &factories[1];
        let open = slo_point(edf.as_ref(), 0.45, 2.0, false, false);
        let gated = slo_point(edf.as_ref(), 0.45, 2.0, true, false);
        assert_eq!(open.jobs_shed, 0);
        assert!(gated.jobs_shed > 0, "overload must shed under the gate");
        assert!(
            gated.miss_rate() < open.miss_rate(),
            "gated {} vs open {}",
            gated.miss_rate(),
            open.miss_rate()
        );
    }

    #[test]
    fn sweep_table_covers_the_full_grid() {
        let t = slo_sweep();
        assert_eq!(
            t.row_count(),
            SLO_ALPHAS.len() * SLO_RATES.len() * SLO_TIGHTNESS.len() * 3 * 2
        );
    }

    #[test]
    fn csv_has_header_plus_window_rows() {
        // One cell's worth of CSV through the public exporter shape: run a
        // single snapshot-enabled point and export it.
        let factories = slo_policy_factories(4.0);
        let (_, ll) = &factories[2];
        let o = slo_point(ll.as_ref(), 0.15, 2.0, true, true);
        assert!(!o.snapshots.is_empty());
        let csv = apt_metrics::export::snapshots_to_csv([("cell", o.snapshots.as_slice())]);
        assert_eq!(csv.lines().count(), 1 + o.snapshots.len());
        assert!(csv.starts_with("label,end_ms"));
    }
}
