//! One-stop imports for downstream users of the APT reproduction.
//!
//! ```
//! use apt_core::prelude::*;
//!
//! let lookup = LookupTable::paper();
//! let dfg = generate(DfgType::Type2, &StreamConfig::new(20, 7), lookup);
//! let res = simulate(&dfg, &SystemConfig::paper_4gbps(), lookup, &mut Apt::new(4.0)).unwrap();
//! assert_eq!(res.trace.records.len(), 20);
//! ```

pub use crate::analysis::AllocationAnalysis;
pub use crate::apt::Apt;
pub use crate::apt_r::AptR;
pub use crate::deadline::{EdfApt, LlApt};
pub use crate::tuning::{auto_tune, ratio_candidates, tune_alpha, TuningResult};
pub use crate::{all_policy_factories, PAPER_ALPHAS, PAPER_BEST_ALPHA};

pub use apt_base::{BaseError, ProcId, ProcKind, SimDuration, SimTime};

pub use apt_dfg::generator::{
    build_type1, build_type2, generate, generate_kernels, type2_layout, DfgType, StreamConfig,
    Type2Config, EXPERIMENT_KERNEL_COUNTS,
};
pub use apt_dfg::{Dag, Dwarf, Kernel, KernelDag, KernelKind, LookupTable, NodeId, SplitMix64};

pub use apt_hetsim::{
    simulate, simulate_stream, simulate_stream_faulty, Assignment, AssignmentBuf, CalendarQueue,
    CostModel, FaultPlan, FaultTotals, LinkContention, LinkDegradeSpec, LinkRate, Policy,
    PolicyKind, PrepareCtx, ProcSpec, ProcStats, ProcView, ReadySet, RetryPolicy, SimResult,
    SimView, SystemConfig, TaskRecord, Topology, Trace,
};

pub use apt_policies::{
    baseline_factories, AdaptiveGreedy, AdaptiveRandom, BaselineFactory, Heft, Met, Olb, Peft,
    SerialScheduling, Spn,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let lookup = LookupTable::paper();
        let dfg = generate(DfgType::Type1, &StreamConfig::new(12, 5), lookup);
        let res = simulate(
            &dfg,
            &SystemConfig::paper_4gbps(),
            lookup,
            &mut Apt::new(PAPER_BEST_ALPHA),
        )
        .unwrap();
        assert_eq!(res.trace.records.len(), 12);
        let _ = AllocationAnalysis::from_trace(&res.trace);
    }
}
