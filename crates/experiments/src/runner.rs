//! Sweep execution with caching.
//!
//! Every table and figure is an aggregation over the same underlying runs
//! (policy × experiment graph × α × link rate). The runner executes those
//! runs in parallel across graphs (crossbeam scoped threads) and memoizes
//! the per-run summaries (parking_lot mutex around the cache), so `apt-repro
//! all` never simulates the same configuration twice.

use crate::workloads::{experiment_graphs, NUM_EXPERIMENTS};
use apt_core::prelude::*;
use apt_core::PolicyFactory;
use apt_metrics::RunSummary;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Link-rate presets used by the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rate {
    /// PCIe 2.0 ×8 — 4 GB/s.
    Gbps4,
    /// PCIe 2.0 ×16 — 8 GB/s.
    Gbps8,
}

impl Rate {
    /// Both evaluated rates.
    pub const ALL: [Rate; 2] = [Rate::Gbps4, Rate::Gbps8];

    /// The corresponding system configuration (paper machine).
    pub fn system(self) -> SystemConfig {
        match self {
            Rate::Gbps4 => SystemConfig::paper_4gbps(),
            Rate::Gbps8 => SystemConfig::paper_8gbps(),
        }
    }

    /// Axis label.
    pub const fn label(self) -> &'static str {
        match self {
            Rate::Gbps4 => "4 GBps",
            Rate::Gbps8 => "8 GBps",
        }
    }
}

/// One full policy comparison: `matrix[graph][policy]`, policies in the
/// Tables-8/9/10 column order (APT, MET, SPN, SS, AG, HEFT, PEFT).
pub type Matrix = Vec<Vec<RunSummary>>;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    ty: DfgType,
    alpha_bits: u64,
    rate: Rate,
}

fn cache() -> &'static Mutex<HashMap<Key, Arc<Matrix>>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Arc<Matrix>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Run (or fetch) the full seven-policy comparison for one DFG family at
/// one α and one link rate.
pub fn policy_matrix(ty: DfgType, alpha: f64, rate: Rate) -> Arc<Matrix> {
    let key = Key {
        ty,
        alpha_bits: alpha.to_bits(),
        rate,
    };
    if let Some(hit) = cache().lock().get(&key) {
        return Arc::clone(hit);
    }
    let factories = apt_core::all_policy_factories(alpha);
    let matrix = run_matrix(ty, &factories, &rate.system());
    let arc = Arc::new(matrix);
    cache().lock().insert(key, Arc::clone(&arc));
    arc
}

/// Execute `factories` over all ten experiment graphs of `ty` on `system`,
/// one worker thread per graph.
pub fn run_matrix(
    ty: DfgType,
    factories: &[(String, PolicyFactory)],
    system: &SystemConfig,
) -> Matrix {
    let graphs = experiment_graphs(ty);
    let mut out: Matrix = vec![Vec::new(); graphs.len()];
    crossbeam::thread::scope(|scope| {
        for (graph, slot) in graphs.iter().zip(out.iter_mut()) {
            scope.spawn(move |_| {
                *slot = factories
                    .iter()
                    .map(|(_, make)| run_single(graph, make.as_ref(), system))
                    .collect();
            });
        }
    })
    .expect("sweep worker panicked");
    out
}

/// Run one freshly constructed policy over one graph.
pub fn run_single(
    dfg: &KernelDag,
    make: &(dyn Fn() -> Box<dyn Policy> + Send + Sync),
    system: &SystemConfig,
) -> RunSummary {
    let mut policy = make();
    let res = simulate(dfg, system, LookupTable::paper(), policy.as_mut())
        .expect("experiment simulation failed");
    RunSummary::from_result(&res)
}

/// Per-policy average makespan over the ten experiments, in milliseconds
/// (column order as in the matrix).
pub fn avg_makespans_ms(matrix: &Matrix) -> Vec<f64> {
    avg_over_graphs(matrix, |s| s.makespan.as_ms_f64())
}

/// Per-policy average total λ delay over the ten experiments (ms).
pub fn avg_lambda_ms(matrix: &Matrix) -> Vec<f64> {
    avg_over_graphs(matrix, |s| s.lambda_total.as_ms_f64())
}

fn avg_over_graphs(matrix: &Matrix, f: impl Fn(&RunSummary) -> f64) -> Vec<f64> {
    let npol = matrix.first().map_or(0, Vec::len);
    (0..npol)
        .map(|p| {
            matrix.iter().map(|row| f(&row[p])).sum::<f64>() / matrix.len().max(1) as f64
        })
        .collect()
}

/// The policy column order of [`policy_matrix`].
pub const POLICY_ORDER: [&str; 7] = ["APT", "MET", "SPN", "SS", "AG", "HEFT", "PEFT"];

/// Index of a policy in the matrix columns.
pub fn policy_index(name: &str) -> usize {
    POLICY_ORDER
        .iter()
        .position(|&p| p == name)
        .unwrap_or_else(|| panic!("unknown policy {name}"))
}

/// Convenience: all ten APT summaries (one per graph) at `(ty, α, rate)`.
pub fn apt_column(ty: DfgType, alpha: f64, rate: Rate) -> Vec<RunSummary> {
    let m = policy_matrix(ty, alpha, rate);
    m.iter().map(|row| row[policy_index("APT")].clone()).collect()
}

/// Sanity constant: rows per table.
pub const ROWS: usize = NUM_EXPERIMENTS;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape_and_cache_identity() {
        let a = policy_matrix(DfgType::Type1, 1.5, Rate::Gbps4);
        assert_eq!(a.len(), 10);
        assert_eq!(a[0].len(), 7);
        assert_eq!(a[0][0].policy, "APT(α=1.5)");
        assert_eq!(a[0][1].policy, "MET");
        // Second call is the same Arc (cache hit).
        let b = policy_matrix(DfgType::Type1, 1.5, Rate::Gbps4);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn averages_have_one_entry_per_policy() {
        let m = policy_matrix(DfgType::Type1, 1.5, Rate::Gbps4);
        let avg = avg_makespans_ms(&m);
        assert_eq!(avg.len(), 7);
        assert!(avg.iter().all(|&v| v > 0.0));
        let lam = avg_lambda_ms(&m);
        assert_eq!(lam.len(), 7);
    }

    #[test]
    fn policy_index_matches_order() {
        assert_eq!(policy_index("APT"), 0);
        assert_eq!(policy_index("PEFT"), 6);
    }

    #[test]
    fn apt_column_returns_ten_rows() {
        let col = apt_column(DfgType::Type1, 1.5, Rate::Gbps4);
        assert_eq!(col.len(), 10);
        assert!(col.iter().all(|s| s.policy.starts_with("APT")));
    }
}
