//! Control-plane overhead: the same deadline-tagged, gated, windowed
//! Poisson stream bare and with the `apt-control` AIMD loop driven at
//! every window close — parked inside its hysteresis band, so the armed
//! run schedules byte-identical work and the delta prices the pure
//! control machinery (snapshot handoff, controller evaluation, the
//! action-application path). The target is <5% on this hot path.
//! `apt-bench` tracks the same configurations as `control/*` rows in
//! `BENCH_engine.json`.

use apt_bench::{control_stream_run, STREAM_BENCH_JOBS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_control_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("control/poisson_edf_apt");
    g.throughput(Throughput::Elements(STREAM_BENCH_JOBS));
    for (name, armed) in [("bare", false), ("armed", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &armed, |b, &armed| {
            b.iter(|| black_box(control_stream_run(armed)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_control_stream);
criterion_main!(benches);
