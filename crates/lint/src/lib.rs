//! # apt-lint — workspace invariant linter
//!
//! Nine PRs of "byte-identical or it doesn't merge" made determinism the
//! workspace's load-bearing invariant, enforced *dynamically* by
//! differential suites. This crate enforces the same invariants
//! *statically*, at check time, so a nondeterministic `HashMap`
//! iteration or an unsalted RNG stream is a CI failure before it can
//! corrupt a trace — and so the sharded multi-core arc can enumerate its
//! `Send` blockers by the type checker instead of mid-refactor.
//!
//! The linter is dependency-free (vendored-offline friendly): its own
//! small Rust lexer ([`lexer`]) skips strings, raw strings, chars and
//! (doc-)comments correctly, and the rule engine ([`rules`]) pattern
//! matches on the token stream. See the rule table in [`rules`] and the
//! per-crate scoping in [`config`].
//!
//! Run it:
//!
//! ```bash
//! cargo run -p apt-lint -- --check          # human text, exit 1 on findings
//! cargo run -p apt-lint -- --check --json   # stable apt-lint-v1 JSON
//! ```
//!
//! Escape a justified exception in place:
//!
//! ```text
//! // apt-lint: allow(hot-path-panic, slot was bound by admit() above)
//! ```
//!
//! Reasons are mandatory — a reasonless escape suppresses nothing and is
//! itself a finding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use config::LintConfig;
pub use findings::{Finding, Report, RULES};
pub use rules::scan_source;
pub use walk::{find_root, scan_workspace};
