//! The ready set `I`, as an index-backed bitset.
//!
//! The seed engine kept `I` as a sorted `Vec<NodeId>`, paying an O(n)
//! memmove on every assignment (`Vec::remove`) and readiness event
//! (`Vec::insert`), plus an O(log n) binary search to validate membership.
//! This bitset keeps the exact same deterministic iteration order (ascending
//! node id — the FCFS order every dynamic policy's documentation appeals to)
//! while making insert / remove / membership O(1) and iteration O(n/64)
//! words: on the paper's 157-kernel graphs the whole set is three machine
//! words.

use apt_dfg::NodeId;

/// A fixed-universe set of node ids with ascending iteration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadySet {
    words: Vec<u64>,
    len: usize,
}

impl ReadySet {
    /// An empty set over the universe `0..universe` node ids.
    pub fn new(universe: usize) -> ReadySet {
        ReadySet {
            words: vec![0; universe.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no node is ready.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) membership test. Out-of-universe ids are never members.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        match self.words.get(i / 64) {
            Some(w) => (w >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// Insert a node; returns `false` if it was already present.
    /// Panics when `node` is outside the universe.
    #[inline]
    pub fn insert(&mut self, node: NodeId) -> bool {
        let i = node.index();
        let word = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *word & bit != 0 {
            return false;
        }
        *word |= bit;
        self.len += 1;
        true
    }

    /// Remove a node; returns `false` if it was not present.
    #[inline]
    pub fn remove(&mut self, node: NodeId) -> bool {
        let i = node.index();
        let Some(word) = self.words.get_mut(i / 64) else {
            return false;
        };
        let bit = 1u64 << (i % 64);
        if *word & bit == 0 {
            return false;
        }
        *word &= !bit;
        self.len -= 1;
        true
    }

    /// The smallest ready node id (the FCFS head), if any.
    #[inline]
    pub fn first(&self) -> Option<NodeId> {
        self.iter().next()
    }

    /// Iterate members in ascending node-id order.
    #[inline]
    pub fn iter(&self) -> ReadyIter<'_> {
        ReadyIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl<'a> IntoIterator for &'a ReadySet {
    type Item = NodeId;
    type IntoIter = ReadyIter<'a>;
    fn into_iter(self) -> ReadyIter<'a> {
        self.iter()
    }
}

/// Ascending iterator over a [`ReadySet`].
#[derive(Debug, Clone)]
pub struct ReadyIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for ReadyIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(NodeId::new(self.word_idx * 64 + bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ReadySet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(NodeId::new(3)));
        assert!(s.insert(NodeId::new(128)));
        assert!(!s.insert(NodeId::new(3)), "double insert reports false");
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId::new(3)));
        assert!(!s.contains(NodeId::new(4)));
        assert!(s.remove(NodeId::new(3)));
        assert!(!s.remove(NodeId::new(3)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.first(), Some(NodeId::new(128)));
    }

    #[test]
    fn iteration_is_ascending() {
        let mut s = ReadySet::new(200);
        for i in [150usize, 0, 63, 64, 7, 199] {
            s.insert(NodeId::new(i));
        }
        let order: Vec<usize> = s.iter().map(|n| n.index()).collect();
        assert_eq!(order, vec![0, 7, 63, 64, 150, 199]);
    }

    #[test]
    fn out_of_universe_queries_are_safe() {
        let s = ReadySet::new(10);
        assert!(!s.contains(NodeId::new(500)));
        let mut s = s;
        assert!(!s.remove(NodeId::new(500)));
    }

    #[test]
    fn empty_universe() {
        let s = ReadySet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first(), None);
    }
}
