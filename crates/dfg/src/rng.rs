//! Deterministic pseudo-random numbers for workload generation.
//!
//! The paper evaluates ten *randomly generated* graphs per DFG type. For the
//! reproduction to be stable across machines, Rust releases, and dependency
//! upgrades, graph generation uses a self-contained SplitMix64 generator
//! (Steele, Lea & Flood 2014) rather than an external crate whose stream
//! might change between versions. SplitMix64 passes BigCrush for this use
//! (selecting kernel kinds and sizes) and is 10 lines of code.

/// SplitMix64 PRNG. Construct with a seed; identical seeds yield identical
/// streams on every platform.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Uses Lemire's multiply-shift rejection
    /// so the distribution is exactly uniform. Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Rejection sampling on the multiply-high method.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniformly pick a reference out of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.gen_index(items.len())]
    }

    /// Pick an index according to integer weights (roulette-wheel).
    /// Panics if the weights sum to zero.
    pub fn choose_weighted(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        assert!(total > 0, "choose_weighted needs a positive total weight");
        let mut pick = self.gen_range(total);
        for (i, &w) in weights.iter().enumerate() {
            if pick < w {
                return i;
            }
            pick -= w;
        }
        unreachable!("roulette wheel exhausted with residual {pick}")
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 from the published SplitMix64
        // algorithm (cross-checked against the canonical C implementation).
        let mut r = SplitMix64::new(1234567);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(r2.next_u64(), a);
        assert_eq!(r2.next_u64(), b);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut r = SplitMix64::new(42);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_hits_every_small_value() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_weighted_respects_zero_weights() {
        let mut r = SplitMix64::new(99);
        for _ in 0..300 {
            let i = r.choose_weighted(&[0, 5, 0, 1]);
            assert!(i == 1 || i == 3, "picked zero-weight bucket {i}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        SplitMix64::new(1).gen_range(0);
    }
}
