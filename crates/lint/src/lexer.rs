//! A small self-contained Rust lexer: just enough token structure for the
//! rule engine to match on real code while never seeing the inside of a
//! string, raw string, char literal, or comment.
//!
//! The lexer is deliberately *not* a full Rust front end — no keywords, no
//! macro expansion, no spans beyond line numbers. What it does get right,
//! because every rule depends on it:
//!
//! * `//` line comments (including `///` and `//!` doc comments) and
//!   *nested* `/* .. /* .. */ .. */` block comments are lexed as trivia,
//!   kept separately so the escape-comment scanner can read them but the
//!   code rules never can;
//! * `"…"` strings with escapes, `r"…"` / `r#"…"#` raw strings (any hash
//!   count), byte/C variants (`b"`, `br#"`, `c"`, `cr#"`), and byte chars
//!   (`b'x'`) are opaque — a `HashMap` spelled inside a string is not a
//!   token;
//! * `'a'` char literals vs `'a` lifetimes are disambiguated the same way
//!   rustc does (a quote two ahead means a char);
//! * integer literals (decimal / hex / octal / binary, `_` separators,
//!   type suffixes) lex as single [`TokKind::Int`] tokens so the RNG-salt
//!   rule can ask "is there a magic number in this argument list?".

/// What a token is; only the distinctions the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the rules match on spelling).
    Ident,
    /// Integer literal, any base, including `_` separators and suffix.
    Int,
    /// Float literal.
    Float,
    /// Any string literal (plain, raw, byte, C); contents are opaque.
    Str,
    /// Char or byte-char literal; contents are opaque.
    Char,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A single punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source spelling for `Ident` / `Int` / `Float`; empty otherwise
    /// (string and char contents are deliberately not retained).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block) with its 1-based starting line. Doc
/// comments are comments too.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output: code tokens and comment trivia, separated.
#[derive(Debug, Default)]
pub struct LexOut {
    /// Code tokens in source order; no comments, no literal contents.
    pub tokens: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lex `src` into tokens and comments. Never panics on malformed input:
/// an unterminated string or comment simply consumes to end of file.
pub fn lex(src: &str) -> LexOut {
    let b = src.as_bytes();
    let mut out = LexOut::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let tline = line;
                i = skip_string(b, i, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: tline,
                });
            }
            b'\'' => {
                // Lifetime or char literal. A char literal has a closing
                // quote right after one (possibly escaped) character; a
                // lifetime is `'` + ident with no closing quote.
                let is_lifetime = i + 1 < b.len()
                    && is_ident_start(b[i + 1])
                    && !(i + 2 < b.len() && b[i + 2] == b'\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: String::new(),
                        line,
                    });
                    i = j;
                } else {
                    let tline = line;
                    let mut j = i + 1;
                    while j < b.len() {
                        match b[j] {
                            b'\\' => j += 2,
                            b'\'' => {
                                j += 1;
                                break;
                            }
                            b'\n' => {
                                // Stray quote; don't eat the rest of the
                                // file.
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: tline,
                    });
                    i = j;
                }
            }
            c if is_ident_start(c) => {
                // A string prefix (`r"`, `b"`, `br#"`, `c"`, `b'`)
                // takes priority over identifier lexing.
                if let Some(next) = string_prefix_end(b, i) {
                    let tline = line;
                    let (j, kind) = next;
                    let end = match kind {
                        PrefixKind::Raw(hashes) => skip_raw_string(b, j, hashes, &mut line),
                        PrefixKind::Plain => skip_string(b, j, &mut line),
                        PrefixKind::ByteChar => {
                            let mut k = j + 1;
                            while k < b.len() {
                                match b[k] {
                                    b'\\' => k += 2,
                                    b'\'' => {
                                        k += 1;
                                        break;
                                    }
                                    b'\n' => break,
                                    _ => k += 1,
                                }
                            }
                            k
                        }
                    };
                    out.tokens.push(Tok {
                        kind: if matches!(kind, PrefixKind::ByteChar) {
                            TokKind::Char
                        } else {
                            TokKind::Str
                        },
                        text: String::new(),
                        line: tline,
                    });
                    i = end;
                } else {
                    let start = i;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Ident,
                        text: src[start..i].to_string(),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                // Digits, hex/oct/bin bodies, `_`, and type suffixes all
                // lex as one alphanumeric run.
                while i < b.len() && (is_ident_continue(b[i])) {
                    i += 1;
                }
                // Fractional part: a dot followed by a digit.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                }
                // Exponent sign: `1e-3` stops the alphanumeric run at `-`.
                if is_float
                    && i + 1 < b.len()
                    && (b[i] == b'-' || b[i] == b'+')
                    && (b[i - 1] == b'e' || b[i - 1] == b'E')
                    && b[i + 1].is_ascii_digit()
                {
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                }
                out.tokens.push(Tok {
                    kind: if is_float {
                        TokKind::Float
                    } else {
                        TokKind::Int
                    },
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c < 0x80 => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct(c as char),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
            _ => {
                // Multibyte UTF-8 outside strings/comments (e.g. a Greek
                // letter in a const name would be unusual but legal):
                // advance by the full character, emit an opaque punct.
                let ch = src[i..].chars().next().unwrap_or('\u{FFFD}');
                out.tokens.push(Tok {
                    kind: TokKind::Punct('\u{FFFD}'),
                    text: String::new(),
                    line,
                });
                i += ch.len_utf8();
            }
        }
    }
    out
}

enum PrefixKind {
    /// Raw string with this many `#`s.
    Raw(usize),
    /// Plain (possibly byte/C) string.
    Plain,
    /// `b'x'` byte char.
    ByteChar,
}

/// If the identifier starting at `i` is a string-literal prefix (`r`,
/// `b`, `br`, `rb`, `c`, `cr` followed by a quote or `#"`), return the
/// index of the opening quote/hash run and the literal kind.
fn string_prefix_end(b: &[u8], i: usize) -> Option<(usize, PrefixKind)> {
    let mut j = i;
    let mut saw_r = false;
    while j < b.len() && j - i < 2 && matches!(b[j], b'r' | b'b' | b'c') {
        if b[j] == b'r' {
            saw_r = true;
        }
        j += 1;
    }
    if j == i || (j < b.len() && is_ident_continue(b[j]) && b[j] != b'_') && b[j] != b'"' {
        // Not a short r/b/c run followed by a quote — plain identifier.
        if j < b.len() && (b[j] == b'"' || b[j] == b'\'' || b[j] == b'#') {
            // fall through to the quote checks below
        } else {
            return None;
        }
    }
    if j >= b.len() {
        return None;
    }
    match b[j] {
        b'"' if saw_r => Some((j, PrefixKind::Raw(0))),
        b'"' => Some((j, PrefixKind::Plain)),
        b'#' if saw_r => {
            let mut hashes = 0usize;
            let mut k = j;
            while k < b.len() && b[k] == b'#' {
                hashes += 1;
                k += 1;
            }
            if k < b.len() && b[k] == b'"' {
                Some((k, PrefixKind::Raw(hashes)))
            } else {
                None
            }
        }
        b'\'' if !saw_r && j == i + 1 && b[i] == b'b' => Some((j, PrefixKind::ByteChar)),
        _ => None,
    }
}

/// Skip a plain string starting at the opening quote `i`; returns the
/// index just past the closing quote. Tracks newlines.
fn skip_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => {
                // A `\` line continuation still ends a source line.
                if j + 1 < b.len() && b[j + 1] == b'\n' {
                    *line += 1;
                }
                j += 2;
            }
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skip a raw string whose opening quote is at `i` with `hashes` hash
/// marks; returns the index just past the closing delimiter.
fn skip_raw_string(b: &[u8], i: usize, hashes: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        if b[j] == b'\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < b.len() && seen < hashes && b[k] == b'#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in /* a nested */ block */
            /// HashMap in a doc comment
            let s = "HashMap::iter()";
            let r = r#"SplitMix64::new(42)"#;
            let c = 'H';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"SplitMix64".to_string()));
        let out = lex(src);
        assert_eq!(out.comments.len(), 3);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let q = '\\''; }";
        let out = lex(src);
        let lifetimes = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 3);
    }

    #[test]
    fn int_literals_lex_whole() {
        let out = lex("let x = 0x5EED_D1A6u64 ^ 1_000; let f = 1.5e-3;");
        let ints: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Int)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(ints, vec!["0x5EED_D1A6u64", "1_000"]);
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Float)
                .count(),
            1
        );
    }

    #[test]
    fn line_numbers_survive_multiline_trivia() {
        let src = "/* a\nb\nc */\nfn after() {}\n\"x\ny\"\nlast";
        let out = lex(src);
        let after = out.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
        let last = out.tokens.iter().find(|t| t.text == "last").unwrap();
        assert_eq!(last.line, 7);
    }

    #[test]
    fn byte_and_raw_prefixes() {
        let src = r##"let a = b"bytes"; let b2 = br#"raw"#; let c = b'z'; let rn = r"raw2";"##;
        let out = lex(src);
        assert!(!out.tokens.iter().any(|t| t.text == "bytes"));
        assert!(!out.tokens.iter().any(|t| t.text == "raw2"));
    }
}
