//! The telemetry contract of the streaming driver.
//!
//! Telemetry must be *purely observational*: a run under an armed
//! [`StreamTelemetry`] produces a [`StreamOutcome`] identical to the bare
//! run, while the registry's counters, gauges, histograms and JSONL
//! snapshot stream account for exactly the run the outcome describes.

use apt_base::SimDuration;
use apt_control::{ControlAction, Controller};
use apt_core::Apt;
use apt_dfg::LookupTable;
use apt_hetsim::{FaultPlan, SystemConfig};
use apt_metrics::StreamSnapshot;
use apt_stream::{
    simulate_source_telemetered, AdmitAll, DeadlineSpec, DriverOpts, JobFamily, PoissonSource,
    StreamOutcome, StreamTelemetry,
};
use apt_telemetry::{validate, validate_jsonl};
use apt_trace::{RingSink, TraceSink};

/// Emits one action of each driver-visible kind on the first window.
struct OneShot {
    fired: bool,
}

impl Controller for OneShot {
    fn name(&self) -> String {
        "one-shot".into()
    }
    fn on_window(&mut self, _s: &StreamSnapshot, out: &mut Vec<ControlAction>) {
        if !self.fired {
            self.fired = true;
            out.push(ControlAction::SetAlpha(6.0));
            out.push(ControlAction::SetAdmissionBound(0.9));
        }
    }
}

/// The same controlled, capacity-gated, faulty, deadline-carrying stream
/// the traced-equivalence test runs — every driver emission path live.
fn run(
    tel: Option<&mut StreamTelemetry>,
    sink: Option<Box<dyn TraceSink>>,
) -> (StreamOutcome, Option<Box<dyn TraceSink>>) {
    let config = SystemConfig::paper_4gbps();
    let lookup = LookupTable::paper();
    let mut source = PoissonSource::new(lookup, 2.0, 150, JobFamily::Chain { len: 2 }, 9)
        .with_deadlines(DeadlineSpec::Fixed(SimDuration::from_ms(800)));
    let mut policy = Apt::new(8.0);
    let mut ctrl = OneShot { fired: false };
    let opts = DriverOpts {
        snapshot_interval: Some(SimDuration::from_ms(10_000)),
        max_in_flight_jobs: Some(6),
        shed_when_full: true,
        faults: FaultPlan::seeded(5).with_transient(0.05),
        ..DriverOpts::default()
    };
    match tel {
        Some(tel) => simulate_source_telemetered(
            &mut source,
            &config,
            lookup,
            &mut policy,
            &opts,
            &mut AdmitAll,
            Some(&mut ctrl),
            sink,
            tel,
            |_| {},
        )
        .unwrap(),
        None => {
            let outcome = apt_stream::simulate_source_controlled(
                &mut source,
                &config,
                lookup,
                &mut policy,
                &opts,
                &mut AdmitAll,
                &mut ctrl,
                |_| {},
            )
            .unwrap();
            (outcome, None)
        }
    }
}

fn assert_outcomes_equal(a: &StreamOutcome, b: &StreamOutcome) {
    assert_eq!(a.jobs_admitted, b.jobs_admitted);
    assert_eq!(a.jobs_completed, b.jobs_completed);
    assert_eq!(a.jobs_failed, b.jobs_failed);
    assert_eq!(a.jobs_shed, b.jobs_shed);
    assert_eq!(a.kernels_completed, b.kernels_completed);
    assert_eq!(a.end, b.end);
    assert_eq!(a.lambda_total, b.lambda_total);
    assert_eq!(a.proc_stats, b.proc_stats);
    assert_eq!(a.snapshots, b.snapshots);
    assert_eq!(a.deadline_misses, b.deadline_misses);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.control_log.len(), b.control_log.len());
    for (x, y) in a.control_log.iter().zip(&b.control_log) {
        assert_eq!(x.at, y.at);
        assert_eq!(x.action, y.action);
        assert_eq!(x.applied, y.applied);
    }
}

/// An armed registry changes nothing, and its counters reconcile exactly
/// with the outcome the run reports.
#[test]
fn telemetered_run_is_identical_and_fully_accounted() {
    let (bare, _) = run(None, None);
    let mut tel = StreamTelemetry::new();
    let (metered, _) = run(Some(&mut tel), None);
    assert_outcomes_equal(&bare, &metered);

    let reg = tel.registry();
    let counter = |name: &str| {
        reg.counter_named(name, &[])
            .unwrap_or_else(|| panic!("{name}"))
    };
    assert_eq!(counter("jobs_admitted_total"), metered.jobs_admitted);
    assert_eq!(counter("jobs_completed_total"), metered.jobs_completed);
    assert_eq!(counter("jobs_failed_total"), metered.jobs_failed);
    assert_eq!(counter("jobs_shed_total"), metered.jobs_shed);
    assert_eq!(
        counter("kernels_completed_total"),
        metered.kernels_completed
    );
    assert_eq!(counter("deadline_misses_total"), metered.deadline_misses);
    assert!(metered.jobs_shed > 0, "the capacity guard never shed");
    assert!(metered.deadline_misses > 0, "no misses under saturation");

    // Latency histogram: one sample per successful job, sane quantile.
    let lat = reg.histogram_named("job_latency_ms", &[]).unwrap();
    assert_eq!(lat.count(), metered.jobs_completed);
    let p50 = lat.quantile(0.5).expect("non-empty histogram");
    assert!(
        (p50 - metered.latency_p50_ms).abs() <= 0.15 * metered.latency_p50_ms.max(1.0),
        "histogram p50 {p50} vs P² p50 {}",
        metered.latency_p50_ms
    );

    // End-of-run gauges track the drained system.
    assert_eq!(reg.gauge_named("in_flight_jobs", &[]).unwrap(), 0.0);
    assert!(reg.gauge_named("sim_time_seconds", &[]).unwrap() > 0.0);

    // The exposition is valid Prometheus and the JSONL stream carries one
    // schema-complete line per snapshot (closed windows plus the tail).
    validate(&tel.prometheus()).expect("registry renders invalid Prometheus");
    let lines = validate_jsonl(
        tel.jsonl(),
        &[
            "end_s",
            "total_jobs",
            "throughput_jps",
            "window_miss_rate",
            "alpha",
        ],
    )
    .expect("invalid JSONL snapshot stream");
    assert_eq!(lines as usize, metered.snapshots.len());
}

/// A bounded ring sink riding along surfaces its retained + dropped
/// totals through the registry (satellite: trace back-pressure is
/// observable without touching the sink).
#[test]
fn trace_sink_totals_surface_in_registry() {
    let (bare, _) = run(None, None);
    let mut tel = StreamTelemetry::new();
    let (metered, sink) = run(Some(&mut tel), Some(Box::new(RingSink::new(64))));
    assert_outcomes_equal(&bare, &metered);

    let sink = sink.expect("the driver hands the sink back");
    assert!(sink.dropped() > 0, "a 64-slot ring must drop on this run");
    let reg = tel.registry();
    assert_eq!(
        reg.counter_named("trace_events_total", &[]).unwrap(),
        sink.recorded()
    );
    assert_eq!(
        reg.counter_named("trace_events_dropped_total", &[])
            .unwrap(),
        sink.dropped()
    );
}

/// Without the `self-profile` feature the profile request is inert; with
/// it, the report's phase wall-clock covers ≥ 90% of the engine total.
#[test]
fn phase_report_presence_matches_feature() {
    let mut tel = StreamTelemetry::new().with_engine_profile();
    let (_outcome, _) = run(Some(&mut tel), None);
    #[cfg(feature = "self-profile")]
    {
        let report = tel
            .phase_report()
            .expect("profiling compiled in + requested");
        assert!(
            report.coverage() >= 0.90,
            "phase sum covers only {:.1}% of engine wall-clock",
            100.0 * report.coverage()
        );
        assert!(report.decide_calls > 0);
        assert!(report.assignments > 0);
        let expo = tel.prometheus();
        validate(&expo).expect("report mirror broke the exposition");
        assert!(expo.contains("engine_phase_ns_total{phase=\"decide\"}"));
        assert!(
            expo.contains("policy_decide_calls_total{policy="),
            "decision counters missing from the registry mirror"
        );
    }
    #[cfg(not(feature = "self-profile"))]
    assert!(tel.phase_report().is_none());
}
