//! Property tests for the telemetry quantile machinery (ISSUE 9
//! satellite): the log-bucket relative error bound, `merge()`
//! associativity/commutativity, and cross-validation of the
//! [`LogHistogram`] against `apt-metrics`' P² streaming estimators on
//! shared sample streams.

use apt_metrics::online::P2Quantile;
use apt_telemetry::{render_prometheus, validate, LogHistogram, Registry};
use proptest::prelude::*;

/// Deterministic xorshift stream so the P² cross-validation is
/// reproducible without pulling a randomness dependency into the crate.
fn xorshift_stream(seed: u64, n: usize) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            // Latency-shaped positive values spanning ~4 decades.
            let u = (s >> 11) as f64 / (1u64 << 53) as f64;
            0.1 + 5000.0 * u * u
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The log-bucket estimate of any observed sample's own quantile is
    /// within the configured relative error γ of that sample: observe a
    /// single value, read it back.
    #[test]
    fn single_sample_relative_error_bounded(
        v in 1e-6f64..1e9,
        gamma in prop::sample::select(vec![0.001, 0.01, 0.05, 0.1]),
    ) {
        let mut h = LogHistogram::new(gamma);
        h.observe(v);
        let est = h.quantile(0.5).unwrap();
        let rel = (est - v).abs() / v;
        // Allow a hair of float slop on top of the analytic bound.
        prop_assert!(rel <= gamma * (1.0 + 1e-9) + 1e-12, "v={v} est={est} rel={rel} gamma={gamma}");
    }

    /// Against a full sorted sample set, every reported quantile is
    /// within γ of the exact order statistic at the same rank.
    #[test]
    fn quantiles_track_exact_order_statistics(
        mut values in prop::collection::vec(1e-3f64..1e6, 10..300),
        q in 0.01f64..0.999,
    ) {
        let gamma = 0.01;
        let mut h = LogHistogram::new(gamma);
        for &v in &values {
            h.observe(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let est = h.quantile(q).unwrap();
        let rel = (est - exact).abs() / exact;
        prop_assert!(rel <= gamma * (1.0 + 1e-9) + 1e-12, "q={q} exact={exact} est={est} rel={rel}");
    }

    /// Histogram merge is associative and commutative: (a⊕b)⊕c == a⊕(b⊕c)
    /// and a⊕b == b⊕a, exactly. Integer-valued samples keep the f64 sum
    /// addition exact so equality is bitwise, not approximate.
    #[test]
    fn histogram_merge_assoc_commut(
        xs in prop::collection::vec(1u32..1_000_000, 0..60),
        ys in prop::collection::vec(1u32..1_000_000, 0..60),
        zs in prop::collection::vec(1u32..1_000_000, 0..60),
    ) {
        let fill = |vals: &[u32]| {
            let mut h = LogHistogram::new(0.02);
            for &v in vals {
                h.observe(f64::from(v));
            }
            h
        };
        let (a, b, c) = (fill(&xs), fill(&ys), fill(&zs));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        prop_assert_eq!(&ab_c, &a_bc);

        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
    }

    /// Registry merge is associative and commutative over rendered
    /// exposition (the renderer sorts families, so instrument insertion
    /// order — the one thing merge order can permute — drops out).
    /// Shards register overlapping and disjoint instruments.
    #[test]
    fn registry_merge_assoc_commut(
        a_jobs in 0u64..1000,
        b_jobs in 0u64..1000,
        c_jobs in 0u64..1000,
        a_depth in 0u32..500,
        c_depth in 0u32..500,
        lat in prop::collection::vec(1u32..100_000, 0..40),
    ) {
        let shard = |jobs: u64, depth: Option<u32>, lat: &[u32]| {
            let mut r = Registry::new();
            let c = r.counter("jobs_completed_total", "jobs completed");
            r.add(c, jobs);
            if let Some(d) = depth {
                // Gauges add on merge; shards use integer values so the
                // float sums are exact.
                let g = r.gauge("queue_depth", "queued arrivals");
                r.set(g, f64::from(d));
            }
            let h = r.histogram("job_latency_ms", "latency", 0.01);
            for &v in lat {
                r.observe(h, f64::from(v));
            }
            r
        };
        let a = shard(a_jobs, Some(a_depth), &lat);
        let b = shard(b_jobs, None, &[]);
        let c = shard(c_jobs, Some(c_depth), &lat);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        prop_assert_eq!(render_prometheus(&ab_c), render_prometheus(&a_bc));

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        prop_assert_eq!(render_prometheus(&ab), render_prometheus(&ba));

        prop_assert_eq!(
            ab_c.counter_named("jobs_completed_total", &[]),
            Some(a_jobs + b_jobs + c_jobs)
        );

        // Merged output still honors the exposition contract.
        prop_assert!(validate(&render_prometheus(&ab_c)).is_ok());
    }
}

/// Cross-validation against the P² estimators `apt-metrics` uses for
/// its streaming snapshots: on a shared sample stream both estimators
/// must agree on the distribution's quantiles. P² is itself an
/// approximation (piecewise-parabolic, five markers), so the agreement
/// band is necessarily wider than γ — but a systematic bucketing bug
/// (off-by-one bucket index, wrong representative point) shifts
/// estimates by whole bucket widths and fails this immediately.
#[test]
fn histogram_agrees_with_p2_on_shared_streams() {
    for (seed, n) in [(0x5EED1, 5_000usize), (0x5EED2, 20_000), (0xAB1E3, 50_000)] {
        let stream = xorshift_stream(seed as u64, n);
        let mut h = LogHistogram::new(0.01);
        let mut p2_50 = P2Quantile::new(0.5);
        let mut p2_90 = P2Quantile::new(0.9);
        let mut p2_99 = P2Quantile::new(0.99);
        for &v in &stream {
            h.observe(v);
            p2_50.observe(v);
            p2_90.observe(v);
            p2_99.observe(v);
        }
        let mut sorted = stream.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (q, p2) in [(0.5, &p2_50), (0.9, &p2_90), (0.99, &p2_99)] {
            let hist = h.quantile(q).unwrap();
            let p2 = p2.estimate().unwrap();
            let exact = sorted[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
            // Both estimators must sit close to the exact order
            // statistic — the histogram within γ, P² within its usual
            // few percent on smooth distributions — so they agree with
            // each other within 10%.
            let rel_hist = (hist - exact).abs() / exact;
            assert!(
                rel_hist <= 0.0101,
                "seed {seed:x} q {q}: hist {hist} vs exact {exact}"
            );
            let agree = (hist - p2).abs() / exact;
            assert!(
                agree <= 0.10,
                "seed {seed:x} q {q}: hist {hist} vs p2 {p2} (exact {exact})"
            );
        }
    }
}
