//! The precomputed per-run cost model (processor-instance level).
//!
//! Built once per `(KernelDag, LookupTable, SystemConfig)` triple at the top
//! of `simulate_stream`, then shared read-only by the engine, the
//! [`crate::SimView`] handed to dynamic policies, and the static planners'
//! [`crate::PrepareCtx`]. It precomputes everything about a decision that
//! does **not** depend on live simulator state:
//!
//! * a dense `node × processor-instance` execution-time matrix (expanding
//!   the category-level [`KindCostMatrix`] over the machine's devices),
//! * each node's *output* transfer time across the interconnect (so the
//!   engine's `transfer_in` and the view's `transfer_in_time` sum
//!   precomputed summands instead of re-deriving `bytes / rate` per query)
//!   — a scalar per node on uniform machines, a dense `node × src × dst`
//!   table when a non-uniform [`crate::Topology`] is in force,
//! * per-node runnable-processor bitsets and the minimum-execution-time
//!   instance set (`p_min` of §3.1, with its tie mask).
//!
//! Hot accessors are branch-light array reads; every former
//! `BTreeMap`-lookup and allocation on the decision path routes through
//! here. See the "Engine architecture & cost model" notes in the crate docs.

use crate::system::SystemConfig;
use apt_base::stats::stddev_population;
use apt_base::{ProcId, ProcKind, SimDuration};
use apt_dfg::{Kernel, KernelDag, KindCostMatrix, LookupTable, NodeId};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Sentinel for "kernel cannot run on this processor instance" — the same
/// value the category-level matrix uses (re-exported, not redefined, so the
/// two layers cannot drift apart).
pub use apt_dfg::cost::UNRUNNABLE;

/// Largest supported machine size (runnable sets are single-word bitsets).
pub const MAX_PROCS: usize = 64;

/// Largest machine size for which [`CostModel::idle_stddev`] memoizes its
/// per-(node, idle-mask) values in a *dense* table (2^nprocs entries per
/// node — 256 `f64`s per node at the cap; the paper's machine has 3
/// processors → 8 entries). Machines beyond this and up to [`MAX_PROCS`]
/// use a hashed per-node `idle-mask → stddev` cache instead (the dense
/// table would be 2^64 entries), so fleet-scale configurations are memoized
/// all the way to the 64-processor limit.
pub const SS_MEMO_MAX_PROCS: usize = 8;

/// Precomputed decision-cost tables for one simulation run.
#[derive(Debug)]
pub struct CostModel {
    nprocs: usize,
    /// Flattened `node × nprocs` execution times in ns ([`UNRUNNABLE`] when
    /// the instance's category has no table entry).
    exec_ns: Vec<u64>,
    /// Per-node output transfer time across the uniform link, in ns (what
    /// a *successor* pays when this node's result is resident elsewhere).
    /// On a non-uniform [`crate::Topology`] this holds the mean over
    /// ordered remote pairs (rounded to nearest; display/ranking use only)
    /// and the hot queries read `pair_ns` instead.
    transfer_ns: Vec<u64>,
    /// Per-pair transfer tables for non-uniform topologies: flattened
    /// `node × src × dst` output transfer times in ns (diagonal zero).
    /// Empty on uniform machines, where the scalar `transfer_ns` path is
    /// byte-identical to the seed and cheaper.
    pair_ns: Vec<u64>,
    /// True when the machine's topology is non-uniform and `pair_ns` is
    /// the authoritative transfer table (explicit so the open-stream
    /// engine's initially empty arena knows which rows to grow).
    pairwise: bool,
    /// Per-node bitset of runnable processor instances.
    runnable: Vec<u64>,
    /// Per-node minimum execution time over instances ([`UNRUNNABLE`] when
    /// no instance can run the node).
    min_ns: Vec<u64>,
    /// Per-node bitset of the instances achieving `min_ns`.
    min_mask: Vec<u64>,
    /// Per-instance category, cached densely (avoids chasing the
    /// `ProcSpec` vec and its name strings on hot reads).
    kinds: Vec<ProcKind>,
    /// Per-node lazily built `idle-mask → stddev` tables backing
    /// [`CostModel::idle_stddev`] (empty when `nprocs > SS_MEMO_MAX_PROCS`).
    /// The values are state-independent given the mask, so the cache never
    /// invalidates for the lifetime of the run.
    stddev_masks: Vec<OnceLock<Box<[f64]>>>,
    /// Per-node hashed `idle-mask → stddev` caches for machines past
    /// [`SS_MEMO_MAX_PROCS`] processors, where the dense 2^nprocs table is
    /// infeasible (empty when the dense tables are in use). Only the handful
    /// of masks the run actually visits are stored. Uncontended mutexes: one
    /// simulation runs on one thread; the lock only exists because
    /// `idle_stddev` memoizes through `&self`.
    // apt-lint: allow(nondet-container, keyed-only stddev memo — values are
    // pure functions of the mask key and the map is never iterated, so
    // insertion order cannot reach any simulation output)
    stddev_hashed: Vec<Mutex<HashMap<u64, f64>>>,
}

impl Clone for CostModel {
    fn clone(&self) -> CostModel {
        CostModel {
            nprocs: self.nprocs,
            exec_ns: self.exec_ns.clone(),
            transfer_ns: self.transfer_ns.clone(),
            pair_ns: self.pair_ns.clone(),
            pairwise: self.pairwise,
            runnable: self.runnable.clone(),
            min_ns: self.min_ns.clone(),
            min_mask: self.min_mask.clone(),
            kinds: self.kinds.clone(),
            stddev_masks: self.stddev_masks.clone(),
            stddev_hashed: self
                .stddev_hashed
                // apt-lint: allow(nondet-iter, iterates the outer per-node
                // Vec (deterministic order); the hashed map itself is only
                // cloned, never walked)
                .iter()
                .map(|m| Mutex::new(m.lock().expect("stddev cache poisoned").clone()))
                .collect(),
        }
    }
}

impl CostModel {
    /// Precompute the model. O(nodes × procs) time and memory; called once
    /// per run, amortized over every decision edge of the simulation.
    ///
    /// Panics if the system has more than [`MAX_PROCS`] processors (the
    /// runnable sets are single-word bitsets; no evaluated configuration
    /// comes within an order of magnitude of the limit).
    pub fn new(dfg: &KernelDag, lookup: &LookupTable, config: &SystemConfig) -> CostModel {
        let nprocs = config.len();
        assert!(
            nprocs <= MAX_PROCS,
            "CostModel supports at most {MAX_PROCS} processors, got {nprocs}"
        );
        let kinds: Vec<ProcKind> = config.proc_ids().map(|p| config.kind_of(p)).collect();
        let kind_matrix = KindCostMatrix::build(dfg, lookup);
        let pairwise = config.uniform_rate().is_none();
        let n = dfg.len();
        let mut exec_ns = Vec::with_capacity(n * nprocs);
        let mut bytes_of = Vec::with_capacity(n);
        let mut runnable = Vec::with_capacity(n);
        let mut min_ns = Vec::with_capacity(n);
        let mut min_mask = Vec::with_capacity(n);
        for node in dfg.node_ids() {
            let mut run_bits = 0u64;
            let mut best = UNRUNNABLE;
            let mut best_bits = 0u64;
            for (i, kind) in kinds.iter().enumerate() {
                let ns = match kind.table_column() {
                    Some(col) => kind_matrix.exec_ns(node, col),
                    None => UNRUNNABLE,
                };
                exec_ns.push(ns);
                if ns != UNRUNNABLE {
                    run_bits |= 1 << i;
                    match ns.cmp(&best) {
                        std::cmp::Ordering::Less => {
                            best = ns;
                            best_bits = 1 << i;
                        }
                        std::cmp::Ordering::Equal => best_bits |= 1 << i,
                        std::cmp::Ordering::Greater => {}
                    }
                }
            }
            runnable.push(run_bits);
            min_ns.push(best);
            min_mask.push(best_bits);
            bytes_of.push(kind_matrix.data_size(node) * config.bytes_per_element);
        }
        let (stddev_masks, stddev_hashed) = if nprocs <= SS_MEMO_MAX_PROCS {
            ((0..n).map(|_| OnceLock::new()).collect(), Vec::new())
        } else {
            (Vec::new(), (0..n).map(|_| Mutex::default()).collect())
        };
        let mut model = CostModel {
            nprocs,
            exec_ns,
            transfer_ns: vec![0; n],
            pair_ns: if pairwise {
                vec![0; n * nprocs * nprocs]
            } else {
                Vec::new()
            },
            pairwise,
            runnable,
            min_ns,
            min_mask,
            kinds,
            stddev_masks,
            stddev_hashed,
        };
        for (i, &bytes) in bytes_of.iter().enumerate() {
            model.write_transfer_row(i, bytes, config);
        }
        model
    }

    /// An empty model over `config`'s machine, to be populated one node at a
    /// time with [`CostModel::bind_slot`] — the open-stream engine's slot
    /// arena grows and recycles nodes as jobs arrive and retire.
    pub fn for_streaming(config: &SystemConfig) -> CostModel {
        let nprocs = config.len();
        assert!(
            nprocs <= MAX_PROCS,
            "CostModel supports at most {MAX_PROCS} processors, got {nprocs}"
        );
        CostModel {
            nprocs,
            exec_ns: Vec::new(),
            transfer_ns: Vec::new(),
            pair_ns: Vec::new(),
            pairwise: config.uniform_rate().is_none(),
            runnable: Vec::new(),
            min_ns: Vec::new(),
            min_mask: Vec::new(),
            kinds: config.proc_ids().map(|p| config.kind_of(p)).collect(),
            stddev_masks: Vec::new(),
            stddev_hashed: Vec::new(),
        }
    }

    /// Fill node `i`'s transfer entry (and, on a non-uniform topology, its
    /// dense per-pair row) for an output of `bytes` bytes. The rows must
    /// already be sized; shared by the batch constructor and
    /// [`CostModel::bind_slot`] so the two paths cannot drift.
    fn write_transfer_row(&mut self, i: usize, bytes: u64, config: &SystemConfig) {
        if !self.pairwise {
            let rate = config
                .uniform_rate()
                .expect("scalar transfer path implies a uniform rate");
            self.transfer_ns[i] = rate.transfer_time(bytes).as_ns();
            return;
        }
        let np = self.nprocs;
        let row = &mut self.pair_ns[i * np * np..(i + 1) * np * np];
        let mut sum = 0u128;
        for s in 0..np {
            for d in 0..np {
                let ns = config
                    .pair_transfer_time(bytes, ProcId::new(s), ProcId::new(d))
                    .as_ns();
                row[s * np + d] = ns;
                if s != d {
                    sum += u128::from(ns);
                }
            }
        }
        // The scalar entry doubles as the matrix's remote-pair mean
        // (rounded to nearest ns) — ranking/display use, never the engine.
        let pairs = (np * np).saturating_sub(np) as u128;
        self.transfer_ns[i] = (sum + pairs / 2)
            .checked_div(pairs)
            .map_or(0, |mean| mean as u64);
    }

    /// (Re)compute every per-node table entry of `node` for `kernel` —
    /// growing the tables by one row when `node` is the next fresh slot,
    /// overwriting when it recycles a retired one. Produces bit-identical
    /// values to [`CostModel::new`] over a graph containing `kernel` at that
    /// node (pinned by `bind_slot_matches_batch_build` below).
    pub fn bind_slot(
        &mut self,
        node: NodeId,
        kernel: &Kernel,
        lookup: &LookupTable,
        config: &SystemConfig,
    ) {
        let i = node.index();
        assert!(i <= self.transfer_ns.len(), "slots bind densely");
        if i == self.transfer_ns.len() {
            self.exec_ns.resize(self.exec_ns.len() + self.nprocs, 0);
            self.transfer_ns.push(0);
            if self.pairwise {
                self.pair_ns
                    .resize(self.pair_ns.len() + self.nprocs * self.nprocs, 0);
            }
            self.runnable.push(0);
            self.min_ns.push(0);
            self.min_mask.push(0);
            if self.nprocs <= SS_MEMO_MAX_PROCS {
                self.stddev_masks.push(OnceLock::new());
            } else {
                self.stddev_hashed.push(Mutex::default());
            }
        } else {
            // A recycled slot: the stddev memo keyed on the old kernel's
            // times must not leak into the new one.
            if self.nprocs <= SS_MEMO_MAX_PROCS {
                self.stddev_masks[i] = OnceLock::new();
            } else {
                self.stddev_hashed[i]
                    .lock()
                    .expect("stddev cache poisoned")
                    .clear();
            }
        }
        let row = lookup.row(kernel).ok();
        let mut run_bits = 0u64;
        let mut best = UNRUNNABLE;
        let mut best_bits = 0u64;
        for k in 0..self.nprocs {
            let kind = self.kinds[k];
            let ns = match (kind.table_column(), row) {
                (Some(col), Some(row)) => row.times[col].as_ns(),
                _ => UNRUNNABLE,
            };
            self.exec_ns[i * self.nprocs + k] = ns;
            if ns != UNRUNNABLE {
                run_bits |= 1 << k;
                match ns.cmp(&best) {
                    std::cmp::Ordering::Less => {
                        best = ns;
                        best_bits = 1 << k;
                    }
                    std::cmp::Ordering::Equal => best_bits |= 1 << k,
                    std::cmp::Ordering::Greater => {}
                }
            }
        }
        self.runnable[i] = run_bits;
        self.min_ns[i] = best;
        self.min_mask[i] = best_bits;
        let bytes = kernel.data_size * config.bytes_per_element;
        self.write_transfer_row(i, bytes, config);
    }

    /// Number of processor instances in the modeled system.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Raw nanosecond execution time ([`UNRUNNABLE`] when impossible).
    #[inline]
    pub fn exec_ns(&self, node: NodeId, proc: ProcId) -> u64 {
        self.exec_ns[node.index() * self.nprocs + proc.index()]
    }

    /// Execution time of `node` on `proc`; `None` when the kernel cannot run
    /// on that instance's category.
    #[inline]
    pub fn exec_time(&self, node: NodeId, proc: ProcId) -> Option<SimDuration> {
        match self.exec_ns(node, proc) {
            UNRUNNABLE => None,
            ns => Some(SimDuration::from_ns(ns)),
        }
    }

    /// True when `proc` can execute `node`.
    #[inline]
    pub fn runnable(&self, node: NodeId, proc: ProcId) -> bool {
        proc.index() < self.nprocs && (self.runnable[node.index()] >> proc.index()) & 1 == 1
    }

    /// Bitset of instances able to execute `node` (bit i ⇔ processor i).
    #[inline]
    pub fn runnable_mask(&self, node: NodeId) -> u64 {
        self.runnable[node.index()]
    }

    /// Output transfer time of `node` across the uniform link — the cost a
    /// consumer pays per predecessor resident on another processor. On a
    /// non-uniform [`crate::Topology`] this is the mean over ordered remote
    /// pairs (rounded to nearest ns; ranking/display use) — pair-resolved
    /// queries go through [`CostModel::pair_transfer_time`].
    #[inline]
    pub fn transfer_time(&self, node: NodeId) -> SimDuration {
        SimDuration::from_ns(self.transfer_ns[node.index()])
    }

    /// Output transfer time of `node` from `src` to `dst` under the
    /// machine's interconnect; zero for same-processor moves. On uniform
    /// machines this reads the scalar table (byte-identical to the seed
    /// path), on non-uniform topologies the dense per-pair table.
    #[inline]
    pub fn pair_transfer_time(&self, node: NodeId, src: ProcId, dst: ProcId) -> SimDuration {
        if src == dst {
            return SimDuration::ZERO;
        }
        let ns = if self.pairwise {
            self.pair_ns[(node.index() * self.nprocs + src.index()) * self.nprocs + dst.index()]
        } else {
            self.transfer_ns[node.index()]
        };
        SimDuration::from_ns(ns)
    }

    /// Input-transfer time if `node` were started on `proc` given the
    /// current residency of finished predecessors: the sum of precomputed
    /// output transfer times of predecessors resident on *other* processors
    /// (the Eq. 6 convention `c_ij = 0` when `p_w = p_k`). Unfinished
    /// predecessors (`None` location) contribute nothing; callers that
    /// require every input resident assert that themselves. This is the one
    /// shared implementation behind both the engine's start bookkeeping and
    /// `SimView::transfer_in_time`.
    pub fn transfer_in_time(
        &self,
        dfg: &KernelDag,
        locations: &[Option<ProcId>],
        node: NodeId,
        proc: ProcId,
    ) -> SimDuration {
        let mut total_ns = 0u64;
        if self.pairwise {
            let np = self.nprocs;
            for &pred in dfg.preds(node) {
                if let Some(loc) = locations[pred.index()] {
                    if loc != proc {
                        total_ns +=
                            self.pair_ns[(pred.index() * np + loc.index()) * np + proc.index()];
                    }
                }
            }
        } else {
            for &pred in dfg.preds(node) {
                if let Some(loc) = locations[pred.index()] {
                    if loc != proc {
                        total_ns += self.transfer_ns[pred.index()];
                    }
                }
            }
        }
        SimDuration::from_ns(total_ns)
    }

    /// Minimum execution time of `node` over all instances (`x` of §3.1);
    /// `None` when no processor can run it.
    #[inline]
    pub fn min_exec(&self, node: NodeId) -> Option<SimDuration> {
        match self.min_ns[node.index()] {
            UNRUNNABLE => None,
            ns => Some(SimDuration::from_ns(ns)),
        }
    }

    /// Bitset of the instances achieving [`CostModel::min_exec`].
    #[inline]
    pub fn min_mask(&self, node: NodeId) -> u64 {
        self.min_mask[node.index()]
    }

    /// The lowest-id minimum-execution-time instance and its time
    /// (`p_min`, `x`), `None` when the node is unrunnable everywhere.
    #[inline]
    pub fn best_proc(&self, node: NodeId) -> Option<(ProcId, SimDuration)> {
        let mask = self.min_mask[node.index()];
        if mask == 0 {
            return None;
        }
        let proc = ProcId::new(mask.trailing_zeros() as usize);
        Some((proc, SimDuration::from_ns(self.min_ns[node.index()])))
    }

    /// Cached category of one processor instance.
    #[inline]
    pub fn kind_of(&self, proc: ProcId) -> ProcKind {
        self.kinds[proc.index()]
    }

    /// Population standard deviation (fractional milliseconds, identical to
    /// `stddev_population` over ascending-id `as_ms_f64` times) of `node`'s
    /// execution times across the **runnable** processors in `idle_mask` —
    /// the quantity SS ranks ready kernels by (§2.5.3).
    ///
    /// The value is state-independent given the mask, so it is memoized per
    /// node: machines up to [`SS_MEMO_MAX_PROCS`] processors use a lazily
    /// built dense table of all `2^nprocs` masks; larger machines (up to the
    /// [`MAX_PROCS`] limit) use a hashed `mask → stddev` cache holding only
    /// the masks the run visits. Every path returns bit-identical results.
    pub fn idle_stddev(&self, node: NodeId, idle_mask: u64) -> f64 {
        if let Some(cell) = self.stddev_masks.get(node.index()) {
            let table = cell.get_or_init(|| {
                (0..1u64 << self.nprocs)
                    .map(|mask| self.compute_idle_stddev(node, mask))
                    .collect()
            });
            return table[(idle_mask & ((1u64 << self.nprocs) - 1)) as usize];
        }
        if let Some(cell) = self.stddev_hashed.get(node.index()) {
            // Only bits inside the machine contribute; canonicalize the key
            // so equivalent masks share one entry.
            let key = idle_mask & (u64::MAX >> (64 - self.nprocs as u32));
            let mut cache = cell.lock().expect("stddev cache poisoned");
            return *cache
                .entry(key)
                .or_insert_with(|| self.compute_idle_stddev(node, key));
        }
        self.compute_idle_stddev(node, idle_mask)
    }

    /// The uncached computation behind [`CostModel::idle_stddev`].
    fn compute_idle_stddev(&self, node: NodeId, idle_mask: u64) -> f64 {
        let mut times = [0f64; MAX_PROCS];
        let mut count = 0usize;
        let mut bits = idle_mask & self.runnable[node.index()];
        while bits != 0 {
            let p = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            times[count] = SimDuration::from_ns(self.exec_ns(node, ProcId::new(p))).as_ms_f64();
            count += 1;
        }
        stddev_population(&times[..count])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkRate;
    use apt_dfg::generator::build_type1;
    use apt_dfg::{Kernel, KernelKind};

    fn fixture() -> (KernelDag, &'static LookupTable, SystemConfig) {
        (
            build_type1(&[
                Kernel::canonical(KernelKind::NeedlemanWunsch),
                Kernel::canonical(KernelKind::Bfs),
                Kernel::new(KernelKind::Cholesky, 250_000),
            ]),
            LookupTable::paper(),
            SystemConfig::paper_4gbps(),
        )
    }

    #[test]
    fn matrix_matches_map_based_lookup() {
        let (dfg, lookup, config) = fixture();
        let cost = CostModel::new(&dfg, lookup, &config);
        for node in dfg.node_ids() {
            for proc in config.proc_ids() {
                assert_eq!(
                    cost.exec_time(node, proc),
                    lookup.exec_time(dfg.node(node), config.kind_of(proc)).ok()
                );
                assert_eq!(
                    cost.runnable(node, proc),
                    lookup
                        .exec_time(dfg.node(node), config.kind_of(proc))
                        .is_ok()
                );
            }
            let bytes = dfg.node(node).bytes(config.bytes_per_element);
            assert_eq!(cost.transfer_time(node), config.link.transfer_time(bytes));
        }
    }

    #[test]
    fn best_proc_matches_table7() {
        let (dfg, lookup, config) = fixture();
        let cost = CostModel::new(&dfg, lookup, &config);
        // NW → CPU (112 ms), BFS → FPGA (106 ms), CD → FPGA (0.093 ms).
        let (p, t) = cost.best_proc(NodeId::new(0)).unwrap();
        assert_eq!(config.kind_of(p), ProcKind::Cpu);
        assert_eq!(t, SimDuration::from_ms(112));
        let (p, t) = cost.best_proc(NodeId::new(1)).unwrap();
        assert_eq!(config.kind_of(p), ProcKind::Fpga);
        assert_eq!(t, SimDuration::from_ms(106));
        assert_eq!(
            cost.min_exec(NodeId::new(1)),
            Some(SimDuration::from_ms(106))
        );
        assert_eq!(cost.min_mask(NodeId::new(1)), 0b100);
    }

    #[test]
    fn ties_keep_every_min_instance_in_the_mask() {
        let mut table = LookupTable::from_rows([]);
        table.insert(apt_dfg::lookup::LookupRow {
            kind: KernelKind::Bfs,
            data_size: 10,
            times: [SimDuration::from_ms(5); 3],
        });
        let dfg = build_type1(&[Kernel::new(KernelKind::Bfs, 10)]);
        let config = SystemConfig::paper_4gbps();
        let cost = CostModel::new(&dfg, &table, &config);
        assert_eq!(cost.min_mask(NodeId::new(0)), 0b111);
        // Ties break to the lowest instance id, as everywhere else.
        assert_eq!(cost.best_proc(NodeId::new(0)).unwrap().0, ProcId::new(0));
    }

    #[test]
    fn unrunnable_categories_are_masked_out() {
        let config = SystemConfig::empty(LinkRate::gbps(4))
            .with_proc(ProcKind::Asic)
            .with_proc(ProcKind::Cpu);
        let dfg = build_type1(&[Kernel::canonical(KernelKind::Bfs)]);
        let cost = CostModel::new(&dfg, LookupTable::paper(), &config);
        let n = NodeId::new(0);
        assert!(!cost.runnable(n, ProcId::new(0)));
        assert!(cost.runnable(n, ProcId::new(1)));
        assert_eq!(cost.runnable_mask(n), 0b10);
        assert_eq!(cost.exec_time(n, ProcId::new(0)), None);
    }

    /// Decision-side differential: every derived field of the model
    /// (exec, runnable mask, min exec, min mask, best proc, transfer) must
    /// equal a naive scan through the raw lookup table — the logic the dense
    /// tables replaced — for **every** kernel of the paper's table (plus a
    /// missing-row kernel) on several machine shapes. The trace-level
    /// equivalence suite cannot catch regressions here (both engines would
    /// replay the same wrong decision); this test can.
    #[test]
    fn every_derived_field_matches_a_naive_lookup_scan() {
        let lookup = LookupTable::paper();
        let mut kernels = lookup.all_kernels();
        kernels.push(Kernel::new(KernelKind::MatMul, 123)); // no table row
        let dfg = build_type1(&kernels);
        let systems = [
            SystemConfig::paper_4gbps(),
            SystemConfig::paper_no_transfers(),
            SystemConfig::empty(LinkRate::gbps(8))
                .with_proc(ProcKind::Cpu)
                .with_proc(ProcKind::Cpu)
                .with_proc(ProcKind::Gpu)
                .with_proc(ProcKind::Fpga)
                .with_proc(ProcKind::Fpga)
                .with_proc(ProcKind::Asic),
            SystemConfig::empty(LinkRate::gbps(4))
                .with_proc(ProcKind::Asic)
                .with_proc(ProcKind::Gpu),
            SystemConfig::empty(LinkRate::gbps(4)).with_proc(ProcKind::Fpga),
        ];
        for config in systems {
            let cost = CostModel::new(&dfg, lookup, &config);
            for (node, kernel) in dfg.iter() {
                // Naive per-instance scan, as the seed's call sites did it.
                let naive: Vec<Option<SimDuration>> = config
                    .proc_ids()
                    .map(|p| lookup.exec_time(kernel, config.kind_of(p)).ok())
                    .collect();
                let mut naive_runnable = 0u64;
                let mut naive_min: Option<SimDuration> = None;
                for (i, t) in naive.iter().enumerate() {
                    if let Some(t) = t {
                        naive_runnable |= 1 << i;
                        if naive_min.is_none_or(|m| *t < m) {
                            naive_min = Some(*t);
                        }
                    }
                }
                let naive_mask = naive
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.is_some() && **t == naive_min)
                    .fold(0u64, |m, (i, _)| m | 1 << i);
                let naive_best = naive
                    .iter()
                    .position(|t| t.is_some() && *t == naive_min)
                    .map(|i| (ProcId::new(i), naive_min.unwrap()));

                for (i, t) in naive.iter().enumerate() {
                    assert_eq!(cost.exec_time(node, ProcId::new(i)), *t, "{kernel}");
                    assert_eq!(cost.runnable(node, ProcId::new(i)), t.is_some());
                }
                assert_eq!(cost.runnable_mask(node), naive_runnable, "{kernel}");
                assert_eq!(cost.min_exec(node), naive_min, "{kernel}");
                assert_eq!(cost.min_mask(node), naive_mask, "{kernel}");
                assert_eq!(cost.best_proc(node), naive_best, "{kernel}");
                let bytes = kernel.bytes(config.bytes_per_element);
                assert_eq!(
                    cost.transfer_time(node),
                    config.link.transfer_time(bytes),
                    "{kernel}"
                );
            }
        }
    }

    #[test]
    fn shared_transfer_in_matches_per_pred_sum() {
        // The engine and the view share CostModel::transfer_in_time; check it
        // against a by-hand sum for mixed residency.
        let (dfg, lookup, config) = fixture();
        let cost = CostModel::new(&dfg, lookup, &config);
        // Node 2 depends on 0 (on p0) and 1 (on p2); unfinished preds free.
        let locations = vec![Some(ProcId::new(0)), None, None];
        let n2 = NodeId::new(2);
        assert_eq!(
            cost.transfer_in_time(&dfg, &locations, n2, ProcId::new(0)),
            SimDuration::ZERO
        );
        assert_eq!(
            cost.transfer_in_time(&dfg, &locations, n2, ProcId::new(1)),
            cost.transfer_time(NodeId::new(0))
        );
        let locations = vec![Some(ProcId::new(0)), Some(ProcId::new(2)), None];
        assert_eq!(
            cost.transfer_in_time(&dfg, &locations, n2, ProcId::new(1)),
            cost.transfer_time(NodeId::new(0)) + cost.transfer_time(NodeId::new(1))
        );
    }

    #[test]
    fn idle_stddev_matches_naive_for_every_mask() {
        use apt_base::stats::stddev_population;
        let (dfg, lookup, config) = fixture();
        let cost = CostModel::new(&dfg, lookup, &config);
        for node in dfg.node_ids() {
            for mask in 0u64..(1 << config.len()) {
                // The logic SS used inline: ascending-id as_ms_f64 times of
                // runnable processors in the mask.
                let naive: Vec<f64> = config
                    .proc_ids()
                    .filter(|p| mask & (1 << p.index()) != 0)
                    .filter_map(|p| cost.exec_time(node, p))
                    .map(|d| d.as_ms_f64())
                    .collect();
                let expected = stddev_population(&naive);
                // Memoized path (≤ SS_MEMO_MAX_PROCS procs) — queried twice
                // to cover both the fill and the hit.
                assert_eq!(cost.idle_stddev(node, mask), expected);
                assert_eq!(cost.idle_stddev(node, mask), expected);
                // Uncached path must agree bit for bit.
                assert_eq!(cost.compute_idle_stddev(node, mask), expected);
            }
        }
    }

    #[test]
    fn idle_stddev_ignores_out_of_machine_bits() {
        let (dfg, lookup, config) = fixture();
        let cost = CostModel::new(&dfg, lookup, &config);
        let n = NodeId::new(0);
        // Bits above the machine size must not change the answer (they can
        // appear in hand-built views over a larger universe).
        assert_eq!(
            cost.idle_stddev(n, 0b111),
            cost.idle_stddev(n, 0b111 | (1 << 20))
        );
    }

    #[test]
    fn idle_stddev_hashed_cache_matches_naive_past_the_dense_cap() {
        use apt_base::stats::stddev_population;
        // An 11-processor machine: beyond SS_MEMO_MAX_PROCS, so the hashed
        // per-node cache is in play.
        let mut config = SystemConfig::empty(LinkRate::gbps(4));
        for _ in 0..4 {
            config = config
                .with_proc(ProcKind::Cpu)
                .with_proc(ProcKind::Gpu)
                .with_proc(ProcKind::Fpga);
        }
        let config = config.with_proc(ProcKind::Asic);
        assert!(config.len() > SS_MEMO_MAX_PROCS);
        let dfg = build_type1(&[
            Kernel::canonical(KernelKind::NeedlemanWunsch),
            Kernel::canonical(KernelKind::Bfs),
        ]);
        let lookup = LookupTable::paper();
        let cost = CostModel::new(&dfg, lookup, &config);
        for node in dfg.node_ids() {
            for mask in [0u64, 0b1, 0b111, 0b101_0101_0101, (1 << 13) - 1, 1 << 12] {
                let naive: Vec<f64> = config
                    .proc_ids()
                    .filter(|p| mask & (1 << p.index()) != 0)
                    .filter_map(|p| cost.exec_time(node, p))
                    .map(|d| d.as_ms_f64())
                    .collect();
                let expected = stddev_population(&naive);
                // Fill, then hit — both must equal the direct computation.
                assert_eq!(cost.idle_stddev(node, mask), expected);
                assert_eq!(cost.idle_stddev(node, mask), expected);
                assert_eq!(cost.compute_idle_stddev(node, mask), expected);
            }
            // Out-of-machine bits canonicalize onto the same cache entry.
            assert_eq!(
                cost.idle_stddev(node, 0b111),
                cost.idle_stddev(node, 0b111 | (1 << 40))
            );
        }
        // The clone carries the cache contents over.
        let cloned = cost.clone();
        assert_eq!(cloned.idle_stddev(NodeId::new(0), 0b111), {
            cost.idle_stddev(NodeId::new(0), 0b111)
        });
    }

    /// Binding slots one at a time (fresh or recycled) reproduces exactly
    /// what the batch constructor computes — the invariant the open-stream
    /// arena relies on.
    #[test]
    fn bind_slot_matches_batch_build() {
        let lookup = LookupTable::paper();
        let mut kernels = lookup.all_kernels();
        kernels.push(Kernel::new(KernelKind::MatMul, 123)); // no table row
        for config in [
            SystemConfig::paper_4gbps(),
            SystemConfig::paper_no_transfers(),
            SystemConfig::empty(LinkRate::gbps(8))
                .with_proc(ProcKind::Asic)
                .with_proc(ProcKind::Fpga)
                .with_proc(ProcKind::Fpga),
        ] {
            let dfg = build_type1(&kernels);
            let batch = CostModel::new(&dfg, lookup, &config);
            let mut incremental = CostModel::for_streaming(&config);
            // Fresh binds, in order.
            for (node, kernel) in dfg.iter() {
                incremental.bind_slot(node, kernel, lookup, &config);
            }
            let assert_same = |inc: &CostModel| {
                for node in dfg.node_ids() {
                    for proc in config.proc_ids() {
                        assert_eq!(inc.exec_ns(node, proc), batch.exec_ns(node, proc));
                    }
                    assert_eq!(inc.runnable_mask(node), batch.runnable_mask(node));
                    assert_eq!(inc.min_exec(node), batch.min_exec(node));
                    assert_eq!(inc.min_mask(node), batch.min_mask(node));
                    assert_eq!(inc.best_proc(node), batch.best_proc(node));
                    assert_eq!(inc.transfer_time(node), batch.transfer_time(node));
                    assert_eq!(inc.idle_stddev(node, 0b11), batch.idle_stddev(node, 0b11));
                }
            };
            assert_same(&incremental);
            // Recycle every slot with a rotated kernel, then restore: the
            // stddev memo must follow the rebind, not the original kernel.
            for (node, _) in dfg.iter() {
                let other = kernels[(node.index() + 1) % kernels.len()];
                incremental.bind_slot(node, &other, lookup, &config);
                let _ = incremental.idle_stddev(node, 0b111); // warm the memo
            }
            for (node, kernel) in dfg.iter() {
                incremental.bind_slot(node, kernel, lookup, &config);
            }
            assert_same(&incremental);
        }
    }

    #[test]
    fn pair_tables_match_the_config_per_pair_times() {
        use crate::topology::Topology;
        let (dfg, lookup, _) = fixture();
        let clustered = SystemConfig::paper_4gbps().with_topology(Topology::clustered(
            3,
            2,
            LinkRate::gbps(8),
            LinkRate::gbps(1),
        ));
        let cost = CostModel::new(&dfg, lookup, &clustered);
        for (node, kernel) in dfg.iter() {
            let bytes = kernel.bytes(clustered.bytes_per_element);
            for src in clustered.proc_ids() {
                for dst in clustered.proc_ids() {
                    assert_eq!(
                        cost.pair_transfer_time(node, src, dst),
                        clustered.pair_transfer_time(bytes, src, dst),
                        "{kernel} {src}->{dst}"
                    );
                }
            }
        }
        // transfer_in_time sums the pair entries of remote predecessors.
        let locations = vec![Some(ProcId::new(0)), Some(ProcId::new(2)), None];
        let n2 = NodeId::new(2);
        for dst in clustered.proc_ids() {
            let expected: SimDuration = dfg
                .preds(n2)
                .iter()
                .filter_map(|&p| locations[p.index()].map(|loc| (p, loc)))
                .map(|(p, loc)| cost.pair_transfer_time(p, loc, dst))
                .sum();
            assert_eq!(cost.transfer_in_time(&dfg, &locations, n2, dst), expected);
        }
        // On a uniform machine the pair accessor reads the scalar table.
        let uniform = SystemConfig::paper_4gbps();
        let ucost = CostModel::new(&dfg, lookup, &uniform);
        for node in dfg.node_ids() {
            assert_eq!(
                ucost.pair_transfer_time(node, ProcId::new(0), ProcId::new(1)),
                ucost.transfer_time(node)
            );
            assert_eq!(
                ucost.pair_transfer_time(node, ProcId::new(1), ProcId::new(1)),
                SimDuration::ZERO
            );
        }
    }

    #[test]
    fn bind_slot_matches_batch_build_under_a_nonuniform_topology() {
        use crate::topology::Topology;
        let lookup = LookupTable::paper();
        let kernels = lookup.all_kernels();
        let config = SystemConfig::paper_4gbps().with_topology(Topology::star(
            3,
            ProcId::new(0),
            LinkRate::gbps(2),
        ));
        let dfg = build_type1(&kernels);
        let batch = CostModel::new(&dfg, lookup, &config);
        let mut incremental = CostModel::for_streaming(&config);
        for (node, kernel) in dfg.iter() {
            incremental.bind_slot(node, kernel, lookup, &config);
        }
        for node in dfg.node_ids() {
            assert_eq!(incremental.transfer_time(node), batch.transfer_time(node));
            for src in config.proc_ids() {
                for dst in config.proc_ids() {
                    assert_eq!(
                        incremental.pair_transfer_time(node, src, dst),
                        batch.pair_transfer_time(node, src, dst)
                    );
                }
            }
        }
        // Recycling a slot rewrites its whole pair row.
        let other = kernels[1];
        incremental.bind_slot(NodeId::new(0), &other, lookup, &config);
        let bytes = other.bytes(config.bytes_per_element);
        assert_eq!(
            incremental.pair_transfer_time(NodeId::new(0), ProcId::new(1), ProcId::new(2)),
            config.pair_transfer_time(bytes, ProcId::new(1), ProcId::new(2))
        );
    }

    #[test]
    fn zero_bytes_per_element_disables_transfers() {
        let (dfg, lookup, _) = fixture();
        let config = SystemConfig::paper_no_transfers();
        let cost = CostModel::new(&dfg, lookup, &config);
        for node in dfg.node_ids() {
            assert_eq!(cost.transfer_time(node), SimDuration::ZERO);
        }
    }
}
