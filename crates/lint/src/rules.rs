//! The rule engine: token-stream pattern matching for each workspace
//! invariant, `#[cfg(test)]` region tracking, and the reasoned
//! escape-comment protocol.
//!
//! # Rules
//!
//! | id | scope | invariant protected |
//! |---|---|---|
//! | `nondet-container` | simulation crates | byte-identical traces: a `HashMap`/`HashSet` *declaration* is a standing iteration hazard |
//! | `nondet-iter` | simulation crates | byte-identical traces: order-dependent iteration over a hash container |
//! | `wall-clock` | all crates, allowlist | determinism: `Instant::now`/`SystemTime` outside profiler/bench/progress modules |
//! | `rng-salt` | all crates | RNG-stream discipline: `SplitMix64::new` must derive from a config seed or a named `*_STREAM_SALT` constant, never an inline magic number |
//! | `hot-path-panic` | hot-path modules | panic-freedom tier: `unwrap`/`expect`/`panic!`/`todo!`/`unreachable!`/`unimplemented!` need a reasoned escape |
//! | `forbid-unsafe` | every `lib.rs` | unsafe hygiene: `#![forbid(unsafe_code)]` present |
//! | `bad-escape` | everywhere | the escape protocol itself: unknown rule id or missing reason |
//!
//! # Escapes
//!
//! A finding is suppressed by a comment on the same line or the line
//! directly above:
//!
//! ```text
//! // apt-lint: allow(hot-path-panic, invariant — slot was bound by admit())
//! ```
//!
//! The reason is mandatory: `allow(rule)` without one suppresses nothing
//! and is itself a `bad-escape` finding, so every exception in the tree
//! carries its justification next to the code.
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions) is exempt from
//! every rule except `forbid-unsafe`: tests panic on purpose and seed
//! RNGs with literals on purpose.

use crate::config::LintConfig;
use crate::findings::{Finding, RULES};
use crate::lexer::{lex, Comment, Tok, TokKind};

/// Hash-container iteration methods whose visit order is nondeterministic.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Panic-family macros flagged on the hot path.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// A parsed `apt-lint: allow(rule, reason)` escape. An escape written
/// across several consecutive `//` lines is one escape spanning
/// `start..=end`; it suppresses findings on its own lines and the line
/// directly below.
#[derive(Debug)]
struct Escape {
    start: u32,
    end: u32,
    rule: String,
    reason: String,
    /// Parse failure: `apt-lint:` marker present but not in the
    /// `allow(rule, reason)` shape.
    malformed: bool,
}

/// Scan one file's source. `rel_path` is workspace-relative with `/`
/// separators; it drives the per-rule scoping in `cfg`.
pub fn scan_source(rel_path: &str, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    let out = lex(src);
    let toks = &out.tokens;
    let escapes = parse_escapes(&out.comments);
    let test_ranges = test_regions(toks);
    let in_test = |line: u32| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);

    let mut found: Vec<Finding> = Vec::new();

    rule_forbid_unsafe(rel_path, toks, &mut found);
    rule_wall_clock(rel_path, toks, cfg, &in_test, &mut found);
    rule_rng_salt(rel_path, toks, &in_test, &mut found);
    rule_hot_path_panic(rel_path, toks, cfg, &in_test, &mut found);
    if cfg.is_simulation(rel_path) {
        rule_nondet(rel_path, toks, &in_test, &mut found);
    }

    // Apply escapes: a reasoned escape for the right rule covering the
    // finding's line (trailing comment, or a comment block directly
    // above) suppresses it.
    found.retain(|f| {
        !escapes.iter().any(|e| {
            !e.malformed
                && !e.reason.is_empty()
                && e.rule == f.rule
                && e.start <= f.line
                && f.line <= e.end + 1
        })
    });

    // The escape protocol polices itself.
    for e in &escapes {
        if e.malformed {
            found.push(Finding {
                file: rel_path.to_string(),
                line: e.start,
                rule: "bad-escape",
                message: "apt-lint escape comment is not in the `allow(rule, reason)` shape".into(),
                hint: "write `// apt-lint: allow(<rule-id>, <reason>)`".into(),
            });
        } else if !RULES.contains(&e.rule.as_str()) {
            found.push(Finding {
                file: rel_path.to_string(),
                line: e.start,
                rule: "bad-escape",
                message: format!("escape names unknown rule `{}`", e.rule),
                hint: format!("known rules: {}", RULES.join(", ")),
            });
        } else if e.reason.is_empty() {
            found.push(Finding {
                file: rel_path.to_string(),
                line: e.start,
                rule: "bad-escape",
                message: format!(
                    "escape for `{}` carries no reason — reasons are mandatory",
                    e.rule
                ),
                hint: "write `// apt-lint: allow(rule, why the invariant still holds)`".into(),
            });
        }
    }

    found
}

/// Extract `apt-lint: allow(rule, reason)` escapes from comments.
fn parse_escapes(comments: &[Comment]) -> Vec<Escape> {
    // Merge runs of consecutive plain `//` comment lines into blocks, so
    // an escape's reason can wrap across lines. Doc comments (`///`,
    // `//!`, `/**`) never participate — they are prose that may
    // *describe* the escape syntax without invoking it.
    let mut blocks: Vec<(u32, u32, String)> = Vec::new();
    for c in comments {
        if c.text.starts_with("///") || c.text.starts_with("//!") || c.text.starts_with("/**") {
            continue;
        }
        let body = c
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim();
        match blocks.last_mut() {
            Some((_, end, text)) if c.text.starts_with("//") && *end + 1 == c.line => {
                *end = c.line;
                text.push(' ');
                text.push_str(body);
            }
            _ => blocks.push((c.line, c.line, body.to_string())),
        }
    }

    let mut out = Vec::new();
    for (start, end, text) in blocks {
        let Some(pos) = text.find("apt-lint:") else {
            continue;
        };
        let rest = text[pos + "apt-lint:".len()..].trim_start();
        let parsed = rest.strip_prefix("allow(").and_then(|r| {
            let close = r.rfind(')')?;
            let inner = &r[..close];
            let (rule, reason) = match inner.find(',') {
                Some(comma) => (&inner[..comma], inner[comma + 1..].trim()),
                None => (inner, ""),
            };
            Some((rule.trim().to_string(), reason.to_string()))
        });
        match parsed {
            Some((rule, reason)) => out.push(Escape {
                start,
                end,
                rule,
                reason,
                malformed: false,
            }),
            None => out.push(Escape {
                start,
                end,
                rule: String::new(),
                reason: String::new(),
                malformed: true,
            }),
        }
    }
    out
}

fn is_id(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

fn is_punct(t: &Tok, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` /
/// `#[test]` items. The attribute's braced item is found by scanning to
/// its first `{` (stopping at `;` for bodiless items) and brace-matching.
fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if is_punct(&toks[i], '#') && is_punct(&toks[i + 1], '[') {
            // Collect the attribute tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr: Vec<&Tok> = Vec::new();
            while j < toks.len() && depth > 0 {
                if is_punct(&toks[j], '[') {
                    depth += 1;
                } else if is_punct(&toks[j], ']') {
                    depth -= 1;
                }
                if depth > 0 {
                    attr.push(&toks[j]);
                }
                j += 1;
            }
            let is_test_attr = match attr.first() {
                Some(t) if is_id(t, "test") => true,
                // `cfg(test)` / `cfg(all(test, …))` are test regions;
                // `cfg(not(test))` is emphatically not.
                Some(t) if is_id(t, "cfg") => {
                    attr.iter().any(|t| is_id(t, "test")) && !attr.iter().any(|t| is_id(t, "not"))
                }
                _ => false,
            };
            if is_test_attr {
                let start_line = toks[i].line;
                // Find the item's opening brace (skipping further
                // attributes and the signature); a `;` first means a
                // bodiless item.
                let mut k = j;
                let mut brace = None;
                while k < toks.len() {
                    if is_punct(&toks[k], '{') {
                        brace = Some(k);
                        break;
                    }
                    if is_punct(&toks[k], ';') {
                        break;
                    }
                    k += 1;
                }
                if let Some(open) = brace {
                    let mut depth = 1usize;
                    let mut m = open + 1;
                    while m < toks.len() && depth > 0 {
                        if is_punct(&toks[m], '{') {
                            depth += 1;
                        } else if is_punct(&toks[m], '}') {
                            depth -= 1;
                        }
                        m += 1;
                    }
                    let end_line = toks[m.saturating_sub(1).min(toks.len() - 1)].line;
                    ranges.push((start_line, end_line));
                    i = m;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    ranges
}

/// `forbid-unsafe`: every `lib.rs` must carry `#![forbid(unsafe_code)]`.
fn rule_forbid_unsafe(rel_path: &str, toks: &[Tok], found: &mut Vec<Finding>) {
    if !rel_path.ends_with("/lib.rs") {
        return;
    }
    let has = toks.windows(8).any(|w| {
        is_punct(&w[0], '#')
            && is_punct(&w[1], '!')
            && is_punct(&w[2], '[')
            && is_id(&w[3], "forbid")
            && is_punct(&w[4], '(')
            && is_id(&w[5], "unsafe_code")
            && is_punct(&w[6], ')')
            && is_punct(&w[7], ']')
    });
    if !has {
        found.push(Finding {
            file: rel_path.to_string(),
            line: 1,
            rule: "forbid-unsafe",
            message: "lib crate without `#![forbid(unsafe_code)]`".into(),
            hint: "add `#![forbid(unsafe_code)]` to the crate root (every other lib crate has it)"
                .into(),
        });
    }
}

/// `wall-clock`: `Instant::now()` / `SystemTime::…` outside the allowlist.
fn rule_wall_clock(
    rel_path: &str,
    toks: &[Tok],
    cfg: &LintConfig,
    in_test: &dyn Fn(u32) -> bool,
    found: &mut Vec<Finding>,
) {
    if cfg.wall_clock_allowed(rel_path) {
        return;
    }
    for w in toks.windows(4) {
        let wall = (is_id(&w[0], "Instant") && is_id(&w[3], "now"))
            || (is_id(&w[0], "SystemTime") && w[3].kind == TokKind::Ident);
        if wall && is_punct(&w[1], ':') && is_punct(&w[2], ':') && !in_test(w[0].line) {
            found.push(Finding {
                file: rel_path.to_string(),
                line: w[0].line,
                rule: "wall-clock",
                message: format!(
                    "wall-clock read (`{}::{}`) outside the profiler/bench/progress allowlist",
                    w[0].text, w[3].text
                ),
                hint: "simulation time comes from the event clock; move the read to an \
                       allowlisted module or escape with a reason if it provably never \
                       reaches simulation state"
                    .into(),
            });
        }
    }
}

/// `rng-salt`: `SplitMix64::new(…)` whose argument contains an inline
/// integer literal (outside tests). Config-seed-derived and named-salt
/// expressions contain no literal.
fn rule_rng_salt(
    rel_path: &str,
    toks: &[Tok],
    in_test: &dyn Fn(u32) -> bool,
    found: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while i + 4 < toks.len() {
        if is_id(&toks[i], "SplitMix64")
            && is_punct(&toks[i + 1], ':')
            && is_punct(&toks[i + 2], ':')
            && is_id(&toks[i + 3], "new")
            && is_punct(&toks[i + 4], '(')
            && !in_test(toks[i].line)
        {
            let mut depth = 1usize;
            let mut j = i + 5;
            let mut magic: Option<&Tok> = None;
            while j < toks.len() && depth > 0 {
                if is_punct(&toks[j], '(') {
                    depth += 1;
                } else if is_punct(&toks[j], ')') {
                    depth -= 1;
                } else if toks[j].kind == TokKind::Int && magic.is_none() {
                    magic = Some(&toks[j]);
                }
                j += 1;
            }
            if let Some(m) = magic {
                found.push(Finding {
                    file: rel_path.to_string(),
                    line: toks[i].line,
                    rule: "rng-salt",
                    message: format!(
                        "`SplitMix64::new` seeded with inline magic number `{}`",
                        m.text
                    ),
                    hint: "derive every non-test RNG stream from a config seed or a named \
                           `*_STREAM_SALT` constant (the apt-faults pattern), so streams stay \
                           disjoint and greppable"
                        .into(),
                });
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// `hot-path-panic`: `unwrap`/`expect`/panic-family on hot-path modules.
fn rule_hot_path_panic(
    rel_path: &str,
    toks: &[Tok],
    cfg: &LintConfig,
    in_test: &dyn Fn(u32) -> bool,
    found: &mut Vec<Finding>,
) {
    if !cfg.is_hot_path(rel_path) {
        return;
    }
    let mut push = |line: u32, what: String| {
        found.push(Finding {
            file: rel_path.to_string(),
            line,
            rule: "hot-path-panic",
            message: format!("`{what}` on a panic-freedom-tier module"),
            hint: "return a typed apt_base error, or keep an invariant-message `expect` and \
                   escape with `// apt-lint: allow(hot-path-panic, <why the invariant holds>)`"
                .into(),
        });
    };
    for w in toks.windows(3) {
        if in_test(w[1].line) {
            continue;
        }
        if is_punct(&w[0], '.')
            && (is_id(&w[1], "unwrap") || is_id(&w[1], "expect"))
            && is_punct(&w[2], '(')
        {
            push(w[1].line, format!(".{}()", w[1].text));
        }
    }
    for w in toks.windows(2) {
        if w[0].kind == TokKind::Ident
            && PANIC_MACROS.contains(&w[0].text.as_str())
            && is_punct(&w[1], '!')
            && !in_test(w[0].line)
        {
            push(w[0].line, format!("{}!", w[0].text));
        }
    }
}

/// `nondet-container` + `nondet-iter` over one simulation-crate file.
fn rule_nondet(
    rel_path: &str,
    toks: &[Tok],
    in_test: &dyn Fn(u32) -> bool,
    found: &mut Vec<Finding>,
) {
    let is_hash = |t: &Tok| is_id(t, "HashMap") || is_id(t, "HashSet");

    // Pass 1: declarations. A hash container in type position
    // (`name: …HashMap<…>` or `let name = HashMap::new()`) both flags the
    // declaration and registers `name` for the iteration pass.
    let mut names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if !is_hash(&toks[i]) {
            continue;
        }
        // Type position: `HashMap<` (imports / turbofish constructor
        // calls are not type positions).
        let generic = i + 1 < toks.len() && is_punct(&toks[i + 1], '<');
        let constructor =
            i + 2 < toks.len() && is_punct(&toks[i + 1], ':') && is_punct(&toks[i + 2], ':');
        if generic && !in_test(toks[i].line) {
            found.push(Finding {
                file: rel_path.to_string(),
                line: toks[i].line,
                rule: "nondet-container",
                message: format!(
                    "`{}` declared in a simulation crate — iteration order is nondeterministic",
                    toks[i].text
                ),
                hint: "use a BTreeMap/BTreeSet or an index-keyed Vec; if access is provably \
                       keyed-only, escape with `// apt-lint: allow(nondet-container, <reason>)`"
                    .into(),
            });
        }
        if generic || constructor {
            // Walk back over type syntax to the declared name, if any:
            // `live: HashMap<…>` or `x: Vec<Mutex<HashMap<…>>>`.
            let mut j = i;
            let mut steps = 0;
            while j > 0 && steps < 12 {
                j -= 1;
                steps += 1;
                match &toks[j].kind {
                    TokKind::Punct(':') => {
                        if j > 0 && toks[j - 1].kind == TokKind::Ident {
                            // Skip the path case `std::collections::HashMap`.
                            if !(j > 1 && is_punct(&toks[j - 1], ':')) {
                                names.push(toks[j - 1].text.clone());
                            }
                        }
                        break;
                    }
                    TokKind::Punct('<') | TokKind::Punct('>') | TokKind::Punct(',') => {}
                    TokKind::Ident => {}
                    TokKind::Punct('=') => {
                        // `let [mut] name = HashMap::new()`.
                        let mut k = j;
                        while k > 0 {
                            k -= 1;
                            if toks[k].kind == TokKind::Ident && !is_id(&toks[k], "mut") {
                                names.push(toks[k].text.clone());
                                break;
                            }
                            if !is_id(&toks[k], "mut") {
                                break;
                            }
                        }
                        break;
                    }
                    _ => break,
                }
            }
        }
    }
    names.sort();
    names.dedup();

    // Pass 2: iteration over a registered name.
    for w in toks.windows(4) {
        if is_punct(&w[1], '.')
            && w[0].kind == TokKind::Ident
            && names.iter().any(|n| n == &w[0].text)
            && w[2].kind == TokKind::Ident
            && ITER_METHODS.contains(&w[2].text.as_str())
            && is_punct(&w[3], '(')
            && !in_test(w[0].line)
        {
            found.push(Finding {
                file: rel_path.to_string(),
                // Anchor at the method token: in a multi-line chain the
                // escape comment sits directly above `.iter()`, not above
                // the receiver.
                line: w[2].line,
                rule: "nondet-iter",
                message: format!(
                    "order-dependent `.{}()` over hash container `{}`",
                    w[2].text, w[0].text
                ),
                hint: "hash iteration order can reach simulation output; iterate a sorted key \
                       list or switch the container to BTreeMap/Vec"
                    .into(),
            });
        }
    }
    // `for … in [&[mut]] [self.]name {`
    let mut i = 0usize;
    while i < toks.len() {
        if is_id(&toks[i], "for") {
            // find the `in` at this nesting level before a `{`
            let mut j = i + 1;
            while j < toks.len() && !is_id(&toks[j], "in") && !is_punct(&toks[j], '{') {
                j += 1;
            }
            if j < toks.len() && is_id(&toks[j], "in") {
                let mut k = j + 1;
                let mut last_ident: Option<&Tok> = None;
                let mut simple = true;
                while k < toks.len() && !is_punct(&toks[k], '{') {
                    match &toks[k].kind {
                        TokKind::Ident => last_ident = Some(&toks[k]),
                        TokKind::Punct('&') | TokKind::Punct('.') => {}
                        _ => {
                            simple = false;
                            break;
                        }
                    }
                    k += 1;
                }
                if simple {
                    if let Some(t) = last_ident {
                        if names.iter().any(|n| n == &t.text) && !in_test(t.line) {
                            found.push(Finding {
                                file: rel_path.to_string(),
                                line: t.line,
                                rule: "nondet-iter",
                                message: format!(
                                    "order-dependent `for` loop over hash container `{}`",
                                    t.text
                                ),
                                hint: "hash iteration order can reach simulation output; \
                                       iterate a sorted key list or switch the container to \
                                       BTreeMap/Vec"
                                    .into(),
                            });
                        }
                    }
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LintConfig {
        LintConfig::workspace_default()
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let out = lex(src);
        let r = test_regions(&out.tokens);
        assert_eq!(r.len(), 1);
        assert!(r[0].0 <= 3 && r[0].1 >= 5, "range {r:?}");
    }

    #[test]
    fn escape_parsing_shapes() {
        // Blank lines separate the comment blocks — consecutive `//`
        // lines deliberately merge into one escape.
        let out = lex("// apt-lint: allow(rng-salt, fixture stream)\n\n\
             // apt-lint: allow(rng-salt)\n\n\
             // apt-lint: allowed nothing\n\n\
             // plain comment\n");
        let e = parse_escapes(&out.comments);
        assert_eq!(e.len(), 3);
        assert_eq!(e[0].rule, "rng-salt");
        assert_eq!(e[0].reason, "fixture stream");
        assert!(e[1].reason.is_empty());
        assert!(e[2].malformed);
    }

    #[test]
    fn multiline_escape_merges_into_one_block() {
        let out = lex(
            "// apt-lint: allow(nondet-container, keyed-only memo that is\n\
             // never iterated)\nfn f() {}\n",
        );
        let e = parse_escapes(&out.comments);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].rule, "nondet-container");
        assert!(e[0].reason.ends_with("never iterated"), "{:?}", e[0].reason);
        assert_eq!((e[0].start, e[0].end), (1, 2));
    }

    #[test]
    fn mut_let_binding_registers_name() {
        let src = "fn f() { let mut seen = HashMap::new(); for k in &seen {} }";
        let f = scan_source("crates/hetsim/src/x.rs", src, &cfg());
        assert!(f.iter().any(|f| f.rule == "nondet-iter"), "findings: {f:?}");
    }
}
