//! The SLO runner: `apt-stream`'s gated driver with an
//! [`AdmissionPolicy`] in the admit path.

use crate::admission::AdmissionPolicy;
use apt_base::BaseError;
use apt_dfg::LookupTable;
use apt_hetsim::{CompletedJob, Policy, SystemConfig};
use apt_stream::{simulate_source_gated, DriverOpts, Source, StreamOutcome};

/// [`apt_stream::simulate_source`] with `admission` deciding, per arriving
/// job, whether it enters the system. Shed jobs are counted in
/// [`StreamOutcome::jobs_shed`]; the admission policy hears every
/// completion so its reservations drain as jobs retire.
pub fn simulate_source_slo(
    source: &mut dyn Source,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
    admission: &mut dyn AdmissionPolicy,
    opts: &DriverOpts,
) -> Result<StreamOutcome, BaseError> {
    simulate_source_slo_observed(source, config, lookup, policy, admission, opts, |_| {})
}

/// [`simulate_source_slo`] with a per-job observer (called after the
/// admission policy's completion hook, in completion order).
pub fn simulate_source_slo_observed(
    source: &mut dyn Source,
    config: &SystemConfig,
    lookup: &LookupTable,
    policy: &mut dyn Policy,
    admission: &mut dyn AdmissionPolicy,
    opts: &DriverOpts,
    observe: impl FnMut(&CompletedJob),
) -> Result<StreamOutcome, BaseError> {
    // An AdmissionPolicy *is* an AdmissionGate (supertrait upcast).
    simulate_source_gated(source, config, lookup, policy, opts, admission, observe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{AcceptAll, FeasibilityGate, UtilizationBound};
    use apt_base::SimDuration;
    use apt_core::{Apt, EdfApt, LlApt};
    use apt_hetsim::ReadyOrder;
    use apt_stream::{DeadlineSpec, JobFamily, PoissonSource};

    fn paper() -> (&'static SystemConfig, &'static LookupTable) {
        use std::sync::OnceLock;
        static CFG: OnceLock<SystemConfig> = OnceLock::new();
        (
            CFG.get_or_init(SystemConfig::paper_4gbps),
            LookupTable::paper(),
        )
    }

    /// An overloaded deadline-tagged stream: 3 j/s of diamond jobs into a
    /// machine that sustains ~0.3 j/s.
    fn overload_source(lookup: &LookupTable, tightness: f64) -> PoissonSource<'_> {
        PoissonSource::new(lookup, 3.0, 250, JobFamily::Diamond { width: 2 }, 0x510)
            .with_deadlines(DeadlineSpec::ProportionalCp { factor: tightness })
    }

    /// The acceptance-criterion behaviour: under overload, accept-all
    /// drives the miss rate toward 1 with an unbounded backlog, while a
    /// utilization gate sheds most arrivals and keeps the *admitted* jobs'
    /// miss rate far lower.
    #[test]
    fn admission_gating_beats_accept_all_under_overload() {
        let (config, lookup) = paper();
        let opts = DriverOpts::default();

        let mut open = AcceptAll;
        let mut src = overload_source(lookup, 4.0);
        let ungated = simulate_source_slo(
            &mut src,
            config,
            lookup,
            &mut EdfApt::new(4.0),
            &mut open,
            &opts,
        )
        .unwrap();
        assert_eq!(ungated.jobs_shed, 0);
        assert_eq!(ungated.jobs_admitted, 250);
        assert!(
            ungated.miss_rate() > 0.8,
            "overloaded accept-all should go almost fully tardy, got {}",
            ungated.miss_rate()
        );

        // ρ ≤ 0.25: the density bound assumes an ideal preemptive EDF
        // machine; on this non-preemptive heterogeneous one (kernels are
        // never migrated, transfers serialize, and a diamond job cannot
        // use all three processors at once) a quarter-budget keeps the
        // admitted set comfortably schedulable.
        let mut gate = UtilizationBound::new(lookup, config, 0.25);
        let mut src = overload_source(lookup, 4.0);
        let gated = simulate_source_slo(
            &mut src,
            config,
            lookup,
            &mut EdfApt::new(4.0),
            &mut gate,
            &opts,
        )
        .unwrap();
        assert!(gated.jobs_shed > 0, "overload must shed");
        assert_eq!(gated.jobs_admitted + gated.jobs_shed, 250);
        assert_eq!(gated.jobs_completed, gated.jobs_admitted);
        assert!(
            gated.miss_rate() < ungated.miss_rate() / 2.0,
            "gated miss rate {} not clearly below accept-all {}",
            gated.miss_rate(),
            ungated.miss_rate()
        );
        // The gate's reservations fully drained with the stream.
        assert_eq!(gate.load(), 0.0);
        // And the backlog peak is bounded well below the ungated one.
        assert!(gated.peak_in_flight_jobs < ungated.peak_in_flight_jobs);
    }

    #[test]
    fn feasibility_gate_shed_rate_tracks_tightness() {
        let (config, lookup) = paper();
        let opts = DriverOpts::default();
        let run = |tightness: f64| {
            let mut gate = FeasibilityGate::new(lookup, config);
            let mut src = overload_source(lookup, tightness);
            simulate_source_slo(
                &mut src,
                config,
                lookup,
                &mut LlApt::new(4.0),
                &mut gate,
                &opts,
            )
            .unwrap()
        };
        let tight = run(1.5);
        let loose = run(16.0);
        assert!(tight.jobs_shed > 0);
        assert!(
            tight.shed_rate() > loose.shed_rate(),
            "tighter deadlines must shed more: {} vs {}",
            tight.shed_rate(),
            loose.shed_rate()
        );
    }

    /// Engine-level EDF ready order + plain APT ≡ FCFS order + EDF-APT:
    /// the two implementations of "earliest deadline first" must agree
    /// schedule for schedule.
    #[test]
    fn engine_edf_order_equals_self_ordering_edf_apt() {
        let (config, lookup) = paper();
        let make_source = || {
            PoissonSource::new(lookup, 0.5, 120, JobFamily::Chain { len: 2 }, 77).with_deadlines(
                DeadlineSpec::Uniform {
                    lo: SimDuration::from_ms(500),
                    hi: SimDuration::from_ms(60_000),
                },
            )
        };
        let mut via_engine_order = Vec::new();
        apt_stream::simulate_source_observed(
            &mut make_source(),
            config,
            lookup,
            &mut Apt::new(4.0),
            &DriverOpts {
                ready_order: ReadyOrder::EarliestDeadline,
                ..DriverOpts::default()
            },
            |job| via_engine_order.push((job.job, job.records.clone())),
        )
        .unwrap();
        let mut via_policy_order = Vec::new();
        apt_stream::simulate_source_observed(
            &mut make_source(),
            config,
            lookup,
            &mut EdfApt::new(4.0),
            &DriverOpts::default(),
            |job| via_policy_order.push((job.job, job.records.clone())),
        )
        .unwrap();
        assert_eq!(
            via_engine_order, via_policy_order,
            "the two EDF realizations diverged"
        );
    }
}
