//! Adaptive control plane vs the static-tuned grid: `apt-repro
//! control-sweep`.
//!
//! Every other sweep in this harness fixes (α, ρ) up front and asks which
//! cell wins. That framing assumes someone re-tunes the system whenever
//! the workload drifts. `control-sweep` drops that assumption: the same
//! deadline-tagged streams run under a 3 × 3 grid of *fixed* (α,
//! admission-bound ρ) operating points **and** under one adaptive cell —
//! `apt-control`'s [`AimdAdmission`] + [`AlphaController`] stack closing
//! the loop on the driver's metrics windows, starting from the paper-tuned
//! defaults (α = 4, ρ = 1).
//!
//! The scenario axis is the point of the experiment:
//!
//! * **diurnal** — the gentle swing the static grid was tuned on
//!   (0.05…0.25 j/s over a 10-minute day). The adaptive cell must *match*
//!   the best fixed cell here: adaptivity may not tax the tuned regime.
//! * **diurnal-shift** — the same machine years later: the swing's floor
//!   and amplitude both moved (0.2…0.8 j/s, peaks past 2× the ~0.3 j/s
//!   service capacity). No fixed cell is right twice a day — open ρ
//!   drowns in the peaks, tight ρ starves the troughs — so the controller
//!   must *strictly beat every* fixed cell by re-tuning per phase.
//! * **bursty** — a two-state MMPP (3× capacity bursts, long quiet
//!   valleys) probing reaction time rather than slow tracking.
//! * **faulty** — crash/repair episodes shrink the machine itself;
//!   capacity, not load, is what drifts.
//!
//! Score is **on-time goodput** (deadline-met completions per second):
//! shedding too much and missing too much both lose. Each row also
//! reports where the controller ended up (final α, final ρ) and how many
//! control actions were applied. `--csv` exports one row per cell.

use crate::runner::run_pool;
use apt_control::{AimdAdmission, AimdConfig, AlphaController, ControlAction, ControllerStack};
use apt_core::prelude::*;
use apt_metrics::TextTable;
use apt_slo::UtilizationBound;
use apt_stream::{
    DeadlineSpec, DiurnalSource, DriverOpts, JobFamily, OnOffSource, PoissonSource, Source,
    StreamOutcome,
};

/// Jobs per sweep cell.
pub const CONTROL_JOBS: u64 = 400;

/// Seed of every arrival/deadline stream (and of the faulty scenario's
/// fault plan, salted separately inside `apt-faults`).
pub const CONTROL_SEED: u64 = 0xC0117;

/// The controller's clock: metrics-window width of every cell.
pub const CONTROL_WINDOW: SimDuration = SimDuration::from_ms(20_000);

/// Deadline tightness: `D = 6 × critical_path_min(job)` — loose enough
/// that an *unloaded* machine meets it (so window miss rate is a load
/// signal the AIMD loop can actually regulate, not an intrinsic floor),
/// tight enough that queueing during overload shows up as misses.
pub const CONTROL_TIGHTNESS: f64 = 6.0;

/// The fixed grid's α axis (paper-tuned value in the middle).
pub const CONTROL_ALPHAS: [f64; 3] = [2.0, 4.0, 8.0];

/// The fixed grid's admission-bound (ρ) axis.
pub const CONTROL_BOUNDS: [f64; 3] = [0.5, 1.0, 2.0];

/// One stream shape of the scenario axis (see the module docs).
pub struct ControlScenario {
    /// Row label.
    pub name: &'static str,
    /// Fresh arrival source for one cell run.
    make: Box<dyn Fn() -> Box<dyn Source> + Send + Sync>,
    /// Fault plan of every cell of this scenario ([`FaultPlan::none`]
    /// except the faulty row).
    faults: FaultPlan,
}

fn deadline_spec() -> DeadlineSpec {
    DeadlineSpec::ProportionalCp {
        factor: CONTROL_TIGHTNESS,
    }
}

/// The scenario axis, in render order. Index 0 is the tuned trace, index
/// 1 the phase-shifted one the acceptance tests pivot on.
pub fn control_scenarios() -> Vec<ControlScenario> {
    vec![
        ControlScenario {
            name: "diurnal",
            make: Box::new(|| {
                // The tuned regime: 0.05…0.25 j/s over a 10-minute day.
                Box::new(
                    DiurnalSource::new(
                        LookupTable::paper(),
                        0.05,
                        0.2,
                        SimDuration::from_ms(600_000),
                        CONTROL_JOBS,
                        JobFamily::Diamond { width: 2 },
                        CONTROL_SEED,
                    )
                    .with_deadlines(deadline_spec()),
                ) as Box<dyn Source>
            }),
            faults: FaultPlan::none(),
        },
        ControlScenario {
            name: "diurnal-shift",
            make: Box::new(|| {
                // The drifted regime: 0.2…0.8 j/s — troughs near the old
                // peak, peaks past 2× service capacity.
                Box::new(
                    DiurnalSource::new(
                        LookupTable::paper(),
                        0.2,
                        0.6,
                        SimDuration::from_ms(600_000),
                        CONTROL_JOBS,
                        JobFamily::Diamond { width: 2 },
                        CONTROL_SEED,
                    )
                    .with_deadlines(deadline_spec()),
                ) as Box<dyn Source>
            }),
            faults: FaultPlan::none(),
        },
        ControlScenario {
            name: "bursty",
            make: Box::new(|| {
                // Two-state MMPP: 1 j/s bursts (≈3× capacity) for ~40 s,
                // then ~80 s quiet — ≈0.33 j/s average.
                Box::new(
                    OnOffSource::new(
                        LookupTable::paper(),
                        1.0,
                        SimDuration::from_ms(40_000),
                        SimDuration::from_ms(80_000),
                        CONTROL_JOBS,
                        JobFamily::Diamond { width: 2 },
                        CONTROL_SEED,
                    )
                    .with_deadlines(deadline_spec()),
                ) as Box<dyn Source>
            }),
            faults: FaultPlan::none(),
        },
        ControlScenario {
            name: "faulty",
            make: Box::new(|| {
                Box::new(
                    PoissonSource::new(
                        LookupTable::paper(),
                        0.2,
                        CONTROL_JOBS,
                        JobFamily::Diamond { width: 2 },
                        CONTROL_SEED,
                    )
                    .with_deadlines(deadline_spec()),
                ) as Box<dyn Source>
            }),
            // Crash episodes shrink the machine: MTTF 45 s, MTTR 10 s
            // per processor, plus a 5% transient kernel failure rate.
            faults: FaultPlan::seeded(CONTROL_SEED)
                .with_crashes(SimDuration::from_ms(45_000), SimDuration::from_ms(10_000))
                .with_transient(0.05),
        },
    ]
}

/// One column of the config axis: a fixed (α, ρ) operating point, or the
/// adaptive cell (paper defaults + the `apt-control` stack).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlCell {
    /// Statically tuned: `EDF-APT(α)` behind `UtilizationBound(ρ)`.
    Fixed {
        /// APT threshold factor.
        alpha: f64,
        /// Admission density budget (× processors).
        bound: f64,
    },
    /// Paper defaults (α = 4, ρ = 1) with the AIMD + hill-climb stack
    /// re-tuning both at every window close.
    Adaptive,
}

impl ControlCell {
    /// Row label.
    pub fn label(&self) -> String {
        match self {
            ControlCell::Fixed { alpha, bound } => format!("α={alpha} ρ={bound}"),
            ControlCell::Adaptive => "adaptive".to_string(),
        }
    }

    fn start(&self) -> (f64, f64) {
        match *self {
            ControlCell::Fixed { alpha, bound } => (alpha, bound),
            ControlCell::Adaptive => (PAPER_BEST_ALPHA, 1.0),
        }
    }
}

/// The config axis: the 3 × 3 fixed grid, then the adaptive cell.
pub fn control_cells() -> Vec<ControlCell> {
    let mut cells = Vec::new();
    for &alpha in &CONTROL_ALPHAS {
        for &bound in &CONTROL_BOUNDS {
            cells.push(ControlCell::Fixed { alpha, bound });
        }
    }
    cells.push(ControlCell::Adaptive);
    cells
}

/// The adaptive cell's controller stack. Deliberately scenario-agnostic:
/// the same construction runs on every trace, so nothing here is tuned to
/// the shifted regimes it must win on.
pub fn control_stack() -> ControllerStack {
    ControllerStack::new(vec![
        Box::new(AimdAdmission::new(
            1.0,
            AimdConfig {
                // Recover ρ a little faster than the crate default so a
                // 10-minute calm phase reopens what a peak closed.
                increase: 0.1,
                ..AimdConfig::default()
            },
        )),
        Box::new(AlphaController::new(
            PAPER_BEST_ALPHA,
            apt_control::AlphaConfig::default(),
        )),
    ])
}

/// One cell run's result: the stream outcome plus where the operating
/// point ended up.
pub struct ControlRun {
    /// The driver outcome (control log included).
    pub outcome: StreamOutcome,
    /// Final α of the policy (fixed cells: the configured α).
    pub final_alpha: f64,
    /// Final admission bound ρ (fixed cells: the configured ρ).
    pub final_bound: f64,
}

/// On-time goodput: deadline-met completions per simulated second — the
/// sweep's scalar score. Shedding and missing both lose.
pub fn on_time_jps(o: &StreamOutcome) -> f64 {
    let secs = o.end.as_ms_f64() / 1_000.0;
    if secs <= 0.0 {
        return 0.0;
    }
    (o.deadline_jobs - o.deadline_misses) as f64 / secs
}

/// Run one (scenario, cell) point.
pub fn control_point(scenario: &ControlScenario, cell: ControlCell) -> ControlRun {
    use apt_stream::AdmissionGate as _;
    let lookup = LookupTable::paper();
    let config = SystemConfig::paper_4gbps();
    let (alpha0, bound0) = cell.start();
    let mut policy = EdfApt::new(alpha0);
    let mut gate = UtilizationBound::new(lookup, &config, bound0);
    let mut source = (scenario.make)();
    let opts = DriverOpts {
        snapshot_interval: Some(CONTROL_WINDOW),
        faults: scenario.faults,
        retry: RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        },
        ..DriverOpts::default()
    };
    let outcome = match cell {
        ControlCell::Fixed { .. } => apt_stream::simulate_source_gated(
            source.as_mut(),
            &config,
            lookup,
            &mut policy,
            &opts,
            &mut gate,
            |_| {},
        ),
        ControlCell::Adaptive => {
            let mut stack = control_stack();
            apt_stream::simulate_source_controlled(
                source.as_mut(),
                &config,
                lookup,
                &mut policy,
                &opts,
                &mut gate,
                &mut stack,
                |_| {},
            )
        }
    }
    .expect("control sweep point failed");
    ControlRun {
        outcome,
        final_alpha: Policy::alpha(&policy).unwrap_or(alpha0),
        final_bound: gate.utilization_bound().unwrap_or(bound0),
    }
}

/// One grid cell's coordinates: `(scenario index, cell index)`.
type GridCell = (usize, usize);

/// Flattened coordinates, scenario-major so each trace's block renders
/// contiguously with its adaptive row last.
fn grid() -> Vec<GridCell> {
    let nscen = control_scenarios().len();
    let ncells = control_cells().len();
    let mut cells = Vec::new();
    for s in 0..nscen {
        for c in 0..ncells {
            cells.push((s, c));
        }
    }
    cells
}

/// Run the whole grid once.
fn run_grid() -> (Vec<GridCell>, Vec<ControlRun>) {
    let coords = grid();
    let runs = run_pool(coords.len(), |i| {
        let (s, c) = coords[i];
        let scenarios = control_scenarios();
        control_point(&scenarios[s], control_cells()[c])
    });
    (coords, runs)
}

fn applied_actions(run: &ControlRun) -> usize {
    run.outcome.control_log.iter().filter(|e| e.applied).count()
}

fn render_control_table(coords: &[GridCell], runs: &[ControlRun]) -> TextTable {
    let scenarios = control_scenarios();
    let cells = control_cells();
    let mut table = TextTable::new(
        format!(
            "Control sweep — {CONTROL_JOBS} deadline-tagged jobs/cell (D = {CONTROL_TIGHTNESS} \
             × CP_min), EDF-APT behind UtilizationBound, {}s windows; fixed (α, ρ) grid vs the \
             apt-control adaptive cell (start α = {PAPER_BEST_ALPHA}, ρ = 1)",
            CONTROL_WINDOW.as_ms_f64() / 1_000.0,
        ),
        &[
            "scenario",
            "config",
            "on-time (j/s)",
            "goodput (j/s)",
            "miss %",
            "shed %",
            "final α",
            "final ρ",
            "actions",
        ],
    );
    for (i, run) in runs.iter().enumerate() {
        let (s, c) = coords[i];
        let o = &run.outcome;
        table.push_row(vec![
            scenarios[s].name.to_string(),
            cells[c].label(),
            format!("{:.3}", on_time_jps(o)),
            format!("{:.3}", o.goodput_jps),
            format!("{:.1}", o.miss_rate() * 100.0),
            format!("{:.1}", o.shed_rate() * 100.0),
            format!("{:.2}", run.final_alpha),
            format!("{:.2}", run.final_bound),
            format!("{}", applied_actions(run)),
        ]);
    }
    table
}

/// Header of the per-cell summary CSV.
pub const CONTROL_CSV_HEADER: &str = "scenario,config,adaptive,alpha0,bound0,on_time_jps,\
     goodput_jps,throughput_jps,jobs_completed,jobs_shed,jobs_failed,miss_rate,shed_rate,\
     final_alpha,final_bound,actions_applied,end_ms";

fn render_control_csv(coords: &[GridCell], runs: &[ControlRun]) -> String {
    let scenarios = control_scenarios();
    let cells = control_cells();
    let mut csv = String::from(CONTROL_CSV_HEADER);
    csv.push('\n');
    for (i, run) in runs.iter().enumerate() {
        let (s, c) = coords[i];
        let o = &run.outcome;
        let (alpha0, bound0) = cells[c].start();
        csv.push_str(&format!(
            "{},{},{},{},{},{:.6},{:.6},{:.6},{},{},{},{:.6},{:.6},{:.6},{:.6},{},{:.3}\n",
            scenarios[s].name,
            cells[c].label(),
            matches!(cells[c], ControlCell::Adaptive) as u8,
            alpha0,
            bound0,
            on_time_jps(o),
            o.goodput_jps,
            o.throughput_jps,
            o.jobs_completed,
            o.jobs_shed,
            o.jobs_failed,
            o.miss_rate(),
            o.shed_rate(),
            run.final_alpha,
            run.final_bound,
            applied_actions(run),
            o.end.as_ms_f64(),
        ));
    }
    csv
}

/// Header of the control-log block appended after the per-cell summary:
/// one row per logged control action across the grid — what each
/// controller asked for, when, and whether the run had the knob.
pub const CONTROL_LOG_CSV_HEADER: &str = "scenario,config,at_ms,action,value,applied";

fn render_control_log_csv(coords: &[GridCell], runs: &[ControlRun]) -> String {
    let scenarios = control_scenarios();
    let cells = control_cells();
    let mut csv = String::from(CONTROL_LOG_CSV_HEADER);
    csv.push('\n');
    for (i, run) in runs.iter().enumerate() {
        let (s, c) = coords[i];
        for e in &run.outcome.control_log {
            let (action, value) = match e.action {
                ControlAction::SetAlpha(v) => ("set-alpha", v),
                ControlAction::SetAdmissionBound(v) => ("set-admission-bound", v),
                ControlAction::SwitchPolicy(m) => ("switch-policy", m as f64),
            };
            csv.push_str(&format!(
                "{},{},{:.3},{},{:.6},{}\n",
                scenarios[s].name,
                cells[c].label(),
                e.at.as_ms_f64(),
                action,
                value,
                e.applied as u8,
            ));
        }
    }
    csv
}

/// Both CSV blocks of one grid run: the per-cell summary
/// ([`CONTROL_CSV_HEADER`]), one blank line, then the control-action log
/// ([`CONTROL_LOG_CSV_HEADER`]) — the adaptive cells' full decision
/// history rides along with the summary they produced.
fn render_control_csv_full(coords: &[GridCell], runs: &[ControlRun]) -> String {
    let mut csv = render_control_csv(coords, runs);
    csv.push('\n');
    csv.push_str(&render_control_log_csv(coords, runs));
    csv
}

/// The scenario × (fixed-grid ∪ adaptive) control sweep (module docs).
pub fn control_sweep() -> TextTable {
    let (coords, runs) = run_grid();
    render_control_table(&coords, &runs)
}

/// Per-cell summary CSV plus the control-log block over the same grid
/// (see [`render_control_csv_full`]'s two headers).
pub fn control_sweep_csv() -> String {
    let (coords, runs) = run_grid();
    render_control_csv_full(&coords, &runs)
}

/// One grid run rendered both ways, so `apt-repro control-sweep --csv
/// <path>` simulates the grid once.
pub fn control_sweep_with_csv() -> (TextTable, String) {
    let (coords, runs) = run_grid();
    (
        render_control_table(&coords, &runs),
        render_control_csv_full(&coords, &runs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_scenarios_by_fixed_grid_plus_adaptive() {
        let scenarios = control_scenarios();
        assert_eq!(
            scenarios.iter().map(|s| s.name).collect::<Vec<_>>(),
            vec!["diurnal", "diurnal-shift", "bursty", "faulty"]
        );
        assert!(scenarios[3].faults != FaultPlan::none() || !scenarios[3].faults.is_none());
        let cells = control_cells();
        assert_eq!(cells.len(), CONTROL_ALPHAS.len() * CONTROL_BOUNDS.len() + 1);
        assert_eq!(cells.last(), Some(&ControlCell::Adaptive));
        assert_eq!(cells[0].label(), "α=2 ρ=0.5");
        assert_eq!(grid().len(), scenarios.len() * cells.len());
        use apt_control::Controller as _;
        assert!(control_stack().name().starts_with("stack[aimd"));
    }

    /// Replaying a cell — fixed or adaptive — is byte-identical: the
    /// control loop is a pure function of the observed windows.
    #[test]
    fn cells_replay_deterministically() {
        let scenarios = control_scenarios();
        for cell in [
            ControlCell::Fixed {
                alpha: 4.0,
                bound: 1.0,
            },
            ControlCell::Adaptive,
        ] {
            let a = control_point(&scenarios[1], cell);
            let b = control_point(&scenarios[1], cell);
            assert_eq!(a.outcome.end, b.outcome.end);
            assert_eq!(a.outcome.proc_stats, b.outcome.proc_stats);
            assert_eq!(a.outcome.control_log, b.outcome.control_log);
            assert_eq!(a.final_alpha, b.final_alpha);
            assert_eq!(a.final_bound, b.final_bound);
        }
    }

    /// On the trace the static grid was tuned for, adaptivity is ~free:
    /// the adaptive cell scores within 10% of the best fixed cell.
    #[test]
    fn adaptive_matches_the_best_fixed_cell_on_the_tuned_trace() {
        let scenarios = control_scenarios();
        let cells = control_cells();
        let runs: Vec<ControlRun> =
            run_pool(cells.len(), |c| control_point(&scenarios[0], cells[c]));
        let adaptive = on_time_jps(&runs.last().unwrap().outcome);
        let best_fixed = runs[..cells.len() - 1]
            .iter()
            .map(|r| on_time_jps(&r.outcome))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            adaptive >= 0.9 * best_fixed,
            "adaptive {adaptive:.3} j/s vs best fixed {best_fixed:.3} j/s on the tuned trace"
        );
    }

    /// On the phase-shifted trace — an operating point the grid (and the
    /// controller's own defaults) were never tuned for — the adaptive
    /// cell strictly beats *every* fixed cell: no static (α, ρ) is right
    /// in both the overloaded peaks and the still-busy troughs.
    #[test]
    fn adaptive_beats_every_fixed_cell_on_the_shifted_trace() {
        let scenarios = control_scenarios();
        let cells = control_cells();
        let runs: Vec<ControlRun> =
            run_pool(cells.len(), |c| control_point(&scenarios[1], cells[c]));
        let adaptive_run = runs.last().unwrap();
        let adaptive = on_time_jps(&adaptive_run.outcome);
        assert!(
            applied_actions(adaptive_run) > 0,
            "the shifted trace must actually exercise the controller"
        );
        for (c, run) in runs[..cells.len() - 1].iter().enumerate() {
            let fixed = on_time_jps(&run.outcome);
            assert!(
                adaptive > fixed,
                "adaptive {adaptive:.3} j/s must beat fixed {} ({fixed:.3} j/s)",
                cells[c].label()
            );
        }
    }

    /// The CSV carries one summary row per cell with the mandated
    /// columns, and flags the adaptive row.
    #[test]
    fn csv_has_one_row_per_cell_and_flags_the_adaptive_row() {
        let scenarios = control_scenarios();
        let coords = vec![(0, 0), (0, 9)];
        let runs = vec![
            control_point(&scenarios[0], control_cells()[0]),
            control_point(&scenarios[0], control_cells()[9]),
        ];
        let csv = render_control_csv(&coords, &runs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], CONTROL_CSV_HEADER);
        for col in [
            "on_time_jps",
            "final_alpha",
            "final_bound",
            "actions_applied",
        ] {
            assert!(lines[0].contains(col), "missing column {col}");
        }
        assert!(lines[1].starts_with("diurnal,α=2 ρ=0.5,0,2,0.5,"));
        assert!(lines[2].starts_with("diurnal,adaptive,1,4,1,"));
        let fields: Vec<&str> = lines[2].split(',').collect();
        assert_eq!(fields.len(), CONTROL_CSV_HEADER.split(',').count());

        // The full export appends the control-log block after one blank
        // line: every logged action of every cell becomes one row.
        let full = render_control_csv_full(&coords, &runs);
        let (summary, log) = full
            .split_once("\n\n")
            .expect("summary and log blocks separated by a blank line");
        assert_eq!(summary.lines().count(), 3);
        let log_lines: Vec<&str> = log.lines().collect();
        assert_eq!(log_lines[0], CONTROL_LOG_CSV_HEADER);
        let logged: usize = runs.iter().map(|r| r.outcome.control_log.len()).sum();
        assert_eq!(log_lines.len(), 1 + logged);
        assert!(logged > 0, "the adaptive cell logged no actions");
        for line in &log_lines[1..] {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), CONTROL_LOG_CSV_HEADER.split(',').count());
            assert_eq!(fields[0], "diurnal");
            assert_eq!(fields[1], "adaptive", "a fixed cell has no controller");
            assert!(matches!(
                fields[3],
                "set-alpha" | "set-admission-bound" | "switch-policy"
            ));
            assert!(fields[5] == "0" || fields[5] == "1");
        }
    }
}
