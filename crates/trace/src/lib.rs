//! Structured, bounded-memory event tracing for the APT simulator.
//!
//! Every layer of the stack — the discrete-event engine, the open-stream
//! driver, the fault runtime, and the control plane — can emit typed
//! [`TraceEvent`]s into a [`TraceSink`] when one is armed. Tracing is
//! **off by default and free when off**: the engine holds an
//! `Option<Box<dyn TraceSink>>` and every emission site is a single
//! `is_some` branch, so untraced runs execute the exact same instruction
//! stream as before this crate existed (the equivalence suites pin this
//! byte-for-byte), and an armed [`NullSink`] stays within a few percent of
//! bare on the Poisson-stream hot path (`trace/poisson_apt` benches).
//!
//! Three sinks cover the use cases:
//!
//! * [`VecSink`] — unbounded recorder for tests and small exports;
//! * [`RingSink`] — bounded recorder keeping the **latest** `cap` events
//!   with a drop counter, for long streams;
//! * [`NullSink`] — discards everything; prices the armed hot path.
//!
//! The APT policy family additionally explains its alternative-processor
//! choices: each alt assignment carries a [`DecisionMeta`] (best processor,
//! its busy-until, the Eq.-8 threshold `α·x`, the alternative's cost) which
//! the engine stamps into a [`DecisionRecord`] event, turning `alt = true`
//! into an auditable decision.
//!
//! [`chrome::chrome_trace`] renders a recorded event stream as Chrome
//! trace-event JSON (loadable in `chrome://tracing` or Perfetto) and
//! [`summary::render_summary`] produces the §2.5.1 λ-decomposition report
//! (dependency-wait / scheduler-wait / processor-wait per kernel).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apt_base::{ProcId, SimDuration, SimTime};
use apt_dfg::Kernel;

pub mod chrome;
pub mod json;
pub mod summary;

/// Why the driver refused a job at admission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// An admission gate rejected the job (utilization/SLO budget).
    Gate,
    /// The in-flight cap was hit with `shed_when_full` set.
    CapacityFull,
}

impl ShedReason {
    /// Short label for exports.
    pub const fn label(self) -> &'static str {
        match self {
            ShedReason::Gate => "gate",
            ShedReason::CapacityFull => "capacity",
        }
    }
}

/// Which control-plane knob a [`TraceEvent::Control`] event turned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlKind {
    /// APT-family threshold factor α.
    Alpha,
    /// Admission-gate utilization bound ρ.
    AdmissionBound,
    /// Policy roster switch (value = member index).
    SwitchPolicy,
}

impl ControlKind {
    /// Short label for exports.
    pub const fn label(self) -> &'static str {
        match self {
            ControlKind::Alpha => "set-alpha",
            ControlKind::AdmissionBound => "set-admission-bound",
            ControlKind::SwitchPolicy => "switch-policy",
        }
    }
}

/// Which scalar a [`TraceEvent::Counter`] sample belongs to. Each kind
/// becomes one counter track in the Chrome export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// Jobs admitted but not yet retired.
    InFlightJobs,
    /// Kernels sitting in the engine's ready list.
    QueueDepth,
    /// Live APT threshold factor α.
    Alpha,
    /// Live admission-bound ρ.
    Rho,
    /// Deadline miss rate of the just-closed metrics window.
    WindowMissRate,
}

impl CounterKind {
    /// Counter-track name in the Chrome export.
    pub const fn label(self) -> &'static str {
        match self {
            CounterKind::InFlightJobs => "in-flight jobs",
            CounterKind::QueueDepth => "queue depth",
            CounterKind::Alpha => "alpha",
            CounterKind::Rho => "rho",
            CounterKind::WindowMissRate => "window miss rate",
        }
    }
}

/// Provenance of one APT-family alternative-processor choice, recorded by
/// the policy alongside the assignment (Eq. 8: admit `p_alt` iff
/// `exec + transfer ≤ α·x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionMeta {
    /// The best (fastest-completion) processor `p_min` that was busy.
    pub best_proc: ProcId,
    /// Best execution time `x` on `p_min` (the threshold base).
    pub best_exec: SimDuration,
    /// When `p_min` would have become free.
    pub best_busy_until: SimTime,
    /// The admission threshold `α·x`.
    pub threshold: SimDuration,
    /// The chosen alternative's total cost (exec + input transfer).
    pub alt_cost: SimDuration,
}

/// A [`DecisionMeta`] stamped by the engine with when and for which kernel
/// the alternative assignment was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Decision instant (assignment application time).
    pub at: SimTime,
    /// The placed kernel's node slot.
    pub node: u32,
    /// The alternative processor that was chosen.
    pub chosen: ProcId,
    /// The policy-recorded provenance.
    pub meta: DecisionMeta,
}

/// One timestamped simulator event. All variants are `Copy` so recorders
/// are flat arrays with no per-event allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// The driver admitted a job into the open engine.
    JobAdmitted {
        /// Driver-assigned job id.
        job: u64,
        /// Arrival (= admission) instant.
        at: SimTime,
        /// Number of kernels in the job's DFG.
        kernels: u32,
        /// Deadline, when the stream carries one.
        deadline: Option<SimTime>,
    },
    /// The driver refused a job at admission time.
    JobShed {
        /// Arrival instant of the refused job.
        at: SimTime,
        /// Gate rejection vs capacity shedding.
        reason: ShedReason,
    },
    /// A job left the system (all kernels finished, or cancelled).
    JobRetired {
        /// Driver-assigned job id.
        job: u64,
        /// Retirement instant.
        at: SimTime,
        /// True when the job was cancelled after retry exhaustion.
        failed: bool,
        /// True when it completed after its deadline.
        missed_deadline: bool,
    },
    /// A node slot was bound to a job at admission (links kernel events to
    /// jobs; the slot id recycles after the job retires).
    KernelBound {
        /// Engine node slot.
        node: u32,
        /// Owning job.
        job: u64,
        /// Admission instant (= the job's arrival).
        at: SimTime,
    },
    /// A kernel became ready (all predecessors done, arrival passed).
    KernelReady {
        /// Engine node slot.
        node: u32,
        /// Readiness instant.
        at: SimTime,
    },
    /// A kernel was dispatched to a processor (input transfer begins).
    KernelDispatch {
        /// Engine node slot.
        node: u32,
        /// Kernel identity (kind + data size).
        kernel: Kernel,
        /// Target processor.
        proc: ProcId,
        /// Dispatch instant.
        at: SimTime,
        /// True for an APT alternative-processor placement.
        alt: bool,
    },
    /// Input transfer occupies the interconnect from `at` to `until`.
    TransferStart {
        /// Engine node slot.
        node: u32,
        /// Target processor.
        proc: ProcId,
        /// Transfer start.
        at: SimTime,
        /// Transfer end (= execution start).
        until: SimTime,
    },
    /// Execution begins (input transfer done, processor acquired).
    ExecStart {
        /// Engine node slot.
        node: u32,
        /// Executing processor.
        proc: ProcId,
        /// Execution start instant.
        at: SimTime,
    },
    /// A kernel finished successfully.
    KernelComplete {
        /// Engine node slot.
        node: u32,
        /// Executing processor.
        proc: ProcId,
        /// Completion instant.
        at: SimTime,
    },
    /// A running kernel was killed (transient fault, crash, or job
    /// cancellation) — its span ends here without completing.
    KernelKilled {
        /// Engine node slot.
        node: u32,
        /// Processor it was running on.
        proc: ProcId,
        /// Kill instant.
        at: SimTime,
    },
    /// A failed kernel was scheduled for re-dispatch.
    RetryAttempt {
        /// Engine node slot.
        node: u32,
        /// Failure instant.
        at: SimTime,
        /// Attempt number being retried (1 = first retry).
        attempt: u32,
        /// Backoff until the re-dispatch.
        backoff: SimDuration,
    },
    /// A processor crashed (leaves the live set).
    ProcCrash {
        /// The crashed processor.
        proc: ProcId,
        /// Crash instant.
        at: SimTime,
    },
    /// A crashed processor came back.
    ProcRepair {
        /// The repaired processor.
        proc: ProcId,
        /// Repair instant.
        at: SimTime,
    },
    /// The interconnect entered (`active`) or left a degraded episode.
    LinkDegrade {
        /// Episode edge instant.
        at: SimTime,
        /// True at episode start, false at its end.
        active: bool,
    },
    /// The control plane acted (or was refused) at a window close.
    Control {
        /// Window-close instant.
        at: SimTime,
        /// Which knob.
        kind: ControlKind,
        /// The requested value (α, ρ, or roster index).
        value: f64,
        /// Whether the driver applied it.
        applied: bool,
    },
    /// An APT alternative-processor decision with full provenance.
    Decision(DecisionRecord),
    /// A sampled scalar (rendered as a Chrome counter track).
    Counter {
        /// Sample instant.
        at: SimTime,
        /// Which track.
        kind: CounterKind,
        /// Sample value.
        value: f64,
    },
}

impl TraceEvent {
    /// The event's simulation timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::JobAdmitted { at, .. }
            | TraceEvent::JobShed { at, .. }
            | TraceEvent::JobRetired { at, .. }
            | TraceEvent::KernelBound { at, .. }
            | TraceEvent::KernelReady { at, .. }
            | TraceEvent::KernelDispatch { at, .. }
            | TraceEvent::TransferStart { at, .. }
            | TraceEvent::ExecStart { at, .. }
            | TraceEvent::KernelComplete { at, .. }
            | TraceEvent::KernelKilled { at, .. }
            | TraceEvent::RetryAttempt { at, .. }
            | TraceEvent::ProcCrash { at, .. }
            | TraceEvent::ProcRepair { at, .. }
            | TraceEvent::LinkDegrade { at, .. }
            | TraceEvent::Control { at, .. }
            | TraceEvent::Counter { at, .. } => at,
            TraceEvent::Decision(d) => d.at,
        }
    }
}

/// Receives [`TraceEvent`]s from an armed engine/driver. Implementations
/// must be cheap in [`record`](TraceSink::record): it sits on the hot path
/// whenever tracing is on.
///
/// `Send` is a supertrait so an armed engine stays shard-ready: the
/// sharded-streaming roadmap moves whole engines (tracer included) onto
/// worker threads, and a `!Send` sink would silently pin every armed run
/// to one core. All in-tree sinks are plain owned data, so the bound
/// costs nothing; `apt-lint`'s `shard_readiness` suite asserts it holds
/// transitively.
pub trait TraceSink: Send {
    /// Record one event.
    fn record(&mut self, ev: TraceEvent);

    /// The recorded events, oldest first. Discarding sinks return empty.
    fn snapshot(&self) -> Vec<TraceEvent>;

    /// Events discarded because of a capacity bound.
    fn dropped(&self) -> u64 {
        0
    }

    /// Total events this sink was asked to record, including any later
    /// discarded (`recorded = retained + dropped` for bounded sinks).
    /// Telemetry surfaces this as `trace_events_total` next to
    /// `trace_events_dropped_total`, so silent ring truncation on long
    /// soak runs is visible without snapshotting the sink. The default
    /// counts the retained snapshot — discarding sinks that never
    /// retain (e.g. [`NullSink`]) report 0.
    fn recorded(&self) -> u64 {
        self.snapshot().len() as u64 + self.dropped()
    }

    /// Sink label for reports.
    fn name(&self) -> &'static str;
}

/// Discards every event — prices the armed emission path in benches.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&mut self, _ev: TraceEvent) {}

    fn snapshot(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "null"
    }
}

/// Unbounded recorder — tests and short runs.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// An empty recorder.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

impl TraceSink for VecSink {
    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.clone()
    }

    fn recorded(&self) -> u64 {
        self.events.len() as u64
    }

    fn name(&self) -> &'static str {
        "vec"
    }
}

/// Bounded ring recorder: keeps the **latest** `cap` events and counts
/// what it had to overwrite, so long streams trace in constant memory.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring keeping at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        RingSink {
            buf: Vec::with_capacity(cap.min(64 * 1024)),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn recorded(&self) -> u64 {
        self.buf.len() as u64 + self.dropped
    }

    fn name(&self) -> &'static str {
        "ring"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64) -> TraceEvent {
        TraceEvent::KernelReady {
            node: ns as u32,
            at: SimTime::from_ns(ns),
        }
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::new();
        for i in 0..5 {
            s.record(ev(i));
        }
        assert_eq!(s.events().len(), 5);
        assert_eq!(s.snapshot(), s.events().to_vec());
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.name(), "vec");
        assert_eq!(s.events()[3].at(), SimTime::from_ns(3));
    }

    #[test]
    fn null_sink_discards() {
        let mut s = NullSink;
        s.record(ev(1));
        assert!(s.snapshot().is_empty());
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn ring_sink_keeps_latest_and_counts_drops() {
        let mut s = RingSink::new(3);
        for i in 0..7 {
            s.record(ev(i));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 4);
        let snap = s.snapshot();
        let times: Vec<u64> = snap.iter().map(|e| e.at().as_ns()).collect();
        assert_eq!(times, vec![4, 5, 6], "ring keeps the latest, oldest first");
    }

    #[test]
    fn recorded_counts_retained_plus_dropped() {
        let mut ring = RingSink::new(3);
        let mut vec = VecSink::new();
        let mut null = NullSink;
        for i in 0..7 {
            ring.record(ev(i));
            vec.record(ev(i));
            null.record(ev(i));
        }
        assert_eq!(ring.recorded(), 7, "ring: retained 3 + dropped 4");
        assert_eq!(vec.recorded(), 7);
        assert_eq!(null.recorded(), 0, "null retains nothing and drops nothing");
    }

    #[test]
    fn ring_sink_below_capacity_is_lossless() {
        let mut s = RingSink::new(8);
        for i in 0..3 {
            s.record(ev(i));
        }
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.snapshot().len(), 3);
        assert_eq!(RingSink::new(0).capacity(), 1, "cap clamps to 1");
    }

    #[test]
    fn every_event_reports_its_timestamp() {
        let t = SimTime::from_ms(7);
        let d = DecisionRecord {
            at: t,
            node: 1,
            chosen: ProcId::new(2),
            meta: DecisionMeta {
                best_proc: ProcId::new(0),
                best_exec: SimDuration::from_ms(10),
                best_busy_until: SimTime::from_ms(40),
                threshold: SimDuration::from_ms(40),
                alt_cost: SimDuration::from_ms(30),
            },
        };
        for e in [
            TraceEvent::JobAdmitted {
                job: 0,
                at: t,
                kernels: 3,
                deadline: None,
            },
            TraceEvent::JobShed {
                at: t,
                reason: ShedReason::Gate,
            },
            TraceEvent::Decision(d),
            TraceEvent::Counter {
                at: t,
                kind: CounterKind::Alpha,
                value: 4.0,
            },
            TraceEvent::LinkDegrade {
                at: t,
                active: true,
            },
        ] {
            assert_eq!(e.at(), t);
        }
        assert_eq!(ShedReason::CapacityFull.label(), "capacity");
        assert_eq!(ControlKind::Alpha.label(), "set-alpha");
        assert_eq!(CounterKind::Rho.label(), "rho");
    }
}
