//! The DESIGN.md acceptance criteria: the *shape* of every headline result
//! in the paper's evaluation must hold on the reconstructed workloads.
//!
//! These tests drive the same cached sweeps as the `apt-repro` harness, so
//! running the whole file costs one full evaluation pass.

use apt_experiments::runner::{avg_lambda_ms, avg_makespans_ms, policy_index, policy_matrix, Rate};
use apt_experiments::tables::improvements;
use apt_suite::prelude::*;

/// Criterion 2 — at α = 1.5 APT tracks MET (the paper's Tables 8/9 show
/// identical columns), and the greedy dynamic baselines are far behind.
#[test]
fn small_alpha_apt_tracks_met_and_greedy_policies_trail() {
    for ty in DfgType::ALL {
        let m = policy_matrix(ty, 1.5, Rate::Gbps4);
        let avg = avg_makespans_ms(&m);
        let apt = avg[policy_index("APT")];
        let met = avg[policy_index("MET")];
        assert!(
            (apt - met).abs() / met < 0.02,
            "{ty:?}: APT {apt} vs MET {met} at α=1.5"
        );
        for p in ["SPN", "SS", "AG"] {
            let v = avg[policy_index(p)];
            assert!(
                v > 2.0 * met,
                "{ty:?}: {p} ({v}) should trail MET ({met}) by far"
            );
        }
        // AG is the worst dynamic policy, as in the paper's tables.
        assert!(
            avg[policy_index("AG")] > avg[policy_index("SPN")],
            "{ty:?}: AG should be the slowest"
        );
    }
}

/// Criterion 3 — the α sweep exhibits the valley with its minimum at the
/// paper's threshold_brk (α = 4), for both families and both link rates.
#[test]
fn alpha_valley_bottoms_at_four() {
    for ty in DfgType::ALL {
        for rate in Rate::ALL {
            let series: Vec<f64> = PAPER_ALPHAS
                .iter()
                .map(|&a| avg_makespans_ms(&policy_matrix(ty, a, rate))[policy_index("APT")])
                .collect();
            let min_idx = series
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(
                PAPER_ALPHAS[min_idx], 4.0,
                "{ty:?}/{rate:?}: valley at α={} (series {series:?})",
                PAPER_ALPHAS[min_idx]
            );
        }
    }
}

/// Criterion 4 — at the valley α, APT beats the second-best dynamic policy
/// by a double-digit percentage (paper: 16 % / 18 %; we require ≥ 5 %).
#[test]
fn apt_headline_improvement_holds() {
    for ty in DfgType::ALL {
        let (exec, lambda) = improvements(ty, 4.0);
        assert!(exec >= 5.0, "{ty:?}: exec improvement {exec}% too small");
        assert!(lambda >= 5.0, "{ty:?}: λ improvement {lambda}% too small");
    }
}

/// Criterion 5 — alternative assignments grow with α and concentrate on
/// kernels whose best/second-best ratio is below the threshold: nw and bfs
/// admit alternatives at small α; cd (ratio ≈ 29) only at α ≥ 16 — exactly
/// the pattern of the paper's Tables 15/16.
#[test]
fn alternative_assignments_follow_kernel_ratios() {
    let at = |alpha: f64| -> (usize, std::collections::BTreeMap<KernelKind, usize>) {
        let m = policy_matrix(DfgType::Type1, alpha, Rate::Gbps4);
        let mut total = 0;
        let mut by_kind = std::collections::BTreeMap::new();
        for row in m.iter() {
            let apt = &row[policy_index("APT")];
            total += apt.alt_assignments;
            for (&k, &n) in &apt.alt_by_kind {
                *by_kind.entry(k).or_insert(0) += n;
            }
        }
        (total, by_kind)
    };

    let (t15, k15) = at(1.5);
    let (t4, k4) = at(4.0);
    let (t16, k16) = at(16.0);

    assert!(t15 < t4, "α=1.5 ({t15}) must admit fewer than α=4 ({t4})");
    assert!(t4 <= t16, "α=4 ({t4}) must admit no more than α=16 ({t16})");

    // nw/bfs dominate the small-α admissions (ratios 1.30 and 1.63).
    let small_alpha_kinds: Vec<KernelKind> = k15.keys().copied().collect();
    for k in &small_alpha_kinds {
        assert!(
            matches!(k, KernelKind::NeedlemanWunsch | KernelKind::Bfs),
            "unexpected kind {k:?} admitted at α=1.5"
        );
    }
    // srad (ratio 3.18) joins at α = 4.
    assert!(
        k4.contains_key(&KernelKind::Srad),
        "srad should admit alternatives at α=4: {k4:?}"
    );
    // cd never admits below α = 16 (ratio ≈ 29.6 at the smallest size).
    assert!(
        !k4.contains_key(&KernelKind::Cholesky),
        "cd admitted too early: {k4:?}"
    );
    let _ = k16; // cd at α=16 is possible but stream-dependent; no assertion.
}

/// §3.2 metric 5 — "number of occurrences of better solutions": at α = 4
/// APT posts the best dynamic makespan on most experiments of both types
/// (paper: 9/10 on Type-1, 9–10/10 on Type-2).
#[test]
fn apt_wins_most_experiments_against_dynamic_baselines() {
    for ty in DfgType::ALL {
        let m = policy_matrix(ty, 4.0, Rate::Gbps4);
        let apt: Vec<f64> = m
            .iter()
            .map(|r| r[policy_index("APT")].makespan.as_ms_f64())
            .collect();
        let competitors: Vec<Vec<f64>> = ["MET", "SPN", "SS", "AG"]
            .iter()
            .map(|p| {
                m.iter()
                    .map(|r| r[policy_index(p)].makespan.as_ms_f64())
                    .collect()
            })
            .collect();
        let wins = apt_metrics::better_solution_count(&apt, &competitors);
        assert!(wins >= 7, "{ty:?}: APT won only {wins}/10 experiments");
    }
}

/// λ shape — APT(α=4) reduces total λ delay versus MET on the large
/// majority of experiments (Tables 11/12 show 8–10 of 10).
#[test]
fn apt_lambda_beats_met_on_most_experiments() {
    for ty in DfgType::ALL {
        let m = policy_matrix(ty, 4.0, Rate::Gbps4);
        let wins = m
            .iter()
            .filter(|r| r[policy_index("APT")].lambda_total < r[policy_index("MET")].lambda_total)
            .count();
        assert!(wins >= 7, "{ty:?}: APT λ won only {wins}/10");
    }
    // And on average (the Eq. 14 aggregate).
    for ty in DfgType::ALL {
        let m = policy_matrix(ty, 4.0, Rate::Gbps4);
        let lam = avg_lambda_ms(&m);
        assert!(lam[policy_index("APT")] < lam[policy_index("MET")]);
    }
}

/// Faster links help (slightly): at 8 GB/s the average APT makespan is no
/// worse than at 4 GB/s — the paper's "little difference ... with an
/// increase in the data transfer rate" (§4.2.2).
#[test]
fn faster_link_never_hurts_apt_on_average() {
    for ty in DfgType::ALL {
        for &alpha in &[1.5, 4.0] {
            let at4 = avg_makespans_ms(&policy_matrix(ty, alpha, Rate::Gbps4))[policy_index("APT")];
            let at8 = avg_makespans_ms(&policy_matrix(ty, alpha, Rate::Gbps8))[policy_index("APT")];
            assert!(
                at8 <= at4 * 1.03,
                "{ty:?} α={alpha}: 8 GB/s ({at8}) much worse than 4 GB/s ({at4})"
            );
        }
    }
}
