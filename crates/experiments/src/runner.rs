//! Sweep execution with caching.
//!
//! Every table and figure is an aggregation over the same underlying runs
//! (policy × experiment graph × α × link rate). The runner flattens those
//! runs into one task list and executes it on a scoped worker pool sized to
//! the machine (crossbeam scoped threads draining an atomic cursor), then
//! memoizes the per-run summaries (parking_lot mutex around the cache) so
//! `apt-repro all` never simulates the same configuration twice.
//!
//! Two levels of parallelism are exposed:
//!
//! * [`run_matrix`] — one `(DFG type, α, rate)` combination, parallel over
//!   the full graph × policy plane (the seed parallelized over graphs only,
//!   leaving the seven policy columns of each graph serialized on one
//!   worker — a 7× utilization loss at the tail of every sweep);
//! * [`prewarm`] — any set of combinations at once, parallel over the whole
//!   combination × graph × policy grid. `apt-repro all` prewarms the full
//!   evaluation grid in a single wave before rendering any artifact.
//!
//! The cache key is **split by α-dependence**: only the APT column actually
//! varies with α, so the six baseline policy columns are cached per
//! `(family, rate)` and simulated exactly once — a sweep over `k` α values
//! simulates `k` APT columns plus one baseline block instead of `7k`
//! columns (≈ 6/7 of the work saved for every α beyond the first).

use crate::workloads::{experiment_graphs, NUM_EXPERIMENTS};
use apt_core::prelude::*;
use apt_core::PolicyFactory;
use apt_metrics::RunSummary;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Link-rate presets used by the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rate {
    /// PCIe 2.0 ×8 — 4 GB/s.
    Gbps4,
    /// PCIe 2.0 ×16 — 8 GB/s.
    Gbps8,
}

impl Rate {
    /// Both evaluated rates.
    pub const ALL: [Rate; 2] = [Rate::Gbps4, Rate::Gbps8];

    /// The corresponding system configuration (paper machine).
    pub fn system(self) -> SystemConfig {
        match self {
            Rate::Gbps4 => SystemConfig::paper_4gbps(),
            Rate::Gbps8 => SystemConfig::paper_8gbps(),
        }
    }

    /// Axis label.
    pub const fn label(self) -> &'static str {
        match self {
            Rate::Gbps4 => "4 GBps",
            Rate::Gbps8 => "8 GBps",
        }
    }
}

/// One full policy comparison: `matrix[graph][policy]`, policies in the
/// Tables-8/9/10 column order (APT, MET, SPN, SS, AG, HEFT, PEFT).
///
/// Cells are `Arc`-shared: the six α-independent baseline columns of every
/// matrix at one `(family, rate)` point at the *same* summaries, so a wide
/// α sweep holds one baseline block instead of one copy per α (~6/7 of the
/// sweep's row memory for the paper's five-α grids).
pub type Matrix = Vec<Vec<Arc<RunSummary>>>;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    ty: DfgType,
    alpha_bits: u64,
    rate: Rate,
}

impl Key {
    fn new(ty: DfgType, alpha: f64, rate: Rate) -> Key {
        Key {
            ty,
            alpha_bits: alpha.to_bits(),
            rate,
        }
    }
}

fn cache() -> &'static Mutex<HashMap<Key, Arc<Matrix>>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Arc<Matrix>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The six baseline policy columns (`matrix[graph][policy − 1]`, i.e. MET …
/// PEFT) per `(family, rate)`. α never enters a baseline simulation, so
/// this cache is keyed without it — the α-dependent APT column is the only
/// thing [`prewarm`] recomputes per α.
type BaselineBlock = Vec<Vec<Arc<RunSummary>>>;

type BaselineCache = Mutex<HashMap<(DfgType, Rate), Arc<BaselineBlock>>>;

fn baseline_cache() -> &'static BaselineCache {
    static CACHE: OnceLock<BaselineCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Worker count for sweep pools: one thread per core.
fn workers(tasks: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(tasks)
        .max(1)
}

/// Execute a flattened task list on a scoped worker pool. `run(i)` computes
/// task `i`; results come back in task order. Shared with the open-stream
/// scenario sweeps.
pub(crate) fn run_pool<T: Send + Sync>(tasks: usize, run: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let slots: Vec<OnceLock<T>> = (0..tasks).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers(tasks) {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                slots[i].set(run(i)).unwrap_or_else(|_| {
                    unreachable!("task {i} claimed twice");
                });
            });
        }
    })
    .expect("sweep worker panicked");
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("pool drained every task"))
        .collect()
}

/// Run (or fetch) the full seven-policy comparison for one DFG family at
/// one α and one link rate.
pub fn policy_matrix(ty: DfgType, alpha: f64, rate: Rate) -> Arc<Matrix> {
    let key = Key::new(ty, alpha, rate);
    if let Some(hit) = cache().lock().get(&key) {
        return Arc::clone(hit);
    }
    prewarm(&[(ty, alpha, rate)]);
    Arc::clone(cache().lock().get(&key).expect("prewarm fills the cache"))
}

/// Compute every not-yet-cached `(type, α, rate)` combination in one
/// parallel wave, and cache the resulting matrices. Amortizes pool
/// ramp-up/tail across the whole sweep instead of paying it once per
/// combination, and — because the cache key is split by α-dependence —
/// simulates the six baseline columns of each `(family, rate)` pair exactly
/// once no matter how many α values the sweep covers.
pub fn prewarm(specs: &[(DfgType, f64, Rate)]) {
    /// One α-dependent APT column still to simulate. Graphs and system live
    /// on the referenced [`Block`].
    struct Combo {
        key: Key,
        apt: PolicyFactory,
        /// Index into `blocks` for this combo's baseline columns.
        block: usize,
    }

    /// One α-independent baseline block (six columns per graph).
    struct Block {
        ty: DfgType,
        rate: Rate,
        graphs: Arc<Vec<KernelDag>>,
        factories: Vec<BaselineFactory>,
        system: SystemConfig,
        /// Filled from the cache when already simulated by an earlier wave.
        cached: Option<Arc<BaselineBlock>>,
    }

    /// One unit of pool work.
    #[derive(Clone, Copy)]
    enum Task {
        Apt {
            combo: usize,
            graph: usize,
        },
        Base {
            block: usize,
            graph: usize,
            policy: usize,
        },
    }

    // Collect the missing keys under short locks; all generation happens
    // after they are released.
    let mut missing: Vec<(DfgType, f64, Rate)> = Vec::new();
    {
        let cached = cache().lock();
        for &(ty, alpha, rate) in specs {
            let key = Key::new(ty, alpha, rate);
            if cached.contains_key(&key)
                || missing.iter().any(|&(t, a, r)| Key::new(t, a, r) == key)
            {
                continue;
            }
            missing.push((ty, alpha, rate));
        }
    }
    if missing.is_empty() {
        return;
    }

    // One shared graph set per DFG family — every combo of a family
    // references the same ten graphs instead of regenerating them.
    let mut graph_sets: Vec<(DfgType, Arc<Vec<KernelDag>>)> = Vec::new();
    let mut graphs_of = |ty: DfgType| match graph_sets.iter().find(|(t, _)| *t == ty) {
        Some((_, g)) => Arc::clone(g),
        None => {
            let g = Arc::new(experiment_graphs(ty));
            graph_sets.push((ty, Arc::clone(&g)));
            g
        }
    };

    // Snapshot the already-simulated baseline blocks under a short lock;
    // graph generation and block construction happen after it is released.
    let baseline_snapshot: HashMap<(DfgType, Rate), Arc<BaselineBlock>> = {
        let baseline_cached = baseline_cache().lock();
        missing
            .iter()
            .filter_map(|&(ty, _, rate)| {
                baseline_cached
                    .get(&(ty, rate))
                    .map(|b| ((ty, rate), Arc::clone(b)))
            })
            .collect()
    };
    let mut blocks: Vec<Block> = Vec::new();
    let mut combos: Vec<Combo> = Vec::new();
    for (ty, alpha, rate) in missing {
        let block = match blocks.iter().position(|b| b.ty == ty && b.rate == rate) {
            Some(i) => i,
            None => {
                blocks.push(Block {
                    ty,
                    rate,
                    graphs: graphs_of(ty),
                    factories: baseline_factories(),
                    system: rate.system(),
                    cached: baseline_snapshot.get(&(ty, rate)).map(Arc::clone),
                });
                blocks.len() - 1
            }
        };
        combos.push(Combo {
            key: Key::new(ty, alpha, rate),
            apt: Box::new(move || Box::new(Apt::new(alpha)) as Box<dyn Policy>),
            block,
        });
    }

    // Flatten the remaining work: baseline blocks not yet cached, plus one
    // APT column per combo.
    let mut tasks: Vec<Task> = Vec::new();
    for (b, block) in blocks.iter().enumerate() {
        if block.cached.is_some() {
            continue;
        }
        for graph in 0..block.graphs.len() {
            for policy in 0..block.factories.len() {
                tasks.push(Task::Base {
                    block: b,
                    graph,
                    policy,
                });
            }
        }
    }
    for (c, combo) in combos.iter().enumerate() {
        for graph in 0..blocks[combo.block].graphs.len() {
            tasks.push(Task::Apt { combo: c, graph });
        }
    }
    let summaries = run_pool(tasks.len(), |i| {
        Arc::new(match tasks[i] {
            Task::Apt { combo, graph } => {
                let combo = &combos[combo];
                let block = &blocks[combo.block];
                run_single(&block.graphs[graph], combo.apt.as_ref(), &block.system)
            }
            Task::Base {
                block,
                graph,
                policy,
            } => {
                let block = &blocks[block];
                let factory = block.factories[policy].1;
                run_single(&block.graphs[graph], &factory, &block.system)
            }
        })
    });

    // Reassemble in task order: tasks of one block/combo were generated in
    // ascending (graph, policy) order, so pushing summaries back in result
    // order rebuilds each column/block correctly.
    let mut base_results: Vec<BaselineBlock> = blocks
        .iter()
        .map(|b| vec![Vec::with_capacity(b.factories.len()); b.graphs.len()])
        .collect();
    let mut apt_results: Vec<Vec<Arc<RunSummary>>> = combos
        .iter()
        .map(|c| Vec::with_capacity(blocks[c.block].graphs.len()))
        .collect();
    for (&task, summary) in tasks.iter().zip(summaries.iter()) {
        match task {
            Task::Apt { combo, .. } => apt_results[combo].push(Arc::clone(summary)),
            Task::Base { block, graph, .. } => base_results[block][graph].push(Arc::clone(summary)),
        }
    }
    for (block, computed) in blocks.iter_mut().zip(base_results) {
        if block.cached.is_none() {
            block.cached = Some(Arc::new(computed));
        }
    }
    {
        let mut baseline_cached = baseline_cache().lock();
        for block in &blocks {
            baseline_cached
                .entry((block.ty, block.rate))
                .or_insert_with(|| Arc::clone(block.cached.as_ref().expect("filled above")));
        }
    }

    // Assemble the full seven-column matrices (APT first, Tables-8/9 order).
    let mut cached = cache().lock();
    for (combo, apt_column) in combos.into_iter().zip(apt_results) {
        let baseline = blocks[combo.block].cached.as_ref().expect("filled above");
        let matrix: Matrix = apt_column
            .into_iter()
            .zip(baseline.iter())
            .map(|(apt, base_row)| {
                let mut row = Vec::with_capacity(1 + base_row.len());
                row.push(apt);
                // Arc clones: every α's matrix shares the one baseline block.
                row.extend(base_row.iter().map(Arc::clone));
                row
            })
            .collect();
        cached.insert(combo.key, Arc::new(matrix));
    }
}

/// Prewarm the paper's complete evaluation grid (both DFG families × the
/// five published α values × both link rates) in one wave.
pub fn prewarm_paper_grid() {
    let mut specs = Vec::new();
    for ty in DfgType::ALL {
        for &alpha in &PAPER_ALPHAS {
            for rate in Rate::ALL {
                specs.push((ty, alpha, rate));
            }
        }
    }
    prewarm(&specs);
}

/// Execute `factories` over all ten experiment graphs of `ty` on `system`,
/// parallel over the full graph × policy plane (uncached).
pub fn run_matrix(
    ty: DfgType,
    factories: &[(String, PolicyFactory)],
    system: &SystemConfig,
) -> Matrix {
    let graphs = experiment_graphs(ty);
    let npol = factories.len();
    let summaries = run_pool(graphs.len() * npol, |i| {
        run_single(&graphs[i / npol], factories[i % npol].1.as_ref(), system)
    });
    let mut out: Matrix = vec![Vec::with_capacity(npol); graphs.len()];
    for (i, summary) in summaries.into_iter().enumerate() {
        out[i / npol].push(Arc::new(summary));
    }
    out
}

/// Run one freshly constructed policy over one graph.
pub fn run_single(
    dfg: &KernelDag,
    make: &(dyn Fn() -> Box<dyn Policy> + Send + Sync),
    system: &SystemConfig,
) -> RunSummary {
    let mut policy = make();
    let res = simulate(dfg, system, LookupTable::paper(), policy.as_mut())
        .expect("experiment simulation failed");
    RunSummary::from_result(&res)
}

/// Per-policy average makespan over the ten experiments, in milliseconds
/// (column order as in the matrix).
pub fn avg_makespans_ms(matrix: &Matrix) -> Vec<f64> {
    avg_over_graphs(matrix, |s| s.makespan.as_ms_f64())
}

/// Per-policy average total λ delay over the ten experiments (ms).
pub fn avg_lambda_ms(matrix: &Matrix) -> Vec<f64> {
    avg_over_graphs(matrix, |s| s.lambda_total.as_ms_f64())
}

fn avg_over_graphs(matrix: &Matrix, f: impl Fn(&RunSummary) -> f64) -> Vec<f64> {
    let npol = matrix.first().map_or(0, Vec::len);
    (0..npol)
        .map(|p| matrix.iter().map(|row| f(&row[p])).sum::<f64>() / matrix.len().max(1) as f64)
        .collect()
}

/// The policy column order of [`policy_matrix`].
pub const POLICY_ORDER: [&str; 7] = ["APT", "MET", "SPN", "SS", "AG", "HEFT", "PEFT"];

/// Index of a policy in the matrix columns.
pub fn policy_index(name: &str) -> usize {
    POLICY_ORDER
        .iter()
        .position(|&p| p == name)
        .unwrap_or_else(|| panic!("unknown policy {name}"))
}

/// Convenience: all ten APT summaries (one per graph) at `(ty, α, rate)`.
pub fn apt_column(ty: DfgType, alpha: f64, rate: Rate) -> Vec<Arc<RunSummary>> {
    let m = policy_matrix(ty, alpha, rate);
    m.iter()
        .map(|row| Arc::clone(&row[policy_index("APT")]))
        .collect()
}

/// Sanity constant: rows per table.
pub const ROWS: usize = NUM_EXPERIMENTS;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape_and_cache_identity() {
        let a = policy_matrix(DfgType::Type1, 1.5, Rate::Gbps4);
        assert_eq!(a.len(), 10);
        assert_eq!(a[0].len(), 7);
        assert_eq!(a[0][0].policy, "APT(α=1.5)");
        assert_eq!(a[0][1].policy, "MET");
        // Second call is the same Arc (cache hit).
        let b = policy_matrix(DfgType::Type1, 1.5, Rate::Gbps4);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn averages_have_one_entry_per_policy() {
        let m = policy_matrix(DfgType::Type1, 1.5, Rate::Gbps4);
        let avg = avg_makespans_ms(&m);
        assert_eq!(avg.len(), 7);
        assert!(avg.iter().all(|&v| v > 0.0));
        let lam = avg_lambda_ms(&m);
        assert_eq!(lam.len(), 7);
    }

    #[test]
    fn policy_index_matches_order() {
        assert_eq!(policy_index("APT"), 0);
        assert_eq!(policy_index("PEFT"), 6);
    }

    #[test]
    fn apt_column_returns_ten_rows() {
        let col = apt_column(DfgType::Type1, 1.5, Rate::Gbps4);
        assert_eq!(col.len(), 10);
        assert!(col.iter().all(|s| s.policy.starts_with("APT")));
    }

    #[test]
    fn prewarm_batch_matches_individual_runs() {
        // A batched wave and a direct uncached run_matrix agree cell by cell.
        prewarm(&[
            (DfgType::Type2, 2.0, Rate::Gbps4),
            (DfgType::Type2, 2.0, Rate::Gbps8),
        ]);
        let cached = policy_matrix(DfgType::Type2, 2.0, Rate::Gbps4);
        let direct = run_matrix(
            DfgType::Type2,
            &apt_core::all_policy_factories(2.0),
            &Rate::Gbps4.system(),
        );
        assert_eq!(*cached, direct);
    }

    #[test]
    fn baseline_columns_are_alpha_independent() {
        // Two α values at one (family, rate): the six baseline columns must
        // be identical (simulated once, shared through the split cache key),
        // while the APT column reflects its own α.
        let a = policy_matrix(DfgType::Type1, 8.0, Rate::Gbps8);
        let b = policy_matrix(DfgType::Type1, 16.0, Rate::Gbps8);
        for (ra, rb) in a.iter().zip(b.iter()) {
            assert_eq!(&ra[1..], &rb[1..], "baseline columns diverged across α");
            // Not just equal — the *same* allocation: per-α matrices share
            // their baseline rows by Arc, so a wide α sweep stores one
            // baseline block total (~6/7 of the row memory saved).
            for (ca, cb) in ra[1..].iter().zip(&rb[1..]) {
                assert!(
                    Arc::ptr_eq(ca, cb),
                    "baseline cell copied instead of shared"
                );
            }
        }
        assert_eq!(a[0][0].policy, "APT(α=8)");
        assert_eq!(b[0][0].policy, "APT(α=16)");
    }

    #[test]
    fn run_matrix_rows_follow_policy_order() {
        let m = run_matrix(
            DfgType::Type1,
            &apt_core::all_policy_factories(4.0),
            &Rate::Gbps4.system(),
        );
        assert_eq!(m.len(), ROWS);
        for row in &m {
            assert_eq!(row.len(), POLICY_ORDER.len());
            assert!(row[0].policy.starts_with("APT"));
            assert_eq!(row[6].policy, "PEFT");
        }
    }
}
