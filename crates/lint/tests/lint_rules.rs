//! Fixture tests for every lint rule: one positive hit, one near-miss
//! that must NOT fire, the escape protocol honored, and immunity to the
//! rule's pattern appearing inside strings and comments — the four ways a
//! token-level linter goes wrong. Plus the JSON schema pin and the
//! workspace gate itself.

use apt_lint::{scan_source, LintConfig, Report};

fn cfg() -> LintConfig {
    LintConfig::workspace_default()
}

/// Scan a fixture as if it lived at `rel_path`, returning `(rule, line)`
/// pairs.
fn rules_at(rel_path: &str, src: &str) -> Vec<(&'static str, u32)> {
    scan_source(rel_path, src, &cfg())
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

// A path that is simulation-scoped AND hot-path-scoped, for fixtures that
// need both rule families armed.
const HOT: &str = "crates/hetsim/src/engine.rs";
// Simulation-scoped but not hot-path.
const SIM: &str = "crates/hetsim/src/other.rs";
// Neither (rule-neutral ground for rules scoped everywhere).
const COLD: &str = "crates/bench/src/main.rs";

// ---------------------------------------------------------------- nondet

#[test]
fn nondet_container_positive() {
    let f = rules_at(SIM, "struct S { m: HashMap<u64, f64> }\n");
    assert_eq!(f, vec![("nondet-container", 1)]);
}

#[test]
fn nondet_container_near_miss_btreemap_and_non_sim_crate() {
    // BTreeMap is the fix, not a finding …
    assert!(rules_at(SIM, "struct S { m: BTreeMap<u64, f64> }\n").is_empty());
    // … and a HashMap outside the simulation crates is fine.
    assert!(rules_at(
        "crates/report/src/fmt.rs",
        "struct S { m: HashMap<u64, f64> }\n"
    )
    .is_empty());
}

#[test]
fn nondet_iter_positive_and_keyed_access_near_miss() {
    let src = "struct S { m: HashMap<u64, f64> }\n\
               impl S {\n\
               fn get(&self, k: u64) -> Option<&f64> { self.m.get(&k) }\n\
               fn walk(&self) { for v in &self.m {} }\n\
               }\n";
    let f = rules_at(SIM, src);
    // The declaration fires once; keyed `.get` does not; the `for` does.
    assert_eq!(f, vec![("nondet-container", 1), ("nondet-iter", 4)]);
}

#[test]
fn nondet_iter_method_positive() {
    let src = "struct S { m: HashMap<u64, f64> }\n\
               impl S { fn w(&self) -> Vec<u64> { self.m.keys().copied().collect() } }\n";
    let f = rules_at(SIM, src);
    assert!(f.contains(&("nondet-iter", 2)), "{f:?}");
}

#[test]
fn nondet_escape_honored() {
    let src = "struct S {\n\
               // apt-lint: allow(nondet-container, keyed-only memo, never iterated)\n\
               m: HashMap<u64, f64>,\n\
               }\n";
    assert!(rules_at(SIM, src).is_empty());
}

#[test]
fn nondet_string_and_comment_immunity() {
    let src = "// a HashMap<u64, f64> in prose\n\
               fn f() -> &'static str { \"HashMap<u64, f64>\" }\n";
    assert!(rules_at(SIM, src).is_empty());
}

#[test]
fn nondet_exempt_in_tests() {
    let src =
        "#[cfg(test)]\nmod tests {\n  fn f() { let mut m = HashMap::new(); for k in &m {} }\n}\n";
    assert!(rules_at(SIM, src).is_empty());
}

// ------------------------------------------------------------ wall-clock

#[test]
fn wall_clock_positive() {
    let f = rules_at(SIM, "fn f() { let t = std::time::Instant::now(); }\n");
    assert_eq!(f, vec![("wall-clock", 1)]);
    let f = rules_at(SIM, "fn f() { let t = SystemTime::now(); }\n");
    assert_eq!(f, vec![("wall-clock", 1)]);
}

#[test]
fn wall_clock_allowlisted_and_test_near_miss() {
    // The bench crate is allowlisted: wall-clock is its whole job.
    assert!(rules_at(COLD, "fn f() { let t = Instant::now(); }\n").is_empty());
    // Test code may time itself.
    let src = "#[test]\nfn t() { let t = Instant::now(); }\n";
    assert!(rules_at(SIM, src).is_empty());
    // An unrelated `now` method is not a wall-clock read.
    assert!(rules_at(SIM, "fn f(e: &E) { let t = e.now(); }\n").is_empty());
}

#[test]
fn wall_clock_escape_honored() {
    let src = "fn f() {\n\
               // apt-lint: allow(wall-clock, progress display only, never reaches sim state)\n\
               let t = Instant::now();\n\
               }\n";
    assert!(rules_at(SIM, src).is_empty());
}

#[test]
fn wall_clock_string_immunity() {
    assert!(rules_at(SIM, "fn f() -> &'static str { \"Instant::now\" }\n").is_empty());
}

// -------------------------------------------------------------- rng-salt

#[test]
fn rng_salt_positive() {
    let f = rules_at(COLD, "fn f() { let r = SplitMix64::new(0xDEAD_BEEF); }\n");
    assert_eq!(f, vec![("rng-salt", 1)]);
    // A literal anywhere inside the seed expression is still magic.
    let f = rules_at(
        COLD,
        "fn f(s: u64) { let r = SplitMix64::new(s ^ 1234); }\n",
    );
    assert_eq!(f, vec![("rng-salt", 1)]);
}

#[test]
fn rng_salt_near_misses() {
    // Config-seed-derived: fine.
    assert!(rules_at(COLD, "fn f(seed: u64) { let r = SplitMix64::new(seed); }\n").is_empty());
    // Named salt constant: fine (no literal at the call site).
    assert!(rules_at(
        COLD,
        "fn f(seed: u64) { let r = SplitMix64::new(seed ^ FAULT_STREAM_SALT); }\n"
    )
    .is_empty());
    // Tests seed with literals on purpose.
    let src = "#[test]\nfn t() { let r = SplitMix64::new(42); }\n";
    assert!(rules_at(COLD, src).is_empty());
}

#[test]
fn rng_salt_escape_honored() {
    let src = "fn f() {\n\
               // apt-lint: allow(rng-salt, fixture generator for the doc example)\n\
               let r = SplitMix64::new(7);\n\
               }\n";
    assert!(rules_at(COLD, src).is_empty());
}

#[test]
fn rng_salt_comment_immunity() {
    assert!(rules_at(COLD, "// e.g. SplitMix64::new(42)\nfn f() {}\n").is_empty());
}

// -------------------------------------------------------- hot-path-panic

#[test]
fn hot_path_panic_positive() {
    let f = rules_at(HOT, "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    assert_eq!(f, vec![("hot-path-panic", 1)]);
    let f = rules_at(HOT, "fn f() { panic!(\"boom\") }\n");
    assert_eq!(f, vec![("hot-path-panic", 1)]);
}

#[test]
fn hot_path_panic_near_misses() {
    // Same code off the hot path: fine.
    assert!(rules_at(SIM, "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n").is_empty());
    // `unwrap_or` is not `unwrap`.
    assert!(rules_at(HOT, "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n").is_empty());
    // Tests panic on purpose, even in hot-path files.
    let src = "#[cfg(test)]\nmod tests {\n  fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
    assert!(rules_at(HOT, src).is_empty());
}

#[test]
fn hot_path_panic_escape_honored_including_multiline() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               // apt-lint: allow(hot-path-panic, the caller checked is_some\n\
               // one frame up, so this cannot fire)\n\
               x.expect(\"checked\")\n\
               }\n";
    assert!(rules_at(HOT, src).is_empty());
}

#[test]
fn hot_path_panic_reasonless_escape_rejected() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               // apt-lint: allow(hot-path-panic)\n\
               x.unwrap()\n\
               }\n";
    let f = rules_at(HOT, src);
    // The finding survives AND the empty escape is its own finding.
    assert!(f.contains(&("hot-path-panic", 3)), "{f:?}");
    assert!(f.contains(&("bad-escape", 2)), "{f:?}");
}

#[test]
fn hot_path_panic_string_immunity() {
    let src = "fn f() -> &'static str { \"call .unwrap() and panic!\" }\n";
    assert!(rules_at(HOT, src).is_empty());
}

// ---------------------------------------------------------- forbid-unsafe

#[test]
fn forbid_unsafe_positive_and_fix() {
    let f = rules_at("crates/x/src/lib.rs", "pub fn f() {}\n");
    assert_eq!(f, vec![("forbid-unsafe", 1)]);
    assert!(rules_at(
        "crates/x/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n"
    )
    .is_empty());
}

#[test]
fn forbid_unsafe_only_checks_lib_roots() {
    // Non-root modules inherit the crate root's forbid.
    assert!(rules_at("crates/x/src/util.rs", "pub fn f() {}\n").is_empty());
}

#[test]
fn forbid_unsafe_comment_mention_does_not_count() {
    // The attribute inside a comment must not satisfy the rule.
    let f = rules_at(
        "crates/x/src/lib.rs",
        "// TODO: add #![forbid(unsafe_code)]\npub fn f() {}\n",
    );
    assert_eq!(f, vec![("forbid-unsafe", 1)]);
}

// ------------------------------------------------------------ bad-escape

#[test]
fn bad_escape_unknown_rule_and_malformed_shape() {
    let f = rules_at(
        COLD,
        "// apt-lint: allow(made-up-rule, because)\nfn f() {}\n",
    );
    assert_eq!(f, vec![("bad-escape", 1)]);
    let f = rules_at(COLD, "// apt-lint: please ignore this\nfn f() {}\n");
    assert_eq!(f, vec![("bad-escape", 1)]);
}

#[test]
fn bad_escape_wrong_rule_does_not_suppress() {
    // A (valid, reasoned) escape for the *wrong* rule leaves the finding.
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               // apt-lint: allow(wall-clock, wrong rule entirely)\n\
               x.unwrap()\n\
               }\n";
    let f = rules_at(HOT, src);
    assert_eq!(f, vec![("hot-path-panic", 3)]);
}

// ------------------------------------------------------------------ json

#[test]
fn json_schema_pin() {
    // The exact serialized form is the contract: CI consumers parse this.
    let mut report = Report {
        root: "/w".to_string(),
        ..Report::default()
    };
    report.files_scanned = 2;
    report.findings.push(apt_lint::Finding {
        file: "crates/x/src/lib.rs".to_string(),
        line: 7,
        rule: "wall-clock",
        message: "say \"hi\"\\".to_string(),
        hint: "line\nbreak".to_string(),
    });
    assert_eq!(
        report.render_json(),
        "{\"schema\":\"apt-lint-v1\",\"root\":\"/w\",\"files_scanned\":2,\"findings\":[\
         {\"file\":\"crates/x/src/lib.rs\",\"line\":7,\"rule\":\"wall-clock\",\
         \"message\":\"say \\\"hi\\\"\\\\\",\"hint\":\"line\\nbreak\"}]}"
    );
}

#[test]
fn report_sort_is_stable_by_file_line_rule() {
    let mut report = Report::default();
    let f = |file: &str, line: u32, rule: &'static str| apt_lint::Finding {
        file: file.to_string(),
        line,
        rule,
        message: String::new(),
        hint: String::new(),
    };
    report.findings = vec![
        f("b.rs", 1, "wall-clock"),
        f("a.rs", 9, "rng-salt"),
        f("a.rs", 2, "wall-clock"),
        f("a.rs", 2, "hot-path-panic"),
    ];
    report.sort();
    let got: Vec<(String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("a.rs".to_string(), 2),
            ("a.rs".to_string(), 2),
            ("a.rs".to_string(), 9),
            ("b.rs".to_string(), 1),
        ]
    );
    assert_eq!(report.findings[0].rule, "hot-path-panic");
}

// ----------------------------------------------------------- the gate

/// The workspace itself is clean: `cargo test` fails if a violation lands
/// without a reasoned escape, independent of the CI step that runs the
/// binary.
#[test]
fn workspace_is_lint_clean() {
    let root = apt_lint::find_root(None);
    let report = apt_lint::scan_workspace(&root, &cfg()).expect("workspace scan");
    assert!(report.files_scanned > 80, "suspiciously few files scanned");
    let rendered = report.render_human();
    assert!(
        report.findings.is_empty(),
        "workspace has unescaped lint findings:\n{rendered}"
    );
}
