//! A job stream on a machine that breaks: transient kernel failures plus
//! processor crash/repair cycles, with retry/backoff and degraded-mode
//! scheduling.
//!
//! The same Poisson diamond stream runs four times — APT(4) and MET, each
//! on a healthy machine and then under a seeded [`FaultPlan`] — so the
//! fault bill is directly attributable. Watch the goodput-vs-throughput
//! gap (shed jobs), the wasted-work fraction (killed attempts), and the
//! availability column; APT's within-threshold alternatives double as
//! failover targets, while MET waits for its crashed favourite.
//!
//! ```bash
//! cargo run --release -p apt-suite --example faulty_stream [jobs] [rate_jps] [mttf_s]
//! ```
//!
//! Try `faulty_stream 800 0.25 20` for a machine that spends a fifth of
//! its life broken.

use apt_stream::{DriverOpts, JobFamily, PoissonSource};
use apt_suite::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(600);
    let rate: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.2);
    let mttf_s: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(45);

    let lookup = LookupTable::paper();
    let system = SystemConfig::paper_4gbps();
    let plan = FaultPlan::seeded(0xFA17).with_transient(0.05).with_crashes(
        SimDuration::from_ms(mttf_s * 1_000),
        SimDuration::from_ms(4_000),
    );
    println!(
        "Faulty stream: {jobs} diamond jobs at {rate} jobs/s; faults = transient p=0.05 \
         + crashes (MTTF {mttf_s}s, MTTR 4s), 3 attempts/kernel with exponential backoff\n"
    );

    type MakePolicy = fn() -> Box<dyn Policy>;
    let policies: [(&str, MakePolicy); 2] = [
        ("APT(4)", || Box::new(Apt::new(4.0))),
        ("MET", || Box::new(Met::new())),
    ];
    for (name, make) in policies {
        for faulty in [false, true] {
            // Same arrival seed ⇒ the healthy and faulty runs face an
            // identical stream; only the fault plan differs.
            let mut source =
                PoissonSource::new(lookup, rate, jobs, JobFamily::Diamond { width: 2 }, 11);
            let mut policy = make();
            let o = apt_stream::simulate_source(
                &mut source,
                &system,
                lookup,
                policy.as_mut(),
                &DriverOpts {
                    snapshot_interval: Some(SimDuration::from_ms(600_000)),
                    faults: if faulty { plan } else { FaultPlan::none() },
                    retry: RetryPolicy::default(),
                    ..DriverOpts::default()
                },
            )
            .expect("faulty stream run");
            println!(
                "{name:>7} {}: goodput {:.3} j/s (thru {:.3})  failed {:>2}  \
                 waste {:>4.1}%  avail {:>5.1}%  crashes {:>3}  retries {:>3}",
                if faulty { "faulty " } else { "healthy" },
                o.goodput_jps,
                o.throughput_jps,
                o.jobs_failed,
                o.wasted_work_frac() * 100.0,
                o.availability() * 100.0,
                o.faults.crashes,
                o.faults.retries,
            );
            if faulty {
                // Per-window availability: the online health signal.
                for s in o.snapshots.iter().take(4) {
                    println!(
                        "{:>15} t={:>5.0}s  {:>2} jobs/window  {:>2} kernel failures  \
                         {:>2} retries  avail {:>5.1}%",
                        "",
                        s.end.as_secs_f64(),
                        s.window_jobs,
                        s.window_kernel_failures,
                        s.window_retries,
                        s.availability * 100.0,
                    );
                }
                if o.snapshots.len() > 4 {
                    println!("{:>15} … {} more windows", "", o.snapshots.len() - 4);
                }
            }
        }
        println!();
    }

    println!("(crash orphans re-enter the ready queue and reschedule on whatever is");
    println!(" still up — APT fails over within its threshold at no extra cost, while");
    println!(" MET's queue stalls until its preferred processor is repaired)");
}
