//! # apt-faults
//!
//! Deterministic fault injection for the APT simulators. The crate defines
//! *what can go wrong* — the engines in `apt-hetsim` decide what happens
//! next. Three fault classes are modelled, matching the degradations that
//! dominate tail behavior on production heterogeneous fleets:
//!
//! * **Transient kernel failures** — with probability `p`, a kernel
//!   execution fails partway through (at a uniformly sampled fraction of
//!   its service time) and must re-execute from scratch. The work already
//!   done is *wasted* and counted as such.
//! * **Processor crash / repair** — each processor fails after an
//!   exponentially distributed uptime (mean MTTF) and returns after an
//!   exponentially distributed repair (mean MTTR). A crash kills the
//!   in-flight kernel, drains the local queue back into the ready set, and
//!   masks the processor out of the availability set so no policy places
//!   work on it until repair.
//! * **Link degradation** — a topology pair's effective `LinkRate` is
//!   divided by a slowdown factor for an exponentially spaced interval,
//!   stretching transfers that start while the episode is active.
//!
//! ## RNG-stream isolation
//!
//! A [`FaultPlan`] owns its own SplitMix64 stream, salted with
//! [`FAULT_STREAM_SALT`] — exactly the discipline `apt-stream` uses for
//! deadline tagging. Turning faults on (or changing the fault seed) never
//! perturbs arrival times, deadlines, or workload-generation randomness,
//! so a faulty run and its fault-free twin see byte-identical offered
//! load. Conversely, [`FaultPlan::none()`] injects nothing and leaves the
//! engines on their existing code path: fault-free runs are byte-identical
//! to runs of the simulator before this crate existed.
//!
//! ## Retry semantics
//!
//! [`RetryPolicy`] governs what the streaming driver does when a kernel
//! fails: up to `max_attempts` executions per kernel, separated by
//! exponential backoff (`backoff_base × factor^(attempt-1)`, plus uniform
//! jitter drawn from the fault stream), and a per-job retry budget after
//! which the whole job is shed (graceful degradation) rather than wedging
//! the system. Kernels orphaned by a *crash* are re-dispatched through the
//! normal ready path without consuming an attempt — the processor failed,
//! not the kernel — which is precisely where APT's
//! alternative-processor-within-threshold choice becomes a failover
//! policy.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use apt_base::{ProcId, SimDuration};
use apt_dfg::SplitMix64;

/// Salt XORed into the fault seed so the fault stream never collides with
/// the workload, arrival, or deadline streams derived from the same base
/// seed.
pub const FAULT_STREAM_SALT: u64 = 0xFA17_5EED_0BAD_C0DE;

/// Transient-failure model: each kernel execution independently fails with
/// probability `prob`, at a uniformly sampled fraction of its service time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSpec {
    /// Per-execution failure probability in `[0, 1]`.
    pub prob: f64,
}

/// Crash/repair model: exponential uptimes (mean `mttf`) alternating with
/// exponential repairs (mean `mttr`), independently per processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// Mean time to failure.
    pub mttf: SimDuration,
    /// Mean time to repair.
    pub mttr: SimDuration,
}

/// Link-degradation model: episodes arrive with exponential spacing (mean
/// `mtbf`) and last `duration`, during which the affected link rate is
/// divided by `slowdown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDegradeSpec {
    /// The directed pair to degrade, or `None` to degrade every link
    /// (uniform-rate systems and whole-fabric brownouts).
    pub pair: Option<(ProcId, ProcId)>,
    /// Rate divisor while an episode is active (`2` halves the bandwidth).
    /// Must be at least 1.
    pub slowdown: u32,
    /// Mean gap between the start of one episode and the next.
    pub mtbf: SimDuration,
    /// Fixed length of each episode.
    pub duration: SimDuration,
}

/// A seeded, deterministic description of every fault the run will see.
///
/// The plan is pure configuration (`Copy`); the engines turn it into a
/// [`FaultState`] holding the live RNG. [`FaultPlan::none()`] — also the
/// `Default` — injects nothing and is guaranteed not to perturb the
/// simulation in any way.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the fault stream (salted with [`FAULT_STREAM_SALT`]).
    pub seed: u64,
    /// Transient kernel failures, if enabled.
    pub transient: Option<TransientSpec>,
    /// Processor crash/repair, if enabled.
    pub crash: Option<CrashSpec>,
    /// Link degradation, if enabled.
    pub degrade: Option<LinkDegradeSpec>,
}

impl FaultPlan {
    /// The empty plan: no faults, byte-identical simulation.
    pub const fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            transient: None,
            crash: None,
            degrade: None,
        }
    }

    /// An empty plan carrying a seed, ready for builder calls.
    pub const fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient: None,
            crash: None,
            degrade: None,
        }
    }

    /// Enable transient kernel failures with per-execution probability
    /// `prob`.
    pub fn with_transient(mut self, prob: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob), "failure probability in [0,1]");
        self.transient = Some(TransientSpec { prob });
        self
    }

    /// Enable processor crash/repair cycles.
    pub fn with_crashes(mut self, mttf: SimDuration, mttr: SimDuration) -> FaultPlan {
        assert!(mttf > SimDuration::ZERO, "MTTF must be positive");
        assert!(mttr > SimDuration::ZERO, "MTTR must be positive");
        self.crash = Some(CrashSpec { mttf, mttr });
        self
    }

    /// Enable link-degradation episodes.
    pub fn with_link_degrade(mut self, spec: LinkDegradeSpec) -> FaultPlan {
        assert!(spec.slowdown >= 1, "slowdown divisor must be at least 1");
        assert!(spec.mtbf > SimDuration::ZERO, "MTBF must be positive");
        self.degrade = Some(spec);
        self
    }

    /// True when the plan injects nothing (the engines skip all fault
    /// machinery and stay on the historical code path).
    pub fn is_none(&self) -> bool {
        self.transient.is_none() && self.crash.is_none() && self.degrade.is_none()
    }
}

/// Retry/backoff discipline for failed kernels in the streaming driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum executions per kernel (first try included). A kernel that
    /// fails `max_attempts` times has its job shed (open system) or ends
    /// the run with `RetriesExhausted` (closed system).
    pub max_attempts: u32,
    /// Backoff before attempt 2 (doubling — see `backoff_factor`).
    pub backoff_base: SimDuration,
    /// Multiplier applied to the backoff per additional attempt.
    pub backoff_factor: u32,
    /// Total retries a single job may consume across all of its kernels
    /// before the job is shed.
    pub job_retry_budget: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: SimDuration::from_ms(1),
            backoff_factor: 2,
            job_retry_budget: 16,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: any kernel failure sheds the job.
    pub const fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: SimDuration::ZERO,
            backoff_factor: 1,
            job_retry_budget: 0,
        }
    }

    /// The policy with its degenerate fields clamped to their effective
    /// values — what the engines actually arm:
    ///
    /// * `backoff_factor: 0` clamps to 1 (constant backoff). The raw zero
    ///   used to collapse every backoff after the first retry to
    ///   jitter-only (`0^exp == 0` for `exp ≥ 1`), silently turning
    ///   exponential backoff into an immediate-retry storm.
    /// * `max_attempts: 0` clamps to 1 (a single attempt, no retries) —
    ///   zero executions is unsatisfiable: the kernel has already run by
    ///   the time the policy is consulted, so 0 always *behaved* as 1.
    ///   The clamp makes that pinned semantic explicit.
    ///
    /// The fields are public (sweep configs build policies as literals),
    /// so normalization happens where the policy is armed rather than at
    /// construction; call this before doing backoff arithmetic by hand.
    pub const fn normalized(self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: if self.max_attempts == 0 {
                1
            } else {
                self.max_attempts
            },
            backoff_base: self.backoff_base,
            backoff_factor: if self.backoff_factor == 0 {
                1
            } else {
                self.backoff_factor
            },
            job_retry_budget: self.job_retry_budget,
        }
    }
}

/// Running totals the engines accumulate while a plan is active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTotals {
    /// Transient kernel failures injected.
    pub kernel_failures: u64,
    /// Re-executions scheduled after a transient failure.
    pub retries: u64,
    /// Processor crash events.
    pub crashes: u64,
    /// Processor repair events.
    pub repairs: u64,
    /// Kernels orphaned by a crash and re-dispatched.
    pub orphaned: u64,
    /// Jobs shed after exhausting their retry budget.
    pub jobs_failed: u64,
    /// Busy/transfer nanoseconds thrown away by failures and crashes.
    pub wasted_ns: u64,
    /// Processor-nanoseconds spent down (summed over processors).
    pub down_ns: u64,
}

/// Live fault stream: the plan plus its dedicated SplitMix64 generator.
///
/// All draws — failure coin flips, failure fractions, crash gaps, repair
/// times, degradation spacing, backoff jitter — come from this one stream,
/// in event order, so a given `(plan, workload)` pair replays identically.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    rng: SplitMix64,
}

/// Uniform in `[0, 1)` with 53-bit resolution.
fn unit(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Exponentially distributed duration with the given mean, clamped to at
/// least 1 ns so consecutive events never collapse onto the same instant.
fn exp_ns(rng: &mut SplitMix64, mean: SimDuration) -> SimDuration {
    let u = unit(rng);
    let ns = -(1.0 - u).ln() * mean.as_ns() as f64;
    SimDuration::from_ns((ns as u64).max(1))
}

impl FaultState {
    /// Arm a plan: derive the salted fault stream from its seed.
    pub fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            plan,
            rng: SplitMix64::new(plan.seed ^ FAULT_STREAM_SALT),
        }
    }

    /// The plan this state was armed with.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draw the transient-failure outcome for one kernel execution:
    /// `Some(frac)` means the kernel fails after `frac` of its exec time
    /// (`frac` strictly inside `(0, 1)`), `None` means it runs to
    /// completion. Consumes exactly one draw when transients are enabled
    /// (two on failure), zero otherwise.
    pub fn transient_failure(&mut self) -> Option<f64> {
        let spec = self.plan.transient?;
        if unit(&mut self.rng) < spec.prob {
            // Keep the failure point strictly interior so the failed
            // attempt always wastes some work and never aliases a
            // legitimate completion instant.
            Some(unit(&mut self.rng).clamp(0.05, 0.95))
        } else {
            None
        }
    }

    /// Time from now until the given processor's next crash, if crashes
    /// are enabled.
    pub fn next_crash_gap(&mut self) -> Option<SimDuration> {
        let spec = self.plan.crash?;
        Some(exp_ns(&mut self.rng, spec.mttf))
    }

    /// Repair time for a crash that just happened. Panics if crashes are
    /// not enabled (the engine only asks after a crash it scheduled).
    pub fn repair_time(&mut self) -> SimDuration {
        let spec = self.plan.crash.expect("repair draw without a crash spec");
        exp_ns(&mut self.rng, spec.mttr)
    }

    /// Time from now until the next link-degradation episode begins.
    pub fn next_degrade_gap(&mut self) -> Option<SimDuration> {
        let spec = self.plan.degrade?;
        Some(exp_ns(&mut self.rng, spec.mtbf))
    }

    /// Backoff before retry number `attempt` (2 = first retry):
    /// `base × factor^(attempt-2)` plus uniform jitter in `[0, base]`.
    /// A `backoff_factor` of 0 is clamped to 1 ([`RetryPolicy::normalized`]):
    /// `0^exp` used to zero out every backoff past the first retry,
    /// silently degrading exponential backoff to jitter-only.
    pub fn backoff(&mut self, policy: &RetryPolicy, attempt: u32) -> SimDuration {
        let base = policy.backoff_base.as_ns();
        if base == 0 {
            return SimDuration::ZERO;
        }
        let exp = attempt.saturating_sub(2);
        let factor = (policy.backoff_factor as u64).max(1);
        let scaled = base.saturating_mul(factor.saturating_pow(exp));
        let jitter = self.rng.gen_range(base + 1);
        SimDuration::from_ns(scaled.saturating_add(jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert_eq!(plan, FaultPlan::default());
        let mut state = FaultState::new(plan);
        assert_eq!(state.transient_failure(), None);
        assert_eq!(state.next_crash_gap(), None);
        assert_eq!(state.next_degrade_gap(), None);
    }

    #[test]
    fn same_seed_same_stream() {
        let plan = FaultPlan::seeded(42)
            .with_transient(0.5)
            .with_crashes(SimDuration::from_ms(100), SimDuration::from_ms(10));
        let mut a = FaultState::new(plan);
        let mut b = FaultState::new(plan);
        for _ in 0..100 {
            assert_eq!(a.transient_failure(), b.transient_failure());
            assert_eq!(a.next_crash_gap(), b.next_crash_gap());
        }
        // A different seed diverges.
        let mut c = FaultState::new(FaultPlan { seed: 43, ..plan });
        let same = (0..100).all(|_| {
            let (x, y) = (a.next_crash_gap(), c.next_crash_gap());
            x == y
        });
        assert!(!same, "distinct seeds must yield distinct fault streams");
    }

    #[test]
    fn transient_rate_tracks_probability() {
        let plan = FaultPlan::seeded(7).with_transient(0.25);
        let mut state = FaultState::new(plan);
        let fails = (0..10_000)
            .filter(|_| state.transient_failure().is_some())
            .count();
        assert!((2000..3000).contains(&fails), "observed {fails}/10000");
    }

    #[test]
    fn failure_fraction_is_interior() {
        let plan = FaultPlan::seeded(3).with_transient(1.0);
        let mut state = FaultState::new(plan);
        for _ in 0..1000 {
            let f = state.transient_failure().unwrap();
            assert!((0.05..=0.95).contains(&f));
        }
    }

    #[test]
    fn crash_gaps_average_near_mttf() {
        let mttf = SimDuration::from_ms(50);
        let plan = FaultPlan::seeded(11).with_crashes(mttf, SimDuration::from_ms(5));
        let mut state = FaultState::new(plan);
        let n = 20_000u64;
        let total: u64 = (0..n)
            .map(|_| state.next_crash_gap().unwrap().as_ns())
            .sum();
        let mean = total / n;
        let target = mttf.as_ns();
        assert!(
            mean > target / 2 && mean < target * 2,
            "mean gap {mean} ns vs MTTF {target} ns"
        );
    }

    #[test]
    fn backoff_grows_and_jitters_within_base() {
        let policy = RetryPolicy {
            max_attempts: 5,
            backoff_base: SimDuration::from_ms(1),
            backoff_factor: 2,
            job_retry_budget: 16,
        };
        let mut state = FaultState::new(FaultPlan::seeded(1));
        let b2 = state.backoff(&policy, 2);
        let b3 = state.backoff(&policy, 3);
        let b4 = state.backoff(&policy, 4);
        let base = policy.backoff_base.as_ns();
        // attempt k waits base * 2^(k-2) + jitter in [0, base].
        assert!((base..=2 * base).contains(&b2.as_ns()));
        assert!((2 * base..=3 * base).contains(&b3.as_ns()));
        assert!((4 * base..=5 * base).contains(&b4.as_ns()));
        // Zero base short-circuits without consuming a draw.
        let quiet = RetryPolicy::no_retries();
        let mut s1 = state.clone();
        assert_eq!(state.backoff(&quiet, 2), SimDuration::ZERO);
        assert_eq!(
            state.next_crash_gap().is_none(),
            s1.next_crash_gap().is_none()
        );
    }

    /// Satellite regression: `backoff_factor: 0` used to collapse every
    /// backoff after the first retry to jitter-only (`0^exp == 0` for
    /// `exp ≥ 1`). It now clamps to factor 1 — constant `base + jitter` —
    /// so attempt 3+ can never wait *less* than attempt 2's floor.
    #[test]
    fn backoff_factor_zero_clamps_to_constant_backoff() {
        let broken = RetryPolicy {
            max_attempts: 5,
            backoff_base: SimDuration::from_ms(1),
            backoff_factor: 0,
            job_retry_budget: 16,
        };
        let base = broken.backoff_base.as_ns();
        let mut state = FaultState::new(FaultPlan::seeded(9));
        for attempt in 2..=5 {
            let b = state.backoff(&broken, attempt);
            assert!(
                (base..=2 * base).contains(&b.as_ns()),
                "attempt {attempt}: {} outside base..=2*base — the 0^exp collapse is back",
                b.as_ns()
            );
        }
        // The clamped-zero policy draws exactly what factor 1 would: the
        // two replay identically on the same stream.
        let one = RetryPolicy {
            backoff_factor: 1,
            ..broken
        };
        let mut a = FaultState::new(FaultPlan::seeded(9));
        let mut b = FaultState::new(FaultPlan::seeded(9));
        for attempt in 2..=5 {
            assert_eq!(a.backoff(&broken, attempt), b.backoff(&one, attempt));
        }
    }

    /// `normalized()` pins the degenerate-field semantics: factor 0 → 1,
    /// `max_attempts: 0` → 1 (zero executions is unsatisfiable — the
    /// kernel already ran when the policy is consulted), everything else
    /// untouched.
    #[test]
    fn normalized_clamps_degenerate_retry_fields() {
        let degenerate = RetryPolicy {
            max_attempts: 0,
            backoff_base: SimDuration::from_ms(2),
            backoff_factor: 0,
            job_retry_budget: 7,
        };
        let norm = degenerate.normalized();
        assert_eq!(norm.max_attempts, 1, "0 attempts behaves as no_retries");
        assert_eq!(norm.backoff_factor, 1);
        assert_eq!(norm.backoff_base, SimDuration::from_ms(2));
        assert_eq!(norm.job_retry_budget, 7);
        // Well-formed policies pass through unchanged.
        assert_eq!(RetryPolicy::default().normalized(), RetryPolicy::default());
        assert_eq!(
            RetryPolicy::no_retries().normalized(),
            RetryPolicy::no_retries()
        );
    }

    #[test]
    fn salt_separates_fault_stream_from_base_seed() {
        // The fault stream seeded with S must differ from a raw SplitMix64
        // stream seeded with S (which workload generation would use).
        let mut raw = SplitMix64::new(42);
        let mut faults = FaultState::new(FaultPlan::seeded(42).with_transient(1.0));
        let raw_draw = (raw.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let fault_draw = faults.transient_failure().unwrap();
        assert_ne!(raw_draw, fault_draw);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn transient_prob_validated() {
        let _ = FaultPlan::seeded(0).with_transient(1.5);
    }
}
